"""Streaming TCCA: fit from minibatches without materializing the data.

Demonstrates the out-of-core path of the library:

1. equivalence — ``TCCA.fit_stream`` over chunks of an in-memory dataset
   reproduces ``TCCA.fit`` on the same data to floating-point accuracy;
2. out-of-core — a ``stream_*_like`` dataset factory generates each chunk
   on demand, so TCCA fits a dataset that is never fully resident, with
   peak covariance-accumulation memory independent of ``N``.

Run with::

    python examples/streaming_tcca.py
"""

import tracemalloc

import numpy as np

from repro import TCCA
from repro.datasets import make_multiview_latent, stream_multiview_latent
from repro.streaming import StreamingCovarianceTensor


def main() -> None:
    # 1. Streaming matches batch on the same data.
    data = make_multiview_latent(
        n_samples=2000, dims=(30, 25, 20), n_classes=2, random_state=0
    )
    batch = TCCA(n_components=5, epsilon=1.0, random_state=0).fit(data.views)
    streamed = TCCA(n_components=5, epsilon=1.0, random_state=0).fit_stream(
        data.stream(chunk_size=256)
    )
    worst = max(
        np.abs(b - s).max()
        for b, s in zip(batch.canonical_vectors_, streamed.canonical_vectors_)
    )
    print(f"batch correlations    : {np.round(batch.correlations_, 4)}")
    print(f"streaming correlations: {np.round(streamed.correlations_, 4)}")
    print(f"max canonical-vector difference: {worst:.2e}")

    # 2. Out-of-core: chunks are generated on demand and released; the
    #    accumulator state is the covariance tensor plus one chunk.
    stream = stream_multiview_latent(
        n_samples=50_000, dims=(30, 25, 20), chunk_size=512, random_state=1
    )
    accumulator = StreamingCovarianceTensor()
    tracemalloc.start()
    for chunks in stream.chunks():
        accumulator.update(chunks)
    tensor = accumulator.tensor()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    dense_mb = 8 * stream.n_samples * sum(stream.dims) / 1e6
    print(
        f"\naccumulated C_123 of shape {tensor.shape} over "
        f"N={stream.n_samples:,} samples"
    )
    print(f"peak accumulation memory: {peak / 1e6:.1f} MB "
          f"(materialized views would need {dense_mb:.0f} MB)")

    model = TCCA(n_components=5, epsilon=1.0, random_state=0).fit_stream(stream)
    print(f"streaming-fit correlations on the 50k-sample stream: "
          f"{np.round(model.correlations_, 4)}")


if __name__ == "__main__":
    main()
