"""Incremental TCCA: grow a fitted model as new samples arrive.

Demonstrates the staged fit engine's resumable path:

1. equivalence — ``TCCA.partial_fit`` over a sequence of minibatches
   matches a cold ``TCCA.fit`` on the concatenated data to tight
   tolerance, while each refresh warm-starts from the previous factors;
2. persistence — the accumulated moment state lives inside the saved
   model file, so the session continues across ``save_model`` /
   ``load_model`` (the ``python -m repro update`` loop);
3. sharding — moment states for disjoint sample shards ``merge()`` into
   exactly the single-pass statistics, so ingestion parallelizes
   map-reduce style.

Run with::

    python examples/incremental_tcca.py
"""

import os
import tempfile

import numpy as np

from repro import TCCA
from repro.api import load_model, save_model
from repro.core import engine
from repro.core.engine import MomentState
from repro.datasets import make_multiview_latent


def main() -> None:
    data = make_multiview_latent(
        n_samples=2400, dims=(30, 25, 20), n_classes=2, random_state=0
    )
    views = data.views

    # 1. partial_fit over minibatches == cold fit on everything.
    cold = TCCA(n_components=3, random_state=0, tol=1e-10).fit(views)
    incremental = TCCA(n_components=3, random_state=0, tol=1e-10)
    for start in range(0, 2400, 400):
        incremental.partial_fit(
            [view[:, start : start + 400] for view in views]
        )
        sweeps = incremental.decomposition_result_.n_iterations
        print(
            f"after {incremental.moments_.n_samples:>5d} samples: "
            f"correlations {np.round(incremental.correlations_, 4)} "
            f"({sweeps} sweeps)"
        )
    drift = np.max(np.abs(incremental.correlations_ - cold.correlations_))
    print(f"max |incremental - cold| correlation difference: {drift:.2e}")
    assert drift < 1e-6

    # 2. The session survives save/load — the model file carries the
    # accumulated moments (format v2), so a reloaded model resumes
    # exactly where it stopped.
    handle, path = tempfile.mkstemp(suffix=".npz")
    os.close(handle)
    try:
        save_model(incremental, path)
        resumed = load_model(path)
        extra = make_multiview_latent(
            n_samples=300, dims=(30, 25, 20), n_classes=2, random_state=7
        )
        incremental.partial_fit(extra.views)
        resumed.partial_fit(extra.views)
        identical = all(
            np.array_equal(a, b)
            for a, b in zip(
                incremental.canonical_vectors_, resumed.canonical_vectors_
            )
        )
        print(f"reloaded session continues bit-identically: {identical}")
        assert identical
    finally:
        os.unlink(path)

    # 3. Shard-parallel ingestion: accumulate disjoint shards into
    # separate moment states (e.g. one per worker), merge, and fit.
    shards = [
        [view[:, start : start + 800] for view in views]
        for start in range(0, 2400, 800)
    ]
    merged = MomentState(track_tensor=True)
    for shard in shards:
        worker_state = MomentState(track_tensor=True)
        engine.ingest_stage(worker_state, shard)
        merged.merge(worker_state)
    single = engine.ingest_stage(MomentState(track_tensor=True), views)
    tensor_gap = np.max(np.abs(merged.tensor() - single.tensor()))
    print(
        f"{len(shards)} merged shards vs single pass, max moment "
        f"difference: {tensor_gap:.2e}"
    )
    assert tensor_gap < 1e-12


if __name__ == "__main__":
    main()
