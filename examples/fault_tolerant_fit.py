"""Fault-tolerant TCCA: crash a worker, resume it, quarantine damage.

Demonstrates the PR-8 reliability layer end to end, self-contained and
without a single real sleep:

1. **retry with deterministic backoff** — a flaky artifact write
   scripted by a :class:`~repro.reliability.FaultPlan` is absorbed by a
   :class:`~repro.reliability.RetryPolicy` whose delay schedule is a
   pure function of ``(seed, attempt)``;
2. **crash simulation** — an accumulation worker is killed at an exact
   chunk via the fault plan, leaving a ``.ckpt`` checkpoint next to its
   unfinished shard;
3. **resume** — the pass restarts from the recorded row cursor with the
   recorded chunk geometry, so the resumed shard is *bit-identical* to
   an uninterrupted one;
4. **quarantine** — a deliberately damaged shard fails a strict reduce
   with an error naming every offender, while ``on_corrupt="skip"``
   sidelines it, reduces the healthy remainder, and records the
   quarantined file in the model's provenance;
5. the degraded model still equals a fit on the healthy shards' data to
   ≤ 1e-10.

Run with::

    python examples/fault_tolerant_fit.py
"""

import os
import tempfile
import warnings
from pathlib import Path

import numpy as np

from repro.artifacts import reduce_shards, save_moments
from repro.artifacts.distributed import accumulate_views
from repro.core import TCCA
from repro.datasets import make_multiview_latent
from repro.exceptions import PersistenceError, WorkerKilled
from repro.reliability import (
    FaultPlan,
    RetryPolicy,
    accumulate_views_checkpointed,
    checkpoint_path_for,
    load_checkpoint,
)

N_SAMPLES, DIMS, SHARDS = 360, (20, 16, 12), 3
CHUNK = 40


def main() -> None:
    workdir = Path(tempfile.mkdtemp())
    data = make_multiview_latent(
        n_samples=N_SAMPLES, dims=DIMS, random_state=0
    )
    views = list(data.views)

    # 1. a transient write failure costs a retry, not the shard: the
    # fault plan fails the first artifact write, the policy retries it
    # after a deterministic backoff (delays are a hash of seed+attempt,
    # identical on every run of this script)
    policy = RetryPolicy(max_attempts=3, seed=7)
    print(
        "retry schedule (seed=7): "
        + ", ".join(f"{policy.delay(k) * 1000:.1f}ms" for k in (1, 2))
    )
    flaky_path = checkpoint_path_for(workdir / "flaky.moments")
    plan = FaultPlan().fail_at(
        "artifact.write", nth=1, error=OSError("injected: disk hiccup")
    )
    with plan:
        accumulate_views_checkpointed(
            views,
            params={"n_components": 3, "random_state": 0},
            checkpoint_path=flaky_path,
            checkpoint_every=CHUNK,
            retry=policy,
        )
    print(
        f"flaky write absorbed: {plan.fired[0][2]!r} fault at "
        f"{plan.fired[0][0]!r} retried, checkpoints intact"
    )

    # 2. crash a worker at its third chunk — deterministically, no
    # signals or races: the fault plan raises WorkerKilled at an exact
    # fault_point call count
    ckpt = checkpoint_path_for(workdir / "part-0.moments")
    try:
        with FaultPlan().kill_at("accumulate.chunk", nth=3):
            accumulate_views_checkpointed(
                views,
                params={"n_components": 3, "random_state": 0},
                checkpoint_path=ckpt,
                checkpoint_every=CHUNK,
            )
        raise AssertionError("the injected kill should have fired")
    except WorkerKilled as death:
        print(f"worker crashed on cue: {death}")
    header, partial = load_checkpoint(ckpt)
    cursor = header["checkpoint"]
    print(
        f"checkpoint survives: {cursor['rows_done']}/"
        f"{cursor['total_rows']} rows done in {CHUNK}-row chunks"
    )

    # 3. resume: picks up at the cursor with the recorded geometry; the
    # result is bit-identical to a pass that never crashed
    resumed, params, progress = accumulate_views_checkpointed(
        views,
        params={"n_components": 3, "random_state": 0},
        checkpoint_path=ckpt,
        checkpoint_every=CHUNK,
        resume=True,
    )
    print(
        f"resumed at row {progress['resumed_at']}: "
        f"{resumed.n_samples} samples accumulated"
    )
    uninterrupted, _, _ = accumulate_views_checkpointed(
        views,
        params={"n_components": 3, "random_state": 0},
        checkpoint_path=checkpoint_path_for(workdir / "ref.moments"),
        checkpoint_every=CHUNK,
    )
    meta_a, arrays_a = resumed.state_dict()
    meta_b, arrays_b = uninterrupted.state_dict()
    assert all(
        np.array_equal(arrays_a[key], arrays_b[key]) for key in arrays_a
    )
    print("resumed pass == uninterrupted pass, to the bit")

    # 4. shard quarantine: write three healthy shards, damage one, and
    # reduce both strictly and in degraded mode
    shard_paths = []
    for index in range(SHARDS):
        moments, resolved = accumulate_views(
            views,
            estimator="tcca",
            params={"n_components": 3, "random_state": 0},
            shard=(index, SHARDS),
        )
        shard_path = workdir / f"part-{index}.moments"
        save_moments(
            moments,
            shard_path,
            estimator="tcca",
            params=resolved,
            shard={"index": index, "count": SHARDS},
        )
        shard_paths.append(shard_path)
    size = os.path.getsize(shard_paths[1])
    with open(shard_paths[1], "r+b") as handle:
        handle.seek(size - 9)
        handle.write(b"\x00\x00\x00")
    try:
        reduce_shards(shard_paths)
        raise AssertionError("the strict reduce should have refused")
    except PersistenceError as refusal:
        print(f"strict reduce refused: {str(refusal)[:72]}…")
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")  # the quarantine warning, shown above
        model, report = reduce_shards(shard_paths, on_corrupt="skip")
    print(
        f"degraded reduce: {report['n_shards']} healthy shards kept, "
        f"quarantined {[entry['name'] for entry in report['quarantined']]}"
    )

    # 5. the degraded model equals a fit on the healthy shards' data
    healthy = np.r_[0:120, 240:360]  # shards 0 and 2 of 3
    reference = TCCA(n_components=3, random_state=0).fit(
        [view[:, healthy] for view in views]
    )
    drift = float(
        np.max(np.abs(model.correlations_ - reference.correlations_))
    )
    print(f"degraded model vs healthy-data fit: max |Δρ| = {drift:.2e}")
    assert drift <= 1e-10
    print("fault-tolerant fit loop OK")


if __name__ == "__main__":
    main()
