"""Parallel TCCA: multi-core fitting through the execution layer.

Demonstrates the pluggable execution policies of ``repro.parallel``:

1. equivalence — a fit with ``n_jobs > 1`` (thread or process executor)
   matches the serial fit to tight tolerance: sharded moment
   accumulation reduces with the exact ``merge()``, so parallelism
   never changes what is computed;
2. sharding — ``shard_stream`` + ``accumulate_parallel`` are the
   map-reduce primitives underneath, usable directly on any
   ``ViewStream``;
3. configuration — the policy is plain estimator config (``n_jobs``,
   ``executor``), persisted with the model and overridable via
   ``set_params`` or the ``REPRO_JOBS`` environment variable.

Run with::

    python examples/parallel_tcca.py
"""

import os
import time
from functools import partial

import numpy as np

from repro import TCCA
from repro.core.engine import MomentState
from repro.parallel import ThreadExecutor, accumulate_parallel, shard_stream
from repro.datasets import make_multiview_latent
from repro.streaming import ArrayViewStream


def main() -> None:
    data = make_multiview_latent(
        n_samples=6000, dims=(40, 32, 24), n_classes=2, random_state=0
    )
    views = data.views
    stream = ArrayViewStream(views, chunk_size=500)

    # 1. Parallel fits match the serial fit — regardless of executor.
    serial = TCCA(n_components=3, random_state=0, executor="serial")
    start = time.perf_counter()
    serial.fit_stream(stream)
    serial_seconds = time.perf_counter() - start

    for executor in ("thread", "process"):
        model = TCCA(
            n_components=3, random_state=0, n_jobs=4, executor=executor
        )
        start = time.perf_counter()
        model.fit_stream(stream)
        seconds = time.perf_counter() - start
        drift = np.max(np.abs(model.correlations_ - serial.correlations_))
        print(
            f"{executor:<8} {seconds:6.3f}s (serial {serial_seconds:.3f}s) "
            f"max |Δcorrelation| = {drift:.2e}"
        )
        assert drift < 1e-10

    # 2. The map-reduce primitives, directly: shard the stream, let a
    # policy accumulate per-shard moment states, reduce with merge().
    shards = shard_stream(stream, 4)
    print(
        "shard sample counts:",
        [shard.n_samples for shard in shards],
    )
    merged = accumulate_parallel(
        stream,
        partial(MomentState, track_tensor=True),
        ThreadExecutor(4),
    )
    single = MomentState(track_tensor=True).update(views)
    tensor_drift = np.max(np.abs(merged.tensor() - single.tensor()))
    print(f"map-reduce vs single-pass tensor drift: {tensor_drift:.2e}")
    assert tensor_drift < 1e-10

    # 3. Policy is configuration: REPRO_JOBS supplies the default worker
    # count when n_jobs is None, so deployments opt in via environment.
    os.environ["REPRO_JOBS"] = "2"
    try:
        env_model = TCCA(n_components=3, random_state=0).fit(views)
    finally:
        del os.environ["REPRO_JOBS"]
    drift = np.max(np.abs(env_model.correlations_ - serial.correlations_))
    print(f"REPRO_JOBS=2 fit drift vs serial: {drift:.2e}")
    assert drift < 1e-10
    print("parallel TCCA example OK")


if __name__ == "__main__":
    main()
