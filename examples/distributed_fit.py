"""Distributed TCCA: accumulate in worker processes, reduce, serve.

Demonstrates the PR-7 distributed fit protocol end to end,
self-contained:

1. write a multi-view dataset to an ``.npz`` file — the only thing the
   workers share;
2. accumulate: three *separate OS processes* (real ``python -m repro
   accumulate`` invocations — no shared memory, no coordination) each
   make one pass over their ``--shard i/3`` slice and emit a
   ``.moments`` artifact holding only sufficient statistics;
3. reduce: merge the shards in deterministic order and finalize — then
   check the reduced model equals a single-process fit to ≤ 1e-10,
   whichever order the shards are given in;
4. provenance: the reduced model's header records every input shard's
   content hash; a ``repro update`` extends the parent hash chain, and
   ``verify`` walks it;
5. serve the reduced model and read the provenance chain off
   ``/modelz``.

Run with::

    python examples/distributed_fit.py
"""

import asyncio
import json
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.api import load_model
from repro.artifacts import chain_summary, read_header
from repro.core import TCCA
from repro.datasets import make_multiview_latent
from repro.serve import ModelManager, ServeApp

N_SAMPLES, DIMS, SHARDS = 360, (20, 16, 12), 3
PARAMS = ["--param", "n_components=3", "--param", "random_state=0"]


def repro_cli(*args) -> None:
    """Run one ``python -m repro …`` command as a real child process."""
    subprocess.run(
        [sys.executable, "-m", "repro", *args],
        check=True,
        env={**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)},
    )


async def modelz(port) -> dict:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(b"GET /modelz HTTP/1.1\r\nConnection: close\r\n\r\n")
        await writer.drain()
        raw = await reader.read()
        return json.loads(raw.split(b"\r\n\r\n", 1)[1])
    finally:
        writer.close()


def main() -> None:
    workdir = Path(tempfile.mkdtemp())

    # 1. the dataset, as the npz layout every CLI verb reads
    data = make_multiview_latent(
        n_samples=N_SAMPLES, dims=DIMS, random_state=0
    )
    data_path = workdir / "data.npz"
    np.savez(
        data_path,
        **{f"view{i}": view for i, view in enumerate(data.views)},
    )

    # 2. accumulate: one pass per worker process over its shard
    shard_paths = []
    workers = []
    for index in range(SHARDS):
        shard_path = workdir / f"part-{index}.moments"
        shard_paths.append(shard_path)
        workers.append(
            subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "accumulate", "tcca",
                    "--data", str(data_path),
                    "--shard", f"{index}/{SHARDS}", *PARAMS,
                    "--out", str(shard_path),
                ],
                env={**os.environ,
                     "PYTHONPATH": os.pathsep.join(sys.path)},
            )
        )
    for worker in workers:
        assert worker.wait() == 0
    for shard_path in shard_paths:
        header = read_header(shard_path)
        print(
            f"shard {header['shard']['index']}/{header['shard']['count']}: "
            f"{header['n_samples']} samples, "
            f"sha256 {header['payload_sha256'][:12]}…"
        )

    # 3. reduce — shard order on the command line does not matter
    model_path = workdir / "model.npz"
    repro_cli(
        "reduce", *map(str, reversed(shard_paths)), "--out", str(model_path)
    )
    reduced = load_model(model_path, verify=True)
    reference = TCCA(n_components=3, random_state=0).fit(data.views)
    drift = max(
        float(np.max(np.abs(np.abs(ours) - np.abs(theirs))))
        for ours, theirs in zip(
            reduced.canonical_vectors_, reference.canonical_vectors_
        )
    )
    print(f"reduce(3 shards) vs single-process fit: max |Δ| = {drift:.2e}")
    assert drift <= 1e-10

    # 4. provenance: update twice, then verify the two-generation chain
    v0, v1 = workdir / "v0.npz", workdir / "v1.npz"
    shutil.copy(model_path, v0)
    repro_cli("update", str(model_path), "--data", str(data_path))
    shutil.copy(model_path, v1)
    repro_cli("update", str(model_path), "--data", str(data_path))
    repro_cli("verify", str(model_path), "--parents", str(v1), str(v0))
    summary = chain_summary(read_header(model_path))
    print(
        f"chain: created by {summary['created']}, "
        f"depth {summary['chain_depth']}, "
        f"root {summary['root_sha256'][:12]}…"
    )

    # 5. serve the distributed-fitted model; /modelz shows the lineage
    async def serve_and_inspect() -> dict:
        app = ServeApp(ModelManager(model_path))
        server = await asyncio.start_server(
            app.handle_connection, "127.0.0.1", 0
        )
        port = server.sockets[0].getsockname()[1]
        info = await modelz(port)
        server.close()
        await server.wait_closed()
        return info

    info = asyncio.run(serve_and_inspect())
    print(
        f"/modelz: {info['model_type']} sha256 {info['sha256'][:12]}… "
        f"provenance {info['provenance']['created']} "
        f"(chain depth {info['provenance']['chain_depth']})"
    )
    print("distributed fit loop OK")


if __name__ == "__main__":
    main()
