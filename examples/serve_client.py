"""Serving TCCA: micro-batched inference over HTTP with hot reload.

Demonstrates the ``repro serve`` subsystem end to end, self-contained:

1. fit a TCCA→RLS pipeline and save it as a model file;
2. start the asyncio server in-process (the same ``ServeApp`` behind
   ``python -m repro serve``);
3. fire concurrent ``/predict`` requests from an async client — the
   responses' ``batch_size`` shows the micro-batcher amortizing many
   requests into single model calls;
4. hot-reload: atomically replace the model file (what ``repro update``
   does) and watch ``/modelz`` report the new version and content hash
   without the server ever stopping.

Run with::

    python examples/serve_client.py
"""

import asyncio
import json
import tempfile
import time
from pathlib import Path

from repro.api import MultiviewPipeline, save_model
from repro.datasets import make_multiview_latent
from repro.serve import ModelManager, ServeApp


async def http_json(port, method, path, payload=None):
    """One request over a fresh loopback connection; the parsed body."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        body = b"" if payload is None else json.dumps(payload).encode()
        head = f"{method} {path} HTTP/1.1\r\nConnection: close\r\n"
        if body:
            head += f"Content-Length: {len(body)}\r\n"
        writer.write(head.encode() + b"\r\n" + body)
        await writer.drain()
        await reader.readline()  # status line
        length = None
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            if line.lower().startswith(b"content-length:"):
                length = int(line.split(b":")[1])
        return json.loads((await reader.readexactly(length)).decode())
    finally:
        writer.close()


async def main() -> None:
    # 1. fit and save a servable pipeline
    data = make_multiview_latent(
        n_samples=300, dims=(20, 16, 12), random_state=0
    )
    pipeline = MultiviewPipeline(
        "tcca",
        "rls",
        reducer_params={"n_components": 3, "random_state": 0},
    ).fit(data.views, data.labels)
    model_path = Path(tempfile.mkdtemp()) / "model.npz"
    save_model(pipeline, model_path)

    # 2. the server: 5 ms batch window, flush at 64 queued sample rows
    app = ServeApp(
        ModelManager(model_path), max_batch=64, window_seconds=0.005
    )
    server = await asyncio.start_server(
        app.handle_connection, "127.0.0.1", 0
    )
    port = server.sockets[0].getsockname()[1]
    info = await http_json(port, "GET", "/modelz")
    print(
        f"serving {info['reducer']} -> {info['classifier']} "
        f"(version {info['version']}, sha256 {info['sha256'][:12]}…) "
        f"on port {port}"
    )

    # 3. concurrent clients — micro-batch amortization in action
    def payload(index):
        return {
            "views": [
                view[:, index:index + 1].T.tolist()
                for view in data.views
            ]
        }

    start = time.perf_counter()
    responses = await asyncio.gather(
        *(
            http_json(port, "POST", "/predict", payload(i))
            for i in range(12)
        )
    )
    elapsed = time.perf_counter() - start
    batch_sizes = sorted(r["batch_size"] for r in responses)
    labels = [r["labels"][0] for r in responses]
    print(
        f"12 concurrent /predict requests in {elapsed * 1000:.1f} ms — "
        f"coalesced into batches of {batch_sizes[0]}–{batch_sizes[-1]} "
        f"requests"
    )
    assert labels == [int(l) for l in pipeline.predict(
        [view[:, :12] for view in data.views]
    )], "served labels must match the in-memory pipeline"

    # 4. hot reload: an atomic replace lands between batches
    refreshed = MultiviewPipeline(
        "tcca",
        "rls",
        reducer_params={"n_components": 3, "random_state": 1},
    ).fit(data.views, data.labels)
    save_model(refreshed, model_path)  # what `repro update` does
    info = await http_json(port, "GET", "/modelz")
    print(
        f"after atomic replace: version {info['version']}, "
        f"sha256 {info['sha256'][:12]}…, reloads {info['reloads']} — "
        "no request was dropped"
    )
    assert info["version"] == 2

    health = await http_json(port, "GET", "/healthz")
    batcher = health["batcher"]["predict"]
    print(
        f"served {health['requests_served']} requests in "
        f"{batcher['batches']} model calls "
        f"({batcher['requests'] / max(batcher['batches'], 1):.1f} "
        "requests per call)"
    )

    server.close()
    await server.wait_closed()
    await app.begin_drain()
    print("drained — all parked requests answered before shutdown")


if __name__ == "__main__":
    asyncio.run(main())
