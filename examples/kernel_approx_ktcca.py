"""Approximate KTCCA: Nyström landmarks and random Fourier features.

Exact KTCCA decomposes an ``N^m`` kernel covariance tensor, so it stops
at a few hundred samples. ``KTCCA(approx=..., n_features=k)`` maps each
view to ``k`` explicit kernel features and hands the fit to the
streaming TCCA on the ``(k, N)`` mapped views — ~linear in N at fixed
k, and streamable (``fit_stream`` / ``partial_fit``) because the
feature maps are fitted from a bounded set of landmark/bandwidth
columns chosen before the single pass.

Run with::

    python examples/kernel_approx_ktcca.py
"""

import time
import warnings

import numpy as np

from repro import KTCCA
from repro.datasets import make_nuswide_like
from repro.exceptions import ConvergenceWarning

KERNELS = [
    {"kind": "exponential", "distance": "chi2"},
    {"kind": "exponential", "distance": "euclidean"},
    {"kind": "exponential", "distance": "euclidean"},
]


def main() -> None:
    warnings.simplefilter("ignore", ConvergenceWarning)

    # -- small data: the approximation converges to the exact fit --------
    small = make_nuswide_like(n_samples=150, random_state=0)
    exact = KTCCA(
        n_components=3, kernels=list(KERNELS), random_state=0
    ).fit(small.views)
    print("exact correlations  :", np.round(exact.correlations_, 6))
    for k in (16, 64, 150):
        approx = KTCCA(
            n_components=3,
            kernels=list(KERNELS),
            approx="nystrom",
            n_features=k,
            random_state=0,
        ).fit(small.views)
        error = np.abs(approx.correlations_ - exact.correlations_).max()
        print(
            f"nystrom k={k:<4d}      : "
            f"{np.round(approx.correlations_, 6)}  "
            f"(max |err| {error:.2e})"
        )

    # -- large data: the regime the exact solver cannot touch ------------
    large = make_nuswide_like(n_samples=4000, random_state=1)
    for approx in ("nystrom", "rff"):
        kernels = (
            list(KERNELS)
            if approx == "nystrom"
            # RFF needs shift-invariant kernels: no χ² histogram kernel
            else [{"kind": "exponential", "distance": "euclidean"}] * 3
        )
        start = time.perf_counter()
        model = KTCCA(
            n_components=3,
            kernels=kernels,
            approx=approx,
            n_features=64,
            random_state=0,
        ).fit(large.views)
        seconds = time.perf_counter() - start
        # the unnormalized objective (Eq. 4.12) shrinks with N — print
        # in scientific notation rather than rounding it away
        values = ", ".join(f"{value:.3e}" for value in model.correlations_)
        print(f"{approx:<8s} N=4000 k=64 : [{values}]  ({seconds:.2f}s)")

    # -- the same fit from a single streaming pass ------------------------
    streamed = KTCCA(
        n_components=3,
        kernels=list(KERNELS),
        approx="nystrom",
        n_features=64,
        random_state=0,
    ).fit_stream(large.views, chunk_size=500)
    batch = KTCCA(
        n_components=3,
        kernels=list(KERNELS),
        approx="nystrom",
        n_features=64,
        random_state=0,
    ).fit(large.views)
    drift = np.abs(streamed.correlations_ - batch.correlations_).max()
    print(f"fit_stream == fit    : max |err| {drift:.2e}")


if __name__ == "__main__":
    main()
