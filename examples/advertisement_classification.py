"""Internet advertisement classification (the paper's §5.1.2 experiment).

Sparse binary term features in three URL/caption/anchor views, few labeled
samples against a high total dimension — the regime where concatenating
everything over-fits and a learned common subspace pays off.

Run with::

    python examples/advertisement_classification.py
"""

import warnings

import numpy as np

from repro import TCCA, LSCCA
from repro.classifiers import RLSClassifier
from repro.datasets import make_ads_like, sample_labeled_indices
from repro.exceptions import ConvergenceWarning


def main() -> None:
    warnings.simplefilter("ignore", ConvergenceWarning)

    data = make_ads_like(2500, dims=(196, 165, 157), random_state=0)
    print(f"views {data.dims}, N={data.n_samples}, "
          f"ad rate {data.labels.mean():.2f}")

    labeled = sample_labeled_indices(data.labels, 100, random_state=0)
    rest = np.setdiff1d(np.arange(data.n_samples), labeled)

    def rls_accuracy(features) -> float:
        model = RLSClassifier(gamma=1e-2).fit(
            features[labeled], data.labels[labeled]
        )
        return model.score(features[rest], data.labels[rest])

    # Raw concatenation over-fits with 100 labels on ~500 dimensions.
    raw = np.vstack(data.views).T
    print(f"CAT    accuracy: {rls_accuracy(raw):.3f}")

    # CCA-LS: pairwise-correlation multiset CCA.
    lscca = LSCCA(n_components=8, epsilon=1e-1, random_state=0).fit(
        data.views
    )
    print(f"CCA-LS accuracy: "
          f"{rls_accuracy(lscca.transform_combined(data.views)):.3f}")

    # TCCA: high-order correlation over all three views; ε validated over
    # a small grid as the sparse binary scale demands.
    best = max(
        (
            rls_accuracy(
                TCCA(
                    n_components=8, epsilon=epsilon, random_state=0
                ).fit(data.views).transform_combined(data.views)
            ),
            epsilon,
        )
        for epsilon in (1e-2, 1e-1, 1e0)
    )
    print(f"TCCA   accuracy: {best[0]:.3f} (eps={best[1]:g})")
    print(f"majority class : {1.0 - data.labels.mean():.3f}")


if __name__ == "__main__":
    main()
