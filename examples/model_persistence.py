"""Fit once, save, load, serve: the model-persistence loop.

Builds a TCCA → RLS :class:`~repro.api.pipeline.MultiviewPipeline` on a
synthetic three-view dataset, saves it as a single ``.npz`` model file,
reloads it, and checks the served predictions match the in-memory model
exactly — the same loop as::

    python -m repro fit tcca --synthetic 240 --param n_components=3 \
        --classifier rls --out model.npz
    python -m repro predict model.npz --synthetic 240

Run with::

    python examples/model_persistence.py
"""

import os
import tempfile

import numpy as np

from repro.api import MultiviewPipeline, load_model, make_reducer, save_model
from repro.datasets import make_multiview_latent


def main() -> None:
    # 1. Train/serve split of a latent-factor multi-view dataset.
    data = make_multiview_latent(
        n_samples=1000, dims=(30, 25, 20), n_classes=2, random_state=0
    )
    train = data.subset(np.arange(0, 700))
    serve = data.subset(np.arange(700, 1000))

    # 2. Fit the servable unit: unit-scale -> TCCA -> RLS.
    pipeline = MultiviewPipeline(
        "tcca",
        "rls",
        reducer_params={"n_components": 5, "epsilon": 1.0, "random_state": 0},
    ).fit(train.views, train.labels)
    print(f"train accuracy : {pipeline.score(train.views, train.labels):.3f}")

    # 3. Save to one file, load it back, and serve held-out samples.
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "model.npz")
        pipeline.save(path)
        print(f"model file     : {os.path.getsize(path)} bytes")
        served = load_model(path)

        in_memory = pipeline.predict(serve.views)
        from_disk = served.predict(serve.views)
        assert np.array_equal(in_memory, from_disk)
        print(f"serve accuracy : {served.score(serve.views, serve.labels):.3f}"
              " (identical in memory and from disk)")

    # 4. Bare estimators round-trip the same way.
    tcca = make_reducer("tcca", n_components=5, epsilon=1.0, random_state=0)
    tcca.fit(train.views)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "tcca.npz")
        save_model(tcca, path)
        reloaded = load_model(path)
        drift = np.max(
            np.abs(
                tcca.transform_combined(serve.views)
                - reloaded.transform_combined(serve.views)
            )
        )
        print(f"reducer round-trip max |Δ|: {drift:.1e}")
        assert drift <= 1e-12


if __name__ == "__main__":
    main()
