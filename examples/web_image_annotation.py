"""Web image annotation (the paper's NUS-WIDE experiment, §5.1.3).

Ten confusable mammal concepts, three visual views (BoW-SIFT histogram,
color correlogram, wavelet texture), kNN downstream with k tuned on
validation, and only a handful of labeled images per concept.

Run with::

    python examples/web_image_annotation.py
"""

import warnings

import numpy as np

from repro import TCCA
from repro.classifiers import KNNClassifier
from repro.datasets import make_nuswide_like, sample_labeled_indices
from repro.exceptions import ConvergenceWarning


def main() -> None:
    warnings.simplefilter("ignore", ConvergenceWarning)

    data = make_nuswide_like(n_samples=1200, random_state=0)
    concepts = data.metadata["concepts"]
    print(f"views: BoW{data.dims[0]} / correlogram{data.dims[1]} / "
          f"texture{data.dims[2]}, N={data.n_samples}")
    print(f"concepts: {', '.join(concepts)}")

    # TCCA with a small validated ε grid, as in the paper's protocol.
    labeled = sample_labeled_indices(
        data.labels, 6, per_class=True, random_state=0
    )
    rest = np.setdiff1d(np.arange(data.n_samples), labeled)

    best = None
    for epsilon in (1e0, 1e1, 3e1):
        tcca = TCCA(
            n_components=10, epsilon=epsilon, random_state=0, max_iter=60
        ).fit(data.views)
        z = tcca.transform_combined(data.views)
        for k in range(1, 11):
            model = KNNClassifier(k).fit(z[labeled], data.labels[labeled])
            accuracy = model.score(z[rest], data.labels[rest])
            if best is None or accuracy > best[0]:
                best = (accuracy, epsilon, k, tcca, z)
    accuracy, epsilon, k, tcca, z = best
    print(f"\nTCCA (eps={epsilon:g}, k={k}): annotation accuracy "
          f"{accuracy:.3f} with 6 labels per concept "
          f"(chance = {1 / len(concepts):.2f})")

    # Show a few per-concept accuracies.
    model = KNNClassifier(k).fit(z[labeled], data.labels[labeled])
    predictions = model.predict(z[rest])
    print("\nper-concept accuracy:")
    for index, concept in enumerate(concepts):
        mask = data.labels[rest] == index
        if mask.any():
            concept_accuracy = float(
                np.mean(predictions[mask] == index)
            )
            print(f"  {concept:<6} {concept_accuracy:.2f}")


if __name__ == "__main__":
    main()
