"""Quickstart: tensor CCA on a synthetic three-view dataset.

Generates a latent-factor multi-view dataset, fits TCCA, inspects the
canonical correlations, and trains a simple classifier on the shared
subspace — the end-to-end pipeline of Fig. 2 in the paper.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import TCCA
from repro.classifiers import RLSClassifier
from repro.datasets import make_multiview_latent, sample_labeled_indices


def main() -> None:
    # 1. Three views of 1,000 instances sharing skewed latent factors.
    data = make_multiview_latent(
        n_samples=1000, dims=(30, 25, 20), n_classes=2, random_state=0
    )
    print(f"dataset: {data.n_views} views with dims {data.dims}, "
          f"N={data.n_samples}")

    # 2. Fit TCCA: rank-5 CP decomposition of the whitened covariance
    #    tensor (Theorem 2 of the paper).
    tcca = TCCA(n_components=5, epsilon=1.0, random_state=0).fit(data.views)
    print("covariance tensor shape:", tcca.covariance_tensor_shape_)
    print("canonical correlations :",
          np.round(tcca.correlations_, 4))

    # The tensor-side optimum matches the data-side correlation of
    # Theorem 1 when evaluated on the training views.
    empirical = tcca.canonical_correlations(data.views)
    print("empirical correlations :", np.round(empirical, 4))

    # 3. Project all views and concatenate: the (N, m*r) shared
    #    representation used downstream.
    representation = tcca.transform_combined(data.views)
    print("representation shape   :", representation.shape)

    # 4. Train RLS on 100 labeled instances, evaluate transductively.
    labeled = sample_labeled_indices(data.labels, 100, random_state=1)
    rest = np.setdiff1d(np.arange(data.n_samples), labeled)
    classifier = RLSClassifier(gamma=1e-2).fit(
        representation[labeled], data.labels[labeled]
    )
    accuracy = classifier.score(representation[rest], data.labels[rest])
    print(f"accuracy with 100 labels on the TCCA subspace: {accuracy:.3f}")

    # Baseline: the same classifier on the raw concatenated features.
    raw = np.vstack(data.views).T
    baseline = RLSClassifier(gamma=1e-2).fit(
        raw[labeled], data.labels[labeled]
    )
    print(f"accuracy on raw concatenated features        : "
          f"{baseline.score(raw[rest], data.labels[rest]):.3f}")


if __name__ == "__main__":
    main()
