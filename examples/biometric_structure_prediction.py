"""Biometric structure prediction (the paper's SecStr experiment, §5.1.1).

Compares TCCA against CCA-LS, pairwise CCA, and the raw-feature baselines
on a SecStr-like 3-view one-hot sequence dataset, in the paper's
transductive protocol: 100 labeled windows, all data available to the
unsupervised subspace learners, RLS downstream.

Run with::

    python examples/biometric_structure_prediction.py
"""

import warnings

from repro.datasets import make_secstr_like
from repro.evaluation import ClassifierSpec, SweepConfig, run_dimension_sweep
from repro.exceptions import ConvergenceWarning
from repro.experiments.methods import (
    BestSingleViewMethod,
    ConcatenationMethod,
    LSCCAMethod,
    PairwiseCCAMethod,
    TCCAMethod,
)
from repro.experiments.reporting import format_series, format_table


def main() -> None:
    warnings.simplefilter("ignore", ConvergenceWarning)

    data = make_secstr_like(3000, random_state=0)
    print(f"SecStr-like data: views {data.dims}, N={data.n_samples}, "
          f"positive rate {data.labels.mean():.2f}")

    epsilon_grid = (1e-2, 1e-1, 1e0)
    methods = [
        BestSingleViewMethod(),
        ConcatenationMethod(),
        PairwiseCCAMethod(mode="best", epsilon=epsilon_grid),
        PairwiseCCAMethod(mode="average", epsilon=epsilon_grid),
        LSCCAMethod(epsilon=epsilon_grid),
        TCCAMethod(epsilon=epsilon_grid),
    ]
    config = SweepConfig(
        dims=(5, 10, 20, 40),
        n_labeled=100,
        n_runs=3,
        classifier=ClassifierSpec(kind="rls", gamma=1e-2),
        random_state=0,
    )
    sweeps = run_dimension_sweep(methods, data.views, data.labels, config)

    print()
    print(format_series(sweeps, title="accuracy vs dimension"))
    print()
    print(format_table(sweeps, title="best-dimension summary"))


if __name__ == "__main__":
    main()
