"""Implicit (tensor-free) TCCA: fit views too wide for the dense tensor.

Demonstrates the ``solver="implicit"`` engine:

1. equivalence — on small views, the implicit solver lands on the same
   canonical vectors as the dense one (shared CP-ALS core, contractions
   factored through the whitened data instead of a materialized tensor);
2. scale — ``m=3`` views with ``d_p = 400`` would need a ~490 MB dense
   covariance tensor; the implicit fit touches nothing bigger than the
   data and runs in a few MB of accumulation;
3. amortization — one ``whitened_covariance_operator`` state serves a
   whole ``n_components`` sweep, like the dense precomputed path.

Run with::

    python examples/implicit_tcca.py
"""

import time
import tracemalloc

import numpy as np

from repro import TCCA
from repro.core.tcca import whitened_covariance_operator
from repro.datasets import make_multiview_latent


def main() -> None:
    # 1. Dense and implicit agree on the same problem.
    data = make_multiview_latent(
        n_samples=1500, dims=(30, 25, 20), n_classes=2, random_state=0
    )
    dense = TCCA(
        n_components=5, epsilon=1.0, solver="dense", random_state=0
    ).fit(data.views)
    implicit = TCCA(
        n_components=5, epsilon=1.0, solver="implicit", random_state=0
    ).fit(data.views)
    worst = max(
        np.abs(d - i).max()
        for d, i in zip(
            dense.canonical_vectors_, implicit.canonical_vectors_
        )
    )
    print(f"dense correlations   : {np.round(dense.correlations_, 4)}")
    print(f"implicit correlations: {np.round(implicit.correlations_, 4)}")
    print(f"max canonical-vector difference: {worst:.2e}")

    # 2. A width the dense tensor cannot reasonably pay for.
    wide = make_multiview_latent(
        n_samples=900, dims=(400, 400, 400), n_classes=2, random_state=1
    )
    dense_mb = float(np.prod([400] * 3)) * 8 / 1024**2
    tracemalloc.start()
    start = time.perf_counter()
    model = TCCA(
        n_components=3, epsilon=1.0, solver="implicit", random_state=0
    ).fit(wide.views)
    seconds = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    print(
        f"\nm=3, d_p=400: dense tensor would be {dense_mb:.0f} MB; "
        f"implicit fit peaked at {peak / 1024**2:.1f} MB "
        f"in {seconds:.2f}s (solver_used_={model.solver_used_!r})"
    )

    # 3. One operator state serves the whole rank sweep.
    state = whitened_covariance_operator(wide.views, epsilon=1.0)
    for rank in (1, 2, 4):
        swept = TCCA(
            n_components=rank, epsilon=1.0, solver="implicit",
            random_state=0,
        ).fit(wide.views, precomputed=state)
        print(
            f"r={rank}: leading correlation "
            f"{swept.correlations_[0]:+.4f}"
        )


if __name__ == "__main__":
    main()
