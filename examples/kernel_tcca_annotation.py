"""Non-linear annotation with KTCCA (the paper's §5.2 experiment).

A small sample of images (the regime where the N³ kernel tensor is
affordable and non-linear projections pay off): one ``exp(-d/λ)`` kernel
per view — χ² distance for the visual-word histogram, L2 for the rest —
then KTCCA against KCCA and the averaged-kernel baseline.

Run with::

    python examples/kernel_tcca_annotation.py
"""

import warnings

import numpy as np

from repro import KCCA, KTCCA
from repro.classifiers import KNNClassifier
from repro.datasets import make_nuswide_like, sample_labeled_indices
from repro.exceptions import ConvergenceWarning
from repro.kernels import ExponentialKernel


def main() -> None:
    warnings.simplefilter("ignore", ConvergenceWarning)

    data = make_nuswide_like(n_samples=220, random_state=0)
    labeled = sample_labeled_indices(
        data.labels, 6, per_class=True, random_state=0
    )
    rest = np.setdiff1d(np.arange(data.n_samples), labeled)

    def knn_accuracy(features) -> float:
        best = 0.0
        for k in range(1, 11):
            model = KNNClassifier(k).fit(
                features[labeled], data.labels[labeled]
            )
            best = max(best, model.score(features[rest], data.labels[rest]))
        return best

    # KTCCA on all three views; ε validated over a small grid (the N³
    # kernel tensor needs strong damping at small sample sizes).
    best = None
    for epsilon in (1e0, 1e1, 1e2):
        ktcca = KTCCA(
            n_components=10,
            epsilon=epsilon,
            kernels=[
                ExponentialKernel(distance="chi2"),
                ExponentialKernel(distance="euclidean"),
                ExponentialKernel(distance="euclidean"),
            ],
            random_state=0,
        ).fit(data.views)
        accuracy = knn_accuracy(ktcca.transform_train_combined())
        if best is None or accuracy > best[0]:
            best = (accuracy, epsilon, ktcca)
    accuracy, epsilon, ktcca = best
    print("kernel tensor shape:", ktcca.kernel_tensor_shape_)
    print(f"KTCCA  accuracy: {accuracy:.3f} (eps={epsilon:g})")

    # Two-view KCCA on the best pair (BoW + correlogram).
    kcca = KCCA(
        n_components=10,
        epsilon=1e-1,
        kernels=[
            ExponentialKernel(distance="chi2"),
            ExponentialKernel(distance="euclidean"),
        ],
    ).fit(data.views[:2])
    z_kcca = np.hstack(kcca.transform_train())
    print(f"KCCA   accuracy: {knn_accuracy(z_kcca):.3f}")

    print(f"chance         : {1 / 10:.3f}")


if __name__ == "__main__":
    main()
