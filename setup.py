"""Setuptools shim.

All metadata lives in ``pyproject.toml``; this file exists so legacy
installs (``python setup.py develop``) keep working in offline
environments whose setuptools lacks the ``wheel`` package that PEP 660
editable installs require. Prefer ``pip install -e .`` where available.
"""

from setuptools import setup

setup()
