"""Kernel tensor CCA (KTCCA) — the paper's non-linear extension (Sec. 4.4).

By the Representer Theorem each canonical vector is a combination of mapped
training points, ``h_p = φ(X_p) a_p`` (Eq. 4.12), which turns the problem
into one on the kernel tensor ``K_{12…m} = (1/N) Σ_n k_1n ∘ … ∘ k_mn``
(Theorem 3), with the PLS-regularized constraints
``a_p^T (K_p² + ε K_p) a_p = 1`` (Eq. 4.14). With the Cholesky
factorizations ``K_p² + ε K_p = L_p^T L_p`` and ``b_p = L_p a_p``, the
problem is the best rank-``r`` approximation of
``S = K ×_1 (L_1^{-1})^T … ×_m (L_m^{-1})^T`` (Eq. 4.15), solved by ALS.
The training projections are ``Z_p = K_p L_p^{-1} B_p`` (Eq. 4.16).

The tensor ``S`` has ``N^m`` entries, which is why the paper applies KTCCA
to small-sample, high-dimension regimes (its complexity is independent of
the feature dimensions ``d_p``).
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro.api.registry import register
from repro.cca.base import MultiviewTransformer
from repro.cca.kcca import pls_cholesky
from repro.core import engine
from repro.exceptions import NotFittedError, ValidationError
from repro.kernels.centering import center_kernel, center_kernel_test
from repro.linalg.covariance import covariance_tensor
from repro.parallel.executors import (
    check_executor_name,
    check_n_jobs,
    resolve_executor,
)
from repro.utils.validation import check_positive_int, check_square, check_views

__all__ = ["KTCCA"]

_DECOMPOSITIONS = ("als", "hopm", "power")


def _solve_transposed(factor: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """``L^{-T} K`` — one view's transformed columns (picklable worker)."""
    return np.linalg.solve(factor.T, kernel)


@register("ktcca")
class KTCCA(MultiviewTransformer):
    """Kernel tensor CCA for an arbitrary number of views.

    Parameters
    ----------
    n_components:
        Subspace dimension ``r`` per view (``r <= N``).
    epsilon:
        PLS regularization ``ε`` in ``a_p^T (K_p² + ε K_p) a_p = 1``.
    kernels:
        ``None`` for precomputed mode (``fit`` receives ``(N, N)`` kernel
        matrices; ``transform`` receives ``(N_train, N_new)`` cross-kernel
        blocks) or one kernel callable per view applied to raw ``(d_p, N)``
        views.
    center:
        Center each kernel in feature space before fitting.
    decomposition, max_iter, tol, random_state:
        Tensor solver settings, as in :class:`~repro.core.tcca.TCCA`.
    n_jobs, executor:
        Parallel execution configuration, as in
        :class:`~repro.core.tcca.TCCA`: with more than one worker the
        ``m`` independent per-view factorizations (PLS Cholesky and the
        triangular solves building the tensor's transformed columns) fan
        out across workers. Policy is config, not fitted state.

    Attributes
    ----------
    dual_vectors_:
        List of ``(N, r)`` coefficient matrices ``A_p = L_p^{-1} B_p``.
    correlations_:
        CP weights of the decomposition of ``S`` — the attained kernel
        canonical correlations.
    """

    #: derived solver output that transform never reads — not persisted.
    _non_persistent_ = ("decomposition_result_",)

    def __init__(
        self,
        n_components: int = 1,
        epsilon: float = 1e-2,
        *,
        kernels=None,
        center: bool = True,
        decomposition: str = "als",
        max_iter: int = 200,
        tol: float = 1e-8,
        random_state=None,
        n_jobs=None,
        executor: str = "auto",
    ):
        self.n_components = check_positive_int(n_components, "n_components")
        if epsilon < 0.0:
            raise ValidationError(f"epsilon must be >= 0, got {epsilon}")
        self.epsilon = float(epsilon)
        self.kernels = list(kernels) if kernels is not None else None
        self.center = bool(center)
        self.n_jobs = check_n_jobs(n_jobs)
        self.executor = check_executor_name(executor)
        if decomposition not in _DECOMPOSITIONS:
            raise ValidationError(
                f"unknown decomposition {decomposition!r}; expected one of "
                f"{_DECOMPOSITIONS}"
            )
        self.decomposition = decomposition
        if decomposition == "hopm" and self.n_components != 1:
            raise ValidationError(
                "decomposition='hopm' extracts a single component; use "
                "'als' or 'power' for n_components > 1"
            )
        self.max_iter = check_positive_int(max_iter, "max_iter")
        self.tol = float(tol)
        self.random_state = random_state

    # -- kernel plumbing ----------------------------------------------------

    def _train_kernels(self, views) -> list[np.ndarray]:
        if self.kernels is None:
            kernels = [check_square(view, name="kernel") for view in views]
        else:
            if len(self.kernels) != len(views):
                raise ValidationError(
                    f"got {len(views)} views but {len(self.kernels)} kernels"
                )
            self._train_views = [np.asarray(view, float) for view in views]
            kernels = [
                kernel.fit(view)(view)
                for kernel, view in zip(self.kernels, views)
            ]
        sizes = {kernel.shape[0] for kernel in kernels}
        if len(sizes) != 1:
            raise ValidationError(
                f"all kernel matrices must share a size, got {sorted(sizes)}"
            )
        self._raw_train_kernels = kernels
        if self.center:
            kernels = [center_kernel(kernel) for kernel in kernels]
        return kernels

    def _new_kernel_blocks(self, views) -> list[np.ndarray]:
        if self.kernels is None:
            blocks = [np.asarray(view, dtype=np.float64) for view in views]
        else:
            blocks = [
                kernel(train_view, view)
                for kernel, train_view, view in zip(
                    self.kernels, self._train_views, views
                )
            ]
        for index, block in enumerate(blocks):
            if block.shape[0] != self._n_train:
                raise ValidationError(
                    f"kernel block {index} must have {self._n_train} rows "
                    f"(one per training sample), got {block.shape[0]}"
                )
        if self.center:
            blocks = [
                center_kernel_test(block, raw)
                for block, raw in zip(blocks, self._raw_train_kernels)
            ]
        return blocks

    # -- estimator API --------------------------------------------------------

    def fit(self, views) -> "KTCCA":
        """Fit from ``m >= 2`` kernel matrices or raw views."""
        views = check_views(views, min_views=2, same_samples=False)
        kernels = self._train_kernels(views)
        n = kernels[0].shape[0]
        if self.n_components > n:
            raise ValidationError(
                f"n_components={self.n_components} exceeds the sample "
                f"count {n}"
            )
        self._n_train = n

        policy = resolve_executor(self.executor, self.n_jobs)
        if policy.n_workers > 1:
            # The m factorizations and solves are independent per view.
            factors = policy.map(
                partial(pls_cholesky, epsilon=self.epsilon), kernels
            )
            transformed = policy.starmap(
                _solve_transposed, zip(factors, kernels)
            )
        else:
            factors = [
                pls_cholesky(kernel, self.epsilon) for kernel in kernels
            ]
            # S = K ×_p (L_p^{-1})^T is the "covariance tensor" of the
            # transformed columns V_p = L_p^{-T} K_p (Theorem 3 + Eq. 4.15).
            transformed = [
                _solve_transposed(factor, kernel)
                for factor, kernel in zip(factors, kernels)
            ]
        s_tensor = covariance_tensor(transformed, assume_centered=True)
        self.kernel_tensor_shape_ = s_tensor.shape

        # The rank-r problem on S runs through the same engine stages as
        # TCCA: one shared decompose dispatch, one shared finalize. Only
        # the per-view back-map differs — the dual coefficients are
        # A_p = L_p^{-1} B_p, i.e. a triangular solve against the
        # Cholesky factors instead of a whitener matmul — and the CP
        # signs are left as solved (KTCCA's contract since PR 0).
        spec = engine.DecompositionSpec(
            method=self.decomposition,
            rank=self.n_components,
            max_iter=self.max_iter,
            tol=self.tol,
            random_state=self.random_state,
        )
        result = engine.decompose_stage(spec, tensor=s_tensor)
        finalized = engine.finalize_stage(
            result,
            factors,
            apply=np.linalg.solve,
            canonicalize_signs=False,
        )
        self.decomposition_result_ = result
        self.correlations_ = finalized.correlations
        self.factors_ = finalized.factors
        self.dual_vectors_ = finalized.canonical_vectors
        self._fitted_kernels = kernels
        self.n_views_ = len(views)
        return self

    def transform(self, views) -> list[np.ndarray]:
        """Project new data; accepts cross-kernel blocks or raw views."""
        self._check_fitted()
        blocks = self._new_kernel_blocks(views)
        return [
            block.T @ duals
            for block, duals in zip(blocks, self.dual_vectors_)
        ]

    def transform_train(self) -> list[np.ndarray]:
        """Training projections ``Z_p = K_p A_p = K_p L_p^{-1} B_p``."""
        if not hasattr(self, "_fitted_kernels"):
            raise NotFittedError("KTCCA must be fitted first")
        return [
            kernel @ duals
            for kernel, duals in zip(self._fitted_kernels, self.dual_vectors_)
        ]

    def transform_train_combined(self) -> np.ndarray:
        """Concatenated ``(N, m·r)`` training representation."""
        return np.hstack(self.transform_train())
