"""Kernel tensor CCA (KTCCA) — the paper's non-linear extension (Sec. 4.4).

By the Representer Theorem each canonical vector is a combination of mapped
training points, ``h_p = φ(X_p) a_p`` (Eq. 4.12), which turns the problem
into one on the kernel tensor ``K_{12…m} = (1/N) Σ_n k_1n ∘ … ∘ k_mn``
(Theorem 3), with the PLS-regularized constraints
``a_p^T (K_p² + ε K_p) a_p = 1`` (Eq. 4.14). With the Cholesky
factorizations ``K_p² + ε K_p = L_p^T L_p`` and ``b_p = L_p a_p``, the
problem is the best rank-``r`` approximation of
``S = K ×_1 (L_1^{-1})^T … ×_m (L_m^{-1})^T`` (Eq. 4.15), solved by ALS.
The training projections are ``Z_p = K_p L_p^{-1} B_p`` (Eq. 4.16).

The tensor ``S`` has ``N^m`` entries, which is why the paper applies the
**exact** KTCCA to small-sample, high-dimension regimes (its complexity is
independent of the feature dimensions ``d_p``).

``approx="nystrom"``/``"rff"`` breaks that wall: each view is pushed
through an explicit ``k``-dimensional feature map
(:mod:`repro.kernels.approx`) whose inner products approximate the
kernel, and the fit becomes an internal :class:`~repro.core.tcca.TCCA`
on the mapped ``(k, N)`` views. Substituting ``h_p = Φ_p a_p`` with
``Φ_p = ψ_p(X_p)`` into Eqs. 4.12–4.14 shows the two problems coincide
when the TCCA ridge is ``ε / N`` (the feature covariance is
``C_p = Φ_p Φ_p^T / N`` while Eq. 4.14's constraint is unnormalized):
the feasible sets map onto each other by ``h = √N Φ a``, and the shared
objective is the ``m``-way correlation. The approximate path therefore
inherits streaming accumulation (:meth:`fit_stream` — the first
streaming entry point on the kernel side), :meth:`partial_fit`, the
implicit solver, the precision policy, and parallel map-reduce, at
``O(k² m + k^m)`` peak memory instead of ``O(N² m + N^m)``.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro.api.registry import register
from repro.backends import resolve_precision
from repro.cca.base import MultiviewTransformer
from repro.cca.kcca import pls_cholesky
from repro.core import engine
from repro.core.tcca import TCCA
from repro.exceptions import NotFittedError, ValidationError
from repro.kernels.approx import (
    MappedViewStream,
    NystromFeatures,
    RandomFourierFeatures,
    feature_map_from_state,
)
from repro.kernels.centering import center_kernel, center_kernel_test
from repro.kernels.functions import kernel_from_spec, kernel_to_spec
from repro.linalg.covariance import covariance_tensor
from repro.parallel.executors import (
    check_executor_name,
    check_n_jobs,
    resolve_executor,
)
from repro.streaming.views import as_view_stream, iter_validated_chunks
from repro.utils.rng import check_seed_sequence
from repro.utils.validation import check_positive_int, check_square, check_views

__all__ = ["KTCCA"]

_DECOMPOSITIONS = ("als", "hopm", "power")
_APPROX_MODES = ("exact", "nystrom", "rff")
_TCCA_SOLVERS = ("auto", "dense", "implicit")

#: spawn-key namespace of the per-view feature-map seeds (disjoint from
#: the streaming layer's chunk namespace by construction).
_APPROX_SEED_NAMESPACE = 0x5EED_ABBA


def _solve_transposed(factor: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """``L^{-T} K`` — one view's transformed columns (picklable worker)."""
    return np.linalg.solve(factor.T, kernel)


@register("ktcca")
class KTCCA(MultiviewTransformer):
    """Kernel tensor CCA for an arbitrary number of views.

    Parameters
    ----------
    n_components:
        Subspace dimension ``r`` per view (``r <= N``).
    epsilon:
        PLS regularization ``ε`` in ``a_p^T (K_p² + ε K_p) a_p = 1``.
    kernels:
        ``None`` for precomputed mode (``fit`` receives ``(N, N)`` kernel
        matrices; ``transform`` receives ``(N_train, N_new)`` cross-kernel
        blocks), or the per-view kernels applied to raw ``(d_p, N)``
        views: a list of kernel callables *or JSON-friendly specs*
        (``"rbf"``, ``{"kind": "exponential", "distance": "chi2"}``, …;
        see :func:`~repro.kernels.functions.kernel_from_spec`). A single
        spec broadcasts to all views. Spec-built kernels persist in the
        model header; bare custom callables fit fine but refuse
        ``save_model``.
    center:
        Center each kernel in feature space before fitting. The
        approximate path centers the mapped views (the same operation in
        the explicit feature space) and requires ``center=True``.
    approx:
        ``"exact"`` (default) solves Eq. 4.15 on the ``N^m`` tensor;
        ``"nystrom"`` / ``"rff"`` map each view through
        :class:`~repro.kernels.approx.NystromFeatures` /
        :class:`~repro.kernels.approx.RandomFourierFeatures` and fit an
        internal :class:`~repro.core.tcca.TCCA` on the ``(k, N)``
        features.
    n_features:
        Feature-map width ``k`` — required for (and only valid with) the
        approximate modes.
    solver:
        Tensor solver of the internal TCCA (``"auto"``/``"dense"``/
        ``"implicit"``); ignored by the exact path.
    precision:
        Precision policy (:func:`~repro.backends.resolve_precision`):
        Gram assembly / feature maps evaluate in the policy's compute
        dtype (distances still accumulate in float64) and the internal
        TCCA runs under the same policy.
    decomposition, max_iter, tol, random_state:
        Tensor solver settings, as in :class:`~repro.core.tcca.TCCA`.
        Under the approximate modes ``random_state`` additionally seeds
        the landmark/frequency draws (one namespaced child seed per
        view), so a fit is reproducible end to end.
    n_jobs, executor:
        Parallel execution configuration, as in
        :class:`~repro.core.tcca.TCCA`: with more than one worker the
        ``m`` independent per-view factorizations (PLS Cholesky and the
        triangular solves building the tensor's transformed columns) fan
        out across workers. Policy is config, not fitted state.

    Attributes
    ----------
    dual_vectors_:
        List of ``(N, r)`` coefficient matrices ``A_p = L_p^{-1} B_p``
        (exact path only; the approximate path stores primal
        ``feature_vectors_`` over the mapped features instead).
    correlations_:
        The attained kernel canonical correlations — CP weights of ``S``
        (Eq. 4.15). The approximate path reports them on the same scale
        (the internal TCCA's weights divided by ``N^{m/2}``, undoing the
        constraint normalizations), so exact and approximate fits are
        directly comparable and Nyström with ``k = N`` reproduces the
        exact values.
    """

    #: derived solver output and live helper objects transform can
    #: rebuild — not persisted.
    _non_persistent_ = (
        "decomposition_result_",
        "_kernel_objects",
        "_feature_maps",
        "_tcca",
    )

    def __init__(
        self,
        n_components: int = 1,
        epsilon: float = 1e-2,
        *,
        kernels=None,
        center: bool = True,
        approx: str = "exact",
        n_features: int | None = None,
        solver: str = "auto",
        precision=None,
        decomposition: str = "als",
        max_iter: int = 200,
        tol: float = 1e-8,
        random_state=None,
        n_jobs=None,
        executor: str = "auto",
    ):
        self.n_components = check_positive_int(n_components, "n_components")
        if epsilon < 0.0:
            raise ValidationError(f"epsilon must be >= 0, got {epsilon}")
        self.epsilon = float(epsilon)
        if kernels is None or isinstance(kernels, (str, dict)):
            # a single spec broadcasts to every view at fit time
            self.kernels = kernels
        else:
            self.kernels = list(kernels)
        self.center = bool(center)
        if approx not in _APPROX_MODES:
            raise ValidationError(
                f"unknown approx {approx!r}; expected one of {_APPROX_MODES}"
            )
        self.approx = approx
        if n_features is None:
            if approx != "exact":
                raise ValidationError(
                    f"approx={approx!r} needs n_features (the feature-map "
                    "width k)"
                )
            self.n_features = None
        else:
            self.n_features = check_positive_int(n_features, "n_features")
            if approx == "exact":
                raise ValidationError(
                    "n_features only applies to approx='nystrom'/'rff'"
                )
            if self.n_components > self.n_features:
                raise ValidationError(
                    f"n_components={self.n_components} exceeds the "
                    f"feature-map width n_features={self.n_features}"
                )
        if solver not in _TCCA_SOLVERS:
            raise ValidationError(
                f"unknown solver {solver!r}; expected one of {_TCCA_SOLVERS}"
            )
        self.solver = solver
        resolve_precision(precision)  # validate eagerly; stored verbatim
        self.precision = precision
        self.n_jobs = check_n_jobs(n_jobs)
        self.executor = check_executor_name(executor)
        if decomposition not in _DECOMPOSITIONS:
            raise ValidationError(
                f"unknown decomposition {decomposition!r}; expected one of "
                f"{_DECOMPOSITIONS}"
            )
        self.decomposition = decomposition
        if decomposition == "hopm" and self.n_components != 1:
            raise ValidationError(
                "decomposition='hopm' extracts a single component; use "
                "'als' or 'power' for n_components > 1"
            )
        self.max_iter = check_positive_int(max_iter, "max_iter")
        self.tol = float(tol)
        self.random_state = random_state

    # -- kernel plumbing ----------------------------------------------------

    def _resolve_kernel_objects(self, n_views: int):
        """One kernel callable per view from the ``kernels`` parameter."""
        spec = self.kernels
        if spec is None:
            return None
        specs = [spec] * n_views if isinstance(spec, (str, dict)) else spec
        if len(specs) != n_views:
            raise ValidationError(
                f"got {n_views} views but {len(specs)} kernels"
            )
        return [kernel_from_spec(item) for item in specs]

    def _gram_dtype(self):
        """Compute dtype for Gram/feature evaluation (None = float64)."""
        policy = resolve_precision(self.precision)
        return None if policy.is_default else policy.compute

    def _evaluate_kernel(self, kernel, view_a, view_b) -> np.ndarray:
        dtype = self._gram_dtype()
        if dtype is not None and getattr(kernel, "supports_dtype", False):
            return kernel(view_a, view_b, dtype=dtype)
        return kernel(view_a, view_b)

    @staticmethod
    def _kernel_specs(kernel_objects):
        """Fitted per-view specs, or None when a custom callable blocks it."""
        try:
            return [kernel_to_spec(kernel) for kernel in kernel_objects]
        except ValidationError:
            return None

    def _transform_kernel_objects(self):
        """The fitted kernels transform evaluates (rebuilt after load)."""
        objects = getattr(self, "_kernel_objects", None)
        if objects is not None:
            return objects
        state = getattr(self, "kernel_state_", None)
        if state is not None:
            objects = [kernel_from_spec(spec) for spec in state]
        elif isinstance(self.kernels, list):
            # custom callables: never persisted, but live in params when
            # the same in-memory estimator that fitted them transforms
            objects = list(self.kernels)
        else:
            raise NotFittedError("KTCCA must be fitted before transform")
        self._kernel_objects = objects
        return objects

    def _train_kernels(self, views) -> list[np.ndarray]:
        kernel_objects = self._resolve_kernel_objects(len(views))
        if kernel_objects is None:
            kernels = [check_square(view, name="kernel") for view in views]
        else:
            self._train_views = [np.asarray(view, float) for view in views]
            kernels = [
                self._evaluate_kernel(kernel.fit(view), view, view)
                for kernel, view in zip(kernel_objects, views)
            ]
            self._kernel_objects = kernel_objects
            self.kernel_state_ = self._kernel_specs(kernel_objects)
        sizes = {kernel.shape[0] for kernel in kernels}
        if len(sizes) != 1:
            raise ValidationError(
                f"all kernel matrices must share a size, got {sorted(sizes)}"
            )
        self._raw_train_kernels = kernels
        if self.center:
            kernels = [center_kernel(kernel) for kernel in kernels]
        return kernels

    def _new_kernel_blocks(self, views) -> list[np.ndarray]:
        if self.kernels is None:
            blocks = [np.asarray(view, dtype=np.float64) for view in views]
        else:
            blocks = [
                self._evaluate_kernel(kernel, train_view, view)
                for kernel, train_view, view in zip(
                    self._transform_kernel_objects(),
                    self._train_views,
                    views,
                )
            ]
        for index, block in enumerate(blocks):
            if block.shape[0] != self._n_train:
                raise ValidationError(
                    f"kernel block {index} must have {self._n_train} rows "
                    f"(one per training sample), got {block.shape[0]}"
                )
        if self.center:
            blocks = [
                center_kernel_test(block, raw)
                for block, raw in zip(blocks, self._raw_train_kernels)
            ]
        return blocks

    # -- approximate path ----------------------------------------------------

    def _approx_seeds(self, n_views: int):
        """Per-view feature-map seeds plus a solver seed.

        Namespaced ``SeedSequence`` children of ``random_state`` (the
        :func:`~repro.utils.rng.chunk_rng` pattern), derived afresh each
        call so repeated fits of one estimator draw identical state.
        """
        if self.random_state is None:
            return [None] * n_views, None
        try:
            root = check_seed_sequence(self.random_state)
        except ValidationError:
            raise ValidationError(
                "approximate KTCCA derives per-view feature-map seeds "
                "from random_state and needs a replayable value: None, "
                "an int, or a numpy SeedSequence"
            ) from None
        children = [
            np.random.SeedSequence(
                entropy=root.entropy,
                spawn_key=root.spawn_key + (_APPROX_SEED_NAMESPACE, index),
            )
            for index in range(n_views + 1)
        ]
        return children[:n_views], children[n_views]

    def _build_feature_maps(self, n_views: int):
        """Unfitted per-view maps plus the internal solver's seed."""
        if self.kernels is None:
            raise ValidationError(
                "approximate KTCCA maps raw views through kernel feature "
                "maps; precomputed Gram matrices cannot be approximated — "
                "pass kernels= (specs or callables)"
            )
        if not self.center:
            raise ValidationError(
                "approximate KTCCA centers in feature space through the "
                "mapped-view TCCA; center=False needs approx='exact'"
            )
        kernel_objects = self._resolve_kernel_objects(n_views)
        seeds, solver_seed = self._approx_seeds(n_views)
        cls = (
            NystromFeatures if self.approx == "nystrom"
            else RandomFourierFeatures
        )
        maps = [
            cls(
                kernel=kernel,
                n_features=self.n_features,
                random_state=seed,
                dtype=self._gram_dtype(),
            )
            for kernel, seed in zip(kernel_objects, seeds)
        ]
        return maps, solver_seed

    def _make_mapped_tcca(self, n_train: int, solver_seed) -> TCCA:
        # Eq. 4.14's constraint a^T(K² + εK)a = 1 is unnormalized while
        # the TCCA ridge acts on C = ΦΦ^T/N, so the equivalent primal
        # ridge is ε/N (see the module docstring).
        return TCCA(
            n_components=self.n_components,
            epsilon=self.epsilon / max(int(n_train), 1),
            solver=self.solver,
            decomposition=self.decomposition,
            max_iter=self.max_iter,
            tol=self.tol,
            random_state=solver_seed,
            n_jobs=self.n_jobs,
            executor=self.executor,
            precision=self.precision,
        )

    def _adopt_tcca(self, tcca: TCCA, maps) -> None:
        """Mirror the internal TCCA's fitted state onto this estimator."""
        # TCCA weights sit on the h^T(C + ε/N)h = 1 normalization; the
        # feasible-set bijection h = √N Φ a multiplies the m-way
        # objective by N^{m/2}, so dividing restores Eq. 4.15's scale
        # and k = N Nyström reproduces the exact correlations_.
        scale = float(max(self._n_train, 1)) ** (len(maps) / 2.0)
        self.correlations_ = (
            np.asarray(tcca.correlations_, dtype=np.float64) / scale
        )
        self.factors_ = tcca.factors_
        self.feature_vectors_ = tcca.canonical_vectors_
        self.feature_means_ = tcca.means_
        self.feature_dims_ = [int(d) for d in tcca.covariance_tensor_shape_]
        self.kernel_tensor_shape_ = tuple(tcca.covariance_tensor_shape_)
        self.solver_used_ = tcca.solver_used_
        self.dtype_policy_ = tcca.dtype_policy_
        self.n_skipped_ = tcca.n_skipped_
        self.approx_used_ = self.approx
        metas, primaries, secondaries = [], [], []
        for fmap in maps:
            meta, primary, secondary = fmap.state()
            metas.append(meta)
            primaries.append(primary)
            secondaries.append(secondary)
        self.approx_meta_ = metas
        self.approx_primary_ = primaries
        self.approx_secondary_ = secondaries
        self._feature_maps = list(maps)
        moments = getattr(tcca, "moments_", None)
        if moments is not None:
            self.moments_ = moments
        elif hasattr(self, "moments_"):
            del self.moments_
        self._tcca = tcca
        self.n_views_ = len(maps)

    def _approx_maps(self):
        """The fitted feature maps (rebuilt from persisted state)."""
        maps = getattr(self, "_feature_maps", None)
        if maps is None:
            metas = getattr(self, "approx_meta_", None)
            if metas is None:
                raise NotFittedError("KTCCA must be fitted before transform")
            maps = [
                feature_map_from_state(meta, primary, secondary)
                for meta, primary, secondary in zip(
                    metas, self.approx_primary_, self.approx_secondary_
                )
            ]
            self._feature_maps = maps
        return maps

    def _internal_tcca(self) -> TCCA:
        """The mapped-view TCCA, reconstructed after a load if needed."""
        tcca = getattr(self, "_tcca", None)
        if tcca is None:
            _seeds, solver_seed = self._approx_seeds(len(self._dims))
            tcca = self._make_mapped_tcca(
                max(getattr(self, "_n_train", 1), 1), solver_seed
            )
            moments = getattr(self, "moments_", None)
            if moments is not None:
                tcca.moments_ = moments
            factors = getattr(self, "factors_", None)
            if factors is not None:
                tcca.factors_ = factors
            self._tcca = tcca
        return tcca

    @property
    def _transform_dtype(self) -> np.dtype:
        policy = getattr(self, "dtype_policy_", None)
        if policy is None:
            return np.dtype(np.float64)
        return np.dtype(policy["compute_dtype"])

    def _approx_transform(self, views) -> list[np.ndarray]:
        views = self._check_transform_views(views, self._dims)
        maps = self._approx_maps()
        dtype = self._transform_dtype
        outputs = []
        for fmap, view, mean, vectors in zip(
            maps, views, self.feature_means_, self.feature_vectors_
        ):
            mapped = np.asarray(fmap.transform(view), dtype=dtype)
            mean = np.asarray(mean, dtype=dtype)
            outputs.append((mapped - mean).T @ vectors)
        return outputs

    # -- estimator API --------------------------------------------------------

    def fit(self, views) -> "KTCCA":
        """Fit from ``m >= 2`` kernel matrices or raw views."""
        if self.approx != "exact":
            views = check_views(views, min_views=2)
            maps, solver_seed = self._build_feature_maps(len(views))
            mapped = [
                fmap.fit(view).transform(view)
                for fmap, view in zip(maps, views)
            ]
            self._dims = [int(view.shape[0]) for view in views]
            self._n_train = int(views[0].shape[1])
            tcca = self._make_mapped_tcca(self._n_train, solver_seed)
            tcca.fit(mapped)
            self._mapped_train = mapped
            self._adopt_tcca(tcca, maps)
            return self
        views = check_views(views, min_views=2, same_samples=False)
        kernels = self._train_kernels(views)
        n = kernels[0].shape[0]
        if self.n_components > n:
            raise ValidationError(
                f"n_components={self.n_components} exceeds the sample "
                f"count {n}"
            )
        self._n_train = n

        policy = resolve_executor(self.executor, self.n_jobs)
        if policy.n_workers > 1:
            # The m factorizations and solves are independent per view.
            factors = policy.map(
                partial(pls_cholesky, epsilon=self.epsilon), kernels
            )
            transformed = policy.starmap(
                _solve_transposed, zip(factors, kernels)
            )
        else:
            factors = [
                pls_cholesky(kernel, self.epsilon) for kernel in kernels
            ]
            # S = K ×_p (L_p^{-1})^T is the "covariance tensor" of the
            # transformed columns V_p = L_p^{-T} K_p (Theorem 3 + Eq. 4.15).
            transformed = [
                _solve_transposed(factor, kernel)
                for factor, kernel in zip(factors, kernels)
            ]
        s_tensor = covariance_tensor(transformed, assume_centered=True)
        self.kernel_tensor_shape_ = s_tensor.shape

        # The rank-r problem on S runs through the same engine stages as
        # TCCA: one shared decompose dispatch, one shared finalize. Only
        # the per-view back-map differs — the dual coefficients are
        # A_p = L_p^{-1} B_p, i.e. a triangular solve against the
        # Cholesky factors instead of a whitener matmul — and the CP
        # signs are left as solved (KTCCA's contract since PR 0).
        spec = engine.DecompositionSpec(
            method=self.decomposition,
            rank=self.n_components,
            max_iter=self.max_iter,
            tol=self.tol,
            random_state=self.random_state,
        )
        result = engine.decompose_stage(spec, tensor=s_tensor)
        finalized = engine.finalize_stage(
            result,
            factors,
            apply=np.linalg.solve,
            canonicalize_signs=False,
        )
        self.decomposition_result_ = result
        self.correlations_ = finalized.correlations
        self.factors_ = finalized.factors
        self.dual_vectors_ = finalized.canonical_vectors
        self.dtype_policy_ = resolve_precision(self.precision).to_dict()
        self._fitted_kernels = kernels
        self.n_views_ = len(views)
        return self

    def fit_stream(self, stream, *, chunk_size: int | None = None) -> "KTCCA":
        """Fit the approximate path from a chunked multi-view stream.

        The kernel side's first out-of-core entry point. One pass
        gathers exactly the training columns the feature maps need
        (landmarks and the bandwidth subsample, planned deterministically
        by ``begin_fit``); the maps are then frozen and the internal
        :meth:`TCCA.fit_stream` consumes the mapped stream chunk by
        chunk. Peak memory is ``O(k² m + k^m)`` — independent of ``N`` —
        and on the same data the result matches batch :meth:`fit` to
        floating-point round-off.

        ``approx="exact"`` cannot stream (every kernel entry couples all
        samples) and raises.
        """
        if self.approx == "exact":
            raise ValidationError(
                "KTCCA.fit_stream requires approx='nystrom' or 'rff'; the "
                "exact kernel path needs the full N×N Gram matrices in "
                "memory"
            )
        stream = as_view_stream(stream, chunk_size)
        dims = [int(dim) for dim in stream.dims]
        if len(dims) < 2:
            raise ValidationError(
                f"need at least 2 views, stream has {len(dims)}"
            )
        n = int(stream.n_samples)
        maps, solver_seed = self._build_feature_maps(len(dims))
        plans = [
            fmap.begin_fit(dim, n) for fmap, dim in zip(maps, dims)
        ]
        wanted = [
            np.union1d(plan.landmark_indices, plan.sample_indices).astype(
                np.intp
            )
            for plan in plans
        ]
        gathered = self._gather_stream_columns(stream, dims, wanted)
        for fmap, plan, indices, columns in zip(maps, plans, wanted, gathered):
            fmap.fit_columns(
                plan,
                columns[:, np.searchsorted(indices, plan.landmark_indices)],
                columns[:, np.searchsorted(indices, plan.sample_indices)],
            )
        tcca = self._make_mapped_tcca(n, solver_seed)
        tcca.fit_stream(MappedViewStream(stream, maps))
        self._dims = dims
        self._n_train = n
        # mapped training features were never materialized whole
        self.__dict__.pop("_mapped_train", None)
        self._adopt_tcca(tcca, maps)
        return self

    @staticmethod
    def _gather_stream_columns(stream, dims, wanted) -> list[np.ndarray]:
        """One pass over ``stream`` collecting the sorted ``wanted`` columns."""
        collected = [
            np.empty((dim, indices.size), dtype=np.float64)
            for dim, indices in zip(dims, wanted)
        ]
        if not any(indices.size for indices in wanted):
            return collected
        offset = 0
        for chunk in iter_validated_chunks(stream):
            width = chunk[0].shape[1]
            for block, indices, out in zip(chunk, wanted, collected):
                lo = np.searchsorted(indices, offset)
                hi = np.searchsorted(indices, offset + width)
                if hi > lo:
                    out[:, lo:hi] = np.asarray(block)[
                        :, indices[lo:hi] - offset
                    ]
            offset += width
        return collected

    def partial_fit(self, views) -> "KTCCA":
        """Fold a minibatch into the approximate fit (maps frozen).

        The first call fits the feature maps on the first minibatch and
        starts an incremental :meth:`TCCA.partial_fit` session over the
        mapped features; later calls map through the *frozen*
        landmarks/frequencies and fold the new feature moments in. Since
        Eq. 4.14's ridge maps to ``ε / N`` with ``N`` the accumulated
        sample count, the internal ridge is refreshed before every
        update. Composes with ``python -m repro update`` like any
        moment-carrying estimator.
        """
        if self.approx == "exact":
            raise ValidationError(
                "KTCCA.partial_fit requires approx='nystrom' or 'rff'; the "
                "exact kernel tensor has no mergeable moment form"
            )
        views = check_views(views, min_views=2)
        moments = getattr(self, "moments_", None)
        if moments is None:
            maps, solver_seed = self._build_feature_maps(len(views))
            for fmap, view in zip(maps, views):
                fmap.fit(view)
            self._dims = [int(view.shape[0]) for view in views]
            tcca = self._make_mapped_tcca(views[0].shape[1], solver_seed)
            n_total = int(views[0].shape[1])
        else:
            views = self._check_transform_views(views, self._dims)
            maps = self._approx_maps()
            tcca = self._internal_tcca()
            n_total = int(moments.n_samples) + int(views[0].shape[1])
        mapped = [fmap.transform(view) for fmap, view in zip(maps, views)]
        tcca.epsilon = self.epsilon / max(n_total, 1)
        tcca.partial_fit(mapped)
        self._n_train = int(tcca.moments_.n_samples)
        self.__dict__.pop("_mapped_train", None)
        self._adopt_tcca(tcca, maps)
        return self

    def transform(self, views) -> list[np.ndarray]:
        """Project new data.

        The exact path accepts cross-kernel blocks or raw views; the
        approximate path accepts raw views and projects their mapped
        features (no cross-kernel block against the training set is ever
        built — serve-time cost is ``O(k)`` per sample).
        """
        self._check_fitted()
        if self.approx != "exact":
            return self._approx_transform(views)
        blocks = self._new_kernel_blocks(views)
        return [
            block.T @ duals
            for block, duals in zip(blocks, self.dual_vectors_)
        ]

    def transform_train(self) -> list[np.ndarray]:
        """Training projections ``Z_p = K_p A_p = K_p L_p^{-1} B_p``."""
        if self.approx != "exact":
            mapped = getattr(self, "_mapped_train", None)
            if mapped is None:
                raise NotFittedError(
                    "approximate KTCCA retains mapped training features "
                    "only after a batch fit; after fit_stream/partial_fit "
                    "project the training data with transform instead"
                )
            dtype = self._transform_dtype
            return [
                (
                    np.asarray(features, dtype=dtype)
                    - np.asarray(mean, dtype=dtype)
                ).T @ vectors
                for features, mean, vectors in zip(
                    mapped, self.feature_means_, self.feature_vectors_
                )
            ]
        if not hasattr(self, "_fitted_kernels"):
            raise NotFittedError("KTCCA must be fitted first")
        return [
            kernel @ duals
            for kernel, duals in zip(self._fitted_kernels, self.dual_vectors_)
        ]

    def transform_train_combined(self) -> np.ndarray:
        """Concatenated ``(N, m·r)`` training representation."""
        return np.hstack(self.transform_train())
