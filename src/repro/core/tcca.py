"""Tensor canonical correlation analysis (TCCA) — the paper's contribution.

TCCA maximizes the high-order canonical correlation
``ρ = corr(z_1, …, z_m) = C_{12…m} ×_1 h_1^T ×_2 … ×_m h_m^T`` (Theorem 1)
subject to ``h_p^T (C_pp + ε I) h_p = 1`` (Eq. 4.7-4.8). Substituting
``u_p = C̃_pp^{1/2} h_p`` turns this into finding unit vectors maximizing
``M ×_1 u_1^T … ×_m u_m^T`` on the whitened covariance tensor
``M = C ×_1 C̃_11^{-1/2} … ×_m C̃_mm^{-1/2}`` (Theorem 2), i.e. the best
rank-1 approximation of ``M`` (Eq. 4.10) — and rank-``r`` CP-ALS yields
``r`` canonical directions per view fitted jointly.

``M`` can be solved *dense* (materialized, ``∏ d_p`` memory — the cost the
paper's Figs. 7-10 measure) or *implicitly*: every contraction CP-ALS/HOPM
needs factors through the whitened data as Hadamard products of ``(N, r)``
projections (:mod:`repro.tensor.operator`), so high-dimensional views fit
without the tensor ever existing. ``solver="auto"`` picks per problem
size.

Every fit — batch, streamed, precomputed, or incremental — runs through
the staged engine in :mod:`repro.core.engine`
(``ingest → moments → whiten → build → decompose → finalize``).
:meth:`TCCA.partial_fit` keeps the engine's mergeable
:class:`~repro.core.engine.MomentState` in the fitted model, so new
minibatches fold into the moments and the CP solve warm-starts from the
previous factors instead of refitting from scratch.

The per-view projections ``Z_p = X_p^T C̃_pp^{-1/2} U_p`` (Eq. 4.11) are
concatenated into the final ``(m·r)``-dimensional representation.
"""

from __future__ import annotations

import math

import numpy as np

from repro.api.registry import register
from repro.backends import resolve_precision
from repro.cca.base import MultiviewTransformer
from repro.core import engine
from repro.core.engine import (
    MomentState,
    WhitenedTensor,
    whitened_covariance_operator,
    whitened_covariance_operator_streaming,
    whitened_covariance_tensor,
    whitened_covariance_tensor_streaming,
)
from repro.exceptions import ValidationError
from repro.parallel.executors import (
    check_executor_name,
    check_n_jobs,
    resolve_executor,
)
from repro.streaming.covariance import check_nan_policy
from repro.streaming.views import as_view_stream
from repro.utils.validation import check_positive_int, check_views

__all__ = [
    "AUTO_SOLVER_DENSE_BUDGET",
    "TCCA",
    "WhitenedTensor",
    "multiview_canonical_correlation",
    "resolve_tcca_solver",
    "whitened_covariance_operator",
    "whitened_covariance_operator_streaming",
    "whitened_covariance_tensor",
    "whitened_covariance_tensor_streaming",
]

_DECOMPOSITIONS = ("als", "hopm", "power")
_SOLVERS = ("auto", "dense", "implicit")

#: ``solver="auto"`` switches to the implicit path when the dense tensor
#: would exceed this many entries (2**24 floats = 128 MB) — the point
#: where materializing ``∏ d_p`` starts to dominate a fit's footprint.
AUTO_SOLVER_DENSE_BUDGET = 2**24


def resolve_tcca_solver(solver: str, dims, decomposition: str = "als") -> str:
    """Resolve ``"auto"`` into ``"dense"`` or ``"implicit"`` for ``dims``.

    Auto picks the implicit solver when ``∏ d_p`` exceeds
    :data:`AUTO_SOLVER_DENSE_BUDGET`, except for the deflation solver
    (``decomposition="power"``), which subtracts dense residuals and
    therefore always materializes.
    """
    if solver not in _SOLVERS:
        raise ValidationError(
            f"unknown solver {solver!r}; expected one of {_SOLVERS}"
        )
    if solver != "auto":
        return solver
    if decomposition == "power":
        return "dense"
    n_entries = math.prod(int(d) for d in dims)  # exact — never wraps
    return "implicit" if n_entries > AUTO_SOLVER_DENSE_BUDGET else "dense"


def multiview_canonical_correlation(views, canonical_vectors) -> float:
    """High-order canonical correlation ``(z_1 ⊙ z_2 ⊙ … ⊙ z_m)^T e``.

    Computes the left-hand side of Theorem 1 directly from data: project
    each (centered) view with its canonical vector and sum the element-wise
    product of the canonical variables, normalized by ``N`` to match the
    ``1/N``-scaled covariance tensor.
    """
    views = check_views(views, min_views=2)
    if len(canonical_vectors) != len(views):
        raise ValidationError(
            f"need one canonical vector per view ({len(views)}), "
            f"got {len(canonical_vectors)}"
        )
    n_samples = views[0].shape[1]
    product = np.ones(n_samples)
    for view, vector in zip(views, canonical_vectors):
        vector = np.asarray(vector, dtype=np.float64).ravel()
        if vector.shape[0] != view.shape[0]:
            raise ValidationError(
                "canonical vector length must match the view dimension; "
                f"got {vector.shape[0]} for dimension {view.shape[0]}"
            )
        product = product * (view.T @ vector)
    return float(product.sum() / n_samples)


@register("tcca")
class TCCA(MultiviewTransformer):
    """Tensor CCA for an arbitrary number of views.

    Parameters
    ----------
    n_components:
        Subspace dimension ``r`` per view; the concatenated output has
        ``m·r`` dimensions. Must satisfy ``r <= min_p d_p``.
    epsilon:
        Regularization ``ε`` of the variance constraints
        ``h_p^T (C_pp + ε I) h_p = 1`` (Eq. 4.8).
    solver:
        How the whitened tensor ``M`` is represented during the solve:
        ``"dense"`` materializes it (``∏ d_p`` memory — the paper's
        measured path), ``"implicit"`` runs the same decomposition against
        factored contractions of the whitened data
        (``O(N · Σ d_p · r)`` per sweep, no ``∏ d_p`` object), and
        ``"auto"`` (default) picks implicit once ``∏ d_p`` exceeds
        :data:`AUTO_SOLVER_DENSE_BUDGET`. Both produce the same canonical
        vectors up to round-off.
    decomposition:
        Solver for the rank-``r`` problem on the whitened tensor ``M``:
        ``"als"`` (joint CP-ALS — the paper's choice), ``"hopm"``
        (higher-order power method; only for ``n_components == 1``), or
        ``"power"`` (greedy rank-1 deflation, the ablation comparator —
        dense only).
    max_iter, tol:
        Iteration budget and tolerance passed to the tensor solver.
    random_state:
        Seed for solver initialization.
    n_jobs:
        Worker count for the parallel execution layer: ``None`` (default)
        defers to the ``REPRO_JOBS`` environment variable (missing means
        serial), ``-1`` means all cores, otherwise an integer >= 1. With
        more than one worker, moment accumulation runs as sharded
        map-reduce (reduced with the exact
        :meth:`~repro.core.engine.MomentState.merge`), the per-view
        whitening eigendecompositions fan out, and the implicit solver's
        blocked contraction kernels thread — the fitted model matches the
        serial fit to round-off regardless of shard count or order.
    executor:
        Execution policy: ``"auto"`` (threads when ``n_jobs > 1``),
        ``"serial"``, ``"thread"``, or ``"process"``. Policy is
        configuration, not fitted state — it is persisted with the other
        constructor parameters and never changes what a fit computes.
    nan_policy:
        How the incremental/accumulated ingest paths treat NaN/Inf
        samples: ``"raise"`` (default) rejects the minibatch with a
        typed :class:`~repro.exceptions.ValidationError` naming the
        offending view and chunk index; ``"skip"`` drops the affected
        samples from every view (keeping the sample axes aligned) and
        surfaces the running count as :attr:`n_skipped_` on the fitted
        model. One-shot :meth:`fit`/:meth:`fit_stream` always reject
        non-finite input — skipping only makes sense for long
        accumulation sessions fed by unattended pipelines.
    precision:
        Dtype policy of the fit (see :mod:`repro.backends`):

        * ``None`` / ``"float64"`` (default) — everything in float64,
          bit-for-bit the library's historical arithmetic;
        * ``"mixed"`` — moments accumulate in float64 (where the
          cancellation over ``N`` outer products lives), the whitened
          tensor / operator and its CP sweeps run in float32 at a
          tolerance floored at ``√ε_float32``, and both solvers finish
          with a float64 polish pass warm-started from the float32
          factors at the original ``tol``. The dense polish transiently
          upcasts the tensor; the implicit polish keeps the float32
          operator (its memory contract) and relies on float64 factor
          iterates promoting each contraction, so only the ~1e-7 view
          quantization survives;
        * ``"float32"`` — accumulation *and* compute in float32; fastest
          and smallest, for exploratory sweeps only.

        Whitening eigendecompositions always run in float64 (see
        :mod:`repro.linalg.whitening`). The resolved policy is recorded
        on the fitted model as :attr:`dtype_policy_` and persisted, so
        a reloaded model transforms at fit precision.

    Attributes
    ----------
    canonical_vectors_:
        List of ``(d_p, r)`` matrices ``H_p = C̃_pp^{-1/2} U_p``.
    factors_:
        The unit-norm whitened factors ``U_p`` of the CP decomposition.
    correlations_:
        CP weights ``λ^{(k)}`` — the attained canonical correlations per
        component (descending in magnitude for the ALS solver).
    covariance_tensor_shape_:
        Shape of the covariance tensor ``(d_1, …, d_m)``; its product is
        the memory cost the complexity experiments measure (and what the
        implicit solver avoids paying).
    solver_used_:
        ``"dense"`` or ``"implicit"`` — the resolved solver of this fit.
    moments_:
        Only after :meth:`partial_fit`: the mergeable
        :class:`~repro.core.engine.MomentState` the incremental session
        accumulates into. Persisted by :func:`repro.api.save_model`, so a
        reloaded model resumes exactly where it stopped.
    n_skipped_:
        Samples dropped so far by ``nan_policy="skip"`` across the
        model's accumulation session (0 for one-shot fits and the
        default ``"raise"`` policy).
    dtype_policy_:
        The resolved :class:`~repro.backends.DTypePolicy` of the fit as
        a plain dict (``compute_dtype``, ``accumulate_dtype``,
        ``polish``) — persisted in the model header so loading and
        serving reproduce the fit's precision.
    """

    #: derived solver output that transform never reads — not persisted.
    _non_persistent_ = ("decomposition_result_",)

    def __init__(
        self,
        n_components: int = 1,
        epsilon: float = 1e-2,
        *,
        solver: str = "auto",
        decomposition: str = "als",
        max_iter: int = 200,
        tol: float = 1e-8,
        random_state=None,
        n_jobs=None,
        executor: str = "auto",
        nan_policy: str = "raise",
        precision=None,
    ):
        self.n_components = check_positive_int(n_components, "n_components")
        self.nan_policy = check_nan_policy(nan_policy)
        resolve_precision(precision)  # validate eagerly; stored verbatim
        self.precision = precision
        if epsilon < 0.0:
            raise ValidationError(f"epsilon must be >= 0, got {epsilon}")
        self.epsilon = float(epsilon)
        if solver not in _SOLVERS:
            raise ValidationError(
                f"unknown solver {solver!r}; expected one of {_SOLVERS}"
            )
        self.solver = solver
        self.n_jobs = check_n_jobs(n_jobs)
        self.executor = check_executor_name(executor)
        if decomposition not in _DECOMPOSITIONS:
            raise ValidationError(
                f"unknown decomposition {decomposition!r}; expected one of "
                f"{_DECOMPOSITIONS}"
            )
        self.decomposition = decomposition
        if decomposition == "hopm" and self.n_components != 1:
            raise ValidationError(
                "decomposition='hopm' extracts a single component; use "
                "'als' or 'power' for n_components > 1"
            )
        if decomposition == "power" and solver == "implicit":
            raise ValidationError(
                "decomposition='power' deflates dense residuals and has no "
                "implicit form; use solver='dense' (or 'auto') with it"
            )
        self.max_iter = check_positive_int(max_iter, "max_iter")
        self.tol = float(tol)
        self.random_state = random_state

    def fit(self, views, *, precomputed: WhitenedTensor | None = None) -> "TCCA":
        """Learn canonical vectors from ``m >= 2`` views of shape ``(d_p, N)``.

        A one-shot fit: any incremental accumulator state from a previous
        :meth:`partial_fit` session is discarded (the fitted model then
        reflects exactly ``views``).

        Parameters
        ----------
        views:
            The view matrices.
        precomputed:
            Optional whitening state from
            :func:`whitened_covariance_tensor` /
            :func:`whitened_covariance_operator` computed on the *same*
            views with ``epsilon == self.epsilon``; skips the tensor
            construction (useful when sweeping ``n_components``).
        """
        views = check_views(views, min_views=2)
        dims = [view.shape[0] for view in views]
        self._check_rank(dims)
        solver = resolve_tcca_solver(self.solver, dims, self.decomposition)
        if precomputed is None:
            policy = self._policy()
            dtype_policy = self._dtype_policy()
            if solver == "implicit":
                precomputed = whitened_covariance_operator(
                    views, self.epsilon, policy=policy,
                    dtype_policy=dtype_policy,
                )
            else:
                precomputed = whitened_covariance_tensor(
                    views, self.epsilon, policy=policy,
                    dtype_policy=dtype_policy,
                )
        else:
            self._check_precomputed(precomputed, dims)
            solver = self._solver_for_precomputed(precomputed, solver)
        self._reset_incremental()
        return self._finish_fit(precomputed, dims, solver)

    def fit_stream(
        self,
        stream,
        *,
        chunk_size: int | None = None,
        precomputed: WhitenedTensor | None = None,
    ) -> "TCCA":
        """Learn canonical vectors from a chunked multi-view stream.

        The out-of-core counterpart of :meth:`fit`: consumes a
        :class:`~repro.streaming.views.ViewStream` (or a
        :class:`~repro.datasets.synthetic.MultiviewDataset` / list of view
        matrices, wrapped automatically) chunk by chunk, so peak
        covariance-accumulation memory is independent of the sample count.
        With the dense solver the tensor is assembled in two passes
        (:func:`whitened_covariance_tensor_streaming`); with the implicit
        solver nothing ``∏ d_p``-sized exists either — the solver
        contracts against the stream directly
        (:func:`whitened_covariance_operator_streaming`). On the same data
        this yields the same canonical vectors as :meth:`fit` up to
        floating-point round-off.

        Parameters
        ----------
        stream:
            The chunked data source; iterated multiple times
            (streams must be re-iterable).
        chunk_size:
            Optional chunk size forwarded to the stream wrapper.
        precomputed:
            Optional whitening state built on the *same* stream with
            ``epsilon == self.epsilon``.
        """
        stream = as_view_stream(stream, chunk_size)
        dims = list(stream.dims)
        if len(dims) < 2:
            raise ValidationError(
                f"need at least 2 views, stream has {len(dims)}"
            )
        self._check_rank(dims)
        solver = resolve_tcca_solver(self.solver, dims, self.decomposition)
        if precomputed is None:
            policy = self._policy()
            dtype_policy = self._dtype_policy()
            if solver == "implicit":
                precomputed = whitened_covariance_operator_streaming(
                    stream, self.epsilon, policy=policy,
                    dtype_policy=dtype_policy,
                )
            else:
                precomputed = whitened_covariance_tensor_streaming(
                    stream, self.epsilon, policy=policy,
                    dtype_policy=dtype_policy,
                )
        else:
            self._check_precomputed(precomputed, dims)
            solver = self._solver_for_precomputed(precomputed, solver)
        self._reset_incremental()
        return self._finish_fit(precomputed, dims, solver)

    def partial_fit(self, views) -> "TCCA":
        """Fold a minibatch into the accumulated moments and refresh the fit.

        The incremental entry point of the staged engine: ``views`` (a
        list of aligned ``(d_p, n_batch)`` arrays, ``n_batch`` as small as
        one sample) is ingested into the model's mergeable
        :class:`~repro.core.engine.MomentState`, the whiteners are rebuilt
        from the updated moments, and the CP decomposition re-solves
        **warm-started** from the previous factors — near the previous
        optimum this re-converges in a small fraction of a cold refit's
        sweeps. After every call the model is fully fitted on *all*
        samples seen by the session, matching a cold :meth:`fit` on the
        concatenated data to tight tolerance.

        The first call starts the session and fixes its geometry (view
        dimensions) and resolved solver. With the dense solver the state
        is the raw covariance tensor's moments — ``O(∏ d_p)``, independent
        of the sample count; with the implicit solver nothing
        ``∏ d_p``-sized exists and the state instead retains the ingested
        samples (``O(N · Σ d_p)``) plus per-view moments. The state is
        saved with the model (:func:`repro.api.save_model`), so a reloaded
        model resumes accumulating exactly where it stopped — the
        ``python -m repro update`` loop.

        A previous one-shot :meth:`fit` does **not** seed the session:
        its data is no longer available as moments, so the first
        :meth:`partial_fit` after it starts an empty session (a fresh
        model fitted on the minibatches seen from now on).
        """
        # NaN/Inf handling belongs to the moment state's nan_policy
        # (chunk-indexed raise, or skip-and-count) — not to this
        # shape/alignment check
        views = check_views(views, min_views=2, require_finite=False)
        dims = [view.shape[0] for view in views]
        moments = getattr(self, "moments_", None)
        if moments is None:
            self._check_rank(dims)
            solver = resolve_tcca_solver(
                self.solver, dims, self.decomposition
            )
            moments = MomentState(
                track_tensor=(solver == "dense"),
                retain_samples=(solver == "implicit"),
                dims=dims,
                nan_policy=self.nan_policy,
                dtype=self._accumulate_dtype(),
            )
            self.moments_ = moments
            # A brand-new session solves cold: factors_ possibly left by
            # a previous one-shot fit belong to data these moments do not
            # contain, and seeding ALS with them would pull the fresh
            # session toward an unrelated optimum.
            factors_init = None
        else:
            if list(moments.dims) != dims:
                raise ValidationError(
                    f"minibatch dimensions {dims} do not match the "
                    f"accumulated moments' {list(moments.dims)}"
                )
            solver = self._solver_for_moments(moments)
            factors_init = self._warm_factors(dims)
        policy = self._policy()
        engine.ingest_stage(moments, views, policy=policy)
        whitening = engine.whiten_stage(moments, self.epsilon, policy=policy)
        precomputed = engine.build_stage(
            moments, whitening, solver, policy=policy,
            dtype_policy=self._dtype_policy(),
        )
        return self._finish_fit(
            precomputed, dims, solver, factors_init=factors_init
        )

    def moment_state_for(self, dims) -> MomentState:
        """An empty :class:`MomentState` configured for this estimator.

        The accumulate side of the distributed protocol: a worker builds
        this state, ingests its shard of the data, and ships the result
        as a ``.moments`` artifact. The state's policy is resolved from
        the estimator's configuration exactly as :meth:`partial_fit`
        would — dense solvers track the raw covariance tensor, implicit
        solvers retain the samples — so shards accumulated by identically
        configured workers are mergeable with each other and with a
        local ``partial_fit`` session.
        """
        dims = [int(d) for d in dims]
        if len(dims) < 2:
            raise ValidationError(
                f"need at least 2 views, got dims={dims}"
            )
        self._check_rank(dims)
        solver = resolve_tcca_solver(self.solver, dims, self.decomposition)
        return MomentState(
            track_tensor=(solver == "dense"),
            retain_samples=(solver == "implicit"),
            dims=dims,
            nan_policy=self.nan_policy,
            dtype=self._accumulate_dtype(),
        )

    def fit_moments(self, moments: MomentState) -> "TCCA":
        """Fit from accumulated moments alone — the reduce-side finalize.

        Runs the tail of the staged engine (``whiten → build → decompose
        → finalize``) on a :class:`MomentState`, typically the merge of
        ``.moments`` shards accumulated elsewhere. The moments become the
        model's incremental session (``moments_``), so a reduced model
        keeps accepting :meth:`partial_fit` minibatches and
        ``python -m repro update`` refreshes exactly like one fitted
        locally.
        """
        if moments.dims is None or moments.n_samples == 0:
            raise ValidationError(
                "fit_moments needs a non-empty moment state (accumulate "
                "at least one sample before reducing)"
            )
        dims = [int(d) for d in moments.dims]
        self._check_rank(dims)
        solver = self._solver_for_moments(moments)
        policy = self._policy()
        whitening = engine.whiten_stage(moments, self.epsilon, policy=policy)
        precomputed = engine.build_stage(
            moments, whitening, solver, policy=policy,
            dtype_policy=self._dtype_policy(),
        )
        self.moments_ = moments
        return self._finish_fit(precomputed, dims, solver)

    def _policy(self):
        """The execution policy of this fit, resolved from configuration."""
        return resolve_executor(self.executor, self.n_jobs)

    def _dtype_policy(self):
        """The resolved dtype policy, or ``None`` for the float64 default.

        Returning ``None`` (not the default policy object) keeps every
        float64 code path on the exact pre-policy arithmetic — the
        engine's casts are then skipped entirely, not run as no-ops.
        """
        policy = resolve_precision(self.precision)
        return None if policy.is_default else policy

    def _accumulate_dtype(self):
        """Moment-accumulation dtype (``None`` → float64 default)."""
        policy = self._dtype_policy()
        return None if policy is None else policy.accumulate

    def _reset_incremental(self) -> None:
        """Drop any partial_fit session state (one-shot fits replace it)."""
        if hasattr(self, "moments_"):
            del self.moments_

    def _solver_for_moments(self, moments: MomentState) -> str:
        """The solver an accumulated moment state can serve.

        The session's resolved solver is implied by the moment policy; an
        explicit ``solver`` parameter that contradicts it (e.g. changed
        via ``set_params`` after the session started, or after loading)
        is an error rather than a silent restart.
        """
        solver = "dense" if moments.track_tensor else "implicit"
        if self.solver not in ("auto", solver):
            raise ValidationError(
                f"solver={self.solver!r} cannot resume a partial_fit "
                f"session accumulated for the {solver!r} solver; keep "
                "the session's solver (or refit from scratch)"
            )
        return solver

    def _warm_factors(self, dims) -> list[np.ndarray] | None:
        """Previous factors, if they can warm-start the next solve."""
        factors = getattr(self, "factors_", None)
        if factors is None or self.decomposition == "power":
            return None
        if len(dims) == 2:
            # For m=2 the whitened tensor is a matrix, whose rank-r CP has
            # a continuum of equivalent factorizations; warm factors would
            # converge to an arbitrary mix instead of the SVD-canonical
            # solution the HOSVD init lands on directly (the init *is* the
            # optimum there, so a cold start already converges in a couple
            # of sweeps).
            return None
        if len(factors) != len(dims):
            return None
        for factor, dim in zip(factors, dims):
            if factor.shape != (int(dim), self.n_components):
                return None
        return [np.array(factor, copy=True) for factor in factors]

    def _check_rank(self, dims) -> None:
        max_rank = min(dims)
        if self.n_components > max_rank:
            raise ValidationError(
                f"n_components={self.n_components} exceeds the smallest view "
                f"dimension {max_rank} (the paper requires r <= min_p d_p)"
            )

    def _check_precomputed(self, precomputed: WhitenedTensor, dims) -> None:
        # isclose rather than !=: an ε that round-tripped through a JSON
        # config (or was recomputed as e.g. 0.1 * 0.1) must still match
        # the precomputed whitening state it was built with.
        if not math.isclose(
            precomputed.epsilon, self.epsilon, rel_tol=1e-9, abs_tol=1e-12
        ):
            raise ValidationError(
                f"precomputed state was built with epsilon="
                f"{precomputed.epsilon}, the estimator uses "
                f"{self.epsilon}"
            )
        if precomputed.dims != list(dims):
            raise ValidationError(
                "precomputed state dimensions do not match the views"
            )

    def _solver_for_precomputed(
        self, precomputed: WhitenedTensor, resolved: str
    ) -> str:
        """Reconcile the resolved solver with what ``precomputed`` carries.

        ``solver="auto"`` adapts to the available form (whoever built the
        state already paid its cost); an *explicit* solver choice that the
        state cannot serve is an error rather than a silent fallback.
        """
        if self.solver == "auto":
            if resolved == "implicit" and not precomputed.has_operator:
                return "dense"
            if resolved == "dense" and not precomputed.has_tensor:
                if self.decomposition == "power":
                    raise ValidationError(
                        "decomposition='power' needs a precomputed state "
                        "carrying the dense tensor; this one holds only "
                        "the implicit operator (build it with "
                        "whitened_covariance_tensor)"
                    )
                return "implicit"
            return resolved
        if resolved == "dense" and not precomputed.has_tensor:
            raise ValidationError(
                "solver='dense' needs a precomputed state carrying the "
                "dense tensor; this one holds only the implicit operator "
                "(build it with whitened_covariance_tensor)"
            )
        if resolved == "implicit" and not precomputed.has_operator:
            raise ValidationError(
                "solver='implicit' needs a precomputed state carrying the "
                "operator; this one holds only the dense tensor "
                "(build it with whitened_covariance_operator)"
            )
        return resolved

    def _finish_fit(
        self,
        precomputed: WhitenedTensor,
        dims,
        solver: str,
        *,
        factors_init=None,
    ) -> "TCCA":
        """Decompose the whitened tensor and set the fitted attributes."""
        self.means_ = precomputed.means
        self.covariance_tensor_shape_ = tuple(int(d) for d in dims)
        self.solver_used_ = solver

        dtype_policy = self._dtype_policy()
        sweep_tol = (
            self.tol if dtype_policy is None
            else dtype_policy.sweep_tol(self.tol)
        )
        spec = engine.DecompositionSpec(
            method=self.decomposition,
            rank=self.n_components,
            max_iter=self.max_iter,
            tol=sweep_tol,
            random_state=self.random_state,
        )
        # Final polish sweep (mixed policy): re-solve in float64 at the
        # original tol, warm-started from the low-precision factors —
        # near the optimum this converges in a handful of sweeps and
        # strips the float32 iteration round-off. The deflation solver
        # re-solves from scratch and has no meaningful warm start.
        polish = (
            dtype_policy is not None
            and dtype_policy.polish
            and self.decomposition != "power"
        )
        polish_spec = engine.DecompositionSpec(
            method=self.decomposition,
            rank=self.n_components,
            max_iter=self.max_iter,
            tol=self.tol,
            random_state=self.random_state,
        )
        if solver == "implicit":
            result = engine.decompose_stage(
                spec, operator=precomputed.operator, factors_init=factors_init
            )
            if polish:
                # The operator keeps its float32 whitened views (its
                # memory contract); float64 warm-start factors promote
                # every contraction to float64 arithmetic, so the sweeps
                # converge at the original tol and only the ~1e-7 view
                # quantization remains.
                result = engine.decompose_stage(
                    polish_spec,
                    operator=precomputed.operator,
                    factors_init=[
                        np.asarray(factor, dtype=np.float64)
                        for factor in result.cp.factors
                    ],
                )
        else:
            result = engine.decompose_stage(
                spec, tensor=precomputed.tensor, factors_init=factors_init
            )
            if polish:
                # The upcast is transient; the float32 tensor stays the
                # fit's resident form.
                result = engine.decompose_stage(
                    polish_spec,
                    tensor=np.asarray(
                        precomputed.tensor, dtype=np.float64
                    ),
                    factors_init=[
                        np.asarray(factor, dtype=np.float64)
                        for factor in result.cp.factors
                    ],
                )
        finalized = engine.finalize_stage(result, precomputed.whiteners)
        self.decomposition_result_ = result
        # Canonical correlations are reported in float64 regardless of
        # the compute dtype — they are scalars-per-component, and the
        # user-facing contract (ordering, comparisons across fits of
        # different precisions) should not depend on the policy.
        self.correlations_ = np.asarray(
            finalized.correlations, dtype=np.float64
        )
        self.factors_ = finalized.factors
        compute = None if dtype_policy is None else dtype_policy.compute
        self.canonical_vectors_ = (
            finalized.canonical_vectors
            if compute is None
            else [
                np.asarray(vectors, dtype=compute)
                for vectors in finalized.canonical_vectors
            ]
        )
        self.dtype_policy_ = resolve_precision(self.precision).to_dict()
        self.n_views_ = len(dims)
        self._dims = list(dims)
        moments = getattr(self, "moments_", None)
        self.n_skipped_ = 0 if moments is None else int(moments.n_skipped)
        return self

    @property
    def _transform_dtype(self) -> np.dtype:
        """Compute dtype of projections, from the fit's recorded policy.

        Models saved before the policy existed carry no
        ``dtype_policy_`` and project in float64 — their historical
        behaviour.
        """
        policy = getattr(self, "dtype_policy_", None)
        if policy is None:
            return np.dtype(np.float64)
        return np.dtype(policy["compute_dtype"])

    def transform(self, views, *, chunk_size: int | None = None) -> list[np.ndarray]:
        """Project every view: ``Z_p = X_p^T H_p`` of shape ``(N, r)``.

        ``chunk_size`` bounds the projection's working memory: the views
        are processed in sample slices of that width, so the centered
        intermediates never exceed one slice per view — transform of a
        very large ``N`` runs memory-bounded. The result is identical
        (same arithmetic per sample) either way.

        Projections run in the fit's recorded compute dtype: a
        mixed/float32 model casts the inputs down and returns float32
        canonical variables rather than silently upcasting its float32
        canonical vectors through float64 inputs.
        """
        self._check_fitted()
        views = self._check_transform_views(views, self._dims)
        dtype = self._transform_dtype
        views = [view.astype(dtype, copy=False) for view in views]
        means = [
            np.asarray(mean, dtype=dtype) for mean in self.means_
        ]
        if chunk_size is None:
            return [
                (view - mean).T @ vectors
                for view, mean, vectors in zip(
                    views, means, self.canonical_vectors_
                )
            ]
        chunk_size = check_positive_int(chunk_size, "chunk_size")
        n_samples = views[0].shape[1]
        outputs = [
            np.empty((n_samples, vectors.shape[1]), dtype=dtype)
            for vectors in self.canonical_vectors_
        ]
        for start in range(0, n_samples, chunk_size):
            stop = min(start + chunk_size, n_samples)
            for view, mean, vectors, output in zip(
                views, means, self.canonical_vectors_, outputs
            ):
                output[start:stop] = (
                    view[:, start:stop] - mean
                ).T @ vectors
        return outputs

    def canonical_correlations(self, views) -> np.ndarray:
        """Empirical high-order correlations of each component on ``views``.

        Evaluates Theorem 1's data-side expression for every fitted
        component — useful for validating the tensor-side optimum.
        """
        self._check_fitted()
        views = self._check_transform_views(views, self._dims)
        centered = [view - mean for view, mean in zip(views, self.means_)]
        return np.array(
            [
                multiview_canonical_correlation(
                    centered,
                    [vectors[:, k] for vectors in self.canonical_vectors_],
                )
                for k in range(self.n_components)
            ]
        )
