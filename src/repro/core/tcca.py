"""Tensor canonical correlation analysis (TCCA) — the paper's contribution.

TCCA maximizes the high-order canonical correlation
``ρ = corr(z_1, …, z_m) = C_{12…m} ×_1 h_1^T ×_2 … ×_m h_m^T`` (Theorem 1)
subject to ``h_p^T (C_pp + ε I) h_p = 1`` (Eq. 4.7-4.8). Substituting
``u_p = C̃_pp^{1/2} h_p`` turns this into finding unit vectors maximizing
``M ×_1 u_1^T … ×_m u_m^T`` on the whitened covariance tensor
``M = C ×_1 C̃_11^{-1/2} … ×_m C̃_mm^{-1/2}`` (Theorem 2), i.e. the best
rank-1 approximation of ``M`` (Eq. 4.10) — and rank-``r`` CP-ALS yields
``r`` canonical directions per view fitted jointly.

``M`` can be solved *dense* (materialized, ``∏ d_p`` memory — the cost the
paper's Figs. 7-10 measure) or *implicitly*: every contraction CP-ALS/HOPM
needs factors through the whitened data as Hadamard products of ``(N, r)``
projections (:mod:`repro.tensor.operator`), so high-dimensional views fit
without the tensor ever existing. ``solver="auto"`` picks per problem
size.

The per-view projections ``Z_p = X_p^T C̃_pp^{-1/2} U_p`` (Eq. 4.11) are
concatenated into the final ``(m·r)``-dimensional representation.
"""

from __future__ import annotations

import math

import numpy as np

from repro.api.registry import register
from repro.cca.base import MultiviewTransformer
from repro.exceptions import ValidationError
from repro.linalg.covariance import covariance_tensor, view_covariance
from repro.linalg.whitening import regularized_inverse_sqrt
from repro.streaming.covariance import StreamingCovariance
from repro.streaming.views import as_view_stream, iter_validated_chunks
from repro.tensor.decomposition import (
    best_rank1,
    best_rank1_implicit,
    cp_als,
    cp_als_implicit,
    tensor_power_deflation,
)
from repro.tensor.operator import CovarianceTensorOperator
from repro.utils.validation import check_positive_int, check_views

__all__ = [
    "AUTO_SOLVER_DENSE_BUDGET",
    "TCCA",
    "WhitenedTensor",
    "multiview_canonical_correlation",
    "resolve_tcca_solver",
    "whitened_covariance_operator",
    "whitened_covariance_operator_streaming",
    "whitened_covariance_tensor",
    "whitened_covariance_tensor_streaming",
]

_DECOMPOSITIONS = ("als", "hopm", "power")
_SOLVERS = ("auto", "dense", "implicit")

#: ``solver="auto"`` switches to the implicit path when the dense tensor
#: would exceed this many entries (2**24 floats = 128 MB) — the point
#: where materializing ``∏ d_p`` starts to dominate a fit's footprint.
AUTO_SOLVER_DENSE_BUDGET = 2**24


def resolve_tcca_solver(solver: str, dims, decomposition: str = "als") -> str:
    """Resolve ``"auto"`` into ``"dense"`` or ``"implicit"`` for ``dims``.

    Auto picks the implicit solver when ``∏ d_p`` exceeds
    :data:`AUTO_SOLVER_DENSE_BUDGET`, except for the deflation solver
    (``decomposition="power"``), which subtracts dense residuals and
    therefore always materializes.
    """
    if solver not in _SOLVERS:
        raise ValidationError(
            f"unknown solver {solver!r}; expected one of {_SOLVERS}"
        )
    if solver != "auto":
        return solver
    if decomposition == "power":
        return "dense"
    n_entries = math.prod(int(d) for d in dims)  # exact — never wraps
    return "implicit" if n_entries > AUTO_SOLVER_DENSE_BUDGET else "dense"


class WhitenedTensor:
    """Precomputed whitening state shared by TCCA fits of different ranks.

    Building the whitened covariance tensor ``M`` is the dominant cost of a
    TCCA fit and is independent of ``n_components``; computing it once and
    passing it to several ``TCCA.fit(views, precomputed=...)`` calls
    amortizes it across a dimension sweep. The state carries ``M`` in one
    (or both) of two forms:

    * ``tensor`` — the dense ``∏ d_p`` array
      (:func:`whitened_covariance_tensor`), consumed by the dense solver;
    * ``operator`` — a
      :class:`~repro.tensor.operator.CovarianceTensorOperator`
      (:func:`whitened_covariance_operator`), consumed by the implicit
      solver without ``∏ d_p`` memory.
    """

    def __init__(self, means, whiteners, tensor=None, epsilon=0.0, *,
                 operator=None):
        if tensor is None and operator is None:
            raise ValidationError(
                "WhitenedTensor needs the dense tensor, the operator, or "
                "both"
            )
        self.means = means
        self.whiteners = whiteners
        self.tensor = tensor
        self.operator = operator
        self.epsilon = float(epsilon)

    @property
    def dims(self) -> list[int]:
        """Feature dimension of each view."""
        return [whitener.shape[0] for whitener in self.whiteners]

    @property
    def has_tensor(self) -> bool:
        """Whether the dense tensor form is available."""
        return self.tensor is not None

    @property
    def has_operator(self) -> bool:
        """Whether the implicit operator form is available."""
        return self.operator is not None


def _whitening_from_views(views, epsilon: float):
    """Means, whiteners, and whitened views of a batch dataset."""
    views = check_views(views, min_views=2)
    means = [view.mean(axis=1, keepdims=True) for view in views]
    centered = [view - mean for view, mean in zip(views, means)]
    whiteners = [
        regularized_inverse_sqrt(view_covariance(view), epsilon)
        for view in centered
    ]
    whitened_views = [
        whitener @ view for whitener, view in zip(whiteners, centered)
    ]
    return means, whiteners, whitened_views


def whitened_covariance_tensor(views, epsilon: float) -> WhitenedTensor:
    """Compute the whitening state and dense tensor ``M`` (Theorem 2).

    ``M = C ×_1 C̃_11^{-1/2} … ×_m C̃_mm^{-1/2}`` equals the covariance
    tensor of the whitened views, so ``C`` itself is never materialized.
    """
    means, whiteners, whitened_views = _whitening_from_views(views, epsilon)
    tensor = covariance_tensor(whitened_views)
    return WhitenedTensor(
        means=means, whiteners=whiteners, tensor=tensor, epsilon=epsilon
    )


def whitened_covariance_operator(views, epsilon: float) -> WhitenedTensor:
    """Whitening state with ``M`` as an implicit operator — no ``∏ d_p``.

    The tensor-free counterpart of :func:`whitened_covariance_tensor`:
    identical means and whiteners, but ``M`` is represented by a
    :class:`~repro.tensor.operator.CovarianceTensorOperator` over the
    whitened views, so peak memory stays ``O(Σ d_p (d_p + N))`` however
    large ``∏ d_p`` grows.
    """
    means, whiteners, whitened_views = _whitening_from_views(views, epsilon)
    operator = CovarianceTensorOperator.from_views(whitened_views)
    return WhitenedTensor(
        means=means, whiteners=whiteners, operator=operator, epsilon=epsilon
    )


def _streaming_whitening_pass(stream, epsilon: float):
    """First stream pass: exact means and whiteners per view."""
    statistics = [StreamingCovariance() for _ in range(stream.n_views)]
    for chunks in iter_validated_chunks(stream):
        for accumulator, chunk in zip(statistics, chunks):
            accumulator.update(chunk)
    means = [accumulator.mean.reshape(-1, 1) for accumulator in statistics]
    whiteners = [
        regularized_inverse_sqrt(accumulator.covariance(), epsilon)
        for accumulator in statistics
    ]
    return means, whiteners


def whitened_covariance_tensor_streaming(
    stream, epsilon: float, *, chunk_size: int | None = None
) -> WhitenedTensor:
    """Out-of-core version of :func:`whitened_covariance_tensor`.

    Makes two passes over a :class:`~repro.streaming.views.ViewStream`
    (or anything :func:`~repro.streaming.views.as_view_stream` accepts):

    1. per-view :class:`~repro.streaming.covariance.StreamingCovariance`
       accumulators collect exact means and covariances ``C_pp``, from
       which the whiteners ``C̃_pp^{-1/2}`` are built;
    2. each chunk is centered with the exact means, whitened, and fed to a
       :class:`~repro.streaming.covariance.StreamingCovarianceTensor`
       that assembles ``M`` — the covariance tensor of the whitened views.

    Peak accumulation memory is ``∏ d_p`` plus one chunk, independent of
    ``N``; the result matches the batch path to floating-point round-off,
    so downstream CP solves agree to tight tolerance.
    """
    from repro.streaming.covariance import StreamingCovarianceTensor

    stream = as_view_stream(stream, chunk_size)
    means, whiteners = _streaming_whitening_pass(stream, epsilon)
    dims = tuple(whitener.shape[0] for whitener in whiteners)
    accumulator = StreamingCovarianceTensor(
        dims=dims,
        center=False,
        shifts=[0.0] * len(dims),
        track_view_covariances=False,
    )
    for chunks in iter_validated_chunks(stream):
        accumulator.update(
            [
                whitener @ (np.asarray(chunk, dtype=np.float64) - mean)
                for whitener, chunk, mean in zip(whiteners, chunks, means)
            ]
        )
    return WhitenedTensor(
        means=means,
        whiteners=whiteners,
        tensor=accumulator.tensor(),
        epsilon=epsilon,
    )


def whitened_covariance_operator_streaming(
    stream, epsilon: float, *, chunk_size: int | None = None
) -> WhitenedTensor:
    """Fully out-of-core whitening state: stream-backed implicit ``M``.

    One pass builds exact means and whiteners
    (:class:`~repro.streaming.covariance.StreamingCovariance`); ``M`` is
    then represented by a stream-backed
    :class:`~repro.tensor.operator.CovarianceTensorOperator` that
    re-whitens chunks on the fly during each solver contraction. Nothing
    sized ``∏ d_p`` *or* ``N`` is ever resident — the end-to-end
    out-of-core path for views too wide for the dense tensor.
    """
    stream = as_view_stream(stream, chunk_size)
    means, whiteners = _streaming_whitening_pass(stream, epsilon)
    operator = CovarianceTensorOperator.from_stream(
        stream, whiteners=whiteners, means=means
    )
    return WhitenedTensor(
        means=means, whiteners=whiteners, operator=operator, epsilon=epsilon
    )


def multiview_canonical_correlation(views, canonical_vectors) -> float:
    """High-order canonical correlation ``(z_1 ⊙ z_2 ⊙ … ⊙ z_m)^T e``.

    Computes the left-hand side of Theorem 1 directly from data: project
    each (centered) view with its canonical vector and sum the element-wise
    product of the canonical variables, normalized by ``N`` to match the
    ``1/N``-scaled covariance tensor.
    """
    views = check_views(views, min_views=2)
    if len(canonical_vectors) != len(views):
        raise ValidationError(
            f"need one canonical vector per view ({len(views)}), "
            f"got {len(canonical_vectors)}"
        )
    n_samples = views[0].shape[1]
    product = np.ones(n_samples)
    for view, vector in zip(views, canonical_vectors):
        vector = np.asarray(vector, dtype=np.float64).ravel()
        if vector.shape[0] != view.shape[0]:
            raise ValidationError(
                "canonical vector length must match the view dimension; "
                f"got {vector.shape[0]} for dimension {view.shape[0]}"
            )
        product = product * (view.T @ vector)
    return float(product.sum() / n_samples)


@register("tcca")
class TCCA(MultiviewTransformer):
    """Tensor CCA for an arbitrary number of views.

    Parameters
    ----------
    n_components:
        Subspace dimension ``r`` per view; the concatenated output has
        ``m·r`` dimensions. Must satisfy ``r <= min_p d_p``.
    epsilon:
        Regularization ``ε`` of the variance constraints
        ``h_p^T (C_pp + ε I) h_p = 1`` (Eq. 4.8).
    solver:
        How the whitened tensor ``M`` is represented during the solve:
        ``"dense"`` materializes it (``∏ d_p`` memory — the paper's
        measured path), ``"implicit"`` runs the same decomposition against
        factored contractions of the whitened data
        (``O(N · Σ d_p · r)`` per sweep, no ``∏ d_p`` object), and
        ``"auto"`` (default) picks implicit once ``∏ d_p`` exceeds
        :data:`AUTO_SOLVER_DENSE_BUDGET`. Both produce the same canonical
        vectors up to round-off.
    decomposition:
        Solver for the rank-``r`` problem on the whitened tensor ``M``:
        ``"als"`` (joint CP-ALS — the paper's choice), ``"hopm"``
        (higher-order power method; only for ``n_components == 1``), or
        ``"power"`` (greedy rank-1 deflation, the ablation comparator —
        dense only).
    max_iter, tol:
        Iteration budget and tolerance passed to the tensor solver.
    random_state:
        Seed for solver initialization.

    Attributes
    ----------
    canonical_vectors_:
        List of ``(d_p, r)`` matrices ``H_p = C̃_pp^{-1/2} U_p``.
    factors_:
        The unit-norm whitened factors ``U_p`` of the CP decomposition.
    correlations_:
        CP weights ``λ^{(k)}`` — the attained canonical correlations per
        component (descending in magnitude for the ALS solver).
    covariance_tensor_shape_:
        Shape of the covariance tensor ``(d_1, …, d_m)``; its product is
        the memory cost the complexity experiments measure (and what the
        implicit solver avoids paying).
    solver_used_:
        ``"dense"`` or ``"implicit"`` — the resolved solver of this fit.
    """

    #: derived solver output that transform never reads — not persisted.
    _non_persistent_ = ("decomposition_result_",)

    def __init__(
        self,
        n_components: int = 1,
        epsilon: float = 1e-2,
        *,
        solver: str = "auto",
        decomposition: str = "als",
        max_iter: int = 200,
        tol: float = 1e-8,
        random_state=None,
    ):
        self.n_components = check_positive_int(n_components, "n_components")
        if epsilon < 0.0:
            raise ValidationError(f"epsilon must be >= 0, got {epsilon}")
        self.epsilon = float(epsilon)
        if solver not in _SOLVERS:
            raise ValidationError(
                f"unknown solver {solver!r}; expected one of {_SOLVERS}"
            )
        self.solver = solver
        if decomposition not in _DECOMPOSITIONS:
            raise ValidationError(
                f"unknown decomposition {decomposition!r}; expected one of "
                f"{_DECOMPOSITIONS}"
            )
        self.decomposition = decomposition
        if decomposition == "hopm" and self.n_components != 1:
            raise ValidationError(
                "decomposition='hopm' extracts a single component; use "
                "'als' or 'power' for n_components > 1"
            )
        if decomposition == "power" and solver == "implicit":
            raise ValidationError(
                "decomposition='power' deflates dense residuals and has no "
                "implicit form; use solver='dense' (or 'auto') with it"
            )
        self.max_iter = check_positive_int(max_iter, "max_iter")
        self.tol = float(tol)
        self.random_state = random_state

    def fit(self, views, *, precomputed: WhitenedTensor | None = None) -> "TCCA":
        """Learn canonical vectors from ``m >= 2`` views of shape ``(d_p, N)``.

        Parameters
        ----------
        views:
            The view matrices.
        precomputed:
            Optional whitening state from
            :func:`whitened_covariance_tensor` /
            :func:`whitened_covariance_operator` computed on the *same*
            views with ``epsilon == self.epsilon``; skips the tensor
            construction (useful when sweeping ``n_components``).
        """
        views = check_views(views, min_views=2)
        dims = [view.shape[0] for view in views]
        self._check_rank(dims)
        solver = resolve_tcca_solver(self.solver, dims, self.decomposition)
        if precomputed is None:
            if solver == "implicit":
                precomputed = whitened_covariance_operator(
                    views, self.epsilon
                )
            else:
                precomputed = whitened_covariance_tensor(views, self.epsilon)
        else:
            self._check_precomputed(precomputed, dims)
            solver = self._solver_for_precomputed(precomputed, solver)
        return self._finish_fit(precomputed, dims, solver)

    def fit_stream(
        self,
        stream,
        *,
        chunk_size: int | None = None,
        precomputed: WhitenedTensor | None = None,
    ) -> "TCCA":
        """Learn canonical vectors from a chunked multi-view stream.

        The out-of-core counterpart of :meth:`fit`: consumes a
        :class:`~repro.streaming.views.ViewStream` (or a
        :class:`~repro.datasets.synthetic.MultiviewDataset` / list of view
        matrices, wrapped automatically) chunk by chunk, so peak
        covariance-accumulation memory is independent of the sample count.
        With the dense solver the tensor is assembled in two passes
        (:func:`whitened_covariance_tensor_streaming`); with the implicit
        solver nothing ``∏ d_p``-sized exists either — the solver
        contracts against the stream directly
        (:func:`whitened_covariance_operator_streaming`). On the same data
        this yields the same canonical vectors as :meth:`fit` up to
        floating-point round-off.

        Parameters
        ----------
        stream:
            The chunked data source; iterated multiple times
            (streams must be re-iterable).
        chunk_size:
            Optional chunk size forwarded to the stream wrapper.
        precomputed:
            Optional whitening state built on the *same* stream with
            ``epsilon == self.epsilon``.
        """
        stream = as_view_stream(stream, chunk_size)
        dims = list(stream.dims)
        if len(dims) < 2:
            raise ValidationError(
                f"need at least 2 views, stream has {len(dims)}"
            )
        self._check_rank(dims)
        solver = resolve_tcca_solver(self.solver, dims, self.decomposition)
        if precomputed is None:
            if solver == "implicit":
                precomputed = whitened_covariance_operator_streaming(
                    stream, self.epsilon
                )
            else:
                precomputed = whitened_covariance_tensor_streaming(
                    stream, self.epsilon
                )
        else:
            self._check_precomputed(precomputed, dims)
            solver = self._solver_for_precomputed(precomputed, solver)
        return self._finish_fit(precomputed, dims, solver)

    def _check_rank(self, dims) -> None:
        max_rank = min(dims)
        if self.n_components > max_rank:
            raise ValidationError(
                f"n_components={self.n_components} exceeds the smallest view "
                f"dimension {max_rank} (the paper requires r <= min_p d_p)"
            )

    def _check_precomputed(self, precomputed: WhitenedTensor, dims) -> None:
        # isclose rather than !=: an ε that round-tripped through a JSON
        # config (or was recomputed as e.g. 0.1 * 0.1) must still match
        # the precomputed whitening state it was built with.
        if not math.isclose(
            precomputed.epsilon, self.epsilon, rel_tol=1e-9, abs_tol=1e-12
        ):
            raise ValidationError(
                f"precomputed state was built with epsilon="
                f"{precomputed.epsilon}, the estimator uses "
                f"{self.epsilon}"
            )
        if precomputed.dims != list(dims):
            raise ValidationError(
                "precomputed state dimensions do not match the views"
            )

    def _solver_for_precomputed(
        self, precomputed: WhitenedTensor, resolved: str
    ) -> str:
        """Reconcile the resolved solver with what ``precomputed`` carries.

        ``solver="auto"`` adapts to the available form (whoever built the
        state already paid its cost); an *explicit* solver choice that the
        state cannot serve is an error rather than a silent fallback.
        """
        if self.solver == "auto":
            if resolved == "implicit" and not precomputed.has_operator:
                return "dense"
            if resolved == "dense" and not precomputed.has_tensor:
                if self.decomposition == "power":
                    raise ValidationError(
                        "decomposition='power' needs a precomputed state "
                        "carrying the dense tensor; this one holds only "
                        "the implicit operator (build it with "
                        "whitened_covariance_tensor)"
                    )
                return "implicit"
            return resolved
        if resolved == "dense" and not precomputed.has_tensor:
            raise ValidationError(
                "solver='dense' needs a precomputed state carrying the "
                "dense tensor; this one holds only the implicit operator "
                "(build it with whitened_covariance_tensor)"
            )
        if resolved == "implicit" and not precomputed.has_operator:
            raise ValidationError(
                "solver='implicit' needs a precomputed state carrying the "
                "operator; this one holds only the dense tensor "
                "(build it with whitened_covariance_operator)"
            )
        return resolved

    def _finish_fit(
        self, precomputed: WhitenedTensor, dims, solver: str
    ) -> "TCCA":
        """Decompose the whitened tensor and set the fitted attributes."""
        self.means_ = precomputed.means
        whiteners = precomputed.whiteners
        self.covariance_tensor_shape_ = tuple(int(d) for d in dims)
        self.solver_used_ = solver

        if solver == "implicit":
            result = self._decompose_implicit(precomputed.operator)
        else:
            result = self._decompose(precomputed.tensor)
        # Canonicalizing CP signs makes the fit deterministic up to
        # round-off: batch and streaming tensor assemblies that differ in
        # the last bit land on the same canonical vectors.
        cp = result.cp.normalize().canonicalize_signs()
        self.decomposition_result_ = result
        self.correlations_ = cp.weights.copy()
        self.factors_ = cp.factors
        self.canonical_vectors_ = [
            whitener @ factor
            for whitener, factor in zip(whiteners, cp.factors)
        ]
        self.n_views_ = len(dims)
        self._dims = list(dims)
        return self

    def _decompose(self, m_tensor: np.ndarray):
        if self.decomposition == "als":
            return cp_als(
                m_tensor,
                self.n_components,
                max_iter=self.max_iter,
                tol=self.tol,
                random_state=self.random_state,
                warn_on_no_convergence=False,
            )
        if self.decomposition == "hopm":
            return best_rank1(
                m_tensor,
                max_iter=self.max_iter,
                tol=self.tol,
                random_state=self.random_state,
                warn_on_no_convergence=False,
            )
        return tensor_power_deflation(
            m_tensor,
            self.n_components,
            max_iter=self.max_iter,
            tol=self.tol,
            random_state=self.random_state,
        )

    def _decompose_implicit(self, operator: CovarianceTensorOperator):
        if self.decomposition == "als":
            return cp_als_implicit(
                operator,
                self.n_components,
                max_iter=self.max_iter,
                tol=self.tol,
                random_state=self.random_state,
                warn_on_no_convergence=False,
            )
        if self.decomposition == "hopm":
            return best_rank1_implicit(
                operator,
                max_iter=self.max_iter,
                tol=self.tol,
                random_state=self.random_state,
                warn_on_no_convergence=False,
            )
        # Unreachable through resolve_tcca_solver / __init__ validation.
        raise ValidationError(
            "decomposition='power' has no implicit form"
        )

    def transform(self, views) -> list[np.ndarray]:
        """Project every view: ``Z_p = X_p^T H_p`` of shape ``(N, r)``."""
        self._check_fitted()
        views = self._check_transform_views(views, self._dims)
        return [
            (view - mean).T @ vectors
            for view, mean, vectors in zip(
                views, self.means_, self.canonical_vectors_
            )
        ]

    def canonical_correlations(self, views) -> np.ndarray:
        """Empirical high-order correlations of each component on ``views``.

        Evaluates Theorem 1's data-side expression for every fitted
        component — useful for validating the tensor-side optimum.
        """
        self._check_fitted()
        views = self._check_transform_views(views, self._dims)
        centered = [view - mean for view, mean in zip(views, self.means_)]
        return np.array(
            [
                multiview_canonical_correlation(
                    centered,
                    [vectors[:, k] for vectors in self.canonical_vectors_],
                )
                for k in range(self.n_components)
            ]
        )
