"""Staged TCCA fit engine: ``ingest → moments → whiten → build → decompose → finalize``.

Before this module, the library had five tangled fit paths (batch/stream ×
dense/implicit, plus precomputed) inside :class:`~repro.core.tcca.TCCA` and
a parallel decompose copy in ``KTCCA``. The engine decomposes every fit
into the same explicit stages:

1. **ingest** — fold raw data (a batch of views or a chunked stream) into
2. **moments** — a :class:`MomentState`: mergeable, serializable
   sufficient statistics built exclusively from the
   :mod:`repro.streaming.covariance` accumulators;
3. **whiten** — per-view whiteners ``C̃_pp^{-1/2}`` from the moments;
4. **build** — the whitened tensor ``M``, dense
   (:class:`WhitenedTensor` carrying the array) or implicit (carrying a
   :class:`~repro.tensor.operator.CovarianceTensorOperator`);
5. **decompose** — one dispatch over the CP solvers
   (ALS / HOPM / deflation, dense or implicit) with an optional
   ``factors_init`` warm start;
6. **finalize** — normalize, canonicalize, and map the whitened factors
   back through the per-view transforms.

Because the moments are *additive over samples*, the same stages run
incrementally: :meth:`~repro.core.tcca.TCCA.partial_fit` folds a new
minibatch into the stored :class:`MomentState`, re-whitens, rebuilds ``M``,
and warm-starts the decomposition from the previous factors — justified by
the local linear convergence of alternating low-rank approximation methods
(Hu & Ye 2019; see PAPERS.md), so a refresh near the previous optimum
re-converges in a handful of sweeps instead of a cold solve.
:meth:`MomentState.merge` additionally makes the ingest stage
shard-parallel: workers accumulate disjoint sample shards and the merged
state is exactly the single-pass state.

Two moment policies cover the two solver families:

* ``track_tensor=True`` — the full raw covariance tensor ``C`` (plus the
  exact mean-correction subset moments) is accumulated; the build stage
  whitens it with mode products ``M = C ×_1 W_1 … ×_m W_m``. State is
  ``O(∏ d_p)``, independent of the sample count — the dense solver's
  resumable form.
* ``retain_samples=True`` — only per-view moments are accumulated
  (``O(Σ d_p²)``) and the raw minibatches are retained in a
  :class:`SampleStore`; the build stage re-whitens them into an implicit
  operator. State is ``O(N · Σ d_p)`` — far below ``∏ d_p`` in exactly
  the high-dimensional regime the implicit solver exists for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial

import numpy as np

from repro.exceptions import ValidationError
from repro.linalg.covariance import covariance_tensor
from repro.linalg.whitening import regularized_inverse_sqrt
from repro.parallel.executors import ExecutionPolicy
from repro.parallel.sharding import accumulate_parallel, parallel_chunk_size
from repro.streaming.covariance import (
    StreamingCovariance,
    StreamingCovarianceTensor,
    check_nan_policy,
    screen_chunks,
)
from repro.streaming.views import (
    ArrayViewStream,
    ViewStream,
    as_view_stream,
    iter_validated_chunks,
)
from repro.tensor.decomposition import (
    best_rank1,
    best_rank1_implicit,
    cp_als,
    cp_als_implicit,
    tensor_power_deflation,
)
from repro.tensor.dense import multi_mode_product
from repro.tensor.operator import CovarianceTensorOperator
from repro.utils.validation import check_views, ensure_2d

__all__ = [
    "ChunkWhitener",
    "DecompositionSpec",
    "FinalizedFit",
    "MomentState",
    "SampleStore",
    "WhitenedTensor",
    "WhiteningState",
    "build_stage",
    "decompose_stage",
    "finalize_stage",
    "ingest_stage",
    "whiten_stage",
    "whitened_covariance_operator",
    "whitened_covariance_operator_streaming",
    "whitened_covariance_tensor",
    "whitened_covariance_tensor_streaming",
]

#: serialization layout version of :meth:`MomentState.state_dict`.
MOMENT_STATE_VERSION = 1


def _validate_chunks(chunks, *, require_finite: bool = True) -> list[np.ndarray]:
    """One aligned minibatch: >= 2 two-dimensional views, equal widths.

    The single copy of the chunk contract shared by :class:`SampleStore`
    and the per-view-accumulator path of :class:`MomentState`
    (:class:`~repro.streaming.covariance.StreamingCovarianceTensor`
    enforces the same rules internally for the tensor path).
    ``require_finite=False`` defers NaN/Inf handling to the caller's
    :func:`~repro.streaming.covariance.screen_chunks` pass.
    """
    chunks = [
        ensure_2d(
            chunk,
            name=f"chunks[{index}]",
            require_finite=require_finite,
        )
        for index, chunk in enumerate(chunks)
    ]
    if len(chunks) < 2:
        raise ValidationError(
            f"need at least 2 view chunks, got {len(chunks)}"
        )
    widths = {chunk.shape[1] for chunk in chunks}
    if len(widths) != 1:
        raise ValidationError(
            f"view chunks must share the sample count; got "
            f"{sorted(widths)}"
        )
    return chunks


def _is_parallel(policy) -> bool:
    """Whether ``policy`` asks for more than in-process serial execution."""
    return isinstance(policy, ExecutionPolicy) and policy.n_workers > 1


def _whiten_view(whitener, view, mean) -> np.ndarray:
    """Center and whiten one resident view (picklable worker body)."""
    return whitener @ (np.asarray(view, dtype=np.float64) - mean)


def _accumulate_dtype(dtype_policy):
    """Moment-accumulation dtype of a policy (``None`` → float64 default)."""
    return None if dtype_policy is None else dtype_policy.accumulate


def _compute_cast(array, dtype_policy):
    """Cast a finalized array to the policy's compute dtype (no-op when
    the policy is absent or already float64 — the bit-for-bit default)."""
    if dtype_policy is None:
        return array
    return array.astype(dtype_policy.compute, copy=False)


class ChunkWhitener:
    """Picklable per-chunk whitening transform for parallel accumulation.

    Applies the fitted per-view centering and whitening maps to one
    aligned minibatch — the ``transform`` hook of
    :func:`repro.parallel.sharding.accumulate_parallel` during the second
    (tensor-assembly) pass of a parallel streaming fit.
    """

    def __init__(self, whiteners, means):
        self.whiteners = [
            np.asarray(whitener, dtype=np.float64) for whitener in whiteners
        ]
        self.means = [
            np.asarray(mean, dtype=np.float64).reshape(-1, 1)
            for mean in means
        ]

    def __call__(self, chunks) -> list[np.ndarray]:
        return [
            _whiten_view(whitener, chunk, mean)
            for whitener, chunk, mean in zip(self.whiteners, chunks, self.means)
        ]


# -- stage payloads ---------------------------------------------------------


class WhitenedTensor:
    """Precomputed whitening state shared by TCCA fits of different ranks.

    Building the whitened covariance tensor ``M`` is the dominant cost of a
    TCCA fit and is independent of ``n_components``; computing it once and
    passing it to several ``TCCA.fit(views, precomputed=...)`` calls
    amortizes it across a dimension sweep. The state carries ``M`` in one
    (or both) of two forms:

    * ``tensor`` — the dense ``∏ d_p`` array
      (:func:`whitened_covariance_tensor`), consumed by the dense solver;
    * ``operator`` — a
      :class:`~repro.tensor.operator.CovarianceTensorOperator`
      (:func:`whitened_covariance_operator`), consumed by the implicit
      solver without ``∏ d_p`` memory.
    """

    def __init__(self, means, whiteners, tensor=None, epsilon=0.0, *,
                 operator=None):
        if tensor is None and operator is None:
            raise ValidationError(
                "WhitenedTensor needs the dense tensor, the operator, or "
                "both"
            )
        self.means = means
        self.whiteners = whiteners
        self.tensor = tensor
        self.operator = operator
        self.epsilon = float(epsilon)

    @property
    def dims(self) -> list[int]:
        """Feature dimension of each view."""
        return [whitener.shape[0] for whitener in self.whiteners]

    @property
    def has_tensor(self) -> bool:
        """Whether the dense tensor form is available."""
        return self.tensor is not None

    @property
    def has_operator(self) -> bool:
        """Whether the implicit operator form is available."""
        return self.operator is not None


@dataclass(frozen=True)
class DecompositionSpec:
    """What the decompose stage should solve, independent of *how* ``M``
    is represented (dense array or implicit operator)."""

    method: str = "als"
    rank: int = 1
    max_iter: int = 200
    tol: float = 1e-8
    random_state: object = None


@dataclass
class WhiteningState:
    """Output of the whiten stage: per-view centering and whitening maps."""

    means: list  # (d_p, 1) columns
    whiteners: list  # (d_p, d_p) symmetric inverse square roots
    epsilon: float


@dataclass
class FinalizedFit:
    """Output of the finalize stage, ready to become fitted attributes."""

    result: object  # the raw DecompositionResult (sweep counts, history)
    cp: object  # normalized (and possibly sign-canonicalized) CPTensor
    correlations: np.ndarray
    factors: list = field(default_factory=list)
    canonical_vectors: list = field(default_factory=list)


# -- moments ----------------------------------------------------------------


class SampleStore:
    """Retained raw minibatches — the implicit path's resumable state.

    The implicit solver's whole point is never materializing anything
    ``∏ d_p``-sized, so its mergeable "moments" are the data itself plus
    per-view statistics: ``O(N · Σ d_p)`` memory, which in the implicit
    regime (``∏ d_p ≫ N · Σ d_p``) is the cheaper sufficient statistic.
    Chunks are copied on :meth:`add` so callers may reuse their buffers.
    """

    def __init__(self, dims=None):
        self._dims = None if dims is None else tuple(int(d) for d in dims)
        self._chunks: list[list[np.ndarray]] = []
        self._n = 0

    @property
    def dims(self) -> tuple[int, ...] | None:
        """Per-view feature dimensions (``None`` until the first add)."""
        return self._dims

    @property
    def n_samples(self) -> int:
        """Total retained samples."""
        return self._n

    def add(self, chunks) -> "SampleStore":
        """Retain one aligned minibatch of ``(d_p, n_chunk)`` arrays."""
        chunks = [
            np.array(chunk, dtype=np.float64, copy=True)
            for chunk in _validate_chunks(chunks)
        ]
        if self._dims is None:
            self._dims = tuple(chunk.shape[0] for chunk in chunks)
        if tuple(chunk.shape[0] for chunk in chunks) != self._dims:
            raise ValidationError(
                f"chunk dimensions {[c.shape[0] for c in chunks]} do not "
                f"match store dims {list(self._dims)}"
            )
        self._chunks.append(chunks)
        self._n += chunks[0].shape[1]
        return self

    def merge(self, other: "SampleStore") -> "SampleStore":
        """Append another store's retained samples to this one."""
        if not isinstance(other, SampleStore):
            raise ValidationError(
                f"can only merge SampleStore, got {type(other).__name__}"
            )
        if other._n == 0:
            return self
        if self._dims is not None and other._dims != self._dims:
            raise ValidationError(
                f"cannot merge store dims {other._dims} into {self._dims}"
            )
        if self._dims is None:
            self._dims = other._dims
        # Adopt by reference: the arrays were already defensively copied
        # when other.add() ingested them and are never written afterwards,
        # so aliasing is safe — and the shard-merge reduce
        # (accumulate_parallel) would otherwise transiently hold every
        # retained sample twice while the shard states are discarded.
        self._chunks.extend(list(chunks) for chunks in other._chunks)
        self._n += other._n
        return self

    @property
    def views(self) -> list[np.ndarray]:
        """The retained data as one concatenated ``(d_p, N)`` array per view."""
        if self._n == 0:
            raise ValidationError("sample store is empty")
        return [
            np.concatenate(
                [chunks[p] for chunks in self._chunks], axis=1
            )
            for p in range(len(self._dims))
        ]


class MomentState:
    """Mergeable, serializable sufficient statistics of a resumable fit.

    The single source of moments for every ingest path: built exclusively
    from :class:`~repro.streaming.covariance.StreamingCovariance` /
    :class:`~repro.streaming.covariance.StreamingCovarianceTensor`
    accumulators, so batch views, chunked streams, incremental
    minibatches, and shard-parallel workers all produce the same state.

    Parameters
    ----------
    track_tensor:
        Accumulate the full raw covariance tensor (with exact mean
        correction) — what the dense build stage needs. ``O(∏ d_p)``
        state, independent of the sample count.
    retain_samples:
        Keep the raw minibatches in a :class:`SampleStore` — what the
        implicit build stage needs. ``O(N · Σ d_p)`` state, no ``∏ d_p``
        object anywhere.
    nan_policy:
        ``"raise"`` (default) rejects minibatches carrying NaN/Inf with
        a typed :class:`~repro.exceptions.ValidationError` naming the
        view and chunk index; ``"skip"`` drops the affected samples
        from every view (keeping them aligned) and counts them in
        :attr:`n_skipped`.
    dtype:
        Accumulation dtype of every moment buffer (``None`` → float64 —
        the :class:`~repro.backends.DTypePolicy` default, including
        under ``precision="mixed"``, where only the *sweeps* drop to
        float32). Recorded in :meth:`state_dict` and enforced by
        :meth:`merge`, so shards accumulated under different precision
        policies cannot be silently combined.

    With both flags off only per-view statistics are kept — the cold fit
    paths' first pass (means + whiteners), where ``M`` is then assembled
    directly from the still-available source data.
    """

    def __init__(
        self,
        *,
        track_tensor: bool = False,
        retain_samples: bool = False,
        dims=None,
        nan_policy: str = "raise",
        dtype=None,
    ):
        if track_tensor and retain_samples:
            raise ValidationError(
                "choose one moment policy: track_tensor (dense) or "
                "retain_samples (implicit), not both"
            )
        self.track_tensor = bool(track_tensor)
        self.retain_samples = bool(retain_samples)
        self.nan_policy = check_nan_policy(nan_policy)
        self._dtype = np.dtype(np.float64 if dtype is None else dtype)
        self._n_skipped = 0
        self._chunk_index = 0
        dims = None if dims is None else tuple(int(d) for d in dims)
        self._tensor_acc = (
            StreamingCovarianceTensor(
                dims=dims,
                center=True,
                track_view_covariances=True,
                nan_policy=self.nan_policy,
                dtype=self._dtype,
            )
            if self.track_tensor
            else None
        )
        self._view_accs: list[StreamingCovariance] | None = (
            None
            if self.track_tensor
            else (
                None
                if dims is None
                else [
                    StreamingCovariance(d, dtype=self._dtype) for d in dims
                ]
            )
        )
        self._store = (
            SampleStore(dims=dims) if self.retain_samples else None
        )
        self._n = 0

    # -- accumulation -------------------------------------------------------

    def update(self, chunks) -> "MomentState":
        """Fold one aligned minibatch of ``(d_p, n_chunk)`` arrays in."""
        if self.track_tensor:
            # The tensor accumulator screens non-finite samples itself
            # (same nan_policy); mirror its post-screen sample count.
            self._tensor_acc.update(chunks)
            self._n = self._tensor_acc.n_samples
            return self
        chunks = _validate_chunks(chunks, require_finite=False)
        if self._view_accs is None:
            self._view_accs = [
                StreamingCovariance(chunk.shape[0], dtype=self._dtype)
                for chunk in chunks
            ]
        if len(chunks) != len(self._view_accs):
            raise ValidationError(
                f"expected {len(self._view_accs)} view chunks, got "
                f"{len(chunks)}"
            )
        chunks, skipped = screen_chunks(
            chunks,
            nan_policy=self.nan_policy,
            chunk_index=self._chunk_index,
        )
        self._chunk_index += 1
        self._n_skipped += skipped
        if chunks[0].shape[1] == 0:
            # every sample of the minibatch was skipped: nothing to fold
            return self
        for accumulator, chunk in zip(self._view_accs, chunks):
            accumulator.update(chunk)
        if self.retain_samples:
            self._store.add(chunks)
        self._n += int(chunks[0].shape[1])
        return self

    def merge(self, other: "MomentState") -> "MomentState":
        """Fold another state's samples in — exact shard-parallel reduce."""
        if not isinstance(other, MomentState):
            raise ValidationError(
                f"can only merge MomentState, got {type(other).__name__}"
            )
        if (
            other.track_tensor != self.track_tensor
            or other.retain_samples != self.retain_samples
        ):
            raise ValidationError(
                "cannot merge moment states with different policies"
            )
        if other._dtype != self._dtype:
            raise ValidationError(
                f"cannot merge a {other._dtype.name} moment state into a "
                f"{self._dtype.name} one; shards must be accumulated "
                "under the same accumulate_dtype (re-run the divergent "
                "shard with a matching precision policy)"
            )
        if self.track_tensor:
            # the tensor merge folds skip counts in even when the other
            # state holds zero surviving samples
            self._tensor_acc.merge(other._tensor_acc)
            self._n = self._tensor_acc.n_samples
            return self
        # an all-skipped shard still contributes its skip count
        self._n_skipped += other._n_skipped
        if other._n == 0:
            return self
        if self._view_accs is None:
            self._view_accs = [
                StreamingCovariance(acc.dim, dtype=self._dtype)
                for acc in other._view_accs
            ]
        if len(self._view_accs) != len(other._view_accs):
            raise ValidationError(
                "cannot merge moment states with different view counts"
            )
        for mine, theirs in zip(self._view_accs, other._view_accs):
            mine.merge(theirs)
        if self.retain_samples:
            self._store.merge(other._store)
        self._n += other._n
        return self

    # -- finalized statistics ------------------------------------------------

    def _statistics(self) -> list[StreamingCovariance]:
        if self._n == 0:
            raise ValidationError(
                "moment state is empty; feed at least one minibatch first"
            )
        if self.track_tensor:
            return self._tensor_acc.view_statistics
        return self._view_accs

    @property
    def n_samples(self) -> int:
        """Number of samples folded in so far."""
        return self._n

    @property
    def dtype(self) -> np.dtype:
        """Accumulation dtype of the moment buffers."""
        return self._dtype

    @property
    def n_skipped(self) -> int:
        """Samples dropped by ``nan_policy="skip"`` so far."""
        if self.track_tensor:
            return self._tensor_acc.n_skipped
        return self._n_skipped

    @property
    def dims(self) -> tuple[int, ...] | None:
        """Per-view feature dimensions (``None`` while empty)."""
        if self.track_tensor:
            return self._tensor_acc.dims
        if self._view_accs is None:
            return None
        return tuple(acc.dim for acc in self._view_accs)

    @property
    def n_views(self) -> int | None:
        """Number of views (``None`` while empty)."""
        dims = self.dims
        return None if dims is None else len(dims)

    def means(self) -> list[np.ndarray]:
        """Exact per-view means as ``(d_p, 1)`` columns."""
        return [acc.mean.reshape(-1, 1) for acc in self._statistics()]

    def view_covariances(self) -> list[np.ndarray]:
        """Exact per-view covariances ``C_pp``."""
        return [acc.covariance() for acc in self._statistics()]

    def tensor(self) -> np.ndarray:
        """The centered raw covariance tensor ``C`` (dense policy only)."""
        if not self.track_tensor:
            raise ValidationError(
                "this moment state tracks no covariance tensor "
                "(track_tensor=False); it serves the implicit build path"
            )
        return self._tensor_acc.tensor()

    @property
    def samples(self) -> SampleStore:
        """The retained minibatches (implicit policy only)."""
        if not self.retain_samples:
            raise ValidationError(
                "this moment state retains no samples "
                "(retain_samples=False); it serves the dense build path"
            )
        return self._store

    # -- serialization -------------------------------------------------------

    @staticmethod
    def _lift_arrays(state: dict, arrays: dict, prefix: str) -> dict:
        """Move array values of ``state`` into ``arrays`` under ``prefix``."""
        meta = {}
        for key, value in state.items():
            if isinstance(value, np.ndarray):
                arrays[f"{prefix}{key}"] = value
                meta[key] = {"__array__": f"{prefix}{key}"}
            else:
                meta[key] = value
        return meta

    @staticmethod
    def _restore_arrays(meta: dict, arrays: dict) -> dict:
        state = {}
        for key, value in meta.items():
            if isinstance(value, dict) and "__array__" in value:
                state[key] = np.asarray(arrays[value["__array__"]])
            else:
                state[key] = value
        return state

    def state_dict(self) -> tuple[dict, dict]:
        """``(meta, arrays)`` — JSON-able metadata plus named arrays.

        The split matches the model persistence layout
        (:mod:`repro.api.persistence`): ``meta`` goes into the JSON
        header, ``arrays`` into the ``.npz`` payload, and
        :meth:`from_state_dict` reassembles an identical state.
        """
        arrays: dict[str, np.ndarray] = {}
        meta: dict = {
            "version": MOMENT_STATE_VERSION,
            "track_tensor": self.track_tensor,
            "retain_samples": self.retain_samples,
            "n_samples": int(self._n),
            "nan_policy": self.nan_policy,
            "dtype": self._dtype.name,
            "n_skipped": int(self._n_skipped),
            "chunk_index": int(self._chunk_index),
        }
        if self.track_tensor:
            state = self._tensor_acc.state_dict()
            moments = state.pop("moments")
            views = state.pop("views")
            meta["accumulator"] = state
            if moments is not None:
                meta["moment_keys"] = sorted(moments)
                for key, moment in moments.items():
                    arrays[f"moment.{key}"] = moment
            meta["views"] = (
                None
                if views is None
                else [
                    self._lift_arrays(view, arrays, f"view{p}.")
                    for p, view in enumerate(views)
                ]
            )
        else:
            meta["views"] = (
                None
                if self._view_accs is None
                else [
                    self._lift_arrays(
                        acc.state_dict(), arrays, f"view{p}."
                    )
                    for p, acc in enumerate(self._view_accs)
                ]
            )
        if self.retain_samples and self._store.n_samples > 0:
            for p, view in enumerate(self._store.views):
                arrays[f"samples.{p}"] = view
            meta["n_stored_views"] = len(self._store.dims)
        return meta, arrays

    @classmethod
    def from_state_dict(cls, meta: dict, arrays: dict) -> "MomentState":
        """Rebuild a state from :meth:`state_dict` output."""
        version = meta.get("version")
        if version != MOMENT_STATE_VERSION:
            raise ValidationError(
                f"unsupported moment-state version {version!r} "
                f"(this library writes {MOMENT_STATE_VERSION})"
            )
        state = cls(
            track_tensor=bool(meta["track_tensor"]),
            retain_samples=bool(meta["retain_samples"]),
            # .get defaults keep states written before nan_policy
            # existed loadable (they never skipped anything)
            nan_policy=meta.get("nan_policy", "raise"),
            # states written before dtype existed were always float64
            dtype=meta.get("dtype"),
        )
        state._n_skipped = int(meta.get("n_skipped", 0))
        state._chunk_index = int(meta.get("chunk_index", 0))
        views_meta = meta.get("views")
        restored_views = (
            None
            if views_meta is None
            else [cls._restore_arrays(view, arrays) for view in views_meta]
        )
        if state.track_tensor:
            accumulator_state = dict(meta["accumulator"])
            accumulator_state["views"] = restored_views
            accumulator_state["moments"] = (
                {
                    key: np.asarray(arrays[f"moment.{key}"])
                    for key in meta.get("moment_keys", [])
                }
                if meta.get("moment_keys") is not None
                else None
            )
            state._tensor_acc = StreamingCovarianceTensor.from_state_dict(
                accumulator_state
            )
        elif restored_views is not None:
            state._view_accs = [
                StreamingCovariance.from_state_dict(view)
                for view in restored_views
            ]
        if state.retain_samples and meta.get("n_stored_views"):
            state._store.add(
                [
                    np.asarray(arrays[f"samples.{p}"])
                    for p in range(int(meta["n_stored_views"]))
                ]
            )
        state._n = int(meta["n_samples"])
        return state


# -- stages -----------------------------------------------------------------


def ingest_stage(
    moments: MomentState, source, *, chunk_size=None, policy=None
) -> MomentState:
    """Fold a data source into ``moments`` and return it.

    ``source`` is either a plain sequence of ``(d_p, N)`` view matrices
    (consumed as a single minibatch — one accumulator update, all BLAS)
    or a :class:`~repro.streaming.views.ViewStream` / stream-coercible
    object (e.g. a ``MultiviewDataset``), consumed chunk by chunk so
    nothing sample-sized beyond one chunk is resident (unless the moment
    policy retains samples). Passing ``chunk_size`` forces the chunked
    path for any source.

    A parallel ``policy`` turns the ingest into map-reduce: the stream is
    split into shards (a plain batch is wrapped in an
    :class:`~repro.streaming.views.ArrayViewStream` first), each worker
    accumulates a fresh state over its shard, and the shard states are
    folded into ``moments`` with the exact :meth:`MomentState.merge` —
    same statistics as the sequential pass to round-off.
    """
    # the moment state owns NaN/Inf handling (its nan_policy either
    # raises a chunk-indexed error or skips-and-counts), so the wrappers
    # here must not pre-reject non-finite input
    if _is_parallel(policy):
        stream = as_view_stream(source, chunk_size, require_finite=False)
        moments.merge(
            accumulate_parallel(
                stream,
                partial(
                    MomentState,
                    track_tensor=moments.track_tensor,
                    retain_samples=moments.retain_samples,
                    dims=moments.dims,
                    nan_policy=moments.nan_policy,
                    dtype=moments.dtype,
                ),
                policy,
            )
        )
        return moments
    if (
        isinstance(source, ViewStream)
        or chunk_size is not None
        or hasattr(source, "views")
    ):
        stream = as_view_stream(source, chunk_size, require_finite=False)
        for chunks in iter_validated_chunks(stream):
            moments.update(chunks)
        return moments
    views = check_views(source, min_views=2, require_finite=False)
    moments.update(views)
    return moments


def whiten_stage(
    moments: MomentState, epsilon: float, *, policy=None
) -> WhiteningState:
    """Per-view means and whiteners ``(C_pp + ε I)^{-1/2}`` from moments.

    The ``m`` eigendecompositions are independent; a parallel ``policy``
    fans them across workers (one task per view).
    """
    means = moments.means()
    covariances = moments.view_covariances()
    if _is_parallel(policy) and len(covariances) > 1:
        whiteners = policy.map(
            partial(regularized_inverse_sqrt, epsilon=epsilon), covariances
        )
    else:
        whiteners = [
            regularized_inverse_sqrt(covariance, epsilon)
            for covariance in covariances
        ]
    return WhiteningState(means=means, whiteners=whiteners, epsilon=epsilon)


def build_stage(
    moments: MomentState,
    whitening: WhiteningState,
    solver: str,
    *,
    policy=None,
    dtype_policy=None,
) -> WhitenedTensor:
    """Assemble the whitened tensor ``M`` from mergeable moments.

    * ``solver="dense"`` — mode-multiply the accumulated raw covariance
      tensor: ``M = C ×_1 W_1 … ×_m W_m`` (Theorem 2 applied to the
      *stored* moments, so no re-pass over data is ever needed);
    * ``solver="implicit"`` — whiten the retained samples once and wrap
      them in a :class:`~repro.tensor.operator.CovarianceTensorOperator`.

    A :class:`~repro.backends.DTypePolicy` with a non-float64
    ``compute_dtype`` downcasts the *finished* ``M`` (dense) or the
    whitened views backing the operator (implicit) — whitening itself
    always runs in float64; the default policy changes nothing.
    """
    if solver == "dense":
        tensor = _compute_cast(
            multi_mode_product(moments.tensor(), whitening.whiteners),
            dtype_policy,
        )
        return WhitenedTensor(
            means=whitening.means,
            whiteners=whitening.whiteners,
            tensor=tensor,
            epsilon=whitening.epsilon,
        )
    if solver != "implicit":
        raise ValidationError(
            f"unknown build solver {solver!r}; expected 'dense' or "
            "'implicit'"
        )
    view_triples = list(
        zip(whitening.whiteners, moments.samples.views, whitening.means)
    )
    if _is_parallel(policy):
        whitened = policy.starmap(_whiten_view, view_triples)
    else:
        whitened = [
            _whiten_view(whitener, view, mean)
            for whitener, view, mean in view_triples
        ]
    whitened = [_compute_cast(view, dtype_policy) for view in whitened]
    operator = CovarianceTensorOperator.from_views(whitened, policy=policy)
    return WhitenedTensor(
        means=whitening.means,
        whiteners=whitening.whiteners,
        operator=operator,
        epsilon=whitening.epsilon,
    )


def decompose_stage(
    spec: DecompositionSpec,
    *,
    tensor=None,
    operator=None,
    factors_init=None,
    warn_on_no_convergence: bool = False,
):
    """One dispatch over every CP solver the estimators use.

    Exactly one of ``tensor`` (dense array) / ``operator`` (implicit)
    must be given; ``factors_init`` warm-starts ALS and HOPM (the greedy
    deflation solver re-solves from scratch — its residual subtraction
    has no meaningful warm start).
    """
    if (tensor is None) == (operator is None):
        raise ValidationError(
            "decompose_stage needs exactly one of tensor= or operator="
        )
    common = dict(
        max_iter=spec.max_iter,
        tol=spec.tol,
        random_state=spec.random_state,
        warn_on_no_convergence=warn_on_no_convergence,
        factors_init=factors_init,
    )
    if operator is not None:
        if spec.method == "als":
            return cp_als_implicit(operator, spec.rank, **common)
        if spec.method == "hopm":
            return best_rank1_implicit(operator, **common)
        raise ValidationError(
            f"decomposition {spec.method!r} has no implicit form"
        )
    if spec.method == "als":
        return cp_als(tensor, spec.rank, **common)
    if spec.method == "hopm":
        return best_rank1(tensor, **common)
    if spec.method == "power":
        return tensor_power_deflation(
            tensor,
            spec.rank,
            max_iter=spec.max_iter,
            tol=spec.tol,
            random_state=spec.random_state,
        )
    raise ValidationError(
        f"unknown decomposition {spec.method!r}; expected 'als', 'hopm', "
        "or 'power'"
    )


def finalize_stage(
    result,
    transforms,
    *,
    apply=None,
    canonicalize_signs: bool = True,
) -> FinalizedFit:
    """Normalize the CP output and map factors back through ``transforms``.

    ``transforms`` holds one per-view matrix (TCCA: the whiteners
    ``C̃_pp^{-1/2}``, applied by matmul; KTCCA: the Cholesky factors
    ``L_p``, applied by ``apply=np.linalg.solve``). Sign canonicalization
    makes the fit deterministic up to round-off — batch, streaming, and
    incremental moment assemblies that differ in the last bit land on the
    same canonical vectors.
    """
    cp = result.cp.normalize()
    if canonicalize_signs:
        cp = cp.canonicalize_signs()
    if apply is None:
        def apply(transform, factor):
            return transform @ factor
    vectors = [
        apply(transform, factor)
        for transform, factor in zip(transforms, cp.factors)
    ]
    return FinalizedFit(
        result=result,
        cp=cp,
        correlations=cp.weights.copy(),
        factors=cp.factors,
        canonical_vectors=vectors,
    )


# -- cold-fit builders (whiten-first arithmetic) ----------------------------


def _whitening_from_views(views, epsilon: float, policy=None):
    """Means, whiteners, and whitened views of a batch dataset."""
    views = check_views(views, min_views=2)
    moments = ingest_stage(MomentState(), views, policy=policy)
    whitening = whiten_stage(moments, epsilon, policy=policy)
    view_triples = list(zip(whitening.whiteners, views, whitening.means))
    if _is_parallel(policy):
        whitened_views = policy.starmap(_whiten_view, view_triples)
    else:
        whitened_views = [
            _whiten_view(whitener, view, mean)
            for whitener, view, mean in view_triples
        ]
    return whitening.means, whitening.whiteners, whitened_views


def whitened_covariance_tensor(
    views, epsilon: float, *, policy=None, dtype_policy=None
) -> WhitenedTensor:
    """Compute the whitening state and dense tensor ``M`` (Theorem 2).

    ``M = C ×_1 C̃_11^{-1/2} … ×_m C̃_mm^{-1/2}`` equals the covariance
    tensor of the whitened views, so ``C`` itself is never materialized —
    the cold batch path whitens the (still available) data first and
    accumulates whitened moments, which keeps every accumulated value
    ``O(1)``-scaled. Incremental refits, which no longer hold the data,
    use the mode-product form over stored raw moments instead
    (:func:`build_stage`); the two agree to round-off.

    A parallel ``policy`` runs both the whitening pass and the tensor
    accumulation as sharded map-reduce over sample chunks, reduced with
    the accumulators' exact ``merge()`` — same ``M`` to round-off.
    """
    means, whiteners, whitened_views = _whitening_from_views(
        views, epsilon, policy
    )
    accumulate = _accumulate_dtype(dtype_policy)
    if _is_parallel(policy):
        dims = [view.shape[0] for view in whitened_views]
        accumulator = accumulate_parallel(
            ArrayViewStream(
                whitened_views,
                chunk_size=parallel_chunk_size(
                    whitened_views[0].shape[1], policy.n_workers
                ),
            ),
            partial(
                StreamingCovarianceTensor,
                dims=dims,
                center=False,
                track_view_covariances=False,
                dtype=accumulate,
            ),
            policy,
        )
        tensor = accumulator.tensor()
    else:
        tensor = covariance_tensor(
            whitened_views,
            dtype=np.float64 if accumulate is None else accumulate,
        )
    return WhitenedTensor(
        means=means,
        whiteners=whiteners,
        tensor=_compute_cast(tensor, dtype_policy),
        epsilon=epsilon,
    )


def whitened_covariance_operator(
    views, epsilon: float, *, policy=None, dtype_policy=None
) -> WhitenedTensor:
    """Whitening state with ``M`` as an implicit operator — no ``∏ d_p``.

    The tensor-free counterpart of :func:`whitened_covariance_tensor`:
    identical means and whiteners, but ``M`` is represented by a
    :class:`~repro.tensor.operator.CovarianceTensorOperator` over the
    whitened views, so peak memory stays ``O(Σ d_p (d_p + N))`` however
    large ``∏ d_p`` grows. A parallel ``policy`` shards the whitening
    pass and threads the operator's blocked contraction kernels.
    """
    means, whiteners, whitened_views = _whitening_from_views(
        views, epsilon, policy
    )
    whitened_views = [
        _compute_cast(view, dtype_policy) for view in whitened_views
    ]
    operator = CovarianceTensorOperator.from_views(
        whitened_views, policy=policy
    )
    return WhitenedTensor(
        means=means, whiteners=whiteners, operator=operator, epsilon=epsilon
    )


def _streaming_whitening_pass(stream, epsilon: float, policy=None):
    """First stream pass: exact means and whiteners per view."""
    moments = ingest_stage(MomentState(), stream, policy=policy)
    whitening = whiten_stage(moments, epsilon, policy=policy)
    return whitening.means, whitening.whiteners


def whitened_covariance_tensor_streaming(
    stream,
    epsilon: float,
    *,
    chunk_size: int | None = None,
    policy=None,
    dtype_policy=None,
) -> WhitenedTensor:
    """Out-of-core version of :func:`whitened_covariance_tensor`.

    Makes two passes over a :class:`~repro.streaming.views.ViewStream`
    (or anything :func:`~repro.streaming.views.as_view_stream` accepts):

    1. per-view :class:`~repro.streaming.covariance.StreamingCovariance`
       accumulators collect exact means and covariances ``C_pp``, from
       which the whiteners ``C̃_pp^{-1/2}`` are built;
    2. each chunk is centered with the exact means, whitened, and fed to a
       :class:`~repro.streaming.covariance.StreamingCovarianceTensor`
       that assembles ``M`` — the covariance tensor of the whitened views.

    Peak accumulation memory is ``∏ d_p`` plus one chunk, independent of
    ``N``; the result matches the batch path to floating-point round-off,
    so downstream CP solves agree to tight tolerance. A parallel
    ``policy`` runs both passes as sharded map-reduce (workers whiten
    their shard's chunks on the fly) with the same numerical guarantee —
    but each worker holds its own moment accumulator, so peak
    accumulation memory scales to ``n_workers × ∏ d_p`` (still
    independent of ``N``). Keep ``n_jobs`` at 1 when ``∏ d_p`` is near
    the memory ceiling, or use the implicit solver.
    """
    stream = as_view_stream(stream, chunk_size)
    policy = policy if _is_parallel(policy) else None
    means, whiteners = _streaming_whitening_pass(stream, epsilon, policy)
    dims = tuple(whitener.shape[0] for whitener in whiteners)
    factory = partial(
        StreamingCovarianceTensor,
        dims=dims,
        center=False,
        shifts=[0.0] * len(dims),
        track_view_covariances=False,
        dtype=_accumulate_dtype(dtype_policy),
    )
    if policy is not None:
        accumulator = accumulate_parallel(
            stream, factory, policy, transform=ChunkWhitener(whiteners, means)
        )
    else:
        accumulator = factory()
        for chunks in iter_validated_chunks(stream):
            accumulator.update(
                [
                    whitener @ (np.asarray(chunk, dtype=np.float64) - mean)
                    for whitener, chunk, mean in zip(whiteners, chunks, means)
                ]
            )
    return WhitenedTensor(
        means=means,
        whiteners=whiteners,
        tensor=_compute_cast(accumulator.tensor(), dtype_policy),
        epsilon=epsilon,
    )


def whitened_covariance_operator_streaming(
    stream,
    epsilon: float,
    *,
    chunk_size: int | None = None,
    policy=None,
    dtype_policy=None,
) -> WhitenedTensor:
    """Fully out-of-core whitening state: stream-backed implicit ``M``.

    One pass builds exact means and whiteners
    (:class:`~repro.streaming.covariance.StreamingCovariance`); ``M`` is
    then represented by a stream-backed
    :class:`~repro.tensor.operator.CovarianceTensorOperator` that
    re-whitens chunks on the fly during each solver contraction. Nothing
    sized ``∏ d_p`` *or* ``N`` is ever resident — the end-to-end
    out-of-core path for views too wide for the dense tensor. A parallel
    ``policy`` shards the whitening pass and the operator's per-sweep
    stream contractions.
    """
    stream = as_view_stream(stream, chunk_size)
    policy = policy if _is_parallel(policy) else None
    means, whiteners = _streaming_whitening_pass(stream, epsilon, policy)
    operator = CovarianceTensorOperator.from_stream(
        stream,
        whiteners=whiteners,
        means=means,
        policy=policy,
        dtype=None if dtype_policy is None else dtype_policy.compute,
    )
    return WhitenedTensor(
        means=means, whiteners=whiteners, operator=operator, epsilon=epsilon
    )
