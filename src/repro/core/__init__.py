"""The paper's primary contribution: TCCA and its kernel extension KTCCA.

:mod:`repro.core.engine` holds the staged fit engine
(``ingest → moments → whiten → build → decompose → finalize``) both
estimators run on; :class:`~repro.core.engine.MomentState` is its
mergeable, serializable sufficient-statistic state — the thing
:meth:`TCCA.partial_fit` accumulates into and model files persist.
"""

from repro.core.engine import DecompositionSpec, MomentState, SampleStore
from repro.core.tcca import TCCA, multiview_canonical_correlation
from repro.core.ktcca import KTCCA

__all__ = [
    "DecompositionSpec",
    "KTCCA",
    "MomentState",
    "SampleStore",
    "TCCA",
    "multiview_canonical_correlation",
]
