"""The paper's primary contribution: TCCA and its kernel extension KTCCA."""

from repro.core.tcca import TCCA, multiview_canonical_correlation
from repro.core.ktcca import KTCCA

__all__ = ["KTCCA", "TCCA", "multiview_canonical_correlation"]
