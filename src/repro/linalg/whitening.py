"""Symmetric matrix square roots and regularized whitening transforms.

TCCA whitens each view with ``C̃_pp^{-1/2}`` where ``C̃_pp = C_pp + ε I``
(Eq. 4.8): the substitution ``u_p = C̃_pp^{1/2} h_p`` turns the
variance-constrained correlation problem into a unit-sphere problem on the
whitened tensor ``M`` (Theorem 2).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import check_square

__all__ = ["inverse_sqrt_psd", "regularized_inverse_sqrt", "sqrt_psd"]


def _clipped_eigh(matrix: np.ndarray, floor: float) -> tuple[np.ndarray, np.ndarray]:
    eigenvalues, eigenvectors = np.linalg.eigh(matrix)
    return np.maximum(eigenvalues, floor), eigenvectors


def sqrt_psd(matrix, *, eig_floor: float = 0.0) -> np.ndarray:
    """Symmetric square root of a positive semi-definite matrix.

    Eigenvalues below ``eig_floor`` are clipped up to it before the square
    root, guarding tiny negative values produced by round-off.
    """
    matrix = check_square(matrix, name="matrix")
    eigenvalues, eigenvectors = _clipped_eigh(matrix, eig_floor)
    return (eigenvectors * np.sqrt(eigenvalues)) @ eigenvectors.T


def inverse_sqrt_psd(matrix, *, eig_floor: float = 1e-12) -> np.ndarray:
    """Symmetric inverse square root ``A^{-1/2}`` of a PSD matrix.

    Eigenvalues are clipped to ``eig_floor`` from below, so singular
    directions are damped rather than exploding — callers wanting exact
    behaviour should pass an already-regularized matrix.
    """
    if eig_floor <= 0.0:
        raise ValidationError(
            f"eig_floor must be positive for an inverse, got {eig_floor}"
        )
    matrix = check_square(matrix, name="matrix")
    eigenvalues, eigenvectors = _clipped_eigh(matrix, eig_floor)
    return (eigenvectors / np.sqrt(eigenvalues)) @ eigenvectors.T


def regularized_inverse_sqrt(
    covariance, epsilon: float, *, eig_floor: float = 1e-12
) -> np.ndarray:
    """``(C + ε I)^{-1/2}`` — the per-view whitening matrix of Eq. 4.8."""
    if epsilon < 0.0:
        raise ValidationError(
            f"regularization epsilon must be >= 0, got {epsilon}"
        )
    covariance = check_square(covariance, name="covariance")
    regularized = covariance + epsilon * np.eye(covariance.shape[0])
    return inverse_sqrt_psd(regularized, eig_floor=eig_floor)
