"""Symmetric matrix square roots and regularized whitening transforms.

TCCA whitens each view with ``C̃_pp^{-1/2}`` where ``C̃_pp = C_pp + ε I``
(Eq. 4.8): the substitution ``u_p = C̃_pp^{1/2} h_p`` turns the
variance-constrained correlation problem into a unit-sphere problem on the
whitened tensor ``M`` (Theorem 2).

Precision: every routine here computes in float64 regardless of the
fit's :class:`~repro.backends.DTypePolicy` — the eigendecomposition of a
near-singular regularized covariance is exactly where float32 loses the
small eigenvalues that the ``1/√λ`` inversion then amplifies.  Inputs in
any dtype are upcast on entry (``check_square``); mixed-precision fits
downcast the *whitened data*, never the whitener.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.exceptions import NumericalWarning, ValidationError
from repro.utils.validation import check_square

__all__ = ["inverse_sqrt_psd", "regularized_inverse_sqrt", "sqrt_psd"]

# warn once per process about ill-conditioned whitening, not once per
# view per sweep — a badly scaled dataset would otherwise flood logs
_warned_ill_conditioned = False


def _reset_conditioning_warning() -> None:
    """Re-arm the once-per-process warning (test hook)."""
    global _warned_ill_conditioned
    _warned_ill_conditioned = False


def _clipped_eigh(matrix: np.ndarray, floor: float) -> tuple[np.ndarray, np.ndarray]:
    eigenvalues, eigenvectors = np.linalg.eigh(matrix)
    return np.maximum(eigenvalues, floor), eigenvectors


def sqrt_psd(matrix, *, eig_floor: float = 0.0) -> np.ndarray:
    """Symmetric square root of a positive semi-definite matrix.

    Eigenvalues below ``eig_floor`` are clipped up to it before the square
    root, guarding tiny negative values produced by round-off.
    """
    matrix = check_square(matrix, name="matrix")
    eigenvalues, eigenvectors = _clipped_eigh(matrix, eig_floor)
    return (eigenvectors * np.sqrt(eigenvalues)) @ eigenvectors.T


def inverse_sqrt_psd(matrix, *, eig_floor: float = 1e-12) -> np.ndarray:
    """Symmetric inverse square root ``A^{-1/2}`` of a PSD matrix.

    Eigenvalues are clipped to ``eig_floor`` from below, so singular
    directions are damped rather than exploding — callers wanting exact
    behaviour should pass an already-regularized matrix.
    """
    if eig_floor <= 0.0:
        raise ValidationError(
            f"eig_floor must be positive for an inverse, got {eig_floor}"
        )
    matrix = check_square(matrix, name="matrix")
    eigenvalues, eigenvectors = _clipped_eigh(matrix, eig_floor)
    return (eigenvectors / np.sqrt(eigenvalues)) @ eigenvectors.T


def regularized_inverse_sqrt(
    covariance, epsilon: float, *, eig_floor: float = 1e-12
) -> np.ndarray:
    """``(C + ε I)^{-1/2}`` — the per-view whitening matrix of Eq. 4.8.

    Guards ill-conditioned moment matrices: eigenvalues of the
    regularized covariance are floored at
    ``max(eig_floor, max(ε, λ_max) · d · machine-ε)`` — a floor tied to
    the regularization scale — before inversion, and the first time the
    floor actually bites a :class:`~repro.exceptions.NumericalWarning`
    is emitted (once per process). Without the guard, a near-singular
    view covariance with a tiny ``ε`` silently amplifies pure noise
    directions by ``1/√λ``.
    """
    global _warned_ill_conditioned
    if epsilon < 0.0:
        raise ValidationError(
            f"regularization epsilon must be >= 0, got {epsilon}"
        )
    if eig_floor <= 0.0:
        raise ValidationError(
            f"eig_floor must be positive for an inverse, got {eig_floor}"
        )
    covariance = check_square(covariance, name="covariance")
    dim = covariance.shape[0]
    regularized = covariance + epsilon * np.eye(dim)
    eigenvalues, eigenvectors = np.linalg.eigh(regularized)
    scale = max(float(eigenvalues[-1]), float(epsilon), 0.0)
    floor = max(eig_floor, scale * dim * np.finfo(np.float64).eps)
    n_clipped = int(np.count_nonzero(eigenvalues < floor))
    if n_clipped and not _warned_ill_conditioned:
        _warned_ill_conditioned = True
        warnings.warn(
            f"whitening: {n_clipped} of {dim} eigenvalues of a "
            f"regularized view covariance fall below the numerical "
            f"floor {floor:.3e} (epsilon={epsilon:g}); clipping them to "
            "avoid amplifying noise directions — increase epsilon to "
            "regularize ill-conditioned views properly (warning shown "
            "once per process)",
            NumericalWarning,
            stacklevel=2,
        )
    eigenvalues = np.maximum(eigenvalues, floor)
    return (eigenvectors / np.sqrt(eigenvalues)) @ eigenvectors.T
