"""Covariance matrices and the multi-view covariance tensor.

The paper works with centered view matrices ``X_p ∈ R^{d_p × N}`` and

* per-view variance matrices ``C_pp = (1/N) Σ_n x_pn x_pn^T``,
* pairwise covariance ``C_pq = (1/N) X_p X_q^T``,
* the order-``m`` covariance tensor
  ``C_{12…m} = (1/N) Σ_n x_1n ∘ x_2n ∘ … ∘ x_mn``

— the object whose rank-1 structure TCCA analyzes (Fig. 2).
"""

from __future__ import annotations

import numpy as np

from repro.streaming.covariance import (
    StreamingCovariance,
    StreamingCovarianceTensor,
)
from repro.utils.preprocessing import center_views
from repro.utils.validation import check_views, ensure_2d

__all__ = ["covariance_tensor", "cross_covariance", "view_covariance"]


def view_covariance(
    view, *, assume_centered: bool = True, dtype=np.float64
) -> np.ndarray:
    """Variance matrix ``C_pp = (1/N) X_p X_p^T`` of one view.

    ``dtype`` is the accumulation dtype — float64 under every built-in
    precision policy (moment sums are where cancellation lives).
    """
    view = ensure_2d(view, name="view")
    shift = 0.0 if assume_centered else None
    accumulator = StreamingCovariance(
        view.shape[0], shift=shift, dtype=dtype
    ).update(view)
    return accumulator.covariance(center=not assume_centered)


def cross_covariance(
    view_a, view_b, *, assume_centered: bool = True
) -> np.ndarray:
    """Covariance matrix ``C_pq = (1/N) X_p X_q^T`` between two views."""
    view_a = ensure_2d(view_a, name="view_a")
    view_b = ensure_2d(view_b, name="view_b")
    if view_a.shape[1] != view_b.shape[1]:
        raise ValueError(
            "views must share the sample count; got "
            f"{view_a.shape[1]} and {view_b.shape[1]}"
        )
    if not assume_centered:
        view_a, view_b = center_views([view_a, view_b])
    accumulator = StreamingCovarianceTensor(
        dims=(view_a.shape[0], view_b.shape[0]),
        center=False,
        track_view_covariances=False,
        dtype=np.float64,
    )
    accumulator.update((view_a, view_b))
    return accumulator.tensor()


def covariance_tensor(
    views, *, assume_centered: bool = True, dtype=np.float64
) -> np.ndarray:
    """Order-``m`` covariance tensor ``C_{12…m}`` of ``m`` views.

    The result has shape ``(d_1, d_2, …, d_m)``. Memory is ``∏ d_p`` floats
    — the deliberate cost of TCCA that the complexity experiments
    (Figs. 7-10) measure.

    Implementation: delegates to
    :class:`repro.streaming.covariance.StreamingCovarianceTensor`, the
    library's single Khatri-Rao accumulation — the mode-0 unfolding of the
    sum of outer products is ``X_1 @ K^T`` with ``K`` the sample-wise
    Khatri-Rao product of the remaining views, built in bounded sample
    slices so all heavy lifting runs through BLAS. All data is seen at
    once here, so the views are centered explicitly when needed and the
    accumulator runs in raw mode — the accumulator's streaming mean
    correction only pays off when the data arrives in chunks.
    """
    views = check_views(views, min_views=2)
    if not assume_centered:
        views = center_views(views)
    accumulator = StreamingCovarianceTensor(
        dims=[view.shape[0] for view in views],
        center=False,
        track_view_covariances=False,
        dtype=dtype,
    )
    accumulator.update(views)
    return accumulator.tensor()
