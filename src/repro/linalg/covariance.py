"""Covariance matrices and the multi-view covariance tensor.

The paper works with centered view matrices ``X_p ∈ R^{d_p × N}`` and

* per-view variance matrices ``C_pp = (1/N) Σ_n x_pn x_pn^T``,
* pairwise covariance ``C_pq = (1/N) X_p X_q^T``,
* the order-``m`` covariance tensor
  ``C_{12…m} = (1/N) Σ_n x_1n ∘ x_2n ∘ … ∘ x_mn``

— the object whose rank-1 structure TCCA analyzes (Fig. 2).
"""

from __future__ import annotations

import numpy as np

from repro.utils.preprocessing import center_views
from repro.utils.validation import check_views, ensure_2d

__all__ = ["covariance_tensor", "cross_covariance", "view_covariance"]


def view_covariance(view, *, assume_centered: bool = True) -> np.ndarray:
    """Variance matrix ``C_pp = (1/N) X_p X_p^T`` of one view."""
    view = ensure_2d(view, name="view")
    if not assume_centered:
        view = view - view.mean(axis=1, keepdims=True)
    n_samples = view.shape[1]
    return (view @ view.T) / n_samples


def cross_covariance(
    view_a, view_b, *, assume_centered: bool = True
) -> np.ndarray:
    """Covariance matrix ``C_pq = (1/N) X_p X_q^T`` between two views."""
    view_a = ensure_2d(view_a, name="view_a")
    view_b = ensure_2d(view_b, name="view_b")
    if view_a.shape[1] != view_b.shape[1]:
        raise ValueError(
            "views must share the sample count; got "
            f"{view_a.shape[1]} and {view_b.shape[1]}"
        )
    if not assume_centered:
        view_a = view_a - view_a.mean(axis=1, keepdims=True)
        view_b = view_b - view_b.mean(axis=1, keepdims=True)
    n_samples = view_a.shape[1]
    return (view_a @ view_b.T) / n_samples


def covariance_tensor(views, *, assume_centered: bool = True) -> np.ndarray:
    """Order-``m`` covariance tensor ``C_{12…m}`` of ``m`` views.

    The result has shape ``(d_1, d_2, …, d_m)``. Memory is ``∏ d_p`` floats
    — the deliberate cost of TCCA that the complexity experiments
    (Figs. 7-10) measure.

    Implementation: the mode-0 unfolding of the sum of outer products is
    ``X_1 @ K^T`` with ``K`` the sample-wise Khatri-Rao product of the
    remaining views (reverse order to match the unfolding convention). We
    build ``K`` in sample chunks so peak extra memory stays bounded while
    all heavy lifting runs through BLAS.
    """
    views = check_views(views, min_views=2)
    if not assume_centered:
        views = center_views(views)
    n_samples = views[0].shape[1]
    dims = [view.shape[0] for view in views]

    trailing = int(np.prod(dims[1:], dtype=np.int64))
    # Chunk so the Khatri-Rao buffer stays near 2^23 floats (~64 MB).
    chunk = max(1, int(2**23 // max(trailing, 1)))
    unfold0 = np.zeros((dims[0], trailing))
    for start in range(0, n_samples, chunk):
        stop = min(start + chunk, n_samples)
        # Rows of `joined` enumerate (i_m, …, i_2) with i_2 varying fastest,
        # matching the forward-cyclic mode-0 unfolding columns.
        joined = views[-1][:, start:stop]
        for view in views[-2:0:-1]:
            block = view[:, start:stop]
            joined = np.einsum(
                "in,jn->ijn", joined, block
            ).reshape(-1, stop - start)
        unfold0 += views[0][:, start:stop] @ joined.T
    unfold0 /= n_samples

    from repro.tensor.dense import fold

    return fold(unfold0, 0, dims)
