"""Covariance algebra and matrix-function helpers for the CCA family."""

from repro.linalg.covariance import (
    covariance_tensor,
    cross_covariance,
    view_covariance,
)
from repro.linalg.whitening import (
    inverse_sqrt_psd,
    regularized_inverse_sqrt,
    sqrt_psd,
)
from repro.linalg.eigen import symmetric_eigh_descending, top_generalized_eig

__all__ = [
    "covariance_tensor",
    "cross_covariance",
    "inverse_sqrt_psd",
    "regularized_inverse_sqrt",
    "sqrt_psd",
    "symmetric_eigh_descending",
    "top_generalized_eig",
    "view_covariance",
]
