"""Eigen-solver helpers shared by the CCA-family estimators.

Like :mod:`repro.linalg.whitening`, everything here is pinned to float64
(``check_square`` upcasts on entry): spectral solves are the numerically
sensitive tail of a fit and stay at full precision under every
:class:`~repro.backends.DTypePolicy`.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.exceptions import ValidationError
from repro.utils.validation import check_square

__all__ = ["symmetric_eigh_descending", "top_generalized_eig"]


def symmetric_eigh_descending(matrix) -> tuple[np.ndarray, np.ndarray]:
    """Eigendecomposition of a symmetric matrix, eigenvalues descending."""
    matrix = check_square(matrix, name="matrix")
    symmetric = 0.5 * (matrix + matrix.T)
    eigenvalues, eigenvectors = np.linalg.eigh(symmetric)
    order = np.argsort(-eigenvalues)
    return eigenvalues[order], eigenvectors[:, order]


def top_generalized_eig(
    matrix_a, matrix_b, n_components: int, *, eig_floor: float = 1e-10
) -> tuple[np.ndarray, np.ndarray]:
    """Leading solutions of ``A v = λ B v`` with symmetric ``A`` and PSD ``B``.

    Solves through the symmetric reduction ``B^{-1/2} A B^{-1/2}`` so the
    returned eigenvectors satisfy ``v^T B v = 1``.

    Returns
    -------
    (eigenvalues, eigenvectors)
        ``eigenvalues`` descending, ``eigenvectors`` with one column per
        component.
    """
    from repro.linalg.whitening import inverse_sqrt_psd

    matrix_a = check_square(matrix_a, name="matrix_a")
    matrix_b = check_square(matrix_b, name="matrix_b")
    if matrix_a.shape != matrix_b.shape:
        raise ValidationError(
            f"A and B must share a shape, got {matrix_a.shape} and "
            f"{matrix_b.shape}"
        )
    if not 1 <= n_components <= matrix_a.shape[0]:
        raise ValidationError(
            f"n_components must be in [1, {matrix_a.shape[0]}], "
            f"got {n_components}"
        )
    b_inv_sqrt = inverse_sqrt_psd(matrix_b, eig_floor=eig_floor)
    reduced = b_inv_sqrt @ (0.5 * (matrix_a + matrix_a.T)) @ b_inv_sqrt
    eigenvalues, eigenvectors = symmetric_eigh_descending(reduced)
    eigenvalues = eigenvalues[:n_components]
    eigenvectors = b_inv_sqrt @ eigenvectors[:, :n_components]
    return eigenvalues, eigenvectors


def solve_sym_posdef(matrix, rhs) -> np.ndarray:
    """Solve ``matrix @ x = rhs`` for symmetric positive-definite ``matrix``.

    Uses a Cholesky solve with an eigenvalue-based fallback for inputs that
    are only numerically positive definite.
    """
    matrix = check_square(matrix, name="matrix")
    rhs = np.asarray(rhs, dtype=np.float64)
    try:
        factor = scipy.linalg.cho_factor(matrix, lower=True)
        return scipy.linalg.cho_solve(factor, rhs)
    except scipy.linalg.LinAlgError:
        return np.linalg.lstsq(matrix, rhs, rcond=None)[0]
