"""Pairwise distance matrices on the ``(d, N)`` column-sample layout."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError, ValidationError
from repro.utils.validation import ensure_2d

__all__ = ["chi_square_distances", "euclidean_distances"]


def _check_pair(view_a, view_b):
    view_a = ensure_2d(view_a, name="view_a")
    view_b = view_a if view_b is None else ensure_2d(view_b, name="view_b")
    if view_a.shape[0] != view_b.shape[0]:
        raise ShapeError(
            "views must share the feature dimension; got "
            f"{view_a.shape[0]} and {view_b.shape[0]}"
        )
    return view_a, view_b


def euclidean_distances(view_a, view_b=None) -> np.ndarray:
    """Pairwise L2 distances between columns of ``view_a`` and ``view_b``.

    Returns an ``(N_a, N_b)`` matrix; ``view_b=None`` means self-distances.
    """
    view_a, view_b = _check_pair(view_a, view_b)
    sq_a = np.sum(view_a**2, axis=0)[:, None]
    sq_b = np.sum(view_b**2, axis=0)[None, :]
    squared = sq_a + sq_b - 2.0 * (view_a.T @ view_b)
    return np.sqrt(np.maximum(squared, 0.0))


def chi_square_distances(view_a, view_b=None, *, eps: float = 1e-10) -> np.ndarray:
    """Pairwise χ² distances ``Σ_k (a_k - b_k)² / (a_k + b_k)``.

    The standard histogram distance the paper uses for bag-of-visual-words
    features. Requires non-negative inputs.
    """
    view_a, view_b = _check_pair(view_a, view_b)
    if np.any(view_a < 0.0) or np.any(view_b < 0.0):
        raise ValidationError(
            "chi-square distance requires non-negative features "
            "(histograms); got negative entries"
        )
    # Accumulate per feature over flat (Na, Nb) planes instead of
    # reducing a strided (d, chunk, Nb) broadcast: same O(d*Na*Nb)
    # flops, but every pass is contiguous and the temporaries are
    # reused, which is several times faster at bag-of-words widths.
    n_a, n_b = view_a.shape[1], view_b.shape[1]
    out = np.zeros((n_a, n_b))
    numerator = np.empty((n_a, n_b))
    denominator = np.empty((n_a, n_b))
    shifted_a = view_a + eps  # fold the eps pass into one operand
    for feature_a, feature_b, feature_shifted in zip(
        view_a, view_b, shifted_a
    ):
        column = feature_a[:, None]
        row = feature_b[None, :]
        np.subtract(column, row, out=numerator)
        np.multiply(numerator, numerator, out=numerator)
        np.add(feature_shifted[:, None], row, out=denominator)
        np.divide(numerator, denominator, out=numerator)
        out += numerator
    return out
