"""Pairwise distance matrices on the ``(d, N)`` column-sample layout."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError, ValidationError
from repro.utils.validation import ensure_2d

__all__ = ["chi_square_distances", "euclidean_distances"]


def _check_pair(view_a, view_b):
    view_a = ensure_2d(view_a, name="view_a")
    view_b = view_a if view_b is None else ensure_2d(view_b, name="view_b")
    if view_a.shape[0] != view_b.shape[0]:
        raise ShapeError(
            "views must share the feature dimension; got "
            f"{view_a.shape[0]} and {view_b.shape[0]}"
        )
    return view_a, view_b


def euclidean_distances(view_a, view_b=None) -> np.ndarray:
    """Pairwise L2 distances between columns of ``view_a`` and ``view_b``.

    Returns an ``(N_a, N_b)`` matrix; ``view_b=None`` means self-distances.
    """
    view_a, view_b = _check_pair(view_a, view_b)
    sq_a = np.sum(view_a**2, axis=0)[:, None]
    sq_b = np.sum(view_b**2, axis=0)[None, :]
    squared = sq_a + sq_b - 2.0 * (view_a.T @ view_b)
    return np.sqrt(np.maximum(squared, 0.0))


def chi_square_distances(view_a, view_b=None, *, eps: float = 1e-10) -> np.ndarray:
    """Pairwise χ² distances ``Σ_k (a_k - b_k)² / (a_k + b_k)``.

    The standard histogram distance the paper uses for bag-of-visual-words
    features. Requires non-negative inputs.
    """
    view_a, view_b = _check_pair(view_a, view_b)
    if np.any(view_a < 0.0) or np.any(view_b < 0.0):
        raise ValidationError(
            "chi-square distance requires non-negative features "
            "(histograms); got negative entries"
        )
    # (d, Na, Nb) would be large; loop over features only when d is small is
    # worse — broadcast over samples in manageable chunks instead.
    n_a = view_a.shape[1]
    out = np.empty((n_a, view_b.shape[1]))
    chunk = max(1, int(2**22 // max(view_b.size, 1)))
    for start in range(0, n_a, chunk):
        stop = min(start + chunk, n_a)
        a = view_a[:, start:stop, None]  # (d, c, 1)
        b = view_b[:, None, :]  # (d, 1, Nb)
        numerator = (a - b) ** 2
        denominator = a + b + eps
        out[start:stop] = np.sum(numerator / denominator, axis=0)
    return out
