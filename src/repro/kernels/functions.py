"""Kernel functions on the ``(d, N)`` column-sample layout.

Each kernel is available both as a plain function and as a small callable
object with ``fit``/``__call__`` semantics so experiment drivers can defer
bandwidth selection (e.g. the paper's ``λ = max d``) to training data and
then evaluate the same kernel between train and test sets.

Two orthogonal evaluation controls thread through every kernel:

* ``block_size`` — evaluate the ``(N_a, N_b)`` result in column blocks of
  at most that many samples, so no pairwise-distance intermediate larger
  than ``(N_a, block_size)`` is ever materialized (the full-size *output*
  is the only large buffer). Serve-time cross-kernel blocks against a big
  training set stay memory-bounded this way.
* ``dtype`` — the output dtype under a mixed-precision policy. Distances
  always accumulate in float64; only the final kernel values are stored
  in the requested dtype.

Kernels also round-trip through JSON-friendly *specs* (a name or a
``{"kind": ..., ...}`` dict) via :func:`kernel_from_spec` /
:func:`kernel_to_spec`, which is how a fitted kernel configuration rides
in a model header instead of an unpicklable callable.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.kernels.distances import chi_square_distances, euclidean_distances
from repro.utils.validation import check_positive_int, ensure_2d

__all__ = [
    "ExponentialKernel",
    "LinearKernel",
    "RBFKernel",
    "exponential_kernel",
    "kernel_from_spec",
    "kernel_to_spec",
    "linear_kernel",
    "rbf_kernel",
]

_DISTANCES = {
    "euclidean": euclidean_distances,
    "chi2": chi_square_distances,
}


def _output_dtype(dtype) -> np.dtype:
    return np.dtype(np.float64 if dtype is None else dtype)


def _column_blocks(n_columns: int, block_size):
    """Yield ``(start, stop)`` column spans of at most ``block_size``."""
    block_size = check_positive_int(block_size, "block_size")
    for start in range(0, n_columns, block_size):
        yield start, min(start + block_size, n_columns)


def linear_kernel(view_a, view_b=None, *, dtype=None) -> np.ndarray:
    """Linear kernel ``K = X_a^T X_b`` (``(N_a, N_b)``).

    ``dtype`` selects the Gram dtype; the product then runs directly in
    that dtype (there is no distance accumulation to protect).
    """
    view_a = ensure_2d(view_a, name="view_a")
    view_b = view_a if view_b is None else ensure_2d(view_b, name="view_b")
    if dtype is not None:
        out = np.dtype(dtype)
        view_a = view_a.astype(out, copy=False)
        view_b = view_b.astype(out, copy=False)
    return view_a.T @ view_b


def rbf_kernel(
    view_a,
    view_b=None,
    *,
    gamma: float = 1.0,
    block_size: int | None = None,
    dtype=None,
) -> np.ndarray:
    """Gaussian RBF kernel ``exp(-γ ‖a - b‖²)``.

    ``block_size`` evaluates the result in ``(N_a, block_size)`` column
    blocks (same values, bounded distance intermediates); ``dtype`` is
    the output dtype (distances always accumulate in float64).
    """
    if gamma <= 0.0:
        raise ValidationError(f"gamma must be positive, got {gamma}")
    view_a = ensure_2d(view_a, name="view_a")
    view_b = view_a if view_b is None else ensure_2d(view_b, name="view_b")
    out = _output_dtype(dtype)
    if block_size is None:
        distances = euclidean_distances(view_a, view_b)
        return np.exp(-gamma * distances**2).astype(out, copy=False)
    result = np.empty((view_a.shape[1], view_b.shape[1]), dtype=out)
    for start, stop in _column_blocks(view_b.shape[1], block_size):
        distances = euclidean_distances(view_a, view_b[:, start:stop])
        result[:, start:stop] = np.exp(-gamma * distances**2)
    return result


def exponential_kernel(
    view_a,
    view_b=None,
    *,
    distance: str = "euclidean",
    bandwidth: float | None = None,
    block_size: int | None = None,
    dtype=None,
) -> np.ndarray:
    """The paper's kernel: ``k(x_i, x_j) = exp(-d(x_i, x_j) / λ)``.

    Parameters
    ----------
    distance:
        ``"euclidean"`` or ``"chi2"``.
    bandwidth:
        ``λ``; ``None`` uses the paper's choice ``λ = max_{ij} d``.
    block_size:
        Evaluate in ``(N_a, block_size)`` column blocks so no distance
        intermediate beyond one block is materialized. With
        ``bandwidth=None`` the ``λ = max d`` rule needs every distance
        before any entry can be exponentiated, so the full ``(N_a, N_b)``
        float64 distance matrix is kept as the single large buffer
        (filled blockwise, exponentiated in place).
    dtype:
        Output dtype; distances always accumulate in float64.
    """
    if distance not in _DISTANCES:
        raise ValidationError(
            f"unknown distance {distance!r}; expected one of "
            f"{sorted(_DISTANCES)}"
        )
    metric = _DISTANCES[distance]
    view_a = ensure_2d(view_a, name="view_a")
    view_b = view_a if view_b is None else ensure_2d(view_b, name="view_b")
    out = _output_dtype(dtype)
    shape = (view_a.shape[1], view_b.shape[1])
    if block_size is None:
        distances = metric(view_a, view_b)
        if bandwidth is None:
            bandwidth = float(distances.max()) if distances.size else 0.0
        if bandwidth <= 0.0:
            # All-identical samples: the kernel degenerates to all ones.
            return np.ones(shape, dtype=out)
        return np.exp(-distances / bandwidth).astype(out, copy=False)
    if bandwidth is None:
        distances = np.empty(shape, dtype=np.float64)
        for start, stop in _column_blocks(shape[1], block_size):
            distances[:, start:stop] = metric(view_a, view_b[:, start:stop])
        bandwidth = float(distances.max()) if distances.size else 0.0
        if bandwidth <= 0.0:
            return np.ones(shape, dtype=out)
        # d / (-λ) is bit-identical to (-d) / λ, so the blocked path
        # matches the one-shot np.exp(-distances / bandwidth) exactly.
        np.divide(distances, -bandwidth, out=distances)
        np.exp(distances, out=distances)
        return distances.astype(out, copy=False)
    if bandwidth <= 0.0:
        return np.ones(shape, dtype=out)
    result = np.empty(shape, dtype=out)
    for start, stop in _column_blocks(shape[1], block_size):
        distances = metric(view_a, view_b[:, start:stop])
        result[:, start:stop] = np.exp(-distances / bandwidth)
    return result


class LinearKernel:
    """Stateless linear-kernel callable (uniform interface with the others)."""

    #: Gram evaluation honors an output ``dtype=`` (mixed-precision hook).
    supports_dtype = True

    def fit(self, view) -> "LinearKernel":
        """No state to learn; returns self."""
        del view
        return self

    def __call__(
        self, view_a, view_b=None, *, dtype=None, block_size=None
    ) -> np.ndarray:
        """Evaluate the kernel matrix (``block_size`` accepted for a
        uniform signature; the product has no distance intermediate)."""
        del block_size
        return linear_kernel(view_a, view_b, dtype=dtype)

    def __repr__(self) -> str:
        return "LinearKernel()"


class RBFKernel:
    """RBF kernel with a median-heuristic default bandwidth.

    ``fit`` sets ``gamma = 1 / median(‖a - b‖²)`` over the training columns
    unless an explicit ``gamma`` was provided.
    """

    supports_dtype = True

    def __init__(self, gamma: float | None = None, *, block_size: int | None = None):
        if gamma is not None and gamma <= 0.0:
            raise ValidationError(f"gamma must be positive, got {gamma}")
        self.gamma = gamma
        self.block_size = (
            None if block_size is None
            else check_positive_int(block_size, "block_size")
        )
        self._fitted_gamma = gamma

    def fit(self, view) -> "RBFKernel":
        """Choose the bandwidth from training data when not fixed."""
        if self.gamma is not None:
            self._fitted_gamma = self.gamma
            return self
        distances = euclidean_distances(view)
        off_diagonal = distances[~np.eye(distances.shape[0], dtype=bool)]
        median_sq = float(np.median(off_diagonal**2)) if off_diagonal.size else 1.0
        self._fitted_gamma = 1.0 / max(median_sq, 1e-12)
        return self

    def __call__(
        self, view_a, view_b=None, *, dtype=None, block_size=None
    ) -> np.ndarray:
        """Evaluate the kernel matrix with the fitted bandwidth."""
        gamma = self._fitted_gamma if self._fitted_gamma is not None else 1.0
        return rbf_kernel(
            view_a,
            view_b,
            gamma=gamma,
            dtype=dtype,
            block_size=self.block_size if block_size is None else block_size,
        )

    def __repr__(self) -> str:
        return f"RBFKernel(gamma={self.gamma})"


class ExponentialKernel:
    """The paper's ``exp(-d/λ)`` kernel with ``λ = max d`` learned in ``fit``."""

    supports_dtype = True

    def __init__(
        self,
        distance: str = "euclidean",
        bandwidth: float | None = None,
        *,
        block_size: int | None = None,
    ):
        if distance not in _DISTANCES:
            raise ValidationError(
                f"unknown distance {distance!r}; expected one of "
                f"{sorted(_DISTANCES)}"
            )
        self.distance = distance
        self.bandwidth = bandwidth
        self.block_size = (
            None if block_size is None
            else check_positive_int(block_size, "block_size")
        )
        self._fitted_bandwidth = bandwidth

    def fit(self, view) -> "ExponentialKernel":
        """Set ``λ = max_{ij} d(x_i, x_j)`` over training columns when unset."""
        if self.bandwidth is not None:
            self._fitted_bandwidth = self.bandwidth
            return self
        distances = _DISTANCES[self.distance](view)
        self._fitted_bandwidth = float(distances.max())
        return self

    def __call__(
        self, view_a, view_b=None, *, dtype=None, block_size=None
    ) -> np.ndarray:
        """Evaluate the kernel matrix with the fitted bandwidth."""
        return exponential_kernel(
            view_a,
            view_b,
            distance=self.distance,
            bandwidth=self._fitted_bandwidth,
            dtype=dtype,
            block_size=self.block_size if block_size is None else block_size,
        )

    def __repr__(self) -> str:
        return (
            f"ExponentialKernel(distance={self.distance!r}, "
            f"bandwidth={self.bandwidth})"
        )


# -- JSON-friendly kernel specs ----------------------------------------------

_SPEC_CLASSES = {
    "linear": LinearKernel,
    "rbf": RBFKernel,
    "exponential": ExponentialKernel,
}


def kernel_from_spec(spec):
    """Build a kernel callable from a JSON-friendly spec.

    Accepts an existing kernel callable (returned unchanged), a kernel
    name (``"linear"`` / ``"rbf"`` / ``"exponential"``), or a dict
    ``{"kind": name, **params}`` whose remaining keys are the kernel's
    constructor parameters. Dict specs written by :func:`kernel_to_spec`
    carry the *fitted* bandwidth, so a spec round-trips a fitted kernel
    through a JSON model header.
    """
    if isinstance(spec, str):
        spec = {"kind": spec}
    elif callable(spec):
        return spec
    if not isinstance(spec, dict):
        raise ValidationError(
            f"kernel spec must be a name, a dict, or a callable; got "
            f"{type(spec).__name__}"
        )
    params = dict(spec)
    kind = params.pop("kind", None)
    if kind not in _SPEC_CLASSES:
        raise ValidationError(
            f"unknown kernel kind {kind!r}; expected one of "
            f"{sorted(_SPEC_CLASSES)}"
        )
    try:
        return _SPEC_CLASSES[kind](**params)
    except TypeError as error:
        raise ValidationError(
            f"bad {kind!r} kernel spec {spec!r}: {error}"
        ) from None


def kernel_to_spec(kernel) -> dict:
    """The JSON-friendly spec of a (possibly fitted) kernel callable.

    Records the *fitted* bandwidth, so rebuilding via
    :func:`kernel_from_spec` reproduces the kernel's train-time
    behaviour exactly. Custom callables have no spec form and raise —
    callers that only need best-effort persistence should catch
    :class:`~repro.exceptions.ValidationError`.
    """
    if isinstance(kernel, LinearKernel):
        return {"kind": "linear"}
    if isinstance(kernel, RBFKernel):
        spec: dict = {"kind": "rbf"}
        gamma = (
            kernel._fitted_gamma
            if kernel._fitted_gamma is not None
            else kernel.gamma
        )
        if gamma is not None:
            spec["gamma"] = float(gamma)
        if kernel.block_size is not None:
            spec["block_size"] = int(kernel.block_size)
        return spec
    if isinstance(kernel, ExponentialKernel):
        spec = {"kind": "exponential", "distance": kernel.distance}
        bandwidth = (
            kernel._fitted_bandwidth
            if kernel._fitted_bandwidth is not None
            else kernel.bandwidth
        )
        if bandwidth is not None:
            spec["bandwidth"] = float(bandwidth)
        if kernel.block_size is not None:
            spec["block_size"] = int(kernel.block_size)
        return spec
    raise ValidationError(
        f"{type(kernel).__name__} has no spec form; use "
        "'linear'/'rbf'/'exponential' kernels (or spec dicts) where the "
        "kernel configuration must be persisted"
    )
