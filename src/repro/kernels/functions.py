"""Kernel functions on the ``(d, N)`` column-sample layout.

Each kernel is available both as a plain function and as a small callable
object with ``fit``/``__call__`` semantics so experiment drivers can defer
bandwidth selection (e.g. the paper's ``λ = max d``) to training data and
then evaluate the same kernel between train and test sets.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.kernels.distances import chi_square_distances, euclidean_distances
from repro.utils.validation import ensure_2d

__all__ = [
    "ExponentialKernel",
    "LinearKernel",
    "RBFKernel",
    "exponential_kernel",
    "linear_kernel",
    "rbf_kernel",
]

_DISTANCES = {
    "euclidean": euclidean_distances,
    "chi2": chi_square_distances,
}


def linear_kernel(view_a, view_b=None) -> np.ndarray:
    """Linear kernel ``K = X_a^T X_b`` (``(N_a, N_b)``)."""
    view_a = ensure_2d(view_a, name="view_a")
    view_b = view_a if view_b is None else ensure_2d(view_b, name="view_b")
    return view_a.T @ view_b


def rbf_kernel(view_a, view_b=None, *, gamma: float = 1.0) -> np.ndarray:
    """Gaussian RBF kernel ``exp(-γ ‖a - b‖²)``."""
    if gamma <= 0.0:
        raise ValidationError(f"gamma must be positive, got {gamma}")
    distances = euclidean_distances(view_a, view_b)
    return np.exp(-gamma * distances**2)


def exponential_kernel(
    view_a,
    view_b=None,
    *,
    distance: str = "euclidean",
    bandwidth: float | None = None,
) -> np.ndarray:
    """The paper's kernel: ``k(x_i, x_j) = exp(-d(x_i, x_j) / λ)``.

    Parameters
    ----------
    distance:
        ``"euclidean"`` or ``"chi2"``.
    bandwidth:
        ``λ``; ``None`` uses the paper's choice ``λ = max_{ij} d``.
    """
    if distance not in _DISTANCES:
        raise ValidationError(
            f"unknown distance {distance!r}; expected one of "
            f"{sorted(_DISTANCES)}"
        )
    distances = _DISTANCES[distance](view_a, view_b)
    if bandwidth is None:
        bandwidth = float(distances.max())
    if bandwidth <= 0.0:
        # All-identical samples: the kernel degenerates to all ones.
        return np.ones_like(distances)
    return np.exp(-distances / bandwidth)


class LinearKernel:
    """Stateless linear-kernel callable (uniform interface with the others)."""

    def fit(self, view) -> "LinearKernel":
        """No state to learn; returns self."""
        del view
        return self

    def __call__(self, view_a, view_b=None) -> np.ndarray:
        """Evaluate the kernel matrix."""
        return linear_kernel(view_a, view_b)

    def __repr__(self) -> str:
        return "LinearKernel()"


class RBFKernel:
    """RBF kernel with a median-heuristic default bandwidth.

    ``fit`` sets ``gamma = 1 / median(‖a - b‖²)`` over the training columns
    unless an explicit ``gamma`` was provided.
    """

    def __init__(self, gamma: float | None = None):
        if gamma is not None and gamma <= 0.0:
            raise ValidationError(f"gamma must be positive, got {gamma}")
        self.gamma = gamma
        self._fitted_gamma = gamma

    def fit(self, view) -> "RBFKernel":
        """Choose the bandwidth from training data when not fixed."""
        if self.gamma is not None:
            self._fitted_gamma = self.gamma
            return self
        distances = euclidean_distances(view)
        off_diagonal = distances[~np.eye(distances.shape[0], dtype=bool)]
        median_sq = float(np.median(off_diagonal**2)) if off_diagonal.size else 1.0
        self._fitted_gamma = 1.0 / max(median_sq, 1e-12)
        return self

    def __call__(self, view_a, view_b=None) -> np.ndarray:
        """Evaluate the kernel matrix with the fitted bandwidth."""
        gamma = self._fitted_gamma if self._fitted_gamma is not None else 1.0
        return rbf_kernel(view_a, view_b, gamma=gamma)

    def __repr__(self) -> str:
        return f"RBFKernel(gamma={self.gamma})"


class ExponentialKernel:
    """The paper's ``exp(-d/λ)`` kernel with ``λ = max d`` learned in ``fit``."""

    def __init__(self, distance: str = "euclidean", bandwidth: float | None = None):
        if distance not in _DISTANCES:
            raise ValidationError(
                f"unknown distance {distance!r}; expected one of "
                f"{sorted(_DISTANCES)}"
            )
        self.distance = distance
        self.bandwidth = bandwidth
        self._fitted_bandwidth = bandwidth

    def fit(self, view) -> "ExponentialKernel":
        """Set ``λ = max_{ij} d(x_i, x_j)`` over training columns when unset."""
        if self.bandwidth is not None:
            self._fitted_bandwidth = self.bandwidth
            return self
        distances = _DISTANCES[self.distance](view)
        self._fitted_bandwidth = float(distances.max())
        return self

    def __call__(self, view_a, view_b=None) -> np.ndarray:
        """Evaluate the kernel matrix with the fitted bandwidth."""
        return exponential_kernel(
            view_a,
            view_b,
            distance=self.distance,
            bandwidth=self._fitted_bandwidth,
        )

    def __repr__(self) -> str:
        return (
            f"ExponentialKernel(distance={self.distance!r}, "
            f"bandwidth={self.bandwidth})"
        )
