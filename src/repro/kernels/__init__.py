"""Kernel functions, pairwise distances, and kernel-matrix transforms.

KTCCA and KCCA (Section 5.2 of the paper) build one kernel per view with
``k(x_i, x_j) = exp(-d(x_i, x_j)/λ)`` where ``λ = max_{ij} d(x_i, x_j)``,
using the χ² distance for visual-word histograms and L2 for everything else.

:mod:`repro.kernels.approx` adds explicit feature-map approximations
(Nyström landmarks, random Fourier features) that reduce the kernel
methods to linear ones on ``(k, N)`` mapped views.
"""

from repro.kernels.approx import (
    MappedViewStream,
    NystromFeatures,
    RandomFourierFeatures,
    feature_map_from_state,
)
from repro.kernels.distances import chi_square_distances, euclidean_distances
from repro.kernels.functions import (
    ExponentialKernel,
    LinearKernel,
    RBFKernel,
    exponential_kernel,
    kernel_from_spec,
    kernel_to_spec,
    linear_kernel,
    rbf_kernel,
)
from repro.kernels.centering import center_kernel, normalize_kernel

__all__ = [
    "ExponentialKernel",
    "LinearKernel",
    "MappedViewStream",
    "NystromFeatures",
    "RBFKernel",
    "RandomFourierFeatures",
    "center_kernel",
    "chi_square_distances",
    "euclidean_distances",
    "exponential_kernel",
    "feature_map_from_state",
    "kernel_from_spec",
    "kernel_to_spec",
    "linear_kernel",
    "normalize_kernel",
    "rbf_kernel",
]
