"""Kernel-matrix transforms: centering in feature space and normalization."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_square, ensure_2d

__all__ = ["center_kernel", "center_kernel_test", "normalize_kernel"]


def center_kernel(kernel) -> np.ndarray:
    """Center a train-kernel matrix in feature space.

    ``K_c = H K H`` with ``H = I - (1/N) 11^T``, equivalent to centering the
    implicit feature map φ — the kernel analogue of the zero-mean assumption
    TCCA places on each view.
    """
    kernel = check_square(kernel, name="kernel")
    n = kernel.shape[0]
    row_means = kernel.mean(axis=0, keepdims=True)
    col_means = kernel.mean(axis=1, keepdims=True)
    total_mean = kernel.mean()
    return kernel - row_means - col_means + total_mean


def center_kernel_test(kernel_test, kernel_train) -> np.ndarray:
    """Center a train-by-test kernel block consistently with the train block.

    ``kernel_test`` has shape ``(N_train, N_test)``; the returned block uses
    the *training* feature-space mean, so projections of new points match
    those of training points.
    """
    kernel_test = ensure_2d(kernel_test, name="kernel_test")
    kernel_train = check_square(kernel_train, name="kernel_train")
    if kernel_test.shape[0] != kernel_train.shape[0]:
        raise ValueError(
            "kernel_test must have one row per training sample; got "
            f"{kernel_test.shape[0]} rows for {kernel_train.shape[0]} "
            "training samples"
        )
    train_col_means = kernel_train.mean(axis=1, keepdims=True)
    test_col_means = kernel_test.mean(axis=0, keepdims=True)
    total_mean = kernel_train.mean()
    return kernel_test - train_col_means - test_col_means + total_mean


def normalize_kernel(kernel, *, eps: float = 1e-12) -> np.ndarray:
    """Cosine-normalize: ``K'_ij = K_ij / sqrt(K_ii K_jj)``.

    Used by the AVG kernel-combination baseline before averaging, so views
    with different scales contribute equally.
    """
    kernel = check_square(kernel, name="kernel")
    diagonal = np.sqrt(np.maximum(np.diag(kernel), eps))
    return kernel / np.outer(diagonal, diagonal)
