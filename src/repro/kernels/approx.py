"""Feature-map approximations of the kernel layer (Nyström + RFF).

The exact KTCCA path pays ``O(N² m)`` memory for the Gram matrices and
``O(N^m)`` for the whitened tensor ``S`` — the very wall the paper's
complexity study (Figs. 7–10) holds against transductive baselines. Both
estimators here replace the implicit feature map ``φ_p`` of a kernel with
an *explicit* finite map ``ψ_p: R^{d_p} → R^{k}`` such that
``ψ(x)^T ψ(y) ≈ k(x, y)``:

* :class:`NystromFeatures` — sample ``k`` landmark columns, factor the
  ``(k, k)`` landmark Gram by eigendecomposition, and map
  ``ψ(X) = Λ^{-1/2} U^T K(landmarks, X)``; the feature Gram is the
  rank-``k`` Nyström approximation ``K_{N,k} K_{k,k}^+ K_{k,N}`` and is
  *exact* when the landmarks span the training set (``k = N``).
* :class:`RandomFourierFeatures` — Rahimi–Recht random features for the
  shift-invariant kernels, ``ψ(x) = sqrt(2/k) · cos(W^T x + b)`` with
  ``W`` drawn from the kernel's spectral measure (Gaussian for RBF,
  multivariate Cauchy for the euclidean exponential kernel) matching the
  fitted ``gamma``/bandwidth conventions of :mod:`repro.kernels.functions`.

A KTCCA fitted on the mapped ``(k, N)`` views *is* a TCCA — it inherits
streaming accumulation, ``partial_fit``, the implicit solver, the
precision policy, and parallel map-reduce with no kernel-specific code.

Both classes share one protocol: ``fit(view)`` / ``transform(view)`` /
``fit_transform(view)`` on ``(d, N)`` column-sample views, plus a
two-phase form for one-pass streams — ``begin_fit(dim, n_samples)``
returns a :class:`FeatureFitPlan` naming exactly which training columns
the fit needs (landmarks, bandwidth subsample), and
``fit_columns(plan, ...)`` completes the fit from those columns alone.
All randomness (landmark choice, bandwidth subsample, frequency draws)
is consumed from the plan's generator in a fixed order, so ``fit`` and
the two-phase path select identical state — the basis of
``KTCCA.fit_stream`` matching ``KTCCA.fit``.

Fitted state round-trips through ``state()`` →
:func:`feature_map_from_state`: a JSON-safe meta dict plus exactly two
arrays per map (landmarks + weights, or frequencies + offsets), which is
what the KTCCA model header persists.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.kernels.functions import (
    ExponentialKernel,
    RBFKernel,
    kernel_from_spec,
    kernel_to_spec,
)
from repro.streaming.views import ViewStream
from repro.utils.rng import check_random_state
from repro.utils.validation import check_positive_int, ensure_2d

__all__ = [
    "DEFAULT_BANDWIDTH_SAMPLES",
    "FeatureFitPlan",
    "MappedViewStream",
    "NystromFeatures",
    "RandomFourierFeatures",
    "feature_map_from_state",
]

#: Upper bound on the training columns subsampled to fit a data-driven
#: kernel bandwidth (the paper's ``λ = max d`` / the RBF median
#: heuristic) — keeps the bandwidth fit ``O(min(N, this)²)`` instead of
#: ``O(N²)`` on large streams.
DEFAULT_BANDWIDTH_SAMPLES = 1024


@dataclass
class FeatureFitPlan:
    """Which training columns a feature-map fit needs, fixed up front.

    Produced by ``begin_fit``; consumed by ``fit_columns``. The indices
    are sorted positions into the ``N`` training columns. ``rng`` carries
    the generator mid-stream so draws that happen *after* the column
    gather (the RFF frequencies) continue the same deterministic
    sequence.
    """

    dim: int
    n_samples: int
    landmark_indices: np.ndarray
    sample_indices: np.ndarray
    kernel: object
    rng: np.random.Generator


def _needs_bandwidth_fit(kernel) -> bool:
    """Whether ``kernel.fit`` still has a data-driven bandwidth to learn."""
    if isinstance(kernel, RBFKernel):
        return kernel._fitted_gamma is None
    if isinstance(kernel, ExponentialKernel):
        return kernel._fitted_bandwidth is None
    # Custom callables: if they expose fit at all, give them the sample.
    return callable(getattr(kernel, "fit", None))


class _FeatureMap:
    """Shared protocol of the two approximate feature maps."""

    kind: str = ""

    def __init__(
        self,
        kernel="rbf",
        n_features: int = 128,
        *,
        random_state=None,
        dtype=None,
        bandwidth_samples: int = DEFAULT_BANDWIDTH_SAMPLES,
    ):
        self.kernel = kernel
        self.n_features = check_positive_int(n_features, "n_features")
        self.random_state = random_state
        self.dtype = None if dtype is None else np.dtype(dtype)
        self.bandwidth_samples = check_positive_int(
            bandwidth_samples, "bandwidth_samples"
        )

    # -- fitting --------------------------------------------------------------

    def begin_fit(self, dim: int, n_samples: int) -> FeatureFitPlan:
        """Plan the fit: deterministically choose the columns it needs.

        Draw order is fixed — landmarks first, bandwidth subsample
        second, later draws (RFF frequencies) from the returned plan's
        generator — so any path that honors the plan reproduces ``fit``.
        """
        dim = check_positive_int(dim, "dim")
        n_samples = check_positive_int(n_samples, "n_samples")
        rng = check_random_state(self.random_state)
        kernel = kernel_from_spec(self.kernel)
        self._validate_kernel(kernel)
        landmarks = self._landmark_indices(n_samples, rng)
        if _needs_bandwidth_fit(kernel):
            size = min(self.bandwidth_samples, n_samples)
            samples = np.sort(rng.choice(n_samples, size=size, replace=False))
        else:
            samples = np.empty(0, dtype=np.intp)
        return FeatureFitPlan(
            dim=dim,
            n_samples=n_samples,
            landmark_indices=landmarks,
            sample_indices=samples,
            kernel=kernel,
            rng=rng,
        )

    def fit_columns(
        self, plan: FeatureFitPlan, landmark_columns, sample_columns
    ) -> "_FeatureMap":
        """Complete a planned fit from the gathered training columns."""
        kernel = plan.kernel
        if plan.sample_indices.size:
            kernel.fit(
                ensure_2d(sample_columns, name="sample_columns")
            )
        self._kernel_object = kernel
        landmarks = (
            np.empty((plan.dim, 0), dtype=np.float64)
            if plan.landmark_indices.size == 0
            else ensure_2d(landmark_columns, name="landmark_columns")
        )
        self._finish_fit(plan, landmarks)
        try:
            self.kernel_spec_ = kernel_to_spec(kernel)
        except ValidationError:
            # Custom callable: fine in memory, refused at save time (the
            # kernels= param is not JSON-serializable either).
            self.kernel_spec_ = None
        return self

    def fit(self, view) -> "_FeatureMap":
        """Learn the map from a full ``(d, N)`` training view."""
        view = ensure_2d(view, name="view")
        plan = self.begin_fit(view.shape[0], view.shape[1])
        return self.fit_columns(
            plan,
            view[:, plan.landmark_indices],
            view[:, plan.sample_indices],
        )

    def fit_transform(self, view) -> np.ndarray:
        """``fit(view)`` then map it: the ``(k', N)`` training features."""
        return self.fit(view).transform(view)

    # -- shared plumbing ------------------------------------------------------

    def _kernel(self):
        kernel = getattr(self, "_kernel_object", None)
        if kernel is None:
            spec = getattr(self, "kernel_spec_", None)
            if spec is None:
                raise NotFittedError(
                    f"{type(self).__name__} must be fitted before transform"
                )
            kernel = kernel_from_spec(spec)
            self._kernel_object = kernel
        return kernel

    def _output(self, features: np.ndarray) -> np.ndarray:
        if self.dtype is None:
            return features
        return np.asarray(features, dtype=self.dtype)

    def _meta(self) -> dict:
        return {
            "kind": self.kind,
            "kernel": getattr(self, "kernel_spec_", None),
            "n_features": int(self.n_features_),
            "dtype": None if self.dtype is None else str(self.dtype),
        }

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(kernel={self.kernel!r}, "
            f"n_features={self.n_features})"
        )


class NystromFeatures(_FeatureMap):
    """Landmark (Nyström) feature map for any positive-definite kernel.

    ``fit`` samples ``k = min(n_features, N)`` landmark columns without
    replacement, eigendecomposes the symmetrized landmark Gram
    ``K_{k,k} = U Λ U^T``, keeps the numerically positive spectrum, and
    stores ``W = U_r Λ_r^{-1/2}``. The map is
    ``ψ(X) = W^T K(landmarks, X)``, so the feature Gram
    ``ψ(X)^T ψ(Y) = K_{X,k} K_{k,k}^+ K_{k,Y}`` is the classical Nyström
    approximation — exact on the span of the landmarks, hence exact
    everywhere when ``k = N``. The feature Gram is invariant to landmark
    *order* (a permutation conjugates ``K_{k,k}`` and cancels in the
    pseudo-inverse), and the whole fit is deterministic under
    ``random_state``.
    """

    kind = "nystrom"

    def _validate_kernel(self, kernel) -> None:
        # Any PSD kernel callable works — including the paper's chi²
        # exponential kernel, which has no random-feature form.
        del kernel

    def _landmark_indices(self, n_samples: int, rng) -> np.ndarray:
        k = min(self.n_features, n_samples)
        return np.sort(rng.choice(n_samples, size=k, replace=False))

    def _finish_fit(self, plan: FeatureFitPlan, landmarks: np.ndarray) -> None:
        kernel = self._kernel_object
        gram = np.asarray(kernel(landmarks, landmarks), dtype=np.float64)
        gram = 0.5 * (gram + gram.T)
        values, vectors = np.linalg.eigh(gram)
        floor = max(float(values[-1]), 0.0) * gram.shape[0] * np.finfo(
            np.float64
        ).eps
        keep = values > floor
        if not np.any(keep):
            raise ValidationError(
                "landmark kernel matrix is numerically zero; cannot build "
                "Nyström features (check the kernel bandwidth)"
            )
        # Descending spectrum: truncation drops the smallest directions.
        values = values[keep][::-1]
        vectors = vectors[:, keep][:, ::-1]
        self.landmarks_ = landmarks
        self.weights_ = vectors / np.sqrt(values)
        self.n_features_ = int(self.weights_.shape[1])

    def transform(self, view) -> np.ndarray:
        """Map ``(d, N)`` columns to ``(k', N)`` Nyström features."""
        if not hasattr(self, "landmarks_"):
            raise NotFittedError(
                "NystromFeatures must be fitted before transform"
            )
        view = ensure_2d(view, name="view")
        if view.shape[0] != self.landmarks_.shape[0]:
            raise ValidationError(
                f"view has {view.shape[0]} features, the landmarks have "
                f"{self.landmarks_.shape[0]}"
            )
        block = np.asarray(
            self._kernel()(self.landmarks_, view), dtype=np.float64
        )
        return self._output(self.weights_.T @ block)

    def state(self) -> tuple[dict, np.ndarray, np.ndarray]:
        """``(meta, landmarks, weights)`` — the persistable fitted state."""
        if not hasattr(self, "landmarks_"):
            raise NotFittedError("NystromFeatures has no fitted state")
        return self._meta(), self.landmarks_, self.weights_


class RandomFourierFeatures(_FeatureMap):
    """Random Fourier features for the shift-invariant kernels.

    By Bochner's theorem a shift-invariant kernel is the Fourier
    transform of its spectral measure; sampling ``k`` frequencies ``W``
    from that measure and ``b ~ U[0, 2π)`` gives the unbiased map
    ``ψ(x) = sqrt(2/k) · cos(W^T x + b)`` with
    ``E[ψ(x)^T ψ(y)] = k(x, y)``. Supported kernels and their spectra:

    * :class:`~repro.kernels.functions.RBFKernel`
      ``exp(-γ‖x-y‖²)`` → ``W ~ N(0, 2γ I)``;
    * euclidean :class:`~repro.kernels.functions.ExponentialKernel`
      ``exp(-‖x-y‖/λ)`` (Matérn-1/2) → multivariate Cauchy with scale
      ``1/λ``, sampled as ``w = z / (λ |s|)`` with ``z ~ N(0, I)`` and a
      scalar ``s ~ N(0, 1)`` per feature.

    The chi² exponential kernel is not shift-invariant and the linear
    kernel needs no approximation — both are rejected with a pointer to
    :class:`NystromFeatures`.
    """

    kind = "rff"

    def _validate_kernel(self, kernel) -> None:
        if isinstance(kernel, RBFKernel):
            return
        if isinstance(kernel, ExponentialKernel):
            if kernel.distance != "euclidean":
                raise ValidationError(
                    "random Fourier features exist only for shift-invariant "
                    f"kernels; the {kernel.distance!r} exponential kernel "
                    "is not one — use approx='nystrom' for it"
                )
            return
        raise ValidationError(
            "random Fourier features support the 'rbf' and euclidean "
            f"'exponential' kernels; got {type(kernel).__name__} — use "
            "approx='nystrom' for other kernels"
        )

    def _landmark_indices(self, n_samples: int, rng) -> np.ndarray:
        del n_samples, rng
        return np.empty(0, dtype=np.intp)

    def _finish_fit(self, plan: FeatureFitPlan, landmarks: np.ndarray) -> None:
        del landmarks
        kernel = self._kernel_object
        k = self.n_features
        if isinstance(kernel, RBFKernel):
            gamma = (
                kernel._fitted_gamma
                if kernel._fitted_gamma is not None
                else 1.0
            )
            if gamma <= 0.0:
                raise ValidationError(
                    f"rbf gamma must be positive, got {gamma}"
                )
            weights = plan.rng.standard_normal((plan.dim, k)) * np.sqrt(
                2.0 * gamma
            )
        else:
            bandwidth = kernel._fitted_bandwidth
            if bandwidth is None or bandwidth <= 0.0:
                raise ValidationError(
                    "the exponential kernel's bandwidth must be positive "
                    "for random Fourier features; fit it on data or pass "
                    "bandwidth= explicitly"
                )
            normal = plan.rng.standard_normal((plan.dim, k))
            # A multivariate Cauchy draw is Gaussian over |Gaussian|
            # (t-distribution with one degree of freedom), columnwise.
            mixing = np.abs(plan.rng.standard_normal(k))
            weights = normal / (
                bandwidth * np.maximum(mixing, np.finfo(np.float64).tiny)
            )
        self.weights_ = weights
        self.offsets_ = plan.rng.uniform(0.0, 2.0 * np.pi, size=k)
        self.n_features_ = int(k)

    def transform(self, view) -> np.ndarray:
        """Map ``(d, N)`` columns to ``(k, N)`` random Fourier features."""
        if not hasattr(self, "weights_"):
            raise NotFittedError(
                "RandomFourierFeatures must be fitted before transform"
            )
        view = ensure_2d(view, name="view")
        if view.shape[0] != self.weights_.shape[0]:
            raise ValidationError(
                f"view has {view.shape[0]} features, the frequencies have "
                f"{self.weights_.shape[0]}"
            )
        phase = self.weights_.T @ view
        phase += self.offsets_[:, None]
        return self._output(
            np.sqrt(2.0 / self.n_features_) * np.cos(phase)
        )

    def state(self) -> tuple[dict, np.ndarray, np.ndarray]:
        """``(meta, frequencies, offsets)`` — the persistable fitted state."""
        if not hasattr(self, "weights_"):
            raise NotFittedError("RandomFourierFeatures has no fitted state")
        return self._meta(), self.weights_, self.offsets_


_KINDS = {
    NystromFeatures.kind: NystromFeatures,
    RandomFourierFeatures.kind: RandomFourierFeatures,
}


def feature_map_from_state(meta: dict, primary, secondary):
    """Rebuild a fitted feature map from its persisted ``state()``.

    The inverse of ``state()``: ``meta`` selects the class and kernel
    spec, the two arrays restore the fitted map (landmarks + weights for
    Nyström, frequencies + offsets for RFF).
    """
    kind = meta.get("kind") if isinstance(meta, dict) else None
    if kind not in _KINDS:
        raise ValidationError(
            f"unknown feature-map kind {kind!r}; expected one of "
            f"{sorted(_KINDS)}"
        )
    spec = meta.get("kernel")
    if spec is None:
        raise ValidationError(
            "feature-map state carries no kernel spec (the model was "
            "fitted with a custom kernel callable) and cannot be rebuilt"
        )
    fmap = _KINDS[kind](
        kernel=spec,
        n_features=max(int(meta.get("n_features", 1)), 1),
        dtype=meta.get("dtype"),
    )
    primary = np.asarray(primary, dtype=np.float64)
    secondary = np.asarray(secondary, dtype=np.float64)
    if kind == "nystrom":
        fmap.landmarks_ = primary
        fmap.weights_ = secondary
        fmap.n_features_ = int(secondary.shape[1])
    else:
        fmap.weights_ = primary
        fmap.offsets_ = secondary
        fmap.n_features_ = int(primary.shape[1])
    fmap.kernel_spec_ = spec
    return fmap


class MappedViewStream(ViewStream):
    """A :class:`ViewStream` whose chunks pass through fitted feature maps.

    Composes the kernel approximation with the streaming covariance
    engine: each ``(d_p, c)`` chunk of the base stream is mapped to a
    ``(k_p, c)`` feature chunk on the fly, so ``TCCA.fit_stream`` on the
    mapped stream accumulates ``O(k² m + k^m)`` state no matter how
    large ``N`` is. Not rechunkable (the base stream's chunking stands).
    """

    rechunkable = False

    def __init__(self, base: ViewStream, maps):
        maps = list(maps)
        if len(maps) != base.n_views:
            raise ValidationError(
                f"stream has {base.n_views} views but got {len(maps)} "
                "feature maps"
            )
        self._base = base
        self._maps = maps

    @property
    def dims(self):
        return tuple(int(fmap.n_features_) for fmap in self._maps)

    @property
    def n_samples(self) -> int:
        return int(self._base.n_samples)

    def chunks(self):
        for chunk in self._base.chunks():
            yield tuple(
                fmap.transform(np.asarray(block))
                for fmap, block in zip(self._maps, chunk)
            )
