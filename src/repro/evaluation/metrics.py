"""Evaluation metrics and small statistical helpers."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError

__all__ = ["accuracy", "mean_std"]


def accuracy(y_true, y_pred) -> float:
    """Classification accuracy — the paper's sole evaluation criterion."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValidationError(
            f"label arrays must share a shape, got {y_true.shape} and "
            f"{y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValidationError("cannot compute accuracy of zero samples")
    return float(np.mean(y_true == y_pred))


def mean_std(values) -> tuple[float, float]:
    """Mean and (population) standard deviation, as the paper's ``a±b``."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValidationError("cannot summarize zero values")
    return float(values.mean()), float(values.std())
