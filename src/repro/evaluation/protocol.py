"""Single-run evaluation: candidates, groups, classifier tuning.

Terminology (see DESIGN.md):

* a **candidate** is one representation of all ``N`` samples — either
  ``(N, d)`` features or an ``(N, N)`` precomputed distance matrix (kernel
  methods' BSK/AVG baselines);
* a **group** is the set of candidates that one hyper-parameter choice
  produces. Candidates inside a group are *combined* (score averaging for
  RLS, majority voting for kNN — exactly the paper's CCA (AVG) recipe);
  a singleton group is used directly;
* the evaluator scores every group on the validation split and reports the
  test accuracy of the best group — this implements the paper's BST
  selection (best view for BSF, best pair for CCA (BST), best ε when a
  grid is supplied).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.classifiers.combination import (
    average_score_predict,
    majority_vote_predict,
)
from repro.classifiers.knn import KNNClassifier
from repro.classifiers.rls import RLSClassifier
from repro.evaluation.metrics import accuracy
from repro.exceptions import ValidationError

__all__ = [
    "Candidate",
    "ClassifierSpec",
    "EvaluationOutcome",
    "evaluate_groups",
    "knn_predict_from_distances",
]


@dataclass
class Candidate:
    """One representation of all samples.

    ``kind`` is ``"features"`` (``(N, d)`` rows) or ``"distances"`` (a full
    ``(N, N)`` pairwise distance matrix, kNN-only). ``tag`` labels the
    candidate for reporting (view name, pair, ε value …).
    """

    kind: str
    array: np.ndarray
    tag: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("features", "distances"):
            raise ValidationError(
                f"candidate kind must be 'features' or 'distances', "
                f"got {self.kind!r}"
            )
        self.array = np.asarray(self.array, dtype=np.float64)
        if self.array.ndim != 2:
            raise ValidationError(
                f"candidate array must be 2-D, got ndim={self.array.ndim}"
            )
        if self.kind == "distances" and (
            self.array.shape[0] != self.array.shape[1]
        ):
            raise ValidationError(
                "distance candidates must be square (N, N) matrices, got "
                f"{self.array.shape}"
            )


@dataclass
class ClassifierSpec:
    """Downstream learner configuration.

    ``kind='rls'`` — regularized least squares, γ fixed (paper: 10⁻²).
    ``kind='knn'`` — kNN with ``k`` tuned over ``k_grid`` on validation
    (paper: {1, …, 10}).
    """

    kind: str = "rls"
    gamma: float = 1e-2
    k_grid: tuple = tuple(range(1, 11))

    def __post_init__(self) -> None:
        if self.kind not in ("rls", "knn"):
            raise ValidationError(
                f"classifier kind must be 'rls' or 'knn', got {self.kind!r}"
            )


@dataclass
class EvaluationOutcome:
    """Validation and test accuracy of the selected group."""

    validation_accuracy: float
    test_accuracy: float
    selected_tag: str = ""
    selected_k: int | None = None
    group_validation_accuracies: list = field(default_factory=list)


def knn_predict_from_distances(
    distance_block, train_labels, k: int
) -> np.ndarray:
    """Majority-vote kNN from a precomputed ``(M, N_train)`` distance block.

    Ties are broken by the nearest neighbor among the tied classes, as in
    :class:`~repro.classifiers.knn.KNNClassifier`.
    """
    distance_block = np.asarray(distance_block, dtype=np.float64)
    train_labels = np.asarray(train_labels)
    if distance_block.ndim != 2 or (
        distance_block.shape[1] != train_labels.shape[0]
    ):
        raise ValidationError(
            "distance block must be (M, N_train) matching the training "
            f"labels; got {distance_block.shape} for "
            f"{train_labels.shape[0]} labels"
        )
    k = min(int(k), train_labels.shape[0])
    order = np.argsort(distance_block, axis=1, kind="stable")[:, :k]
    neighbor_labels = train_labels[order]
    out = np.empty(distance_block.shape[0], dtype=train_labels.dtype)
    for row in range(distance_block.shape[0]):
        votes = neighbor_labels[row]
        values, counts = np.unique(votes, return_counts=True)
        winners = values[counts == counts.max()]
        if winners.shape[0] == 1:
            out[row] = winners[0]
        else:
            winner_set = set(winners.tolist())
            for label in votes:
                if label in winner_set:
                    out[row] = label
                    break
    return out


def _rls_group_predictions(group, labels, labeled_idx, query_idx, gamma):
    """Score-averaged RLS predictions of one group on ``query_idx``."""
    classifiers = []
    query_features = []
    for candidate in group:
        if candidate.kind != "features":
            raise ValidationError(
                "RLS evaluation requires feature candidates; got a "
                f"'{candidate.kind}' candidate (tag={candidate.tag!r})"
            )
        model = RLSClassifier(gamma=gamma).fit(
            candidate.array[labeled_idx], labels[labeled_idx]
        )
        classifiers.append(model)
        query_features.append(candidate.array[query_idx])
    if len(classifiers) == 1:
        return classifiers[0].predict(query_features[0])
    return average_score_predict(classifiers, query_features)


def _knn_group_predictions(group, labels, labeled_idx, query_idx, k):
    """Majority-voted kNN predictions of one group on ``query_idx``."""
    per_candidate = []
    for candidate in group:
        if candidate.kind == "features":
            model = KNNClassifier(n_neighbors=k).fit(
                candidate.array[labeled_idx], labels[labeled_idx]
            )
            per_candidate.append(model.predict(candidate.array[query_idx]))
        else:
            block = candidate.array[np.ix_(query_idx, labeled_idx)]
            per_candidate.append(
                knn_predict_from_distances(block, labels[labeled_idx], k)
            )
    if len(per_candidate) == 1:
        return per_candidate[0]
    stacked = np.stack(per_candidate, axis=0)
    out = np.empty(stacked.shape[1], dtype=stacked.dtype)
    for column in range(stacked.shape[1]):
        votes = stacked[:, column]
        values, counts = np.unique(votes, return_counts=True)
        winners = values[counts == counts.max()]
        out[column] = (
            winners[0]
            if winners.shape[0] == 1
            else next(v for v in votes if v in set(winners.tolist()))
        )
    return out


def evaluate_groups(
    groups,
    labels,
    labeled_idx,
    validation_idx,
    test_idx,
    classifier: ClassifierSpec,
) -> EvaluationOutcome:
    """Evaluate candidate groups and report the validation-selected one.

    Parameters
    ----------
    groups:
        List of candidate groups (see module docstring). Tags of the first
        candidate of each group label the group.
    labels:
        Full length-``N`` label vector.
    labeled_idx, validation_idx, test_idx:
        Disjoint index arrays into the ``N`` samples.
    classifier:
        Downstream learner specification.

    Returns
    -------
    EvaluationOutcome
    """
    groups = [list(group) for group in groups]
    if not groups or any(not group for group in groups):
        raise ValidationError("need at least one non-empty candidate group")
    labels = np.asarray(labels)
    labeled_idx = np.asarray(labeled_idx)
    validation_idx = np.asarray(validation_idx)
    test_idx = np.asarray(test_idx)

    best = None  # (val_acc, group_index, k)
    group_val_accuracies = []
    for group_index, group in enumerate(groups):
        if classifier.kind == "rls":
            predictions = _rls_group_predictions(
                group, labels, labeled_idx, validation_idx, classifier.gamma
            )
            val_acc = accuracy(labels[validation_idx], predictions)
            chosen_k = None
        else:
            val_acc = -1.0
            chosen_k = classifier.k_grid[0]
            for k in classifier.k_grid:
                predictions = _knn_group_predictions(
                    group, labels, labeled_idx, validation_idx, k
                )
                acc_k = accuracy(labels[validation_idx], predictions)
                if acc_k > val_acc:
                    val_acc = acc_k
                    chosen_k = k
        group_val_accuracies.append(val_acc)
        if best is None or val_acc > best[0]:
            best = (val_acc, group_index, chosen_k)

    val_acc, group_index, chosen_k = best
    group = groups[group_index]
    if classifier.kind == "rls":
        test_predictions = _rls_group_predictions(
            group, labels, labeled_idx, test_idx, classifier.gamma
        )
    else:
        test_predictions = _knn_group_predictions(
            group, labels, labeled_idx, test_idx, chosen_k
        )
    return EvaluationOutcome(
        validation_accuracy=val_acc,
        test_accuracy=accuracy(labels[test_idx], test_predictions),
        selected_tag=group[0].tag,
        selected_k=chosen_k,
        group_validation_accuracies=group_val_accuracies,
    )
