"""Wall-time and peak-memory instrumentation (Figs. 7-10 substitute).

The paper reports MATLAB time and memory per method. We measure wall time
directly and peak *traced* allocation via :mod:`tracemalloc` (numpy
registers its allocations with tracemalloc, so large intermediate arrays —
the covariance tensor, kernel matrices, N×N eigenproblems — dominate the
measurement exactly as they dominate the paper's curves). Absolute numbers
differ from the authors' testbed; the cross-method ordering is what the
complexity experiments assert.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass

__all__ = ["ResourceUsage", "measure_resources"]


@dataclass
class ResourceUsage:
    """Cost of one measured call."""

    seconds: float
    peak_memory_mb: float


def measure_resources(function, *args, **kwargs):
    """Run ``function(*args, **kwargs)`` measuring time and peak memory.

    Returns
    -------
    (result, ResourceUsage)

    Notes
    -----
    tracemalloc is started and stopped around the call; nesting
    ``measure_resources`` inside a measured function is not supported.
    """
    already_tracing = tracemalloc.is_tracing()
    if not already_tracing:
        tracemalloc.start()
    tracemalloc.reset_peak()
    start = time.perf_counter()
    try:
        result = function(*args, **kwargs)
    finally:
        elapsed = time.perf_counter() - start
        _current, peak = tracemalloc.get_traced_memory()
        if not already_tracing:
            tracemalloc.stop()
    return result, ResourceUsage(
        seconds=elapsed, peak_memory_mb=peak / (1024.0 * 1024.0)
    )
