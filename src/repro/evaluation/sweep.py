"""Dimension sweeps over methods — the paper's accuracy-vs-``r`` curves.

For every subspace dimension ``r`` each method builds its candidate groups
once (the fit is unsupervised and transductive, so it is shared by all
random labeled draws), then each of the ``n_runs`` random draws (the
paper uses five) trains the downstream classifier and scores validation /
test accuracy. Resource usage of the representation construction is
recorded per ``(method, r)`` for the complexity experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.splits import sample_labeled_indices, split_validation
from repro.evaluation.metrics import mean_std
from repro.evaluation.protocol import (
    ClassifierSpec,
    EvaluationOutcome,
    evaluate_groups,
)
from repro.evaluation.resources import ResourceUsage, measure_resources
from repro.exceptions import ExperimentError
from repro.utils.rng import spawn_rngs

__all__ = ["MethodSweep", "SweepConfig", "run_dimension_sweep"]


@dataclass
class SweepConfig:
    """Configuration of one dimension sweep.

    Attributes
    ----------
    dims:
        Subspace dimensions ``r`` to sweep (the paper uses
        ``{5, 10, …, 300}``, truncated here to what each dataset supports).
    n_labeled:
        Labeled-sample budget — total, or per class when
        ``per_class_labeled`` is set (the NUS-WIDE protocol).
    per_class_labeled:
        See above.
    n_runs:
        Random labeled draws (paper: 5).
    validation_fraction:
        Share of non-labeled data used for validation (paper: 20%).
    classifier:
        Downstream learner spec.
    measure:
        Record time / peak memory of representation construction.
    random_state:
        Seed for the per-run streams.
    """

    dims: tuple
    n_labeled: int = 100
    per_class_labeled: bool = False
    n_runs: int = 5
    validation_fraction: float = 0.2
    classifier: ClassifierSpec = field(default_factory=ClassifierSpec)
    measure: bool = False
    random_state: int | None = 0


@dataclass
class MethodSweep:
    """Results of one method across the swept dimensions.

    ``test_accuracies[i, j]`` is run ``i`` at ``dims[j]``; the best-dimension
    summary follows the paper's protocol — for each run pick the dimension
    with the highest *validation* accuracy, then report the test accuracy
    there.
    """

    method: str
    dims: tuple
    test_accuracies: np.ndarray
    validation_accuracies: np.ndarray
    resources: list[ResourceUsage] = field(default_factory=list)

    def mean_curve(self) -> np.ndarray:
        """Mean test accuracy per dimension (a figure series)."""
        return self.test_accuracies.mean(axis=0)

    def std_curve(self) -> np.ndarray:
        """Std of test accuracy per dimension."""
        return self.test_accuracies.std(axis=0)

    def best_dimension_summary(self) -> tuple[float, float, list[int]]:
        """(mean, std, per-run best dims) of validation-selected accuracy."""
        per_run_best = np.argmax(self.validation_accuracies, axis=1)
        chosen = self.test_accuracies[
            np.arange(self.test_accuracies.shape[0]), per_run_best
        ]
        mean, std = mean_std(chosen)
        return mean, std, [int(self.dims[j]) for j in per_run_best]

    def time_curve(self) -> np.ndarray:
        """Representation-construction seconds per dimension."""
        return np.array([usage.seconds for usage in self.resources])

    def memory_curve(self) -> np.ndarray:
        """Representation-construction peak MB per dimension."""
        return np.array([usage.peak_memory_mb for usage in self.resources])


def run_dimension_sweep(
    methods,
    views,
    labels,
    config: SweepConfig,
) -> dict[str, MethodSweep]:
    """Run the full protocol for every method over ``config.dims``.

    Parameters
    ----------
    methods:
        Objects exposing ``name`` and ``groups(views, r)`` (see
        :mod:`repro.experiments.methods`).
    views:
        Full multi-view data, ``(d_p, N)`` matrices.
    labels:
        Length-``N`` labels (used only for classifier training /
        evaluation, never by the unsupervised fits).
    config:
        Sweep settings.

    Returns
    -------
    dict mapping method name to :class:`MethodSweep`.
    """
    labels = np.asarray(labels)
    n_samples = labels.shape[0]
    if any(view.shape[1] != n_samples for view in views):
        raise ExperimentError(
            "labels and views disagree on the sample count"
        )
    dims = tuple(int(r) for r in config.dims)
    if not dims:
        raise ExperimentError("config.dims must be non-empty")

    run_rngs = spawn_rngs(config.random_state, config.n_runs)
    splits = []
    for rng in run_rngs:
        labeled_idx = sample_labeled_indices(
            labels,
            config.n_labeled,
            per_class=config.per_class_labeled,
            random_state=rng,
        )
        remaining = np.setdiff1d(np.arange(n_samples), labeled_idx)
        validation_idx, test_idx = split_validation(
            remaining,
            fraction=config.validation_fraction,
            random_state=rng,
        )
        splits.append((labeled_idx, validation_idx, test_idx))

    results: dict[str, MethodSweep] = {}
    for method in methods:
        test_acc = np.zeros((config.n_runs, len(dims)))
        val_acc = np.zeros((config.n_runs, len(dims)))
        resources: list[ResourceUsage] = []
        for j, r in enumerate(dims):
            if config.measure:
                groups, usage = measure_resources(method.groups, views, r)
                resources.append(usage)
            else:
                groups = method.groups(views, r)
            for i, (labeled_idx, validation_idx, test_idx) in enumerate(
                splits
            ):
                outcome: EvaluationOutcome = evaluate_groups(
                    groups,
                    labels,
                    labeled_idx,
                    validation_idx,
                    test_idx,
                    config.classifier,
                )
                test_acc[i, j] = outcome.test_accuracy
                val_acc[i, j] = outcome.validation_accuracy
        results[method.name] = MethodSweep(
            method=method.name,
            dims=dims,
            test_accuracies=test_acc,
            validation_accuracies=val_acc,
            resources=resources,
        )
    return results
