"""Evaluation harness reproducing the paper's experimental protocol.

Five random draws of the labeled instances, 20% of the remaining data held
out for validation-based selection (dimension, k for kNN, ε when a grid is
given), transductive accuracy on the rest — plus wall-time / peak-memory
instrumentation for the complexity experiments (Figs. 7-10).
"""

from repro.evaluation.metrics import accuracy, mean_std
from repro.evaluation.resources import ResourceUsage, measure_resources
from repro.evaluation.protocol import (
    Candidate,
    ClassifierSpec,
    EvaluationOutcome,
    evaluate_groups,
)
from repro.evaluation.sweep import (
    MethodSweep,
    SweepConfig,
    run_dimension_sweep,
)

__all__ = [
    "Candidate",
    "ClassifierSpec",
    "EvaluationOutcome",
    "MethodSweep",
    "ResourceUsage",
    "SweepConfig",
    "accuracy",
    "evaluate_groups",
    "mean_std",
    "measure_resources",
    "run_dimension_sweep",
]
