"""Chunked multi-view data streams — the out-of-core data protocol.

A :class:`ViewStream` yields aligned minibatches
``(X_1[:, s:t], …, X_m[:, s:t])`` so that estimators can consume a
multi-view dataset without it ever being fully resident. Streams are
*re-iterable*: :meth:`ViewStream.chunks` can be called repeatedly and
yields the same chunk sequence each time, which lets multi-pass algorithms
(e.g. the two-pass whitening of
:func:`repro.core.tcca.whitened_covariance_tensor_streaming`) run on data
that only exists chunk by chunk.

Two concrete sources cover the common cases:

* :class:`ArrayViewStream` — slices already-materialized view matrices
  (adapts any :class:`~repro.datasets.synthetic.MultiviewDataset`);
* :class:`GeneratorViewStream` — calls a chunk factory on demand, so each
  minibatch is *generated* when requested and released afterwards; the
  ``stream_*_like`` dataset factories build on it.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import check_positive_int, check_views

__all__ = [
    "ArrayViewStream",
    "GeneratorViewStream",
    "ViewStream",
    "as_view_stream",
    "iter_validated_chunks",
]

DEFAULT_CHUNK_SIZE = 256


def _check_chunk_size(chunk_size) -> int:
    # check_positive_int rejects non-integers (floats, bools, strings)
    # with a clear message, so a bad chunk_size fails at the API
    # boundary instead of deep in a slicing loop.
    return check_positive_int(chunk_size, "chunk_size")


class ViewStream:
    """Base class of chunked multi-view sources.

    Subclasses implement :meth:`chunks` and expose ``dims`` (per-view
    feature dimensions), ``n_views``, and ``n_samples``. Iterating the
    stream object itself is equivalent to iterating :meth:`chunks`.
    Subclasses whose yielded *data* is independent of the chunk geometry
    may set ``rechunkable = True`` to let :func:`as_view_stream` honor a
    ``chunk_size`` request with a re-chunked copy.
    """

    #: whether the same samples are yielded regardless of chunk size
    rechunkable = False

    @property
    def dims(self) -> tuple[int, ...]:
        """Per-view feature dimensions ``(d_1, …, d_m)``."""
        raise NotImplementedError

    @property
    def n_samples(self) -> int:
        """Total number of samples the stream yields per pass."""
        raise NotImplementedError

    @property
    def n_views(self) -> int:
        """Number of views."""
        return len(self.dims)

    def chunks(self):
        """Yield aligned tuples of ``(d_p, n_chunk)`` arrays."""
        raise NotImplementedError

    def __iter__(self):
        return self.chunks()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(n_views={self.n_views}, "
            f"dims={tuple(self.dims)}, n_samples={self.n_samples})"
        )


def _chunk_bounds(n_samples: int, chunk_size: int):
    for start in range(0, n_samples, chunk_size):
        yield start, min(start + chunk_size, n_samples)


class ArrayViewStream(ViewStream):
    """Stream over already-materialized view matrices.

    Parameters
    ----------
    views:
        Sequence of ``(d_p, N)`` arrays sharing the sample axis.
    chunk_size:
        Samples per minibatch (the last chunk may be smaller).

    Notes
    -----
    The data stays resident (it already was); the point of this adapter is
    to exercise streaming consumers — equivalence tests, benchmarks, and
    the ``--stream`` complexity path — against in-memory datasets.
    """

    rechunkable = True

    def __init__(
        self,
        views,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        *,
        require_finite: bool = True,
    ):
        self._views = check_views(
            views, min_views=2, require_finite=require_finite
        )
        self.chunk_size = _check_chunk_size(chunk_size)

    @property
    def dims(self) -> tuple[int, ...]:
        return tuple(view.shape[0] for view in self._views)

    @property
    def n_samples(self) -> int:
        return int(self._views[0].shape[1])

    def chunks(self):
        for start, stop in _chunk_bounds(self.n_samples, self.chunk_size):
            yield tuple(view[:, start:stop] for view in self._views)


class GeneratorViewStream(ViewStream):
    """Stream whose chunks are produced on demand by a factory callable.

    Parameters
    ----------
    chunk_factory:
        ``chunk_factory(chunk_index, start, stop)`` returning the tuple of
        per-view arrays for samples ``[start, stop)``. It must be
        deterministic in its arguments so the stream is re-iterable —
        dataset factories achieve this by seeding a fresh generator per
        chunk from a :class:`numpy.random.SeedSequence`.
    n_samples:
        Total samples per pass.
    dims:
        Per-view feature dimensions (validated against every chunk).
    chunk_size:
        Samples per minibatch.
    name:
        Optional label for diagnostics.
    """

    def __init__(
        self,
        chunk_factory,
        n_samples: int,
        dims,
        *,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        name: str = "generated",
    ):
        if not callable(chunk_factory):
            raise ValidationError("chunk_factory must be callable")
        self._factory = chunk_factory
        self._n_samples = int(n_samples)
        if self._n_samples < 1:
            raise ValidationError(
                f"n_samples must be >= 1, got {n_samples}"
            )
        self._dims = tuple(int(d) for d in dims)
        if len(self._dims) < 2:
            raise ValidationError(
                f"need at least 2 views, got dims={self._dims}"
            )
        self.chunk_size = _check_chunk_size(chunk_size)
        self.name = name

    @property
    def dims(self) -> tuple[int, ...]:
        return self._dims

    @property
    def n_samples(self) -> int:
        return self._n_samples

    def chunk_at(self, index: int, start: int, stop: int):
        """Produce (and validate) the single chunk for ``[start, stop)``.

        Chunks are generated independently per index, so random access
        is as cheap as sequential — which lets a
        :class:`~repro.parallel.sharding.StreamShard` produce only its
        own block instead of replaying the whole pass.
        """
        chunk = tuple(
            np.asarray(block, dtype=np.float64)
            for block in self._factory(index, start, stop)
        )
        if len(chunk) != len(self._dims):
            raise ValidationError(
                f"chunk factory returned {len(chunk)} views, "
                f"expected {len(self._dims)}"
            )
        for block, dim in zip(chunk, self._dims):
            if block.shape != (dim, stop - start):
                raise ValidationError(
                    f"chunk {index} has view shapes "
                    f"{[b.shape for b in chunk]}, expected dims "
                    f"{self._dims} with {stop - start} samples"
                )
        return chunk

    def chunks(self):
        for index, (start, stop) in enumerate(
            _chunk_bounds(self._n_samples, self.chunk_size)
        ):
            yield self.chunk_at(index, start, stop)


def iter_validated_chunks(stream: ViewStream):
    """Yield each chunk tuple of ``stream`` as a list, validated.

    Enforces the stream protocol every multi-pass consumer needs: each
    chunk tuple has one entry per advertised view, the per-view chunks
    share a sample count, and — checked when the generator is exhausted —
    the pass yielded exactly the advertised ``n_samples`` (the contract a
    non-re-iterable source breaks on its second pass).
    """
    n_views = stream.n_views
    total = 0
    for chunks in stream.chunks():
        chunks = list(chunks)
        if len(chunks) != n_views:
            raise ValidationError(
                f"stream yielded {len(chunks)} view chunks, advertised "
                f"{n_views} views"
            )
        widths = {np.shape(chunk)[-1] for chunk in chunks}
        if len(widths) != 1:
            raise ValidationError(
                f"view chunks must share the sample count; got {sorted(widths)}"
            )
        total += widths.pop()
        yield chunks
    if total != stream.n_samples:
        raise ValidationError(
            f"stream yielded {total} samples on this pass but advertised "
            f"{stream.n_samples}; streams must be re-iterable"
        )


def as_view_stream(
    source,
    chunk_size: int | None = None,
    *,
    require_finite: bool = True,
) -> ViewStream:
    """Coerce ``source`` into a :class:`ViewStream`.

    Accepts an existing stream, a
    :class:`~repro.datasets.synthetic.MultiviewDataset`, or a sequence of
    ``(d_p, N)`` view matrices. A requested ``chunk_size`` never mutates
    the caller's stream: ``rechunkable`` streams are shallow-copied with
    the new size, and streams whose data identity depends on the chunk
    geometry (e.g. :class:`GeneratorViewStream`, which seeds each chunk
    by its index and bounds) raise instead of silently yielding a
    different dataset. ``require_finite=False`` defers NaN/Inf handling
    to a downstream accumulator's ``nan_policy`` screening (only applies
    when ``source`` is a plain batch that gets wrapped here).
    """
    if isinstance(source, ViewStream):
        if chunk_size is None:
            return source
        chunk_size = _check_chunk_size(chunk_size)
        if getattr(source, "chunk_size", None) == chunk_size:
            return source
        if not source.rechunkable:
            raise ValidationError(
                f"cannot re-chunk a {type(source).__name__}: its samples "
                "are generated per chunk, so a different chunk size would "
                "yield different data; construct the stream with the "
                "desired chunk size instead"
            )
        rechunked = copy.copy(source)
        rechunked.chunk_size = chunk_size
        return rechunked
    views = getattr(source, "views", source)
    if chunk_size is None:
        chunk_size = DEFAULT_CHUNK_SIZE
    return ArrayViewStream(
        views, chunk_size=chunk_size, require_finite=require_finite
    )
