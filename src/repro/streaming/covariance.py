"""One-pass accumulators for means, covariances, and covariance tensors.

The batch path materializes every view ``X_p ∈ R^{d_p × N}`` before forming
the order-``m`` covariance tensor ``C_{12…m}`` — the object whose ``∏ d_p``
size the paper's complexity study (Figs. 7-10) revolves around. Its *sample*
axis, however, is purely additive: every statistic TCCA needs is a sum over
samples. The accumulators here exploit that to consume ``(d_p, n_chunk)``
minibatches and maintain

* exact running means ``μ_p``,
* per-view covariances ``C_pp``,
* the covariance tensor ``C_{12…m}``,

in memory independent of ``N`` — only ``∏ d_p`` plus the chunk itself.

Numerical stability — shifted sufficient statistics
---------------------------------------------------
Raw moments ``Σ x ∘ … ∘ x`` lose precision catastrophically when the mean
is large relative to the spread (the classic one-pass-variance failure).
Each accumulator therefore records a *shift* ``b_p`` (by default the column
mean of the first chunk, i.e. already within ``O(σ/√n_chunk)`` of the true
mean) and accumulates moments of ``y = x − b``. Centered statistics are
recovered exactly at finalization through the multilinear expansion

``(1/N) Σ_n ⊗_p (y_pn − δ_p)
  = Σ_{T ⊆ [m]} (−1)^{m−|T|} M̄_T ⊗ (⊗_{p∉T} δ_p)``

where ``δ_p = mean(y_p) = μ_p − b_p`` is *small* and
``M̄_T = (1/N) Σ_n ⊗_{p∈T} y_pn`` are the shifted subset moments — so the
correction terms are tiny relative to the leading moment and no
catastrophic cancellation occurs.

A single Khatri-Rao chunk routine (:func:`accumulate_outer_sum`) performs
every outer-product accumulation — the batch
:func:`repro.linalg.covariance.covariance_tensor` delegates to it through
:class:`StreamingCovarianceTensor`, so there is exactly one implementation
of the hot loop.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import ensure_2d

__all__ = [
    "StreamingCovariance",
    "StreamingCovarianceTensor",
    "accumulate_outer_sum",
    "check_nan_policy",
    "screen_chunks",
]

#: Khatri-Rao buffer budget, denominated in float64 elements: ~2^23
#: (≈64 MB) regardless of chunk size. :func:`accumulate_outer_sum`
#: converts it to bytes, so narrower dtypes fit proportionally more rows
#: in the same memory footprint.
DEFAULT_BUFFER_FLOATS = 2**23

_NAN_POLICIES = ("raise", "skip")


def check_nan_policy(nan_policy: str) -> str:
    """Validate a ``nan_policy`` value (``"raise"`` or ``"skip"``)."""
    if nan_policy not in _NAN_POLICIES:
        raise ValidationError(
            f"unknown nan_policy {nan_policy!r}; expected one of "
            f"{_NAN_POLICIES}"
        )
    return nan_policy


def screen_chunks(
    chunks, *, nan_policy: str = "raise", chunk_index: int | None = None
):
    """Validate or drop non-finite samples across aligned view chunks.

    Moment accumulation silently poisoned by a single NaN is the worst
    failure mode of a long streaming fit — every statistic downstream
    turns NaN with no pointer back to the offending input. This is the
    one screening routine every ingest path shares:

    * ``nan_policy="raise"`` (default) — a typed
      :class:`~repro.exceptions.ValidationError` naming the offending
      view and chunk index.
    * ``nan_policy="skip"`` — samples (columns) carrying a NaN/Inf in
      *any* view are dropped from *every* view, keeping the views
      aligned; returns how many were dropped.

    Returns ``(clean_chunks, n_skipped)``.
    """
    check_nan_policy(nan_policy)
    mask = None
    offending = None
    for index, chunk in enumerate(chunks):
        finite = np.isfinite(chunk).all(axis=0)
        if offending is None and not finite.all():
            offending = index
        mask = finite if mask is None else (mask & finite)
    if offending is None:
        return list(chunks), 0
    where = "" if chunk_index is None else f" in chunk {chunk_index}"
    if nan_policy == "raise":
        raise ValidationError(
            f"views[{offending}] contains NaN or infinite values"
            f"{where}; clean the data or pass nan_policy='skip' to drop "
            "the affected samples"
        )
    n_skipped = int(np.count_nonzero(~mask))
    return [chunk[:, mask] for chunk in chunks], n_skipped


def accumulate_outer_sum(
    unfold0: np.ndarray,
    chunks,
    *,
    buffer_floats: int = DEFAULT_BUFFER_FLOATS,
) -> np.ndarray:
    """Add ``Σ_n x_1n ∘ x_2n ∘ … ∘ x_kn`` to a mode-0 unfolding in place.

    ``unfold0`` has shape ``(d_1, ∏_{p>1} d_p)`` with columns enumerating
    the trailing modes in the forward-cyclic order of
    :mod:`repro.tensor.dense` (``i_2`` varying fastest). The sum of outer
    products over the chunk's samples is ``X_1 @ K^T`` with ``K`` the
    sample-wise Khatri-Rao product of the remaining chunks (reverse order);
    ``K`` is built in sample slices so its buffer stays near
    ``buffer_floats`` *float64-equivalent* elements while all heavy
    lifting runs through BLAS. The budget is a byte budget: float32
    chunks pack twice the samples per slice into the same memory, so the
    mixed-precision path halves neither throughput nor footprint by
    accident. For float64 chunks the slicing is bit-for-bit identical to
    the element-count formula.

    This is the library's *only* Khatri-Rao accumulation — both the batch
    covariance tensor and the streaming accumulators route through it.
    """
    chunks = list(chunks)
    if len(chunks) < 2:
        raise ValidationError(
            f"need at least 2 factors for an outer-product sum, "
            f"got {len(chunks)}"
        )
    n_samples = chunks[0].shape[1]
    trailing = unfold0.shape[1]
    itemsize = max(chunk.dtype.itemsize for chunk in chunks[1:])
    budget_bytes = int(buffer_floats) * np.dtype(np.float64).itemsize
    step = max(1, budget_bytes // max(trailing * itemsize, 1))
    for start in range(0, n_samples, step):
        stop = min(start + step, n_samples)
        # Rows of `joined` enumerate (i_k, …, i_2) with i_2 varying fastest,
        # matching the forward-cyclic mode-0 unfolding columns.
        joined = chunks[-1][:, start:stop]
        for factor in chunks[-2:0:-1]:
            block = factor[:, start:stop]
            joined = np.einsum(
                "in,jn->ijn", joined, block
            ).reshape(-1, stop - start)
        unfold0 += chunks[0][:, start:stop] @ joined.T
    return unfold0


def _as_shift(shift, dim: int) -> np.ndarray:
    """Coerce a user-supplied shift into a ``(dim,)`` float vector."""
    shift = np.asarray(shift, dtype=np.float64)
    if shift.ndim == 0:
        shift = np.full(dim, float(shift))
    shift = shift.reshape(-1)
    if shift.shape[0] != dim:
        raise ValidationError(
            f"shift must have length {dim}, got {shift.shape[0]}"
        )
    if not np.all(np.isfinite(shift)):
        raise ValidationError("shift contains NaN or infinite entries")
    return shift


def _apply_shift(chunk: np.ndarray, shift: np.ndarray) -> np.ndarray:
    """``chunk − shift`` without copying when the shift is exactly zero."""
    if not np.any(shift):
        return chunk
    return chunk - shift[:, None]


class StreamingCovariance:
    """Running mean and covariance of one view from ``(d, n_chunk)`` chunks.

    Parameters
    ----------
    dim:
        Feature dimension; inferred from the first chunk when omitted.
    shift:
        Stabilizing shift ``b`` (scalar or ``(d,)`` vector). Default
        ``None`` uses the column mean of the first chunk. Pass ``0`` to
        accumulate raw moments (exactly reproducing the batch
        ``X @ X.T / N`` arithmetic on pre-centered data).
    second_moment:
        ``False`` skips the ``O(d² n)`` outer-product accumulation,
        tracking only the mean statistics; :meth:`covariance` then
        raises. Used by consumers that only need exact means (e.g. the
        covariance-tensor accumulator in raw mode).
    nan_policy:
        ``"raise"`` (default) rejects chunks carrying NaN/Inf with a
        typed :class:`~repro.exceptions.ValidationError` naming the
        chunk index; ``"skip"`` drops the affected samples and counts
        them in :attr:`n_skipped`.
    dtype:
        Accumulation dtype of the moment buffers (``None`` → float64,
        the default under every built-in precision policy — moment sums
        are where cancellation lives). Chunks are cast on ingest, so a
        float64 accumulator fed float32 chunks still sums in float64.
        Shards can only :meth:`merge` when their dtypes match.

    Notes
    -----
    State is ``O(d²)`` — independent of the number of samples consumed.
    Accumulators over disjoint sample shards combine exactly with
    :meth:`merge`, so per-view statistics parallelize map-reduce style.
    """

    def __init__(
        self,
        dim: int | None = None,
        *,
        shift=None,
        second_moment: bool = True,
        nan_policy: str = "raise",
        dtype=None,
    ):
        self._dtype = np.dtype(np.float64 if dtype is None else dtype)
        self._dim = None if dim is None else int(dim)
        self._requested_shift = shift
        self._shift: np.ndarray | None = None
        self._n = 0
        self._sum: np.ndarray | None = None
        self._outer: np.ndarray | None = None
        self._second_moment = bool(second_moment)
        self.nan_policy = check_nan_policy(nan_policy)
        self._n_skipped = 0
        self._chunk_index = 0
        if self._dim is not None and shift is not None:
            self._allocate(self._dim)

    def _allocate(self, dim: int) -> None:
        self._dim = dim
        self._sum = np.zeros(dim, dtype=self._dtype)
        if self._second_moment:
            self._outer = np.zeros((dim, dim), dtype=self._dtype)
        if self._requested_shift is not None:
            self._shift = _as_shift(self._requested_shift, dim).astype(
                self._dtype, copy=False
            )

    def update(self, chunk) -> "StreamingCovariance":
        """Consume one ``(d, n_chunk)`` minibatch of samples (columns)."""
        chunk = ensure_2d(
            chunk, name="chunk", require_finite=False, dtype=self._dtype
        )
        (chunk,), skipped = screen_chunks(
            [chunk],
            nan_policy=self.nan_policy,
            chunk_index=self._chunk_index,
        )
        self._chunk_index += 1
        self._n_skipped += skipped
        if chunk.shape[1] == 0:
            # Every sample was skipped: nothing to ingest (and a shift
            # must never be taken from an empty chunk's mean).
            return self
        self._ingest(chunk)
        return self

    def _ingest(self, chunk: np.ndarray) -> np.ndarray:
        """Accumulate a validated chunk; return the shifted samples.

        Shared with :class:`StreamingCovarianceTensor`, which reuses the
        shifted chunk for its Khatri-Rao accumulation instead of
        subtracting the shift a second time.
        """
        if self._dim is None:
            self._allocate(chunk.shape[0])
        elif self._sum is None:
            self._allocate(self._dim)
        if chunk.shape[0] != self._dim:
            raise ValidationError(
                f"chunk has dimension {chunk.shape[0]}, accumulator expects "
                f"{self._dim}"
            )
        if self._shift is None:
            self._shift = chunk.mean(axis=1)
        shifted = _apply_shift(chunk, self._shift)
        self._sum += shifted.sum(axis=1)
        if self._second_moment:
            self._outer += shifted @ shifted.T
        self._n += chunk.shape[1]
        return shifted

    def state_dict(self) -> dict:
        """Serializable snapshot of the accumulator state.

        Returns a flat dict of plain scalars and ``numpy`` arrays —
        everything :meth:`from_state_dict` needs to resume accumulation
        exactly where this instance stopped (same shift, same moments).
        """
        requested = self._requested_shift
        if requested is not None and self._shift is None:
            # Not yet allocated: keep the pending shift so a resumed
            # accumulator applies it to its first chunk as this one would.
            requested = np.asarray(requested, dtype=np.float64)
        else:
            requested = None
        return {
            "n": int(self._n),
            "dim": self._dim,
            "second_moment": self._second_moment,
            "nan_policy": self.nan_policy,
            "dtype": self._dtype.name,
            "n_skipped": int(self._n_skipped),
            "chunk_index": int(self._chunk_index),
            "requested_shift": requested,
            "shift": None if self._shift is None else self._shift.copy(),
            "sum": None if self._sum is None else self._sum.copy(),
            "outer": None if self._outer is None else self._outer.copy(),
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "StreamingCovariance":
        """Rebuild an accumulator from :meth:`state_dict` output."""
        # .get defaults keep states written before nan_policy existed
        # loadable (they never skipped anything).
        accumulator = cls(
            dim=state["dim"],
            shift=state.get("requested_shift"),
            second_moment=bool(state["second_moment"]),
            nan_policy=state.get("nan_policy", "raise"),
            dtype=state.get("dtype"),
        )
        accumulator._n_skipped = int(state.get("n_skipped", 0))
        accumulator._chunk_index = int(state.get("chunk_index", 0))
        for attr, key in (
            ("_shift", "shift"), ("_sum", "sum"), ("_outer", "outer")
        ):
            value = state.get(key)
            if value is not None:
                setattr(
                    accumulator,
                    attr,
                    np.array(value, dtype=accumulator._dtype),
                )
        accumulator._n = int(state["n"])
        return accumulator

    def merge(self, other: "StreamingCovariance") -> "StreamingCovariance":
        """Fold another accumulator's samples into this one, exactly.

        The other accumulator may use a different shift: its statistics are
        re-expressed around this accumulator's shift in closed form before
        adding, so ``a.merge(b)`` equals one accumulator fed both shards.
        """
        if not isinstance(other, StreamingCovariance):
            raise ValidationError(
                f"can only merge StreamingCovariance, got "
                f"{type(other).__name__}"
            )
        if other._dtype != self._dtype:
            raise ValidationError(
                f"cannot merge a {other._dtype.name} accumulator into a "
                f"{self._dtype.name} one; shards must be accumulated "
                "under the same dtype (re-run the divergent shard with a "
                "matching precision policy)"
            )
        self._n_skipped += other._n_skipped
        if other._n == 0:
            return self
        if self._dim is not None and other._dim != self._dim:
            raise ValidationError(
                f"cannot merge dimension {other._dim} into {self._dim}"
            )
        if self._second_moment != other._second_moment:
            raise ValidationError(
                "cannot merge accumulators with different second_moment "
                "settings"
            )
        if self._n == 0:
            self._dim = other._dim
            self._shift = other._shift.copy()
            self._sum = other._sum.copy()
            self._outer = (
                None if other._outer is None else other._outer.copy()
            )
            self._n = other._n
            return self
        # Re-shift: y' = x - b_self = y_other + d with d = b_other - b_self.
        d = other._shift - self._shift
        self._sum += other._sum + other._n * d
        if self._second_moment:
            self._outer += (
                other._outer
                + np.outer(other._sum, d)
                + np.outer(d, other._sum)
                + other._n * np.outer(d, d)
            )
        self._n += other._n
        return self

    @property
    def dim(self) -> int | None:
        """Feature dimension (``None`` until the first chunk)."""
        return self._dim

    @property
    def dtype(self) -> np.dtype:
        """Accumulation dtype of the moment buffers."""
        return self._dtype

    @property
    def n_samples(self) -> int:
        """Number of samples consumed so far."""
        return self._n

    @property
    def n_skipped(self) -> int:
        """Samples dropped by ``nan_policy="skip"`` so far."""
        return self._n_skipped

    def _require_samples(self) -> None:
        if self._n == 0:
            raise ValidationError(
                "accumulator is empty; feed at least one chunk first"
            )

    @property
    def mean(self) -> np.ndarray:
        """Exact running mean ``μ = b + mean(y)`` of shape ``(d,)``."""
        self._require_samples()
        return self._shift + self._sum / self._n

    def covariance(self, *, center: bool = True) -> np.ndarray:
        """``(1/N) Σ (x−μ)(x−μ)^T`` (or the raw ``(1/N) Σ x x^T``).

        With ``center=False`` the *uncentered* second moment is returned —
        what the batch :func:`repro.linalg.covariance.view_covariance`
        computes under ``assume_centered=True``.
        """
        self._require_samples()
        if not self._second_moment:
            raise ValidationError(
                "this accumulator was created with second_moment=False and "
                "tracks only means"
            )
        moment = self._outer / self._n
        delta = self._sum / self._n
        if center:
            return moment - np.outer(delta, delta)
        mean = self._shift + delta
        return (
            moment
            + np.outer(delta, self._shift)
            + np.outer(self._shift, mean)
        )


class StreamingCovarianceTensor:
    """Running covariance tensor ``C_{12…m}`` of ``m`` views from minibatches.

    Consumes tuples of per-view chunks ``(X_1[:, s:t], …, X_m[:, s:t])`` and
    maintains exact running means, per-view covariances ``C_pp``, and the
    order-``m`` covariance tensor, in memory independent of ``N``.

    Parameters
    ----------
    dims:
        Per-view feature dimensions; inferred from the first update when
        omitted.
    center:
        ``True`` (default) — finalize the *centered* tensor
        ``(1/N) Σ (x_1−μ_1) ∘ … ∘ (x_m−μ_m)`` via shifted subset moments.
        ``False`` — accumulate the raw moment only (appropriate when the
        stream is pre-centered, e.g. whitened views); skips the
        ``2^m − m − 1`` subset statistics.
    shifts:
        Optional per-view stabilizing shifts (see
        :class:`StreamingCovariance`); default is the first chunk's means.
    track_view_covariances:
        ``True`` (default) also maintains the per-view second moments so
        :meth:`view_covariance` works — what a full streaming fit needs.
        Batch delegates that only want the tensor pass ``False`` to skip
        the ``O(Σ d_p² · N)`` side accumulation.
    buffer_floats:
        Khatri-Rao buffer budget passed to :func:`accumulate_outer_sum`.
    nan_policy:
        ``"raise"`` (default) rejects minibatches carrying NaN/Inf with
        a typed :class:`~repro.exceptions.ValidationError` naming the
        view and chunk index; ``"skip"`` drops the affected samples
        from *every* view (keeping them aligned) and counts them in
        :attr:`n_skipped`.
    dtype:
        Accumulation dtype of every moment buffer — the subset tensors
        and the per-view statistics alike (``None`` → float64, the
        default under every built-in precision policy including
        ``"mixed"``). Chunks are cast on ingest. Shards can only
        :meth:`merge` when their accumulation dtypes match; the dtype is
        recorded in :meth:`state_dict` so persisted shards carry it.

    Notes
    -----
    With ``center=True`` the state holds one shifted moment tensor per
    subset ``T`` of views with ``|T| ≥ 2`` — dominated by the full
    ``∏ d_p`` tensor itself, with the pairwise matrices a lower-order cost.
    The mean correction is *exact* (not an approximation): in exact
    arithmetic the finalized tensor equals the batch tensor of the centered
    data for any chunking.
    """

    def __init__(
        self,
        dims=None,
        *,
        center: bool = True,
        shifts=None,
        track_view_covariances: bool = True,
        buffer_floats: int = DEFAULT_BUFFER_FLOATS,
        nan_policy: str = "raise",
        dtype=None,
    ):
        self._dtype = np.dtype(np.float64 if dtype is None else dtype)
        self._dims = None if dims is None else tuple(int(d) for d in dims)
        if self._dims is not None and len(self._dims) < 2:
            raise ValidationError(
                f"need at least 2 views, got dims={self._dims}"
            )
        self.center = bool(center)
        self._requested_shifts = shifts
        self._track_view_covariances = bool(track_view_covariances)
        self.buffer_floats = int(buffer_floats)
        self.nan_policy = check_nan_policy(nan_policy)
        self._n_skipped = 0
        self._chunk_index = 0
        self._n = 0
        self._views: list[StreamingCovariance] | None = None
        self._moments: dict[tuple[int, ...], np.ndarray] | None = None
        if self._dims is not None:
            self._allocate(self._dims)

    def _subsets(self, m: int):
        """Subsets of view indices needing a shifted moment tensor."""
        if not self.center:
            return [tuple(range(m))]
        subsets = []
        for size in range(2, m + 1):
            subsets.extend(combinations(range(m), size))
        return subsets

    def _allocate(self, dims: tuple[int, ...]) -> None:
        self._dims = dims
        m = len(dims)
        if self._requested_shifts is None:
            # Raw mode accumulates the moment of the data exactly as given
            # (it is assumed pre-centered), so no stabilizing shift.
            per_view_shifts = (
                [0.0] * m if not self.center else [None] * m
            )
        else:
            per_view_shifts = list(self._requested_shifts)
            if len(per_view_shifts) != m:
                raise ValidationError(
                    f"need one shift per view ({m}), got "
                    f"{len(per_view_shifts)}"
                )
        self._views = [
            StreamingCovariance(
                dim,
                shift=shift,
                second_moment=self._track_view_covariances,
                dtype=self._dtype,
            )
            for dim, shift in zip(dims, per_view_shifts)
        ]
        self._moments = {
            subset: np.zeros(
                (
                    dims[subset[0]],
                    int(
                        np.prod(
                            [dims[p] for p in subset[1:]], dtype=np.int64
                        )
                    ),
                ),
                dtype=self._dtype,
            )
            for subset in self._subsets(m)
        }

    def update(self, chunks) -> "StreamingCovarianceTensor":
        """Consume one minibatch: a sequence of ``(d_p, n_chunk)`` arrays."""
        chunks = [
            ensure_2d(
                chunk,
                name=f"chunks[{index}]",
                require_finite=False,
                dtype=self._dtype,
            )
            for index, chunk in enumerate(chunks)
        ]
        if len(chunks) < 2:
            raise ValidationError(
                f"need at least 2 view chunks per update, got {len(chunks)}"
            )
        if self._dims is None:
            self._allocate(tuple(chunk.shape[0] for chunk in chunks))
        if len(chunks) != len(self._dims):
            raise ValidationError(
                f"expected {len(self._dims)} view chunks, got {len(chunks)}"
            )
        sample_counts = {chunk.shape[1] for chunk in chunks}
        if len(sample_counts) != 1:
            raise ValidationError(
                "view chunks must share the sample count; got "
                f"{sorted(sample_counts)}"
            )
        for chunk, dim in zip(chunks, self._dims):
            if chunk.shape[0] != dim:
                raise ValidationError(
                    f"chunk dimensions {[c.shape[0] for c in chunks]} do not "
                    f"match accumulator dims {list(self._dims)}"
                )
        chunks, skipped = screen_chunks(
            chunks,
            nan_policy=self.nan_policy,
            chunk_index=self._chunk_index,
        )
        self._chunk_index += 1
        self._n_skipped += skipped
        if chunks[0].shape[1] == 0:
            # Every sample was skipped: nothing to ingest (and no
            # shift may be taken from an empty chunk's mean).
            return self
        shifted = [
            accumulator._ingest(chunk)
            for accumulator, chunk in zip(self._views, chunks)
        ]
        for subset, moment in self._moments.items():
            accumulate_outer_sum(
                moment,
                [shifted[p] for p in subset],
                buffer_floats=self.buffer_floats,
            )
        self._n += chunks[0].shape[1]
        return self

    def merge(
        self, other: "StreamingCovarianceTensor"
    ) -> "StreamingCovarianceTensor":
        """Fold another accumulator's samples into this one, exactly.

        The map-reduce primitive for shard-parallel moment computation:
        accumulators fed disjoint sample shards combine into the statistics
        of the union, so ``a.merge(b).tensor()`` equals one accumulator fed
        both shards' chunks. Centered accumulators may use different
        stabilizing shifts — the other's shifted subset moments are
        re-expressed around this accumulator's shifts through the same
        multilinear expansion :meth:`tensor` uses, so the merge is exact in
        exact arithmetic. Raw accumulators (``center=False``) carry no
        subset statistics to correct with and therefore must share shifts.
        """
        if not isinstance(other, StreamingCovarianceTensor):
            raise ValidationError(
                f"can only merge StreamingCovarianceTensor, got "
                f"{type(other).__name__}"
            )
        if other._dtype != self._dtype:
            raise ValidationError(
                f"cannot merge a {other._dtype.name} accumulator into a "
                f"{self._dtype.name} one; shards must be accumulated "
                "under the same dtype (re-run the divergent shard with a "
                "matching precision policy)"
            )
        if self.center != other.center:
            raise ValidationError(
                "cannot merge accumulators with different center settings"
            )
        if self._track_view_covariances != other._track_view_covariances:
            raise ValidationError(
                "cannot merge accumulators with different "
                "track_view_covariances settings"
            )
        self._n_skipped += other._n_skipped
        if other._n == 0:
            return self
        if self._dims is not None and other._dims != self._dims:
            raise ValidationError(
                f"cannot merge dims {other._dims} into {self._dims}"
            )
        if self._n == 0:
            # Adopt the other shard's state wholesale (shift included).
            self._dims = other._dims
            self._views = [
                StreamingCovariance.from_state_dict(view.state_dict())
                for view in other._views
            ]
            self._moments = {
                subset: moment.copy()
                for subset, moment in other._moments.items()
            }
            self._n = other._n
            return self
        # d_p = b_other − b_self: the other's shifted samples relate to
        # ours by y_self = y_other + d.
        deltas = [
            theirs._shift - mine._shift
            for mine, theirs in zip(self._views, other._views)
        ]
        shifted_apart = [bool(np.any(delta)) for delta in deltas]
        if any(shifted_apart) and not self.center:
            raise ValidationError(
                "raw-mode (center=False) accumulators track no subset "
                "statistics and can only be merged when their shifts "
                "match; construct the shards with identical shifts"
            )
        if any(shifted_apart):
            from repro.tensor.dense import unfold

            for subset in self._moments:
                self._moments[subset] += unfold(
                    self._reshifted_subset_sum(subset, other, deltas), 0
                )
        else:
            for subset in self._moments:
                self._moments[subset] += other._moments[subset]
        for mine, theirs in zip(self._views, other._views):
            mine.merge(theirs)
        self._n += other._n
        return self

    def _reshifted_subset_sum(self, subset, other, deltas) -> np.ndarray:
        """``Σ_n ⊗_{p∈subset} (y'_pn + δ_p)`` from ``other``'s moments.

        Expands the other shard's shifted subset sums around this
        accumulator's shifts: every inner subset ``S ⊆ subset`` contributes
        its moment sum ``Σ_n ⊗_{p∈S} y'_pn`` (``|S|=1`` → the per-view
        sums, ``|S|=0`` → the count) completed with ``δ_p`` factors on the
        remaining axes — the merge-time twin of :meth:`tensor`'s mean
        correction. Returned folded, in ``subset``'s axis order.
        """
        from repro.tensor.dense import fold

        total = np.zeros([self._dims[p] for p in subset], dtype=self._dtype)
        for size in range(0, len(subset) + 1):
            for inner in combinations(subset, size):
                missing = [p for p in subset if p not in inner]
                if any(not np.any(deltas[p]) for p in missing):
                    continue  # a zero δ_p factor kills the whole term
                if size >= 2:
                    core = fold(
                        other._moments[inner],
                        0,
                        [self._dims[p] for p in inner],
                    )
                elif size == 1:
                    core = other._views[inner[0]]._sum
                else:
                    core = np.array(float(other._n))
                term = core
                for p in missing:
                    term = np.multiply.outer(term, deltas[p])
                order = list(inner) + missing
                total += np.transpose(term, np.argsort(order))
        return total

    def state_dict(self) -> dict:
        """Serializable snapshot: configuration, per-view states, moments.

        Subset moment keys are rendered ``"p-q-…"`` so the whole structure
        is a nest of plain scalars, strings, and arrays — directly
        writable to an ``.npz``-style archive by flattening callers.
        """
        return {
            "dims": None if self._dims is None else list(self._dims),
            "center": self.center,
            "track_view_covariances": self._track_view_covariances,
            "buffer_floats": int(self.buffer_floats),
            "nan_policy": self.nan_policy,
            "dtype": self._dtype.name,
            "n_skipped": int(self._n_skipped),
            "chunk_index": int(self._chunk_index),
            "n": int(self._n),
            "views": (
                None
                if self._views is None
                else [view.state_dict() for view in self._views]
            ),
            "moments": (
                None
                if self._moments is None
                else {
                    "-".join(str(p) for p in subset): moment.copy()
                    for subset, moment in self._moments.items()
                }
            ),
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "StreamingCovarianceTensor":
        """Rebuild an accumulator from :meth:`state_dict` output."""
        # dims=None: constructing allocated would zero-fill every subset
        # moment (incl. the full ∏ d_p tensor) only to rebind them to the
        # archived arrays below — a pointless transient 2x peak.
        accumulator = cls(
            dims=None,
            center=bool(state["center"]),
            track_view_covariances=bool(state["track_view_covariances"]),
            buffer_floats=int(state["buffer_floats"]),
            nan_policy=state.get("nan_policy", "raise"),
            dtype=state.get("dtype"),
        )
        accumulator._n_skipped = int(state.get("n_skipped", 0))
        accumulator._chunk_index = int(state.get("chunk_index", 0))
        if state["dims"] is not None:
            accumulator._dims = tuple(int(d) for d in state["dims"])
        if state["views"] is not None:
            accumulator._views = [
                StreamingCovariance.from_state_dict(view)
                for view in state["views"]
            ]
        if state["moments"] is not None:
            accumulator._moments = {
                tuple(int(p) for p in key.split("-")): np.array(
                    moment, dtype=accumulator._dtype
                )
                for key, moment in state["moments"].items()
            }
        accumulator._n = int(state["n"])
        return accumulator

    @property
    def view_statistics(self) -> list[StreamingCovariance]:
        """The per-view accumulators (means and, if tracked, ``C_pp``)."""
        self._require_samples()
        return list(self._views)

    @property
    def dims(self) -> tuple[int, ...] | None:
        """Per-view feature dimensions (``None`` until the first update)."""
        return self._dims

    @property
    def dtype(self) -> np.dtype:
        """Accumulation dtype of the moment buffers."""
        return self._dtype

    @property
    def n_views(self) -> int | None:
        """Number of views (``None`` until dimensions are known)."""
        return None if self._dims is None else len(self._dims)

    @property
    def n_samples(self) -> int:
        """Number of samples consumed so far."""
        return self._n

    @property
    def n_skipped(self) -> int:
        """Samples dropped by ``nan_policy="skip"`` so far."""
        return self._n_skipped

    def _require_samples(self) -> None:
        if self._n == 0:
            raise ValidationError(
                "accumulator is empty; feed at least one minibatch first"
            )

    @property
    def means(self) -> list[np.ndarray]:
        """Exact running mean of each view, shapes ``(d_p,)``."""
        self._require_samples()
        return [accumulator.mean for accumulator in self._views]

    def view_covariance(self, index: int, *, center: bool = True) -> np.ndarray:
        """Per-view covariance ``C_pp`` (centered unless ``center=False``)."""
        self._require_samples()
        return self._views[index].covariance(center=center)

    def view_covariances(self, *, center: bool = True) -> list[np.ndarray]:
        """All per-view covariances ``[C_11, …, C_mm]``."""
        self._require_samples()
        return [
            accumulator.covariance(center=center)
            for accumulator in self._views
        ]

    def tensor(self) -> np.ndarray:
        """Finalize the covariance tensor ``C_{12…m}`` of shape ``∏ d_p``.

        Centered accumulators apply the exact multilinear mean correction;
        raw accumulators (``center=False``) return the scaled moment.
        """
        self._require_samples()
        from repro.tensor.dense import fold

        m = len(self._dims)
        full = tuple(range(m))
        if not self.center:
            return fold(self._moments[full] / self._n, 0, self._dims)

        deltas = [
            accumulator._sum / self._n for accumulator in self._views
        ]
        nonzero = [bool(np.any(delta)) for delta in deltas]
        total = np.zeros(self._dims, dtype=self._dtype)
        for size in range(0, m + 1):
            for subset in combinations(range(m), size):
                missing = [p for p in range(m) if p not in subset]
                # δ_p = 0 for any missing view kills the whole term.
                if any(not nonzero[p] for p in missing):
                    continue
                sign = -1.0 if (m - size) % 2 else 1.0
                if size >= 2:
                    core = fold(
                        self._moments[subset] / self._n,
                        0,
                        [self._dims[p] for p in subset],
                    )
                elif size == 1:
                    core = deltas[subset[0]]
                else:
                    core = np.array(1.0)
                term = core
                for p in missing:
                    term = np.multiply.outer(term, deltas[p])
                order = list(subset) + missing
                total += sign * np.transpose(term, np.argsort(order))
        return total
