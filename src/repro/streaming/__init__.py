"""Out-of-core streaming: chunked view sources and one-pass accumulators.

This subsystem lets every covariance-level statistic TCCA needs — running
means, per-view covariances ``C_pp``, and the order-``m`` covariance tensor
``C_{12…m}`` — be built from ``(view_1_chunk, …, view_m_chunk)``
minibatches with peak accumulation memory independent of the sample count.
The batch functions in :mod:`repro.linalg.covariance` delegate to the same
accumulators, and :meth:`repro.core.tcca.TCCA.fit_stream` consumes any
:class:`ViewStream` end to end.
"""

from repro.streaming.covariance import (
    StreamingCovariance,
    StreamingCovarianceTensor,
    accumulate_outer_sum,
)
from repro.streaming.views import (
    ArrayViewStream,
    GeneratorViewStream,
    ViewStream,
    as_view_stream,
    iter_validated_chunks,
)

__all__ = [
    "ArrayViewStream",
    "GeneratorViewStream",
    "StreamingCovariance",
    "StreamingCovarianceTensor",
    "ViewStream",
    "accumulate_outer_sum",
    "as_view_stream",
    "iter_validated_chunks",
]
