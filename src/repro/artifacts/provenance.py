"""Provenance blocks: what data and which parent produced a model.

Model headers (format v3) may carry a ``provenance`` block answering the
fleet-deployment question "where did this model come from":

* ``created`` — which operation wrote the file (``"fit"``, ``"reduce"``,
  ``"update"``);
* ``config`` — the resolved estimator configuration of that operation;
* ``shards`` — for ``repro reduce``: name, content hash, and sample
  count of every input ``.moments`` shard;
* ``source`` — a human-readable description of the ingested data;
* ``parents`` — the hash chain: one link per ancestor model, oldest
  first. Each link records the ancestor's whole-file SHA-256 (which
  covers *its* header and therefore *its* parents — a true hash chain)
  plus its payload hash. ``repro update`` extends the chain by one link
  every generation.

:func:`verify_chain` walks the chain against the actual parent files:
every link must name a supplied file whose bytes hash to the recorded
value, and that file's own recorded chain must be the strict prefix of
the child's — so a model can prove its lineage back to the root fit.
"""

from __future__ import annotations

import os

from repro.artifacts.io import file_sha256, verify_payload
from repro.exceptions import PersistenceError

__all__ = [
    "chain_summary",
    "parent_link",
    "provenance_block",
    "verify_chain",
]


def provenance_block(
    created: str,
    *,
    config: dict | None = None,
    shards: list | None = None,
    source: str | None = None,
    parents: list | None = None,
    quarantined: list | None = None,
) -> dict:
    """Assemble one provenance block for a model header.

    ``quarantined`` records shard files a degraded
    ``reduce --on-corrupt skip`` sidelined (name + failure reason), so
    the model itself testifies that it was built without them.
    """
    block = {"created": str(created), "parents": list(parents or [])}
    if config is not None:
        block["config"] = dict(config)
    if shards is not None:
        block["shards"] = list(shards)
    if source is not None:
        block["source"] = str(source)
    if quarantined:
        block["quarantined"] = list(quarantined)
    return block


def parent_link(parent_path, parent_header: dict) -> dict:
    """The chain link a child records for ``parent_path``.

    The ``sha256`` is the parent's *whole-file* hash — it covers the
    parent's header, so the link transitively commits to the
    grandparents' links too.
    """
    return {
        "name": os.path.basename(os.fspath(parent_path)),
        "sha256": file_sha256(parent_path),
        "payload_sha256": parent_header.get("payload_sha256"),
        "n_samples": parent_header.get("n_samples"),
    }


def _parents(header: dict) -> list:
    return list((header.get("provenance") or {}).get("parents") or [])


def chain_summary(header: dict) -> dict | None:
    """The compact provenance view ``/modelz`` and ``repro inspect`` show.

    ``chain_depth`` counts the update generations behind this model;
    ``root_sha256`` is the file hash of the chain's oldest ancestor
    (``None`` for a chain-less model — the model is its own root).
    """
    provenance = header.get("provenance")
    if provenance is None:
        return None
    parents = _parents(header)
    return {
        "created": provenance.get("created"),
        "chain_depth": len(parents),
        "root_sha256": parents[0]["sha256"] if parents else None,
        "parent_sha256": parents[-1]["sha256"] if parents else None,
        "n_shards": (
            len(provenance["shards"]) if "shards" in provenance else None
        ),
        "n_quarantined": (
            len(provenance["quarantined"])
            if "quarantined" in provenance
            else None
        ),
        "source": provenance.get("source"),
    }


def verify_chain(header: dict, parent_paths, path="model") -> list[dict]:
    """Validate a model's parent chain against the actual parent files.

    ``parent_paths`` may arrive in any order; each chain link (newest
    first) must match one supplied file by whole-file hash, that file's
    payload must verify against its own header, and its recorded chain
    must equal the remaining (older) links — the prefix property that
    makes the chain tamper-evident. Extra supplied files that match no
    link are an error (they are *not* ancestors), as is a link with no
    matching file. Returns one ``{"path", "sha256", "created"}`` record
    per verified generation, newest first; an empty list for a root
    model verified with no parents.
    """
    from repro.artifacts.io import read_artifact

    expected = _parents(header)
    by_hash = {}
    for parent_path in parent_paths:
        digest = file_sha256(parent_path)
        by_hash[digest] = parent_path
    if len(by_hash) != len(list(parent_paths)):
        raise PersistenceError(
            "duplicate parent files supplied for chain verification"
        )
    if len(expected) < len(by_hash):
        raise PersistenceError(
            f"{path!s} records {len(expected)} ancestor(s) but "
            f"{len(by_hash)} parent file(s) were supplied; the extras "
            "are not part of this model's chain"
        )
    verified = []
    remaining = list(expected)
    while remaining and by_hash:
        link = remaining[-1]
        parent_path = by_hash.pop(link.get("sha256"), None)
        if parent_path is None:
            raise PersistenceError(
                f"{path!s} chain link {len(remaining) - 1} expects a "
                f"parent with sha256 {str(link.get('sha256'))[:16]}… but "
                "no supplied file hashes to it — the chain is broken or "
                "the wrong files were given"
            )
        parent_header, payload = read_artifact(parent_path)
        with payload:
            verify_payload(parent_header, payload, parent_path)
        recorded_payload = link.get("payload_sha256")
        if (
            recorded_payload is not None
            and parent_header.get("payload_sha256") != recorded_payload
        ):
            raise PersistenceError(
                f"{parent_path!s} payload hash does not match the chain "
                f"link recorded by its child"
            )
        if _parents(parent_header) != remaining[:-1]:
            raise PersistenceError(
                f"{parent_path!s} records a different ancestor chain "
                f"than {path!s} — the lineage does not verify"
            )
        verified.append(
            {
                "path": os.fspath(parent_path),
                "sha256": link["sha256"],
                "created": (
                    (parent_header.get("provenance") or {}).get("created")
                ),
            }
        )
        remaining = remaining[:-1]
    if by_hash:
        raise PersistenceError(
            "supplied parent files do not match any chain link: "
            + ", ".join(sorted(os.fspath(p) for p in by_hash.values()))
        )
    return verified
