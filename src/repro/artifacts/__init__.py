"""Artifact layer: verifiable files the fit protocol exchanges.

Everything the library puts on disk — model files, ``.moments`` shard
files — goes through this package, which owns the properties that make
those files safe to pass between processes and machines:

* :mod:`repro.artifacts.io` — atomic npz writes, payload/file content
  hashing, and verification (bit-rot and truncation surface as
  :class:`~repro.exceptions.PersistenceError`, not numpy tracebacks);
* :mod:`repro.artifacts.moments` — the versioned ``.moments`` shard
  format: one serialized :class:`~repro.core.engine.MomentState` plus
  the reducer configuration it was accumulated for;
* :mod:`repro.artifacts.distributed` — the accumulate/reduce protocol:
  shard bounds, single-pass accumulation, configuration-checked
  deterministic merge, and the staged finalize;
* :mod:`repro.artifacts.provenance` — provenance blocks in model
  headers: input shard hashes, resolved config, and the parent-model
  hash chain that ``repro update`` extends and ``repro verify`` walks.

This package sits *below* :mod:`repro.api` (persistence imports it),
so nothing here may import from ``repro.api`` at module level.
"""

from repro.artifacts.distributed import (
    accumulate_views,
    parse_shard_spec,
    reduce_shards,
    shard_bounds,
    shard_order,
)
from repro.artifacts.io import (
    HEADER_KEY,
    file_sha256,
    payload_sha256,
    read_artifact,
    read_header,
    verify_payload,
    write_artifact,
    write_npz_atomic,
)
from repro.artifacts.moments import (
    MOMENTS_FORMAT,
    MOMENTS_FORMAT_VERSION,
    describe_shard,
    load_moments,
    save_moments,
    shard_config,
)
from repro.artifacts.provenance import (
    chain_summary,
    parent_link,
    provenance_block,
    verify_chain,
)

__all__ = [
    "HEADER_KEY",
    "MOMENTS_FORMAT",
    "MOMENTS_FORMAT_VERSION",
    "accumulate_views",
    "chain_summary",
    "describe_shard",
    "file_sha256",
    "load_moments",
    "parent_link",
    "parse_shard_spec",
    "payload_sha256",
    "provenance_block",
    "read_artifact",
    "read_header",
    "reduce_shards",
    "save_moments",
    "shard_bounds",
    "shard_config",
    "shard_order",
    "verify_chain",
    "verify_payload",
    "write_artifact",
    "write_npz_atomic",
]
