"""Distributed fit protocol: accumulate shards, reduce to a model.

The paper's complexity story is about fitting at sample counts one
machine chokes on. The staged engine already made the fit an exact
map-reduce over mergeable :class:`~repro.core.engine.MomentState`\\ s
*within* a process tree; this module promotes that reduce across
processes and machines through pure artifact exchange:

* :func:`accumulate_views` — one pass over a contiguous sample shard
  (``--shard i/k`` bounds, computed by :func:`shard_bounds`), producing
  the shard's sufficient statistics. No shared memory, no coordination:
  every worker only needs its slice of the data and the shared reducer
  configuration.
* :func:`reduce_shards` — load ``.moments`` shard files, refuse any
  configuration mismatch with an error naming the offending file, merge
  in deterministic order (shard index when recorded, filename
  otherwise — so the reduced model is byte-identical however the shard
  paths were passed), and finalize through the estimator's staged
  engine (``whiten → build → decompose → finalize``).

The headline invariant — ``reduce(accumulate shards) ≡ single-process
fit`` to ≤1e-10, shard-count and shard-order invariant — holds because
:meth:`MomentState.merge` re-expresses every shard's shifted statistics
around a common shift in closed form (exact in exact arithmetic), and
the finalize stages run the same code either way.
"""

from __future__ import annotations

import os

import warnings

from repro.artifacts.moments import (
    describe_shard,
    load_moments,
    shard_config,
)
from repro.exceptions import (
    PersistenceError,
    ReliabilityWarning,
    ValidationError,
)

__all__ = [
    "accumulate_views",
    "parse_shard_spec",
    "reduce_shards",
    "shard_bounds",
    "shard_order",
]


def parse_shard_spec(text: str) -> tuple[int, int]:
    """Parse a ``--shard i/k`` spec into ``(index, count)``.

    ``i`` is zero-based and must satisfy ``0 <= i < k``.
    """
    index_text, separator, count_text = str(text).partition("/")
    try:
        if not separator:
            raise ValueError
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise ValidationError(
            f"shard spec must look like i/k (e.g. 0/3), got {text!r}"
        ) from None
    if count < 1 or not 0 <= index < count:
        raise ValidationError(
            f"shard index must satisfy 0 <= i < k, got {index}/{count}"
        )
    return index, count


def shard_bounds(n_samples: int, index: int, count: int) -> tuple[int, int]:
    """Contiguous ``[start, stop)`` sample bounds of shard ``index/count``.

    The standard balanced split: shard sizes differ by at most one, and
    the union over ``index`` is exactly ``range(n_samples)``. ``count``
    may exceed ``n_samples`` — the surplus shards are empty, which the
    reduce handles (an empty shard contributes nothing to the merge).
    """
    n_samples = int(n_samples)
    return (
        index * n_samples // count,
        (index + 1) * n_samples // count,
    )


def _reducer_for(estimator: str, params: dict):
    from repro.api.registry import make_reducer

    reducer = make_reducer(estimator, **dict(params))
    for method in ("moment_state_for", "fit_moments"):
        if not hasattr(reducer, method):
            raise ValidationError(
                f"{estimator!r} has no {method}; the distributed "
                "accumulate/reduce protocol needs a moment-based reducer "
                "(e.g. tcca)"
            )
    return reducer


def accumulate_views(
    views,
    *,
    estimator: str = "tcca",
    params: dict | None = None,
    shard: tuple[int, int] | None = None,
):
    """One accumulation pass over (a shard of) ``views``.

    Slices the contiguous sample shard out of the ``(d_p, N)`` view
    matrices (``shard=None`` consumes everything), builds the moment
    state the configured reducer needs — the reducer resolves its own
    policy: dense solvers track the raw covariance tensor, implicit
    solvers retain the slice — and ingests the shard in one pass.
    Returns ``(MomentState, resolved_params)``; an empty shard returns a
    valid empty state that still records the dimensions, so it
    participates in reduce-side compatibility checks.
    """
    from repro.core import engine
    from repro.utils.validation import check_views

    params = dict(params or {})
    reducer = _reducer_for(estimator, params)
    # finiteness is the moment state's call: its nan_policy either skips
    # the offending samples or raises naming the view and chunk
    views = check_views(views, min_views=2, require_finite=False)
    dims = [view.shape[0] for view in views]
    moments = reducer.moment_state_for(dims)
    if shard is not None:
        index, count = shard
        start, stop = shard_bounds(views[0].shape[1], index, count)
        views = [view[:, start:stop] for view in views]
    if views[0].shape[1] > 0:
        engine.ingest_stage(moments, views)
    return moments, reducer.get_params()


def shard_order(entries) -> list:
    """Deterministic merge order for ``(path, header, state)`` entries.

    Shards that record ``--shard i/k`` bounds sort by index (the
    original sample order, so the reduce reproduces the single-pass
    accumulation bit-for-bit given the same shards); anything else sorts
    by basename after them. The order is a pure function of the shard
    *contents*, never of the argument order.
    """

    def key(entry):
        path, header, _state = entry
        shard = header.get("shard")
        if shard is not None:
            return (0, int(shard["count"]), int(shard["index"]), "")
        return (1, 0, 0, os.path.basename(os.fspath(path)))

    return sorted(entries, key=key)


def reduce_shards(paths, *, verify: bool = True, on_corrupt: str = "fail"):
    """Merge ``.moments`` shards and finalize the fit.

    Returns ``(model, report)`` where ``report`` carries what the CLI
    prints and the provenance block records: per-shard name/hash/sample
    counts (in merge order), the resolved configuration, the total
    sample count, and — under quarantine — the sidelined files.

    Every shard's integrity and configuration is checked before any
    merge work starts, and failures are reported **exhaustively**: one
    error names every corrupt file and every incompatible file with its
    differing keys, so a fleet operator fixes the whole set in one
    round trip instead of one file per attempt.

    ``on_corrupt`` decides what an integrity failure costs:

    * ``"fail"`` (default) — raise
      :class:`~repro.exceptions.PersistenceError` listing all offenders;
    * ``"skip"`` — quarantine corrupt files out of the reduce (with a
      :class:`~repro.exceptions.ReliabilityWarning` per file) and
      record them in ``report["quarantined"]``, which the CLI writes
      into the reduced model's provenance block so a degraded reduce is
      auditable. Configuration mismatches still fail — a healthy shard
      accumulated for a different fit is an operator error, not damage.
    """
    if on_corrupt not in ("fail", "skip"):
        raise ValidationError(
            f"on_corrupt must be 'fail' or 'skip', got {on_corrupt!r}"
        )
    paths = [os.fspath(path) for path in paths]
    if not paths:
        raise ValidationError("reduce needs at least one .moments shard")
    entries = []
    corrupt = []
    for path in paths:
        try:
            header, state = load_moments(path, verify=verify)
        except PersistenceError as error:
            corrupt.append((path, error))
            continue
        entries.append((path, header, state))
    if corrupt and on_corrupt == "fail":
        lines = "; ".join(
            f"{os.path.basename(path)}: {error}" for path, error in corrupt
        )
        raise PersistenceError(
            f"{len(corrupt)} of {len(paths)} shard file(s) failed their "
            f"integrity check — {lines} — re-run the affected "
            "`repro accumulate` workers, or pass on_corrupt='skip' "
            "(`repro reduce --on-corrupt skip`) to quarantine them and "
            "reduce the healthy remainder"
        )
    for path, error in corrupt:
        warnings.warn(
            f"quarantining corrupt shard {os.path.basename(path)}: {error}",
            ReliabilityWarning,
            stacklevel=2,
        )
    if not entries:
        raise PersistenceError(
            f"every shard failed its integrity check ({len(corrupt)} "
            "quarantined); nothing left to reduce"
        )
    in_progress = [
        describe_shard(path, header)
        for path, header, _state in entries
        if header.get("kind") == "checkpoint"
    ]
    if in_progress:
        raise ValidationError(
            f"refusing to reduce in-progress checkpoint file(s): "
            f"{'; '.join(in_progress)} — these are partial accumulations; "
            "resume the worker (`repro accumulate --resume`) and reduce "
            "its finished shard instead"
        )
    reference_path, reference_header, _ = entries[0]
    reference = shard_config(reference_header)
    mismatched = []
    for path, header, _state in entries[1:]:
        config = shard_config(header)
        if config != reference:
            differing = sorted(
                key for key in reference
                if config.get(key) != reference.get(key)
            )
            mismatched.append(
                f"{describe_shard(path, header)} differs in "
                f"{', '.join(differing)}"
            )
    if mismatched:
        raise ValidationError(
            f"cannot reduce incompatible shards: {len(mismatched)} "
            f"file(s) disagree with "
            f"{describe_shard(reference_path, reference_header)} — "
            f"{'; '.join(mismatched)} — every shard must be "
            "accumulated with the same reducer, parameters, and "
            "view dimensions (re-run `repro accumulate` with a "
            "shared configuration)"
        )
    entries = shard_order(entries)
    reducer = _reducer_for(
        reference_header["estimator"], reference_header.get("params", {})
    )
    dims = reference_header.get("dims")
    merged = reducer.moment_state_for(dims) if dims else None
    shard_records = []
    for path, header, state in entries:
        if merged is None:
            merged = state
        else:
            merged.merge(state)
        shard_records.append(
            {
                "name": os.path.basename(path),
                "sha256": header.get("payload_sha256"),
                "n_samples": int(header.get("n_samples", state.n_samples)),
                "shard": header.get("shard"),
            }
        )
    if merged is None or merged.n_samples == 0:
        raise ValidationError(
            "all shards are empty; reduce needs at least one sample "
            "(did every worker get an out-of-range --shard slice?)"
        )
    model = reducer.fit_moments(merged)
    report = {
        "estimator": reference_header["estimator"],
        "params": reference_header.get("params", {}),
        "shards": shard_records,
        "n_samples": int(merged.n_samples),
        "n_shards": len(entries),
        "quarantined": [
            {"name": os.path.basename(path), "error": str(error)}
            for path, error in corrupt
        ],
    }
    return model, report
