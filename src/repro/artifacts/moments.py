"""The ``.moments`` shard artifact: one serialized ``MomentState`` file.

A shard file is what ``repro accumulate`` emits and ``repro reduce``
consumes — the unit of exchange that turns the engine's exact
:meth:`~repro.core.engine.MomentState.merge` into a *distributed* fit:
workers on different machines each make one pass over their slice of the
data and ship only sufficient statistics (dense policy: ``O(∏ d_p)``
independent of the shard size; implicit policy: the retained slice plus
per-view moments), and the reducer merges them into the statistics of
the full dataset to round-off.

Physically it is the same atomic npz-plus-JSON-header layout as a model
file (:mod:`repro.artifacts.io`), with header fields:

* ``format``/``version`` — :data:`MOMENTS_FORMAT` v1;
* ``estimator``/``kind``/``params`` — the resolved reducer
  configuration the shard was accumulated *for*; ``repro reduce``
  refuses to merge shards whose configurations differ, because moments
  accumulated for different solvers/epsilons are not interchangeable;
* ``moments`` — the :meth:`MomentState.state_dict` metadata (policy,
  per-view accumulator states); arrays go into the payload;
* ``dims``/``n_samples``/``shard``/``source`` — the shard's geometry
  and bounds, for ``repro inspect`` and compatibility errors;
* ``payload_sha256`` — content hash, recorded at write time and
  re-checked on load, so a corrupted or truncated shard fails with a
  clear error before it can poison a reduce.
"""

from __future__ import annotations

import os

from repro.artifacts.io import read_artifact, verify_payload, write_artifact
from repro.exceptions import PersistenceError, ValidationError

__all__ = [
    "MOMENTS_FORMAT",
    "MOMENTS_FORMAT_VERSION",
    "describe_shard",
    "load_moments",
    "save_moments",
    "shard_config",
]

MOMENTS_FORMAT = "repro-moments"
MOMENTS_FORMAT_VERSION = 1


def shard_config(header: dict) -> dict:
    """The compatibility signature two shards must share to be merged.

    Everything that decides whether two moment states describe *the same
    fit*: the estimator and its parameters, the moment policy, the
    accumulation dtype, and the per-view dimensions. Sample counts and
    shard bounds are excluded — those are exactly what varies across
    shards — and so are the execution-policy parameters
    (``n_jobs``/``executor``): policy never changes what a fit computes,
    so a shard accumulated by a 4-worker machine merges with one from a
    serial laptop. The accumulation dtype *is* part of the signature:
    a shard accumulated under ``--precision float32`` carries moments of
    a different precision than a float64 one, and merging them would
    silently degrade the whole reduce to the weaker precision. Shards
    written before dtype-aware accumulation are implicitly float64.
    """
    moments = header.get("moments") or {}
    params = dict(header.get("params") or {})
    for key in ("n_jobs", "executor"):
        params.pop(key, None)
    return {
        "estimator": header.get("estimator"),
        "kind": header.get("kind"),
        "params": params,
        "dims": header.get("dims"),
        "track_tensor": moments.get("track_tensor"),
        "retain_samples": moments.get("retain_samples"),
        "accumulate_dtype": moments.get("dtype", "float64"),
    }


def save_moments(
    moments,
    path,
    *,
    estimator: str,
    kind: str = "reducer",
    params: dict | None = None,
    shard: dict | None = None,
    source: str | None = None,
    extra: dict | None = None,
) -> str:
    """Write one ``MomentState`` as a ``.moments`` shard artifact.

    ``shard`` (``{"index": i, "count": k}``) records where this shard
    sits in a ``--shard i/k`` split; ``source`` is a free-form
    description of the ingested data. ``extra`` adds caller-owned
    header fields (the checkpoint layer records its progress cursor
    this way) and may not shadow the core fields. Returns the recorded
    payload hash (the shard's content identity, which ``repro reduce``
    writes into the reduced model's provenance).
    """
    meta, arrays = moments.state_dict()
    header = {
        "format": MOMENTS_FORMAT,
        "version": MOMENTS_FORMAT_VERSION,
        "estimator": str(estimator),
        "kind": str(kind),
        "params": dict(params or {}),
        "moments": meta,
        "n_samples": int(moments.n_samples),
        "dims": (
            None if moments.dims is None else [int(d) for d in moments.dims]
        ),
    }
    if shard is not None:
        header["shard"] = {
            "index": int(shard["index"]),
            "count": int(shard["count"]),
        }
    if source is not None:
        header["source"] = str(source)
    if extra:
        collisions = sorted(set(extra) & set(header))
        if collisions:
            raise ValidationError(
                f"extra header fields may not shadow core fields: "
                f"{', '.join(collisions)}"
            )
        header.update(extra)
    return write_artifact(path, header, arrays)


def load_moments(path, *, verify: bool = True):
    """``(header, MomentState)`` from a ``.moments`` shard file.

    With ``verify=True`` (the default — shards travel between machines)
    the payload is re-hashed against the header before the state is
    rebuilt, so bit-rot or truncation raises
    :class:`~repro.exceptions.PersistenceError` naming the file instead
    of surfacing as a numpy traceback mid-reduce.
    """
    from repro.core.engine import MomentState

    header, payload = read_artifact(path)
    with payload:
        fmt = header.get("format")
        if fmt != MOMENTS_FORMAT:
            raise PersistenceError(
                f"{path!s} has format {fmt!r}, not a {MOMENTS_FORMAT!r} "
                "shard (was it written by `repro accumulate`?)"
            )
        version = header.get("version")
        if not isinstance(version, int) or version > MOMENTS_FORMAT_VERSION:
            raise PersistenceError(
                f"{path!s} uses moments format version {version!r}, newer "
                f"than this library understands "
                f"(<= {MOMENTS_FORMAT_VERSION}); upgrade the library"
            )
        if verify:
            verify_payload(header, payload, path)
        try:
            arrays = {
                name: payload[name] for name in payload.files
            }
            state = MomentState.from_state_dict(header["moments"], arrays)
        except (KeyError, ValidationError) as error:
            raise PersistenceError(
                f"{path!s} shard state does not decode "
                f"({type(error).__name__}: {error}); the file is "
                "incomplete or was not written by this library"
            ) from None
    if state.n_samples != int(header.get("n_samples", state.n_samples)):
        raise PersistenceError(
            f"{path!s} header records {header.get('n_samples')} samples "
            f"but the state holds {state.n_samples}"
        )
    return header, state


def describe_shard(path, header: dict) -> str:
    """One human line for reduce logs and error messages."""
    shard = header.get("shard")
    bounds = (
        ""
        if shard is None
        else f" [shard {shard['index']}/{shard['count']}]"
    )
    return (
        f"{os.path.basename(os.fspath(path))}{bounds} "
        f"({header.get('n_samples', '?')} samples)"
    )
