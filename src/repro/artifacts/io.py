"""Shared artifact I/O: atomic npz writes, content hashing, verification.

Every on-disk artifact the library produces — model files
(:mod:`repro.api.persistence`) and ``.moments`` shard files
(:mod:`repro.artifacts.moments`) — is the same physical layout: an
``np.savez`` archive holding named arrays plus one JSON header entry.
This module owns the three properties that make those files safe to
exchange between processes and machines:

* **atomicity** — :func:`write_npz_atomic` writes to a temporary file in
  the target directory and ``os.replace``-s it into place, so a crash or
  full disk mid-save never leaves a torn file at the destination;
* **content identity** — :func:`payload_sha256` hashes the array payload
  (names, dtypes, shapes, bytes) deterministically; the digest is
  recorded in the header at write time and is the identity provenance
  chains refer to. :func:`file_sha256` hashes whole files — the identity
  a serving process reports and the link ``repro update`` records for
  its parent model;
* **verifiability** — :func:`verify_payload` re-hashes a loaded payload
  against its header, turning bit-rot, truncation, and tampering into a
  clear :class:`~repro.exceptions.PersistenceError` instead of a numpy
  or zipfile traceback.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import zipfile

import numpy as np

from repro.exceptions import PersistenceError
from repro.reliability.faults import fault_point

__all__ = [
    "HEADER_KEY",
    "file_sha256",
    "payload_sha256",
    "read_artifact",
    "read_header",
    "verify_payload",
    "write_artifact",
    "write_npz_atomic",
]

#: archive entry holding the JSON header of every repro artifact.
HEADER_KEY = "__repro_header__"


def write_npz_atomic(path, entries: dict) -> None:
    """Write ``entries`` as one npz archive at ``path``, atomically.

    The archive is fully written to a temporary file in the target
    directory and then ``os.replace``-d into place, so readers polling
    ``path`` only ever observe a complete old file or a complete new
    file — the guarantee the serving layer's hot reload and the
    distributed shard exchange both build on. The temporary file gets
    the umask-honoring permissions a plain ``open()`` would, so another
    user's reader can still open the replaced artifact.
    """
    path = os.fspath(path)
    # fault seam: a "fail" rule here simulates a crash/full disk before
    # the replace — the destination keeps its previous complete content.
    fault_point("artifact.write")
    descriptor, tmp_path = tempfile.mkstemp(
        dir=os.path.dirname(path) or ".",
        prefix=os.path.basename(path) + ".",
        suffix=".tmp",
    )
    try:
        with os.fdopen(descriptor, "wb") as handle:
            np.savez(handle, **entries)
        umask = os.umask(0)
        os.umask(umask)
        os.chmod(tmp_path, 0o666 & ~umask)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def payload_sha256(arrays: dict) -> str:
    """Deterministic SHA-256 over a named-array payload.

    Hashes the sorted entry names together with each array's dtype,
    shape, and C-order bytes, so the digest is invariant to dict
    ordering and memory layout but changes if any value, name, dtype, or
    shape does. Computed identically from in-memory arrays at save time
    and from a loaded ``NpzFile`` at verify time.
    """
    digest = hashlib.sha256()
    for name in sorted(arrays):
        if name == HEADER_KEY:
            continue
        array = np.asarray(arrays[name])
        digest.update(name.encode())
        digest.update(b"\x00")
        digest.update(array.dtype.str.encode())
        digest.update(repr(array.shape).encode())
        digest.update(b"\x00")
        digest.update(array.tobytes())
    return digest.hexdigest()


def file_sha256(path, *, chunk_size: int = 1 << 20) -> str:
    """SHA-256 hex digest of a file's bytes.

    The whole-file identity: covers the header (and therefore the
    provenance block) as well as the payload, which is what makes the
    parent links ``repro update`` records a true hash chain — each
    model's header commits to the complete bytes of its parent.
    """
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            block = handle.read(chunk_size)
            if not block:
                break
            digest.update(block)
    return digest.hexdigest()


def write_artifact(path, header: dict, arrays: dict) -> str:
    """Atomically write ``header`` + ``arrays`` as one artifact file.

    The payload's content hash is computed and recorded in the header as
    ``payload_sha256`` before serialization, so every artifact carries
    its own integrity check. Returns the recorded digest.
    """
    digest = payload_sha256(arrays)
    header = dict(header)
    header["payload_sha256"] = digest
    entries = dict(arrays)
    entries[HEADER_KEY] = np.array(json.dumps(header))
    # fault seam: a "corrupt" rule mutates the payload *after* the hash
    # was recorded, producing exactly the on-disk state bit-rot leaves —
    # a readable archive whose bytes no longer match its header.
    entries = fault_point("artifact.payload", entries)
    write_npz_atomic(path, entries)
    return digest


def read_artifact(path):
    """``(header, payload)`` of an artifact file, mapping decode failures.

    Opens the archive lazily (arrays are decompressed on access) and
    parses the JSON header. A file that is not a readable npz archive —
    truncated, overwritten with garbage, or simply something else —
    raises :class:`~repro.exceptions.PersistenceError` naming the path
    instead of leaking a ``zipfile``/``numpy`` traceback. Format and
    version checks are the caller's job (model files and ``.moments``
    shards share this reader).
    """
    try:
        payload = np.load(path, allow_pickle=False)
    except (zipfile.BadZipFile, ValueError, EOFError, KeyError) as error:
        raise PersistenceError(
            f"{path!s} is not a readable repro artifact (truncated or "
            f"corrupted archive): {error}"
        ) from None
    if HEADER_KEY not in payload.files:
        payload.close()
        raise PersistenceError(
            f"{path!s} is not a repro artifact (missing header entry)"
        )
    try:
        header = json.loads(str(payload[HEADER_KEY][()]))
    except (
        zipfile.BadZipFile,
        ValueError,
        EOFError,
        json.JSONDecodeError,
    ) as error:
        payload.close()
        raise PersistenceError(
            f"{path!s} has an unreadable header (truncated or corrupted "
            f"archive): {error}"
        ) from None
    return header, payload


def read_header(path) -> dict:
    """Just the JSON header of an artifact file (payload left unread)."""
    header, payload = read_artifact(path)
    payload.close()
    return header


def verify_payload(header: dict, payload, path="artifact") -> str:
    """Check a loaded payload against the header's recorded content hash.

    Re-reads every array (forcing full decompression, so zip-level CRC
    failures surface here too) and compares the recomputed digest with
    the header's ``payload_sha256``. Raises
    :class:`~repro.exceptions.PersistenceError` on any mismatch, on
    unreadable array data, or when the header predates payload hashing;
    returns the verified digest otherwise.
    """
    recorded = header.get("payload_sha256")
    if recorded is None:
        raise PersistenceError(
            f"{path!s} records no payload hash (written by an older "
            "library version); re-save it to make it verifiable"
        )
    try:
        arrays = {
            name: payload[name]
            for name in payload.files
            if name != HEADER_KEY
        }
        recomputed = payload_sha256(arrays)
    except (zipfile.BadZipFile, ValueError, EOFError, OSError) as error:
        raise PersistenceError(
            f"{path!s} payload is unreadable (truncated or corrupted "
            f"archive): {error}"
        ) from None
    if recomputed != recorded:
        raise PersistenceError(
            f"{path!s} payload hash mismatch: header records "
            f"{recorded[:16]}…, file content hashes to "
            f"{recomputed[:16]}… — the file was corrupted or tampered "
            "with after it was written"
        )
    return recomputed
