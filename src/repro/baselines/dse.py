"""DSE — distributed spectral embedding (Long, Yu & Zhang, SDM 2008).

The general multi-view unsupervised model the paper compares against:

1. reduce each view with PCA (to 100 dimensions in the paper's setup),
2. compute a spectral embedding ``E_p ∈ R^{N × r}`` per view,
3. learn a *consensus* embedding ``B`` via matrix factorization:
   ``min_{B, {Q_p}} Σ_p ‖E_p - B Q_p‖_F²  s.t.  B^T B = I``.

With orthonormal ``B`` the optimal ``Q_p = B^T E_p``, and the optimal ``B``
spans the top left singular space of the stacked ``[E_1 … E_m]`` — a single
SVD, which is how we solve it. DSE is transductive: it embeds the given
samples and has no projection for new data.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import register
from repro.baselines.pca import PCA
from repro.baselines.spectral import laplacian_eigenmaps
from repro.cca.base import ParamsMixin
from repro.exceptions import NotFittedError, ValidationError
from repro.utils.validation import check_positive_int, check_views

__all__ = ["DSE"]


@register("dse")
class DSE(ParamsMixin):
    """Consensus spectral embedding over multiple views (transductive).

    Parameters
    ----------
    n_components:
        Dimension ``r`` of the consensus embedding.
    pca_components:
        Per-view PCA pre-reduction size (100 in the paper; capped at each
        view's achievable rank).
    n_neighbors:
        Neighborhood size of the per-view affinity graphs.

    Attributes
    ----------
    embedding_:
        ``(N, r)`` consensus representation of the fitted samples.
    view_embeddings_:
        The per-view spectral embeddings ``E_p``.
    view_loadings_:
        The factor matrices ``Q_p = B^T E_p``.
    """

    def __init__(
        self,
        n_components: int = 2,
        *,
        pca_components: int = 100,
        n_neighbors: int = 10,
    ):
        self.n_components = check_positive_int(n_components, "n_components")
        self.pca_components = check_positive_int(
            pca_components, "pca_components"
        )
        self.n_neighbors = check_positive_int(n_neighbors, "n_neighbors")

    def fit(self, views) -> "DSE":
        """Embed the ``N`` samples shared by ``m >= 2`` views."""
        views = check_views(views, min_views=2)
        n = views[0].shape[1]
        if self.n_components >= n:
            raise ValidationError(
                f"n_components={self.n_components} must be < sample "
                f"count {n}"
            )
        reduced = [
            PCA(self.pca_components, cap=True).fit_transform(view)
            for view in views
        ]
        self.view_embeddings_ = [
            laplacian_eigenmaps(
                view,
                self.n_components,
                n_neighbors=min(self.n_neighbors, n - 1),
            )
            for view in reduced
        ]
        stacked = np.hstack(self.view_embeddings_)  # (N, m*r)
        left, _singular_values, _right = np.linalg.svd(
            stacked, full_matrices=False
        )
        consensus = left[:, : self.n_components]
        self.embedding_ = consensus
        self.view_loadings_ = [
            consensus.T @ embedding for embedding in self.view_embeddings_
        ]
        self.n_views_ = len(views)
        return self

    def fit_transform(self, views) -> np.ndarray:
        """Fit and return the ``(N, r)`` consensus embedding."""
        return self.fit(views).embedding_

    def transform(self, views):
        """DSE is transductive — no out-of-sample projection exists."""
        del views
        if not hasattr(self, "embedding_"):
            raise NotFittedError("DSE must be fitted first")
        raise NotImplementedError(
            "DSE learns embeddings of the fitted samples only (transductive); "
            "refit on the union of old and new samples instead"
        )
