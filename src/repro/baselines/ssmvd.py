"""SSMVD — structured-sparsity multi-view dimension reduction (Han et al. 2012).

"Sparse unsupervised dimensionality reduction for multiple view data"
learns a low-dimensional consensus representation ``G ∈ R^{N × r}`` together
with per-view projections ``W_p`` under a structured sparsity-inducing
norm (Jenatton et al. 2011), so information is shared across *subsets* of
features adaptively:

``min_{G, {W_p}} Σ_p ‖X_p^T W_p - G‖_F² + β Σ_p ‖W_p‖_{2,1}
  s.t.  G^T G = I``.

We solve it by alternating:

* ``G`` step — orthogonal Procrustes: with ``S = Σ_p X_p^T W_p = U Σ V^T``
  (thin SVD), ``G = U V^T``;
* ``W_p`` step — an ℓ2,1-regularized least squares solved by IRLS with the
  standard diagonal reweighting ``D_ii = 1 / (2 ‖w_i‖ + δ)``.

Like DSE it is transductive, and as in the paper each view is first reduced
with PCA (100 components).
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import register
from repro.baselines.pca import PCA
from repro.cca.base import ParamsMixin
from repro.exceptions import NotFittedError, ValidationError
from repro.utils.rng import check_random_state
from repro.utils.validation import check_positive_int, check_views

__all__ = ["SSMVD"]


def _l21_norm(matrix: np.ndarray) -> float:
    """Row-wise ℓ2,1 norm ``Σ_i ‖matrix[i, :]‖₂``."""
    return float(np.linalg.norm(matrix, axis=1).sum())


@register("ssmvd")
class SSMVD(ParamsMixin):
    """Structured-sparse consensus representation learning (transductive).

    Parameters
    ----------
    n_components:
        Dimension ``r`` of the consensus representation ``G``.
    beta:
        Weight of the ℓ2,1 structured-sparsity penalty.
    pca_components:
        Per-view PCA pre-reduction size (paper uses 100).
    max_iter, tol:
        Alternating-optimization budget; ``tol`` is on the relative decrease
        of the objective.
    random_state:
        Seed for the orthonormal initialization of ``G``.

    Attributes
    ----------
    embedding_:
        ``(N, r)`` consensus representation of the fitted samples.
    weights_:
        Per-view projection matrices ``W_p`` (on the PCA-reduced features).
    objective_history_:
        Objective value per outer iteration.
    """

    def __init__(
        self,
        n_components: int = 2,
        *,
        beta: float = 0.1,
        pca_components: int = 100,
        max_iter: int = 50,
        tol: float = 1e-6,
        random_state=None,
    ):
        self.n_components = check_positive_int(n_components, "n_components")
        if beta < 0.0:
            raise ValidationError(f"beta must be >= 0, got {beta}")
        self.beta = float(beta)
        self.pca_components = check_positive_int(
            pca_components, "pca_components"
        )
        self.max_iter = check_positive_int(max_iter, "max_iter")
        self.tol = float(tol)
        self.random_state = random_state

    def fit(self, views) -> "SSMVD":
        """Learn the consensus representation of the given samples."""
        views = check_views(views, min_views=2)
        n = views[0].shape[1]
        if self.n_components > n:
            raise ValidationError(
                f"n_components={self.n_components} exceeds the sample "
                f"count {n}"
            )
        rng = check_random_state(self.random_state)
        reduced = [
            PCA(self.pca_components, cap=True).fit_transform(view)
            for view in views
        ]
        # Center + scale so views contribute comparably.
        reduced = [
            (view - view.mean(axis=1, keepdims=True))
            / max(np.linalg.norm(view), 1e-12)
            * np.sqrt(n)
            for view in reduced
        ]

        # Orthonormal init for G.
        raw = rng.standard_normal((n, self.n_components))
        g, _ = np.linalg.qr(raw)

        weights = [
            np.zeros((view.shape[0], self.n_components)) for view in reduced
        ]
        delta = 1e-8
        history: list[float] = []
        previous = np.inf
        for _ in range(self.max_iter):
            # W_p step: IRLS on ‖X_p^T W - G‖² + β ‖W‖_{2,1}.
            for p, view in enumerate(reduced):
                gram = view @ view.T
                rhs = view @ g
                w = weights[p]
                if not np.any(w):
                    w = np.linalg.solve(
                        gram + self.beta * np.eye(gram.shape[0]), rhs
                    )
                for _inner in range(3):
                    row_norms = np.linalg.norm(w, axis=1)
                    reweight = 1.0 / (2.0 * row_norms + delta)
                    w = np.linalg.solve(
                        gram + self.beta * np.diag(reweight), rhs
                    )
                weights[p] = w

            # G step: orthogonal Procrustes on the summed predictions.
            summed = np.zeros((n, self.n_components))
            for p, view in enumerate(reduced):
                summed += view.T @ weights[p]
            u, _s, vt = np.linalg.svd(summed, full_matrices=False)
            g = u @ vt

            objective = sum(
                float(np.linalg.norm(view.T @ w - g) ** 2)
                + self.beta * _l21_norm(w)
                for view, w in zip(reduced, weights)
            )
            history.append(objective)
            if previous - objective < self.tol * max(abs(previous), 1.0):
                break
            previous = objective

        self.embedding_ = g
        self.weights_ = weights
        self.objective_history_ = history
        self.n_views_ = len(views)
        return self

    def fit_transform(self, views) -> np.ndarray:
        """Fit and return the ``(N, r)`` consensus representation."""
        return self.fit(views).embedding_

    def transform(self, views):
        """SSMVD is transductive — no out-of-sample projection exists."""
        del views
        if not hasattr(self, "embedding_"):
            raise NotFittedError("SSMVD must be fitted first")
        raise NotImplementedError(
            "SSMVD learns representations of the fitted samples only "
            "(transductive); refit on the union of old and new samples"
        )
