"""Principal component analysis on the ``(d, N)`` column-sample layout."""

from __future__ import annotations

import numpy as np

from repro.api.registry import register
from repro.cca.base import ParamsMixin
from repro.exceptions import NotFittedError, ValidationError
from repro.utils.validation import check_positive_int, ensure_2d

__all__ = ["PCA"]


@register("pca")
class PCA(ParamsMixin):
    """Plain PCA by SVD of the centered data matrix.

    Parameters
    ----------
    n_components:
        Number of principal directions to keep. Capped at
        ``min(d, N)`` during ``fit`` when ``cap=True``.
    cap:
        If True, silently reduce ``n_components`` to the achievable rank
        instead of raising — convenient for the DSE/SSMVD pre-reduction
        step where views may have fewer than 100 dimensions.

    Attributes
    ----------
    components_:
        ``(d, r)`` orthonormal principal directions.
    explained_variance_:
        Variance captured by each direction.
    mean_:
        ``(d, 1)`` feature means.
    """

    #: fits one (d, N) matrix, not a multi-view list (checked by the CLI).
    _single_view_ = True

    def __init__(self, n_components: int = 2, *, cap: bool = False):
        self.n_components = check_positive_int(n_components, "n_components")
        self.cap = bool(cap)

    def fit(self, matrix) -> "PCA":
        """Fit on a ``(d, N)`` matrix."""
        matrix = ensure_2d(matrix, name="matrix")
        d, n = matrix.shape
        max_rank = min(d, n)
        r = self.n_components
        if r > max_rank:
            if not self.cap:
                raise ValidationError(
                    f"n_components={r} exceeds min(d, N)={max_rank}"
                )
            r = max_rank
        self.mean_ = matrix.mean(axis=1, keepdims=True)
        centered = matrix - self.mean_
        left, singular_values, _right = np.linalg.svd(
            centered, full_matrices=False
        )
        self.components_ = left[:, :r]
        self.explained_variance_ = (singular_values[:r] ** 2) / n
        self.n_components_ = r
        return self

    def transform(self, matrix) -> np.ndarray:
        """Project a ``(d, N)`` matrix to ``(r, N)`` principal scores."""
        if not hasattr(self, "components_"):
            raise NotFittedError("PCA must be fitted before transform")
        matrix = ensure_2d(matrix, name="matrix")
        if matrix.shape[0] != self.mean_.shape[0]:
            raise ValidationError(
                f"matrix has {matrix.shape[0]} features but PCA was fitted "
                f"with {self.mean_.shape[0]}"
            )
        return self.components_.T @ (matrix - self.mean_)

    def fit_transform(self, matrix) -> np.ndarray:
        """Fit and project in one call."""
        return self.fit(matrix).transform(matrix)
