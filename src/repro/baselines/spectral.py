"""Spectral embedding substrate: kNN affinity graphs and Laplacian eigenmaps.

Belkin & Niyogi (2001). This is the per-view dimension-reduction stage of
the DSE baseline (Long et al. 2008) and a transductive embedding in its own
right — it embeds the *given* samples and learns no out-of-sample map,
which is why the paper evaluates DSE/SSMVD only transductively.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse
import scipy.sparse.linalg

from repro.api.registry import register
from repro.cca.base import ParamsMixin
from repro.exceptions import NotFittedError, ValidationError
from repro.kernels.distances import euclidean_distances
from repro.utils.validation import check_positive_int, ensure_2d

__all__ = ["SpectralEmbedding", "knn_affinity", "laplacian_eigenmaps"]


def knn_affinity(
    view,
    *,
    n_neighbors: int = 10,
    mode: str = "heat",
    bandwidth: float | None = None,
) -> scipy.sparse.csr_matrix:
    """Symmetrized k-nearest-neighbor affinity matrix of a ``(d, N)`` view.

    Parameters
    ----------
    n_neighbors:
        Neighbors per sample (excluding self).
    mode:
        ``"heat"`` for ``exp(-d²/σ²)`` weights (σ defaulting to the mean
        neighbor distance) or ``"binary"`` for 0/1 edges.
    bandwidth:
        Heat-kernel σ; ignored for binary mode.
    """
    view = ensure_2d(view, name="view")
    n = view.shape[1]
    n_neighbors = check_positive_int(n_neighbors, "n_neighbors")
    if n_neighbors >= n:
        raise ValidationError(
            f"n_neighbors={n_neighbors} must be < number of samples {n}"
        )
    if mode not in ("heat", "binary"):
        raise ValidationError(
            f"mode must be 'heat' or 'binary', got {mode!r}"
        )
    distances = euclidean_distances(view)
    np.fill_diagonal(distances, np.inf)
    neighbor_idx = np.argpartition(distances, n_neighbors, axis=1)[
        :, :n_neighbors
    ]
    rows = np.repeat(np.arange(n), n_neighbors)
    cols = neighbor_idx.ravel()
    neighbor_distances = distances[rows, cols]
    if mode == "binary":
        weights = np.ones_like(neighbor_distances)
    else:
        if bandwidth is None:
            bandwidth = float(neighbor_distances.mean())
        bandwidth = max(bandwidth, 1e-12)
        weights = np.exp(-((neighbor_distances / bandwidth) ** 2))
    affinity = scipy.sparse.csr_matrix(
        (weights, (rows, cols)), shape=(n, n)
    )
    # Symmetrize: keep an edge if either endpoint selected it.
    return affinity.maximum(affinity.T)


def laplacian_eigenmaps(
    view,
    n_components: int,
    *,
    n_neighbors: int = 10,
    mode: str = "heat",
    bandwidth: float | None = None,
) -> np.ndarray:
    """Laplacian-eigenmaps embedding of a ``(d, N)`` view into ``(N, r)``.

    Uses the symmetric normalized Laplacian ``L = I - D^{-1/2} W D^{-1/2}``
    and returns the eigenvectors of its ``r`` smallest non-trivial
    eigenvalues, rescaled by ``D^{-1/2}`` (random-walk convention).
    """
    view = ensure_2d(view, name="view")
    n = view.shape[1]
    n_components = check_positive_int(n_components, "n_components")
    if n_components >= n:
        raise ValidationError(
            f"n_components={n_components} must be < number of samples {n}"
        )
    affinity = knn_affinity(
        view, n_neighbors=n_neighbors, mode=mode, bandwidth=bandwidth
    )
    degrees = np.asarray(affinity.sum(axis=1)).ravel()
    degrees = np.maximum(degrees, 1e-12)
    inv_sqrt = scipy.sparse.diags(1.0 / np.sqrt(degrees))
    laplacian = scipy.sparse.identity(n) - inv_sqrt @ affinity @ inv_sqrt

    k = n_components + 1  # include the trivial constant eigenvector
    if k >= n - 1:
        dense = laplacian.toarray()
        eigenvalues, eigenvectors = np.linalg.eigh(dense)
    else:
        eigenvalues, eigenvectors = scipy.sparse.linalg.eigsh(
            laplacian.tocsc(), k=k, sigma=-1e-5, which="LM"
        )
    order = np.argsort(eigenvalues)
    eigenvectors = eigenvectors[:, order]
    # Drop the trivial component, undo the symmetric normalization.
    embedding = eigenvectors[:, 1 : n_components + 1]
    embedding = embedding / np.sqrt(degrees)[:, None]
    # Unit-norm columns for comparability across views.
    norms = np.linalg.norm(embedding, axis=0)
    norms = np.where(norms > 0.0, norms, 1.0)
    return embedding / norms


@register("spectral")
class SpectralEmbedding(ParamsMixin):
    """Laplacian eigenmaps as a registry estimator (transductive).

    A thin estimator wrapper over :func:`laplacian_eigenmaps` so the
    single-view spectral baseline participates in the params protocol,
    the registry, and model persistence like every other estimator.

    Parameters
    ----------
    n_components:
        Embedding dimension ``r``.
    n_neighbors, mode, bandwidth:
        Affinity-graph settings, as in :func:`knn_affinity`.

    Attributes
    ----------
    embedding_:
        ``(N, r)`` embedding of the fitted samples.
    """

    #: fits one (d, N) matrix, not a multi-view list (checked by the CLI).
    _single_view_ = True

    def __init__(
        self,
        n_components: int = 2,
        *,
        n_neighbors: int = 10,
        mode: str = "heat",
        bandwidth: float | None = None,
    ):
        self.n_components = check_positive_int(n_components, "n_components")
        self.n_neighbors = check_positive_int(n_neighbors, "n_neighbors")
        if mode not in ("heat", "binary"):
            raise ValidationError(
                f"mode must be 'heat' or 'binary', got {mode!r}"
            )
        self.mode = mode
        self.bandwidth = None if bandwidth is None else float(bandwidth)

    def fit(self, view) -> "SpectralEmbedding":
        """Embed the samples of one ``(d, N)`` view."""
        self.embedding_ = laplacian_eigenmaps(
            view,
            self.n_components,
            n_neighbors=self.n_neighbors,
            mode=self.mode,
            bandwidth=self.bandwidth,
        )
        return self

    def fit_transform(self, view) -> np.ndarray:
        """Fit and return the ``(N, r)`` embedding."""
        return self.fit(view).embedding_

    def transform(self, view):
        """Spectral embedding is transductive — no out-of-sample map."""
        del view
        if not hasattr(self, "embedding_"):
            raise NotFittedError("SpectralEmbedding must be fitted first")
        raise NotImplementedError(
            "Laplacian eigenmaps embeds the fitted samples only "
            "(transductive); refit on the union of old and new samples"
        )
