"""Unsupervised multi-view dimension-reduction baselines and their substrates.

* :class:`~repro.baselines.pca.PCA` — used by DSE/SSMVD to pre-reduce each
  view to 100 dimensions, as in the paper's experimental setup.
* :func:`~repro.baselines.spectral.laplacian_eigenmaps` — spectral
  embedding (Belkin & Niyogi 2001), the per-view stage of DSE — with
  :class:`~repro.baselines.spectral.SpectralEmbedding` as its registry
  estimator form.
* :class:`~repro.baselines.dse.DSE` — distributed spectral embedding
  (Long et al. 2008): per-view embeddings combined into a consensus by
  matrix factorization.
* :class:`~repro.baselines.ssmvd.SSMVD` — structured-sparsity multi-view
  dimension reduction (Han et al. 2012).
"""

from repro.baselines.pca import PCA
from repro.baselines.spectral import (
    SpectralEmbedding,
    knn_affinity,
    laplacian_eigenmaps,
)
from repro.baselines.dse import DSE
from repro.baselines.ssmvd import SSMVD

__all__ = [
    "DSE",
    "PCA",
    "SSMVD",
    "SpectralEmbedding",
    "knn_affinity",
    "laplacian_eigenmaps",
]
