"""Regularized two-view canonical correlation analysis.

The formulation of Foster, Johnson & Zhang (2008), which the paper uses as
its CCA baseline: maximize ``h_1^T C_12 h_2`` subject to
``h_p^T (C_pp + ε I) h_p = 1``. After whitening each view with
``C̃_pp^{-1/2}`` the problem is an SVD of
``T = C̃_11^{-1/2} C_12 C̃_22^{-1/2}``; the top-``r`` singular pairs give the
canonical vectors and the singular values are the canonical correlations.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import register
from repro.cca.base import MultiviewTransformer
from repro.exceptions import ValidationError
from repro.linalg.covariance import cross_covariance, view_covariance
from repro.linalg.whitening import regularized_inverse_sqrt
from repro.utils.validation import check_positive_int, check_views

__all__ = ["CCA"]


@register("cca")
class CCA(MultiviewTransformer):
    """Two-view CCA with ridge regularization on the variance constraints.

    Parameters
    ----------
    n_components:
        Subspace dimension ``r`` per view (the concatenated output is
        ``2r``-dimensional, following Foster et al.).
    epsilon:
        Regularization ``ε`` added to each variance matrix
        (``10^{-2}`` in the paper's SecStr / Ads experiments).

    Attributes
    ----------
    canonical_vectors_:
        List of two ``(d_p, r)`` matrices ``H_p``.
    correlations_:
        The top ``r`` canonical correlations (singular values of the
        whitened cross-covariance).
    means_:
        Per-view feature means removed before fitting and re-applied in
        ``transform``.
    """

    def __init__(self, n_components: int = 1, epsilon: float = 1e-2):
        self.n_components = check_positive_int(n_components, "n_components")
        if epsilon < 0.0:
            raise ValidationError(f"epsilon must be >= 0, got {epsilon}")
        self.epsilon = float(epsilon)

    def fit(self, views) -> "CCA":
        """Fit on exactly two views of shape ``(d_1, N)`` and ``(d_2, N)``."""
        views = check_views(views, min_views=2)
        if len(views) != 2:
            raise ValidationError(
                f"CCA handles exactly 2 views, got {len(views)}; "
                "use TCCA / LSCCA / MaxVarCCA for more"
            )
        max_rank = min(view.shape[0] for view in views)
        if self.n_components > max_rank:
            raise ValidationError(
                f"n_components={self.n_components} exceeds min view "
                f"dimension {max_rank}"
            )

        self.means_ = [view.mean(axis=1, keepdims=True) for view in views]
        centered = [
            view - mean for view, mean in zip(views, self.means_)
        ]
        whiteners = [
            regularized_inverse_sqrt(view_covariance(view), self.epsilon)
            for view in centered
        ]
        target = whiteners[0] @ cross_covariance(*centered) @ whiteners[1]
        left, singular_values, right_t = np.linalg.svd(
            target, full_matrices=False
        )
        r = self.n_components
        self.correlations_ = singular_values[:r].copy()
        self.canonical_vectors_ = [
            whiteners[0] @ left[:, :r],
            whiteners[1] @ right_t[:r, :].T,
        ]
        self.n_views_ = 2
        self._dims = [view.shape[0] for view in views]
        return self

    def transform(self, views) -> list[np.ndarray]:
        """Project two views onto the canonical subspace: ``Z_p = X_p^T H_p``."""
        self._check_fitted()
        views = self._check_transform_views(views, self._dims)
        return [
            (view - mean).T @ vectors
            for view, mean, vectors in zip(
                views, self.means_, self.canonical_vectors_
            )
        ]
