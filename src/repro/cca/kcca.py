"""Kernel canonical correlation analysis (Hardoon et al. 2004).

Two-view KCCA with the partial-least-squares regularization the paper also
adopts for KTCCA: maximize ``a_1^T K_1 K_2 a_2`` subject to
``a_p^T (K_p² + ε K_p) a_p = 1``. With the Cholesky factorizations
``K_p² + ε K_p = L_p^T L_p`` and ``b_p = L_p a_p`` the problem becomes an
SVD of ``S = L_1^{-T} K_1 K_2 L_2^{-1}`` — exactly the two-view special
case of the KTCCA tensor problem.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import register
from repro.cca.base import MultiviewTransformer
from repro.exceptions import NotFittedError, ValidationError
from repro.kernels.centering import center_kernel, center_kernel_test
from repro.utils.validation import check_positive_int, check_square, check_views

__all__ = ["KCCA", "pls_cholesky"]


def pls_cholesky(kernel: np.ndarray, epsilon: float, jitter: float = 1e-8):
    """Cholesky factor ``L`` with ``K² + εK + δI = L^T L`` (upper ``L``).

    The jitter ``δ`` scales with the trace of ``K²`` so the factorization
    succeeds for rank-deficient (e.g. centered) kernel matrices.
    """
    kernel = check_square(kernel, name="kernel")
    symmetric = 0.5 * (kernel + kernel.T)
    target = symmetric @ symmetric + epsilon * symmetric
    scale = max(np.trace(target) / target.shape[0], 1.0)
    target = target + jitter * scale * np.eye(target.shape[0])
    try:
        lower = np.linalg.cholesky(target)
    except np.linalg.LinAlgError:
        # Fall back to an eigenvalue-clipped factorization.
        eigenvalues, eigenvectors = np.linalg.eigh(target)
        eigenvalues = np.maximum(eigenvalues, jitter * scale)
        lower = eigenvectors * np.sqrt(eigenvalues)
    return lower.T  # upper-triangular-ish factor with target = L^T L


@register("kcca")
class KCCA(MultiviewTransformer):
    """Two-view kernel CCA on precomputed or callable kernels.

    Parameters
    ----------
    n_components:
        Subspace dimension ``r`` per view.
    epsilon:
        PLS regularization ``ε`` in ``a^T (K² + εK) a = 1``.
    kernels:
        ``None`` (precomputed mode: ``fit`` receives ``(N, N)`` kernel
        matrices and ``transform`` receives ``(N_train, N_new)`` blocks) or
        a list of two kernel callables applied to raw ``(d_p, N)`` views.
    center:
        Center kernels in feature space before fitting (recommended).

    Attributes
    ----------
    dual_vectors_:
        List of two ``(N, r)`` coefficient matrices ``A_p``.
    correlations_:
        Top-``r`` singular values of the whitened cross-kernel operator.
    """

    def __init__(
        self,
        n_components: int = 1,
        epsilon: float = 1e-2,
        *,
        kernels=None,
        center: bool = True,
    ):
        self.n_components = check_positive_int(n_components, "n_components")
        if epsilon < 0.0:
            raise ValidationError(f"epsilon must be >= 0, got {epsilon}")
        self.epsilon = float(epsilon)
        if kernels is not None:
            kernels = list(kernels)
            if len(kernels) != 2:
                raise ValidationError(
                    f"KCCA needs exactly 2 kernels, got {len(kernels)}"
                )
        self.kernels = kernels
        self.center = bool(center)

    # -- kernel plumbing ----------------------------------------------------

    def _train_kernels(self, views) -> list[np.ndarray]:
        if self.kernels is None:
            kernels = [check_square(view, name="kernel") for view in views]
        else:
            self._train_views = [np.asarray(view, float) for view in views]
            kernels = [
                kernel.fit(view)(view)
                for kernel, view in zip(self.kernels, views)
            ]
        self._raw_train_kernels = kernels
        if self.center:
            kernels = [center_kernel(kernel) for kernel in kernels]
        return kernels

    def _new_kernel_blocks(self, views) -> list[np.ndarray]:
        if self.kernels is None:
            blocks = [np.asarray(view, dtype=np.float64) for view in views]
        else:
            blocks = [
                kernel(train_view, view)
                for kernel, train_view, view in zip(
                    self.kernels, self._train_views, views
                )
            ]
        for index, block in enumerate(blocks):
            if block.shape[0] != self._n_train:
                raise ValidationError(
                    f"kernel block {index} must have {self._n_train} rows "
                    f"(one per training sample), got {block.shape[0]}"
                )
        if self.center:
            blocks = [
                center_kernel_test(block, raw)
                for block, raw in zip(blocks, self._raw_train_kernels)
            ]
        return blocks

    # -- estimator API --------------------------------------------------------

    def fit(self, views) -> "KCCA":
        """Fit from two kernel matrices (precomputed) or two raw views."""
        views = check_views(views, min_views=2)
        if len(views) != 2:
            raise ValidationError(
                f"KCCA handles exactly 2 views, got {len(views)}"
            )
        kernels = self._train_kernels(views)
        n = kernels[0].shape[0]
        if kernels[1].shape[0] != n:
            raise ValidationError(
                "both kernel matrices must have the same size"
            )
        if self.n_components > n:
            raise ValidationError(
                f"n_components={self.n_components} exceeds the sample "
                f"count {n}"
            )
        self._n_train = n

        factors = [pls_cholesky(kernel, self.epsilon) for kernel in kernels]
        # S = L1^{-T} K1 K2 L2^{-1}; the factors may come from the eigh
        # fallback and need not be triangular, so use general solves.
        left = np.linalg.solve(factors[0].T, kernels[0])
        right = np.linalg.solve(factors[1].T, kernels[1])
        target = left @ right.T
        u, singular_values, vt = np.linalg.svd(target, full_matrices=False)
        r = self.n_components
        self.correlations_ = singular_values[:r].copy()
        self.dual_vectors_ = [
            np.linalg.solve(factors[0], u[:, :r]),
            np.linalg.solve(factors[1], vt[:r, :].T),
        ]
        self._fitted_kernels = kernels
        self.n_views_ = 2
        return self

    def transform(self, views) -> list[np.ndarray]:
        """Project new data; accepts kernel blocks or raw views per mode."""
        self._check_fitted()
        blocks = self._new_kernel_blocks(views)
        return [
            block.T @ duals
            for block, duals in zip(blocks, self.dual_vectors_)
        ]

    def transform_train(self) -> list[np.ndarray]:
        """Projections of the training samples, ``Z_p = K_p A_p``."""
        if not hasattr(self, "_fitted_kernels"):
            raise NotFittedError("KCCA must be fitted first")
        return [
            kernel @ duals
            for kernel, duals in zip(self._fitted_kernels, self.dual_vectors_)
        ]
