"""Classical CCA and its pairwise / multiset extensions.

These are the comparison methods of the paper's evaluation:

* :class:`~repro.cca.cca.CCA` — regularized two-view CCA (Foster et al. 2008),
* :class:`~repro.cca.kcca.KCCA` — kernel CCA (Hardoon et al. 2004),
* :class:`~repro.cca.maxvar.MaxVarCCA` — CCA-MAXVAR (Kettenring 1971),
* :class:`~repro.cca.lscca.LSCCA` — CCA-LS, the adaptive least-squares
  multiset CCA of Vía et al. (2007).
"""

from repro.cca.base import MultiviewTransformer, ParamsMixin
from repro.cca.cca import CCA
from repro.cca.kcca import KCCA
from repro.cca.lscca import LSCCA
from repro.cca.maxvar import MaxVarCCA

__all__ = [
    "CCA",
    "KCCA",
    "LSCCA",
    "MaxVarCCA",
    "MultiviewTransformer",
    "ParamsMixin",
]
