"""Shared fit/transform interface for all multi-view dimension reducers.

Conventions (matching the paper):

* input views are matrices ``X_p`` of shape ``(d_p, N)`` — features on the
  rows, the shared sample axis on the columns;
* ``transform`` returns one ``(N, r)`` array of canonical variables per
  view (``Z_p = X_p^T H_p``);
* ``transform_combined`` concatenates them into the ``(N, m·r)``
  representation the paper feeds to downstream learners.
"""

from __future__ import annotations

import inspect
from abc import ABC, abstractmethod

import numpy as np

from repro.exceptions import NotFittedError, ShapeError, ValidationError
from repro.utils.validation import check_views

__all__ = ["MultiviewTransformer", "ParamsMixin"]


class ParamsMixin:
    """Uniform constructor-parameter protocol for every estimator.

    The contract mirrors scikit-learn's: an estimator's hyper-parameters
    are exactly its ``__init__`` keyword arguments, and each is stored on
    the instance under its own name. That single convention buys

    * :meth:`get_params` / :meth:`set_params` — introspection and
      re-validated updates,
    * :meth:`clone` — an unfitted copy with identical parameters,
    * :meth:`to_config` / :meth:`from_config` — round-tripping through
      plain dicts (the JSON header of a saved model, a config file, an
      HTTP request body),

    for free on every class that follows it. The estimator registry
    (:mod:`repro.api.registry`) stamps registered classes with
    ``_registry_name_`` / ``_registry_kind_``, which :meth:`to_config`
    embeds so a config names the estimator by its stable registry key
    rather than a Python class path.
    """

    #: set by :func:`repro.api.registry.register` on registered classes.
    _registry_name_: str
    _registry_kind_: str

    @classmethod
    def _param_names(cls) -> list[str]:
        """Parameter names, in declaration order, from ``__init__``."""
        signature = inspect.signature(cls.__init__)
        names = []
        for name, parameter in signature.parameters.items():
            if name == "self":
                continue
            if parameter.kind in (
                inspect.Parameter.VAR_POSITIONAL,
                inspect.Parameter.VAR_KEYWORD,
            ):
                raise TypeError(
                    f"{cls.__name__}.__init__ must spell out its "
                    "parameters explicitly (no *args/**kwargs) to support "
                    "the params protocol"
                )
            names.append(name)
        return names

    def get_params(self) -> dict:
        """Current constructor parameters as a plain dict."""
        params = {}
        for name in self._param_names():
            try:
                params[name] = getattr(self, name)
            except AttributeError:
                raise AttributeError(
                    f"{type(self).__name__} stores no attribute for "
                    f"constructor parameter {name!r}; estimators must keep "
                    "each __init__ argument under its own name"
                ) from None
        return params

    def set_params(self, **updates) -> "ParamsMixin":
        """Update parameters in place, re-running ``__init__`` validation.

        Fitted attributes are left untouched (re-fit to make them
        consistent with the new parameters), exactly like scikit-learn.
        """
        valid = self._param_names()
        unknown = sorted(set(updates) - set(valid))
        if unknown:
            raise ValidationError(
                f"invalid parameter(s) {unknown} for "
                f"{type(self).__name__}; valid parameters: {sorted(valid)}"
            )
        merged = {**self.get_params(), **updates}
        # Validate into a throwaway instance first: if __init__ rejects
        # the combination partway through, self must stay unchanged.
        type(self)(**merged)
        self.__init__(**merged)
        return self

    def clone(self) -> "ParamsMixin":
        """A new unfitted estimator with the same parameters."""
        return type(self)(**self.get_params())

    def to_config(self) -> dict:
        """``{"estimator": <registry name>, "params": {...}}``."""
        name = getattr(type(self), "_registry_name_", None)
        return {
            "estimator": name or type(self).__name__.lower(),
            "params": dict(self.get_params()),
        }

    def __repr__(self) -> str:
        """``ClassName(param=value, …)`` showing only non-default params.

        The params protocol makes this exact for every registered
        estimator: a log line reads ``TCCA(n_components=5, epsilon=0.1)``
        instead of ``<repro.core.tcca.TCCA object at 0x…>``, and an
        all-default estimator prints as a bare ``TCCA()``.
        """
        signature = inspect.signature(type(self).__init__)
        parts = []
        for name in self._param_names():
            value = getattr(self, name, signature.parameters[name].default)
            default = signature.parameters[name].default
            if default is not inspect.Parameter.empty:
                try:
                    if bool(value == default):
                        continue
                except (TypeError, ValueError):
                    pass  # incomparable (e.g. arrays): always show
            parts.append(f"{name}={value!r}")
        return f"{type(self).__name__}({', '.join(parts)})"

    @classmethod
    def from_config(cls, config: dict) -> "ParamsMixin":
        """Rebuild an (unfitted) estimator from :meth:`to_config` output."""
        if not isinstance(config, dict):
            raise ValidationError(
                f"config must be a dict, got {type(config).__name__}"
            )
        name = config.get("estimator")
        expected = getattr(cls, "_registry_name_", cls.__name__.lower())
        if name is not None and name not in (expected, cls.__name__):
            raise ValidationError(
                f"config names estimator {name!r} but was handed to "
                f"{cls.__name__} (registry name {expected!r})"
            )
        return cls(**dict(config.get("params", {})))


class MultiviewTransformer(ParamsMixin, ABC):
    """Abstract base class for multi-view subspace learners."""

    #: set by fit(): number of views the transformer was fitted on.
    n_views_: int

    @abstractmethod
    def fit(self, views) -> "MultiviewTransformer":
        """Learn the shared subspace from a list of ``(d_p, N)`` views."""

    @abstractmethod
    def transform(self, views) -> list[np.ndarray]:
        """Project each view; returns a list of ``(N, r)`` arrays."""

    def fit_transform(self, views) -> list[np.ndarray]:
        """Fit on ``views`` and return their projections."""
        return self.fit(views).transform(views)

    def transform_combined(self, views) -> np.ndarray:
        """Concatenate the per-view projections into ``(N, m·r)``."""
        return np.hstack(self.transform(views))

    def fit_transform_combined(self, views) -> np.ndarray:
        """Fit and return the concatenated ``(N, m·r)`` representation."""
        return np.hstack(self.fit_transform(views))

    # -- helpers shared by the concrete estimators -------------------------

    def _check_fitted(self, attribute: str = "n_views_") -> None:
        if not hasattr(self, attribute):
            raise NotFittedError(
                f"{type(self).__name__} must be fitted before calling "
                "transform"
            )

    def _check_transform_views(self, views, dims) -> list[np.ndarray]:
        """Validate transform-time views against fit-time dimensions.

        Raises a :class:`~repro.exceptions.ShapeError` naming the
        offending view and both dimensions — instead of letting a
        mismatched matrix reach an opaque einsum/matmul broadcast error
        deep inside the projection.
        """
        views = check_views(views, min_views=1)
        if len(views) != len(dims):
            raise ShapeError(
                f"fitted on {len(dims)} views but got {len(views)}"
            )
        for index, (view, dim) in enumerate(zip(views, dims)):
            if view.shape[0] != dim:
                raise ShapeError(
                    f"views[{index}] has {view.shape[0]} features but the "
                    f"transformer was fitted with {dim}"
                )
        return views
