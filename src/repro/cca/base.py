"""Shared fit/transform interface for all multi-view dimension reducers.

Conventions (matching the paper):

* input views are matrices ``X_p`` of shape ``(d_p, N)`` — features on the
  rows, the shared sample axis on the columns;
* ``transform`` returns one ``(N, r)`` array of canonical variables per
  view (``Z_p = X_p^T H_p``);
* ``transform_combined`` concatenates them into the ``(N, m·r)``
  representation the paper feeds to downstream learners.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.utils.validation import check_views

__all__ = ["MultiviewTransformer"]


class MultiviewTransformer(ABC):
    """Abstract base class for multi-view subspace learners."""

    #: set by fit(): number of views the transformer was fitted on.
    n_views_: int

    @abstractmethod
    def fit(self, views) -> "MultiviewTransformer":
        """Learn the shared subspace from a list of ``(d_p, N)`` views."""

    @abstractmethod
    def transform(self, views) -> list[np.ndarray]:
        """Project each view; returns a list of ``(N, r)`` arrays."""

    def fit_transform(self, views) -> list[np.ndarray]:
        """Fit on ``views`` and return their projections."""
        return self.fit(views).transform(views)

    def transform_combined(self, views) -> np.ndarray:
        """Concatenate the per-view projections into ``(N, m·r)``."""
        return np.hstack(self.transform(views))

    def fit_transform_combined(self, views) -> np.ndarray:
        """Fit and return the concatenated ``(N, m·r)`` representation."""
        return np.hstack(self.fit_transform(views))

    # -- helpers shared by the concrete estimators -------------------------

    def _check_fitted(self, attribute: str = "n_views_") -> None:
        if not hasattr(self, attribute):
            raise NotFittedError(
                f"{type(self).__name__} must be fitted before calling "
                "transform"
            )

    def _check_transform_views(self, views, dims) -> list[np.ndarray]:
        """Validate transform-time views against fit-time dimensions."""
        views = check_views(views, min_views=1)
        if len(views) != len(dims):
            raise ValidationError(
                f"fitted on {len(dims)} views but got {len(views)}"
            )
        for index, (view, dim) in enumerate(zip(views, dims)):
            if view.shape[0] != dim:
                raise ValidationError(
                    f"views[{index}] has {view.shape[0]} features but the "
                    f"transformer was fitted with {dim}"
                )
        return views
