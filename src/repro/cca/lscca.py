"""CCA-LS: the coupled least-squares multiset CCA of Vía et al. (2007).

Reformulates CCA-MAXVAR as a set of coupled LS regression problems
(Eq. 3.3 of the paper): minimize
``(1 / 2m(m-1)) Σ_{p,q} ‖X_p^T h_p - X_q^T h_q‖²`` subject to
``(1/m) Σ_p h_p^T C̃_pp h_p = 1``. The iterative solver alternates

1. a consensus update ``z = (1/m) Σ_p X_p^T h_p``, and
2. per-view ridge regressions ``h_p ← argmin ‖X_p^T h - z‖² + ε‖h‖²``,

with the ``z^{(i)T} z^{(j)} = 0`` orthogonality the paper imposes across
components.

Two solver modes share this fixed point:

* ``mode="sequential"`` — Vía et al.'s adaptive scheme: extract one
  component at a time, deflating the consensus against the previous ones;
* ``mode="block"`` (default) — iterate all ``r`` components jointly,
  re-orthonormalizing the consensus block each sweep (orthogonal
  iteration). Much faster for large ``r`` and converges to the same
  top-``r`` consensus subspace.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.api.registry import register
from repro.cca.base import MultiviewTransformer
from repro.exceptions import ConvergenceWarning, ValidationError
from repro.linalg.covariance import view_covariance
from repro.utils.rng import check_random_state
from repro.utils.validation import check_positive_int, check_views

__all__ = ["LSCCA"]


@register("lscca")
class LSCCA(MultiviewTransformer):
    """Adaptive multiset CCA via coupled least-squares regressions.

    Parameters
    ----------
    n_components:
        Number of canonical directions ``r`` per view.
    epsilon:
        Ridge regularization of the per-view regressions / variance
        constraints.
    mode:
        ``"block"`` (joint orthogonal iteration, default) or
        ``"sequential"`` (per-component deflation, the paper's adaptive
        formulation).
    max_iter, tol:
        Stopping rule of the alternating iterations (relative change of the
        consensus).
    random_state:
        Seed for the random consensus initialization.

    Attributes
    ----------
    canonical_vectors_:
        List of ``(d_p, r)`` matrices ``H_p``.
    consensus_:
        ``(N, r)`` consensus canonical variables ``z^{(i)}`` with mutually
        orthogonal columns.
    """

    def __init__(
        self,
        n_components: int = 1,
        epsilon: float = 1e-2,
        *,
        mode: str = "block",
        max_iter: int = 300,
        tol: float = 1e-7,
        random_state=None,
    ):
        self.n_components = check_positive_int(n_components, "n_components")
        if epsilon < 0.0:
            raise ValidationError(f"epsilon must be >= 0, got {epsilon}")
        self.epsilon = float(epsilon)
        if mode not in ("block", "sequential"):
            raise ValidationError(
                f"mode must be 'block' or 'sequential', got {mode!r}"
            )
        self.mode = mode
        self.max_iter = check_positive_int(max_iter, "max_iter")
        self.tol = float(tol)
        self.random_state = random_state

    def fit(self, views) -> "LSCCA":
        """Fit on ``m >= 2`` views of shape ``(d_p, N)``."""
        views = check_views(views, min_views=2)
        n_samples = views[0].shape[1]
        if self.n_components > n_samples:
            raise ValidationError(
                f"n_components={self.n_components} exceeds the sample "
                f"count {n_samples}"
            )
        rng = check_random_state(self.random_state)

        self.means_ = [view.mean(axis=1, keepdims=True) for view in views]
        centered = [view - mean for view, mean in zip(views, self.means_)]
        grams = [
            view_covariance(view) + self.epsilon * np.eye(view.shape[0])
            for view in centered
        ]
        cholesky_factors = [np.linalg.cholesky(gram) for gram in grams]

        def ridge_solve(view_index: int, target: np.ndarray) -> np.ndarray:
            """H = (C_pp + εI)^{-1} X_p Z / N via the cached Cholesky."""
            rhs = centered[view_index] @ target / n_samples
            low = cholesky_factors[view_index]
            return np.linalg.solve(low.T, np.linalg.solve(low, rhs))

        if self.mode == "block":
            consensus, converged_flags = self._fit_block(
                centered, ridge_solve, rng, n_samples
            )
        else:
            consensus, converged_flags = self._fit_sequential(
                centered, ridge_solve, rng, n_samples
            )
        self._converged = converged_flags
        if not all(converged_flags):
            warnings.warn(
                f"LSCCA ({self.mode}) did not fully converge in "
                f"{self.max_iter} iterations",
                ConvergenceWarning,
                stacklevel=2,
            )

        # Final per-view solves + the paper's scaling
        # (1/m) Σ_p h^T C̃_pp h = 1 per component.
        n_views = len(centered)
        vectors = [ridge_solve(p, consensus) for p in range(n_views)]
        scale_sq = np.zeros(self.n_components)
        for p, matrix in enumerate(vectors):
            scale_sq += np.sum(matrix * (grams[p] @ matrix), axis=0)
        scales = np.sqrt(np.maximum(scale_sq / n_views, 1e-30))
        self.canonical_vectors_ = [matrix / scales for matrix in vectors]
        self.consensus_ = consensus
        self.n_views_ = n_views
        self._dims = [view.shape[0] for view in centered]
        return self

    # -- solvers ------------------------------------------------------------

    def _fit_block(self, centered, ridge_solve, rng, n_samples):
        n_views = len(centered)
        r = self.n_components
        consensus = np.linalg.qr(
            rng.standard_normal((n_samples, r))
        )[0]
        converged = False
        for _ in range(self.max_iter):
            updated = np.zeros_like(consensus)
            for p in range(n_views):
                updated += centered[p].T @ ridge_solve(p, consensus)
            updated /= n_views
            q, _ = np.linalg.qr(updated)
            # Subspace distance via principal angles.
            overlap = np.linalg.svd(consensus.T @ q, compute_uv=False)
            consensus = q
            if 1.0 - overlap.min() < self.tol:
                converged = True
                break
        return consensus, [converged] * r

    def _fit_sequential(self, centered, ridge_solve, rng, n_samples):
        n_views = len(centered)
        consensus = np.zeros((n_samples, self.n_components))
        converged_flags = []
        for component in range(self.n_components):
            previous = consensus[:, :component]
            z = self._deflate(rng.standard_normal(n_samples), previous)
            z /= max(np.linalg.norm(z), 1e-30)
            converged = False
            for _ in range(self.max_iter):
                z_new = np.zeros(n_samples)
                for p in range(n_views):
                    z_new += centered[p].T @ ridge_solve(p, z)
                z_new /= n_views
                z_new = self._deflate(z_new, previous)
                norm = np.linalg.norm(z_new)
                if norm < 1e-30:
                    z_new = self._deflate(
                        rng.standard_normal(n_samples), previous
                    )
                    norm = max(np.linalg.norm(z_new), 1e-30)
                z_new /= norm
                if min(
                    np.linalg.norm(z_new - z), np.linalg.norm(z_new + z)
                ) < self.tol:
                    z = z_new
                    converged = True
                    break
                z = z_new
            consensus[:, component] = z
            converged_flags.append(converged)
        return consensus, converged_flags

    @staticmethod
    def _deflate(vector: np.ndarray, basis: np.ndarray) -> np.ndarray:
        """Project ``vector`` onto the orthogonal complement of ``basis``."""
        if basis.shape[1] == 0:
            return vector
        return vector - basis @ (basis.T @ vector)

    def transform(self, views) -> list[np.ndarray]:
        """Project every view: ``Z_p = X_p^T H_p`` of shape ``(N, r)``."""
        self._check_fitted()
        views = self._check_transform_views(views, self._dims)
        return [
            (view - mean).T @ vectors
            for view, mean, vectors in zip(
                views, self.means_, self.canonical_vectors_
            )
        ]
