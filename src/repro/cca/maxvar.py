"""CCA-MAXVAR: Kettenring's (1971) multiset generalization of CCA.

Minimizes ``(1/m) Σ_p ‖z - α_p z_p‖²`` over a consensus variable ``z`` and
unit-norm per-view canonical variables ``z_p = X_p^T h_p`` (Eq. 3.2 of the
paper). With ridge-regularized variance constraints the solution is spectral:
stack the whitened views ``Y_p = C̃_pp^{-1/2} X_p / sqrt(N)`` into
``Y ∈ R^{(Σ d_p) × N}``; the consensus variables ``z^{(i)}`` are the top
right singular vectors of ``Y`` and the canonical vectors follow by
per-view least squares. This is the SVD-based solver the paper describes
as costly relative to CCA-LS — and the fixed point both methods share.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import register
from repro.cca.base import MultiviewTransformer
from repro.exceptions import ValidationError
from repro.linalg.covariance import view_covariance
from repro.linalg.whitening import regularized_inverse_sqrt
from repro.utils.validation import check_positive_int, check_views

__all__ = ["MaxVarCCA"]


@register("maxvar")
class MaxVarCCA(MultiviewTransformer):
    """Multiset CCA by maximum-variance consensus (SVD solver).

    Parameters
    ----------
    n_components:
        Number of canonical directions ``r`` per view.
    epsilon:
        Ridge regularization on each view variance matrix.

    Attributes
    ----------
    canonical_vectors_:
        List of ``(d_p, r)`` matrices ``H_p``.
    consensus_:
        ``(N, r)`` consensus variables ``z^{(i)}`` (orthonormal columns).
    scores_:
        The top ``r`` squared-singular-value scores of the stacked whitened
        data; larger means stronger multiset correlation.
    """

    def __init__(self, n_components: int = 1, epsilon: float = 1e-2):
        self.n_components = check_positive_int(n_components, "n_components")
        if epsilon < 0.0:
            raise ValidationError(f"epsilon must be >= 0, got {epsilon}")
        self.epsilon = float(epsilon)

    def fit(self, views) -> "MaxVarCCA":
        """Fit on ``m >= 2`` views."""
        views = check_views(views, min_views=2)
        n_samples = views[0].shape[1]
        if self.n_components > n_samples:
            raise ValidationError(
                f"n_components={self.n_components} exceeds the sample "
                f"count {n_samples}"
            )

        self.means_ = [view.mean(axis=1, keepdims=True) for view in views]
        centered = [view - mean for view, mean in zip(views, self.means_)]
        whiteners = [
            regularized_inverse_sqrt(view_covariance(view), self.epsilon)
            for view in centered
        ]
        whitened = [
            whitener @ view / np.sqrt(n_samples)
            for whitener, view in zip(whiteners, centered)
        ]
        stacked = np.vstack(whitened)
        _left, singular_values, right_t = np.linalg.svd(
            stacked, full_matrices=False
        )
        r = self.n_components
        consensus = right_t[:r, :].T  # (N, r), orthonormal columns
        self.consensus_ = consensus
        self.scores_ = (singular_values[:r] ** 2).copy()

        # Per-view canonical vectors by ridge least squares of the consensus
        # on each view: h_p = argmin ‖X_p^T h - z‖² + ε‖h‖² (up to scale).
        self.canonical_vectors_ = []
        for view in centered:
            gram = view_covariance(view) + self.epsilon * np.eye(view.shape[0])
            rhs = view @ consensus / n_samples
            vectors = np.linalg.solve(gram, rhs)
            # Normalize to the paper's unit-variance constraint
            # h^T C̃_pp h = 1 per component.
            scales = np.sqrt(
                np.maximum(np.sum(vectors * (gram @ vectors), axis=0), 1e-30)
            )
            self.canonical_vectors_.append(vectors / scales)
        self.n_views_ = len(views)
        self._dims = [view.shape[0] for view in views]
        return self

    def transform(self, views) -> list[np.ndarray]:
        """Project every view: ``Z_p = X_p^T H_p`` of shape ``(N, r)``."""
        self._check_fitted()
        views = self._check_transform_views(views, self._dims)
        return [
            (view - mean).T @ vectors
            for view, mean, vectors in zip(
                views, self.means_, self.canonical_vectors_
            )
        ]
