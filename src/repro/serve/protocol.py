"""HTTP framing and the JSON request/error protocol of ``repro serve``.

The server speaks a deliberately small slice of HTTP/1.1 over plain
``asyncio`` streams — request line, headers, ``Content-Length`` body,
keep-alive — so serving needs no framework dependency. This module owns
both directions of the wire:

* :func:`read_request` parses one :class:`Request` from a stream,
  enforcing header and body limits;
* :class:`Response` / :func:`json_response` / :func:`error_response`
  build the reply, every error as a *structured* JSON body
  ``{"error": {"type": ..., "message": ..., "status": ...}}`` — a
  malformed request maps to a typed 4xx, never a stack trace;
* :func:`decode_views` turns the JSON payload ``{"views": [...]}`` into
  validated ``(d_p, n)`` view matrices, raising the same
  :class:`~repro.exceptions.ShapeError` /
  :class:`~repro.exceptions.ValidationError` taxonomy the library API
  raises, which :func:`error_status` maps onto status codes.

Wire format of a serve request: each view is a list of ``n`` samples
(rows), each sample a list of ``d_p`` numbers — the natural JSON
orientation — transposed internally to the library's ``(d_p, n)``
column-sample convention.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import (
    ReproError,
    ServerOverloaded,
    ShapeError,
    ValidationError,
)
from repro.utils.validation import ensure_2d

__all__ = [
    "DEFAULT_MAX_BODY",
    "ProtocolError",
    "Request",
    "Response",
    "decode_views",
    "error_response",
    "error_status",
    "json_response",
    "read_request",
]

#: Default request-body ceiling (bytes); oversize payloads get a 413.
DEFAULT_MAX_BODY = 8 * 1024 * 1024

_MAX_HEADER_LINE = 16 * 1024
_MAX_HEADERS = 64

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ProtocolError(ReproError):
    """An HTTP-level failure that maps to one structured error response.

    ``close`` marks errors after which the connection cannot be reused
    (e.g. an oversize body that was never read off the socket).
    ``headers`` adds response headers to the error reply — the 429
    overload path carries ``Retry-After`` this way.
    """

    def __init__(
        self,
        status: int,
        error_type: str,
        message: str,
        *,
        close: bool = False,
        headers: dict[str, str] | None = None,
    ):
        super().__init__(message)
        self.status = int(status)
        self.error_type = error_type
        self.close = bool(close)
        self.headers = dict(headers or {})


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    keep_alive: bool = True

    def json(self):
        """The body decoded as JSON, or a typed 400 ``bad-json`` error."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ProtocolError(
                400, "bad-json", f"request body is not valid JSON: {error}"
            ) from None


@dataclass
class Response:
    """One HTTP response, rendered by :meth:`encode`.

    ``headers`` carries extra response headers (``Retry-After`` on a
    429); the framing headers (Content-Type/Length, Connection) are
    always emitted and cannot be overridden.
    """

    status: int
    body: bytes
    content_type: str = "application/json"
    close: bool = False
    headers: dict[str, str] = field(default_factory=dict)

    def encode(self) -> bytes:
        reason = _REASONS.get(self.status, "Unknown")
        connection = "close" if self.close else "keep-alive"
        extra = "".join(
            f"{name}: {value}\r\n" for name, value in self.headers.items()
        )
        head = (
            f"HTTP/1.1 {self.status} {reason}\r\n"
            f"Content-Type: {self.content_type}\r\n"
            f"Content-Length: {len(self.body)}\r\n"
            f"Connection: {connection}\r\n"
            f"{extra}"
            "\r\n"
        )
        return head.encode("ascii") + self.body


def json_response(
    payload,
    status: int = 200,
    *,
    close: bool = False,
    headers: dict[str, str] | None = None,
) -> Response:
    """A :class:`Response` carrying ``payload`` as a JSON document."""
    body = json.dumps(payload).encode("utf-8")
    return Response(
        status=status, body=body, close=close, headers=dict(headers or {})
    )


def error_response(
    status: int,
    error_type: str,
    message: str,
    *,
    close: bool = False,
    headers: dict[str, str] | None = None,
) -> Response:
    """The structured error body every failure mode shares."""
    return json_response(
        {
            "error": {
                "type": error_type,
                "message": message,
                "status": status,
            }
        },
        status=status,
        close=close,
        headers=headers,
    )


def error_status(error: Exception) -> tuple[int, str]:
    """``(status, error type)`` for a library exception.

    The serving layer re-raises the API's own validation taxonomy —
    :class:`ShapeError` for wrong view counts / per-view dimensions,
    :class:`ValidationError` for everything else malformed — and this
    single mapping keeps the wire contract aligned with it.
    """
    if isinstance(error, ProtocolError):
        return error.status, error.error_type
    if isinstance(error, ServerOverloaded):
        return 429, "overloaded"
    if isinstance(error, ShapeError):
        return 400, "ShapeError"
    if isinstance(error, ValidationError):
        return 400, "ValidationError"
    return 500, type(error).__name__


async def read_request(reader, *, max_body: int = DEFAULT_MAX_BODY):
    """Parse one request off ``reader``; ``None`` on a closed connection.

    Raises :class:`ProtocolError` for anything the server refuses:
    unparsable framing (400), missing ``Content-Length`` on a body
    method (411), or a declared body above ``max_body`` (413 — raised
    *before* reading the body, so an oversize upload is never buffered;
    the connection is closed since the body was left on the socket).
    """
    request_line = await reader.readline()
    if not request_line:
        return None
    if len(request_line) > _MAX_HEADER_LINE:
        raise ProtocolError(
            400, "bad-request", "request line too long", close=True
        )
    try:
        method, path, version = (
            request_line.decode("ascii").strip().split(" ", 2)
        )
    except (UnicodeDecodeError, ValueError):
        raise ProtocolError(
            400, "bad-request", "unparsable HTTP request line", close=True
        ) from None
    if not version.startswith("HTTP/"):
        raise ProtocolError(
            400, "bad-request", f"unsupported protocol {version!r}",
            close=True,
        )
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        if len(line) > _MAX_HEADER_LINE or len(headers) >= _MAX_HEADERS:
            raise ProtocolError(
                400, "bad-request", "request headers too large", close=True
            )
        name, separator, value = line.decode("latin-1").partition(":")
        if not separator:
            raise ProtocolError(
                400, "bad-request", f"malformed header line {line!r}",
                close=True,
            )
        headers[name.strip().lower()] = value.strip()
    keep_alive = (
        headers.get("connection", "keep-alive").lower() != "close"
        and version != "HTTP/1.0"
    )
    body = b""
    if method in ("POST", "PUT"):
        declared = headers.get("content-length")
        if declared is None:
            raise ProtocolError(
                411,
                "length-required",
                f"{method} requests must declare Content-Length",
            )
        try:
            length = int(declared)
            if length < 0:
                raise ValueError
        except ValueError:
            raise ProtocolError(
                400, "bad-request",
                f"invalid Content-Length {declared!r}", close=True,
            ) from None
        if length > max_body:
            raise ProtocolError(
                413,
                "payload-too-large",
                f"request body of {length} bytes exceeds the server "
                f"limit of {max_body}",
                close=True,
            )
        body = await reader.readexactly(length)
    return Request(
        method=method,
        path=path,
        headers=headers,
        body=body,
        keep_alive=keep_alive,
    )


# -- request payload decoding ------------------------------------------------


def decode_views(payload, view_dims=None, *, dtype=None) -> list[np.ndarray]:
    """Validated ``(d_p, n)`` views from a ``{"views": [...]}`` payload.

    Each JSON view is samples-major (``n`` rows of ``d_p`` numbers) and
    is transposed to the library convention. When ``view_dims`` (the
    fitted model's per-view dimensions) is given, the view count and
    every per-view dimension are checked here, raising the same
    :class:`ShapeError` the API's transform raises — so a mismatched
    request fails as a typed 400 before it ever reaches the batcher.

    ``dtype`` is the dtype the request arrays are materialised in —
    the server passes the loaded model's recorded *compute* dtype, so
    requests against a float32 (mixed-precision) model are decoded as
    float32 instead of being silently upcast and downcast again.
    Defaults to float64.
    """
    if not isinstance(payload, dict):
        raise ValidationError(
            "request body must be a JSON object with a 'views' key"
        )
    views = payload.get("views")
    if not isinstance(views, list) or not views:
        raise ValidationError(
            "'views' must be a non-empty list with one entry per view"
        )
    if view_dims is not None and len(views) != len(view_dims):
        raise ShapeError(
            f"model was fitted on {len(view_dims)} views but the "
            f"request carries {len(views)}"
        )
    decoded = []
    target = np.dtype(np.float64 if dtype is None else dtype)
    for index, view in enumerate(views):
        try:
            array = np.asarray(view, dtype=target)
        except (TypeError, ValueError):
            raise ValidationError(
                f"views[{index}] is not a numeric array"
            ) from None
        if array.ndim == 1:
            # a single sample may be sent flat
            array = array[np.newaxis, :]
        array = ensure_2d(array, name=f"views[{index}]", dtype=target).T
        if view_dims is not None and array.shape[0] != view_dims[index]:
            raise ShapeError(
                f"views[{index}] samples have {array.shape[0]} features "
                f"but the model was fitted with {view_dims[index]}"
            )
        decoded.append(array)
    sample_counts = {view.shape[1] for view in decoded}
    if len(sample_counts) != 1:
        raise ValidationError(
            "all views must carry the same number of samples; got "
            f"{sorted(sample_counts)}"
        )
    return decoded
