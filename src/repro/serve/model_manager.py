"""The serving side of ``repro update``: watch, hash, hot-swap the model.

A deployed model file is replaced *atomically* (``os.replace`` inside
:func:`~repro.api.persistence.write_archive`), so a reader polling the
path can only ever observe a complete old file or a complete new file —
never a torn write. :class:`ModelManager` builds the hot-reload contract
on exactly that guarantee:

* it watches **only** the configured path — the ``MODEL.npz.<rand>.tmp``
  files a saver (or a crashed saver) leaves next to the model are never
  candidates, so a half-written temp file cannot be loaded;
* a cheap ``stat`` signature (mtime_ns, size, inode) decides whether to
  reload; on change the file is re-read, content-hashed (SHA-256) and
  swapped in as a new immutable :class:`ModelSnapshot` with a bumped
  version counter;
* if a replaced file fails to load (e.g. some non-atomic writer
  corrupted it), the manager keeps serving the previous snapshot and
  records the failure for ``/modelz`` — stale beats down;
* repeated reload failures trip a **circuit breaker**: after
  ``failure_threshold`` consecutive failures the manager stops probing
  the file entirely for ``cooldown_seconds``, then lets one half-open
  probe through — a bad deploy loop costs a bounded number of full
  load-and-hash attempts per cooldown instead of one per request
  (the retry storm a corrupt replacement used to cause). Any
  successful load closes the breaker.

``maybe_reload`` is called between batches (and from the introspection
endpoints), so in-flight batches always finish on the snapshot they
started with while new arrivals see the new model.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro.api.persistence import hash_model_file, load_model
from repro.artifacts import chain_summary, read_header
from repro.reliability.faults import fault_point

__all__ = ["ModelManager", "ModelSnapshot"]


@dataclass(frozen=True)
class ModelSnapshot:
    """One immutable loaded model: what a batch computes against."""

    model: object
    version: int
    sha256: str
    view_dims: tuple[int, ...] | None
    #: compact provenance view (chain depth, root/parent hashes) of the
    #: loaded file's header, or ``None`` for pre-provenance models.
    provenance: dict | None = None
    #: the precision policy the model was fitted under (compute /
    #: accumulate dtypes, polish flag), or ``None`` for models saved
    #: before the policy existed (implicitly all-float64).
    dtype_policy: dict | None = None
    #: the kernel-approximation config of an approximate KTCCA fit
    #: (kind, requested width, per-view fitted feature dims), or
    #: ``None`` for exact / non-kernel models.
    approx: dict | None = None

    @property
    def is_pipeline(self) -> bool:
        from repro.api.pipeline import MultiviewPipeline

        return isinstance(self.model, MultiviewPipeline)


def _view_dims(model) -> tuple[int, ...] | None:
    """Fitted per-view dimensions, for request validation / ``/modelz``."""
    reducer = getattr(model, "reducer", model)
    dims = getattr(reducer, "_dims", None)
    if dims is None:
        return None
    return tuple(int(dim) for dim in dims)


def _dtype_policy(model) -> dict | None:
    """The fitted reducer's recorded precision policy, if any."""
    reducer = getattr(model, "reducer", model)
    policy = getattr(reducer, "dtype_policy_", None)
    return dict(policy) if isinstance(policy, dict) else None


def _approx_info(model) -> dict | None:
    """Kernel-approximation config of an approximate KTCCA fit, if any."""
    reducer = getattr(model, "reducer", model)
    kind = getattr(reducer, "approx_used_", None)
    if kind in (None, "exact"):
        return None
    info = {"kind": str(kind)}
    n_features = getattr(reducer, "n_features", None)
    if n_features is not None:
        info["n_features"] = int(n_features)
    feature_dims = getattr(reducer, "feature_dims_", None)
    if feature_dims is not None:
        info["feature_dims"] = [int(dim) for dim in feature_dims]
    return info


class ModelManager:
    """Load a model file and hot-swap it when the file is replaced.

    Parameters
    ----------
    path:
        The watched model file.
    failure_threshold:
        Consecutive reload failures that trip the circuit breaker.
    cooldown_seconds:
        How long a tripped breaker suppresses reload probes before
        allowing one half-open attempt.
    clock:
        Optional timing source with ``monotonic()`` (the serve layer's
        :class:`~repro.serve.batcher.ManualClock` in tests); defaults
        to :func:`time.monotonic`.
    """

    def __init__(
        self,
        path,
        *,
        failure_threshold: int = 3,
        cooldown_seconds: float = 30.0,
        clock=None,
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_seconds < 0:
            raise ValueError(
                f"cooldown_seconds must be >= 0, got {cooldown_seconds}"
            )
        self.path = os.fspath(path)
        self.failure_threshold = int(failure_threshold)
        self.cooldown_seconds = float(cooldown_seconds)
        self._now = (
            time.monotonic if clock is None else clock.monotonic
        )
        self._snapshot: ModelSnapshot | None = None
        self._signature = None
        self.reloads = 0
        self.reload_errors = 0
        self.last_error: str | None = None
        self._consecutive_failures = 0
        self._breaker_open_until: float | None = None
        self._load(initial=True)

    # -- loading -------------------------------------------------------------

    def _stat_signature(self):
        stat = os.stat(self.path)
        return (stat.st_mtime_ns, stat.st_size, stat.st_ino)

    def _load(self, *, initial: bool) -> None:
        signature = self._stat_signature()
        model = load_model(self.path)
        sha256 = hash_model_file(self.path)
        version = 1 if initial else self._snapshot.version + 1
        self._snapshot = ModelSnapshot(
            model=model,
            version=version,
            sha256=sha256,
            view_dims=_view_dims(model),
            provenance=chain_summary(read_header(self.path)),
            dtype_policy=_dtype_policy(model),
            approx=_approx_info(model),
        )
        self._signature = signature
        if not initial:
            self.reloads += 1
        # a good load closes the breaker, whatever state it was in
        self._consecutive_failures = 0
        self._breaker_open_until = None

    def current(self) -> ModelSnapshot:
        """The snapshot new batches should compute against."""
        return self._snapshot

    def maybe_reload(self) -> ModelSnapshot:
        """Reload iff the watched file changed; always returns a snapshot.

        A failed reload (missing or unreadable file) keeps the previous
        snapshot and is recorded; the stat signature is left unchanged
        so a subsequent replacement with a good file is retried. While
        the circuit breaker is open, the file is not even stat-ed — the
        previous snapshot serves until the cooldown elapses and one
        half-open probe is allowed through.
        """
        if self._breaker_open_until is not None:
            if self._now() < self._breaker_open_until:
                return self._snapshot
            # cooldown over: fall through as the one half-open probe; a
            # failure below re-opens the breaker for a fresh cooldown
        try:
            signature = self._stat_signature()
        except OSError as error:
            self._record_error(error)
            return self._snapshot
        if signature == self._signature:
            return self._snapshot
        try:
            fault_point("serve.reload")
            self._load(initial=False)
        except Exception as error:
            self._record_error(error)
        return self._snapshot

    def _record_error(self, error: Exception) -> None:
        self.reload_errors += 1
        self.last_error = f"{type(error).__name__}: {error}"
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.failure_threshold:
            self._breaker_open_until = self._now() + self.cooldown_seconds

    @property
    def breaker(self) -> dict:
        """Circuit-breaker state, as ``/modelz`` and ``/healthz`` show it."""
        now = self._now()
        is_open = (
            self._breaker_open_until is not None
            and now < self._breaker_open_until
        )
        return {
            "state": "open" if is_open else "closed",
            "consecutive_failures": self._consecutive_failures,
            "failure_threshold": self.failure_threshold,
            "retry_in_seconds": (
                round(self._breaker_open_until - now, 3) if is_open else None
            ),
        }

    # -- introspection -------------------------------------------------------

    def info(self) -> dict:
        """The ``/modelz`` document (model identity + reload history)."""
        snapshot = self._snapshot
        model = snapshot.model
        document = {
            "path": self.path,
            "version": snapshot.version,
            "sha256": snapshot.sha256,
            "model_type": type(model).__name__,
            "view_dims": (
                None
                if snapshot.view_dims is None
                else list(snapshot.view_dims)
            ),
            "reloads": self.reloads,
            "reload_errors": self.reload_errors,
            "last_error": self.last_error,
            "reload_breaker": self.breaker,
            "provenance": snapshot.provenance,
            "dtype_policy": snapshot.dtype_policy,
            "approx": snapshot.approx,
        }
        if snapshot.is_pipeline:
            document.update(model.describe())
        return document
