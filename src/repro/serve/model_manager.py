"""The serving side of ``repro update``: watch, hash, hot-swap the model.

A deployed model file is replaced *atomically* (``os.replace`` inside
:func:`~repro.api.persistence.write_archive`), so a reader polling the
path can only ever observe a complete old file or a complete new file —
never a torn write. :class:`ModelManager` builds the hot-reload contract
on exactly that guarantee:

* it watches **only** the configured path — the ``MODEL.npz.<rand>.tmp``
  files a saver (or a crashed saver) leaves next to the model are never
  candidates, so a half-written temp file cannot be loaded;
* a cheap ``stat`` signature (mtime_ns, size, inode) decides whether to
  reload; on change the file is re-read, content-hashed (SHA-256) and
  swapped in as a new immutable :class:`ModelSnapshot` with a bumped
  version counter;
* if a replaced file fails to load (e.g. some non-atomic writer
  corrupted it), the manager keeps serving the previous snapshot and
  records the failure for ``/modelz`` — stale beats down.

``maybe_reload`` is called between batches (and from the introspection
endpoints), so in-flight batches always finish on the snapshot they
started with while new arrivals see the new model.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.api.persistence import hash_model_file, load_model
from repro.artifacts import chain_summary, read_header

__all__ = ["ModelManager", "ModelSnapshot"]


@dataclass(frozen=True)
class ModelSnapshot:
    """One immutable loaded model: what a batch computes against."""

    model: object
    version: int
    sha256: str
    view_dims: tuple[int, ...] | None
    #: compact provenance view (chain depth, root/parent hashes) of the
    #: loaded file's header, or ``None`` for pre-provenance models.
    provenance: dict | None = None

    @property
    def is_pipeline(self) -> bool:
        from repro.api.pipeline import MultiviewPipeline

        return isinstance(self.model, MultiviewPipeline)


def _view_dims(model) -> tuple[int, ...] | None:
    """Fitted per-view dimensions, for request validation / ``/modelz``."""
    reducer = getattr(model, "reducer", model)
    dims = getattr(reducer, "_dims", None)
    if dims is None:
        return None
    return tuple(int(dim) for dim in dims)


class ModelManager:
    """Load a model file and hot-swap it when the file is replaced."""

    def __init__(self, path):
        self.path = os.fspath(path)
        self._snapshot: ModelSnapshot | None = None
        self._signature = None
        self.reloads = 0
        self.reload_errors = 0
        self.last_error: str | None = None
        self._load(initial=True)

    # -- loading -------------------------------------------------------------

    def _stat_signature(self):
        stat = os.stat(self.path)
        return (stat.st_mtime_ns, stat.st_size, stat.st_ino)

    def _load(self, *, initial: bool) -> None:
        signature = self._stat_signature()
        model = load_model(self.path)
        sha256 = hash_model_file(self.path)
        version = 1 if initial else self._snapshot.version + 1
        self._snapshot = ModelSnapshot(
            model=model,
            version=version,
            sha256=sha256,
            view_dims=_view_dims(model),
            provenance=chain_summary(read_header(self.path)),
        )
        self._signature = signature
        if not initial:
            self.reloads += 1

    def current(self) -> ModelSnapshot:
        """The snapshot new batches should compute against."""
        return self._snapshot

    def maybe_reload(self) -> ModelSnapshot:
        """Reload iff the watched file changed; always returns a snapshot.

        A failed reload (missing or unreadable file) keeps the previous
        snapshot and is recorded; the stat signature is left unchanged
        so a subsequent replacement with a good file is retried.
        """
        try:
            signature = self._stat_signature()
        except OSError as error:
            self._record_error(error)
            return self._snapshot
        if signature == self._signature:
            return self._snapshot
        try:
            self._load(initial=False)
        except Exception as error:
            self._record_error(error)
        return self._snapshot

    def _record_error(self, error: Exception) -> None:
        self.reload_errors += 1
        self.last_error = f"{type(error).__name__}: {error}"

    # -- introspection -------------------------------------------------------

    def info(self) -> dict:
        """The ``/modelz`` document (model identity + reload history)."""
        snapshot = self._snapshot
        model = snapshot.model
        document = {
            "path": self.path,
            "version": snapshot.version,
            "sha256": snapshot.sha256,
            "model_type": type(model).__name__,
            "view_dims": (
                None
                if snapshot.view_dims is None
                else list(snapshot.view_dims)
            ),
            "reloads": self.reloads,
            "reload_errors": self.reload_errors,
            "last_error": self.last_error,
            "provenance": snapshot.provenance,
        }
        if snapshot.is_pipeline:
            document.update(model.describe())
        return document
