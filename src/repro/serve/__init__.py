"""``repro serve`` — async micro-batched model serving with hot reload.

The serving subsystem the rest of the library was built toward: a saved
model file (PR 2's versioned no-pickle format, PR 5's atomic replace)
served over HTTP by a stdlib-only asyncio server that

* coalesces concurrent ``/transform`` / ``/predict`` requests into
  micro-batches — one BLAS call amortizes many requests, the serving
  analogue of the parallel kernels' win (:mod:`repro.serve.batcher`);
* hot-swaps the model between batches when ``repro update`` atomically
  replaces the file, without dropping a request
  (:mod:`repro.serve.model_manager`);
* maps malformed requests onto the library's own validation taxonomy
  as structured 4xx JSON bodies (:mod:`repro.serve.protocol`).

Start it from a fitted model file::

    python -m repro serve model.npz --port 8100 \
        --batch-window-ms 5 --max-batch 64

and hot-reload it by growing the model in place::

    python -m repro update model.npz --data new_batch.npz
"""

from repro.serve.batcher import (
    LoopClock,
    ManualClock,
    MicroBatcher,
    RequestTimeout,
    ServerDraining,
    ServerOverloaded,
)
from repro.serve.model_manager import ModelManager, ModelSnapshot
from repro.serve.protocol import (
    ProtocolError,
    Request,
    Response,
    decode_views,
)
from repro.serve.server import ServeApp, run_server, serve_forever

__all__ = [
    "LoopClock",
    "ManualClock",
    "MicroBatcher",
    "ModelManager",
    "ModelSnapshot",
    "ProtocolError",
    "Request",
    "RequestTimeout",
    "Response",
    "ServeApp",
    "ServerDraining",
    "ServerOverloaded",
    "decode_views",
    "run_server",
    "serve_forever",
]
