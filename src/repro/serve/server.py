"""The ``repro serve`` application: routes, connections, lifecycle.

:class:`ServeApp` wires the three serving layers together —
:mod:`~repro.serve.protocol` (framing + typed errors),
:mod:`~repro.serve.batcher` (micro-batching), and
:mod:`~repro.serve.model_manager` (hot reload) — behind four routes:

* ``POST /transform`` — project the request's views; returns the
  combined ``(n, m·r)`` representation rows;
* ``POST /predict``  — predicted labels (pipeline models only);
* ``GET /healthz``   — liveness + batcher counters;
* ``GET /modelz``    — model identity: path, version, content hash,
  reducer/classifier, per-view dims, reload history, and the provenance
  chain summary (how the model was created, chain depth, root hash).

Every data response carries its batch metadata (``batch_id``,
``batch_size``, ``model_version``, ``model_hash``), so a client — or a
test — can verify both the micro-batch amortization and that no batch
ever mixes model versions.

``serve_forever`` runs the asyncio server with SIGTERM/SIGINT handlers
that trigger a graceful drain: stop accepting, refuse new work with a
typed 503, flush and finish every parked request, then exit.
"""

from __future__ import annotations

import asyncio
import signal

import math

from repro.exceptions import ServerOverloaded, ValidationError
from repro.serve.batcher import (
    Clock,
    MicroBatcher,
    RequestTimeout,
    ServerDraining,
)
from repro.serve.model_manager import ModelManager
from repro.serve.protocol import (
    DEFAULT_MAX_BODY,
    ProtocolError,
    Request,
    Response,
    decode_views,
    error_response,
    error_status,
    json_response,
    read_request,
)

__all__ = ["ServeApp", "run_server", "serve_forever"]


def _run_transform(snapshot, stacked_views):
    """The one model call of a /transform batch: ``(Σnᵢ, m·r)`` rows."""
    model = snapshot.model
    if hasattr(model, "transform_combined"):
        return model.transform_combined(stacked_views)
    return model.transform(stacked_views)


def _run_predict(snapshot, stacked_views):
    """The one model call of a /predict batch: ``(Σnᵢ,)`` labels."""
    return snapshot.model.predict(stacked_views)


class ServeApp:
    """Route requests into the micro-batchers over a hot-swappable model.

    Parameters
    ----------
    manager:
        The :class:`ModelManager` holding the served model file.
    max_batch, window_seconds, timeout_seconds:
        Micro-batcher settings (see :class:`MicroBatcher`); /transform
        and /predict each get their own batcher so a batch never mixes
        endpoints.
    max_body:
        Request-body byte ceiling (413 above it).
    max_inflight_rows:
        Bounded admission per route: above this many sample rows
        queued + running, new requests get a structured 429 with a
        ``Retry-After`` header while already-admitted work completes.
        ``None`` leaves admission unbounded.
    clock:
        Timing source shared by both batchers; tests inject a
        :class:`~repro.serve.batcher.ManualClock`.
    """

    def __init__(
        self,
        manager: ModelManager,
        *,
        max_batch: int = 32,
        window_seconds: float = 0.005,
        timeout_seconds: float | None = 30.0,
        max_body: int = DEFAULT_MAX_BODY,
        max_inflight_rows: int | None = None,
        clock: Clock | None = None,
    ):
        self.manager = manager
        self.max_body = int(max_body)
        batcher_options = dict(
            max_batch=max_batch,
            window_seconds=window_seconds,
            timeout_seconds=timeout_seconds,
            max_inflight_rows=max_inflight_rows,
            clock=clock,
        )
        self._batchers = {
            "/transform": MicroBatcher(
                _run_transform, manager.maybe_reload, **batcher_options
            ),
            "/predict": MicroBatcher(
                _run_predict, manager.maybe_reload, **batcher_options
            ),
        }
        self._draining = False
        self._writers: set[asyncio.StreamWriter] = set()
        self.requests_served = 0
        self.errors = 0

    # -- routing -------------------------------------------------------------

    async def handle(self, request: Request) -> Response:
        """One request in, one response out — never an unhandled error."""
        try:
            response = await self._route(request)
        except Exception as error:  # typed errors -> structured bodies
            status, error_type = error_status(error)
            self.errors += 1
            response = error_response(
                status,
                error_type,
                str(error),
                headers=getattr(error, "headers", None),
            )
        self.requests_served += 1
        return response

    async def _route(self, request: Request) -> Response:
        if request.path in ("/healthz", "/modelz"):
            if request.method != "GET":
                raise ProtocolError(
                    405, "method-not-allowed",
                    f"{request.path} only supports GET",
                )
            if request.path == "/healthz":
                return json_response(self.health())
            self.manager.maybe_reload()
            return json_response(self.manager.info())
        if request.path in self._batchers:
            if request.method != "POST":
                raise ProtocolError(
                    405, "method-not-allowed",
                    f"{request.path} only supports POST",
                )
            return await self._handle_batch(request)
        raise ProtocolError(
            404, "not-found", f"unknown route {request.path!r}"
        )

    async def _handle_batch(self, request: Request) -> Response:
        if self._draining:
            raise ProtocolError(
                503, "draining", "server is draining; request refused"
            )
        payload = request.json()
        snapshot = self.manager.maybe_reload()
        policy = snapshot.dtype_policy or {}
        views = decode_views(
            payload,
            snapshot.view_dims,
            dtype=policy.get("compute_dtype"),
        )
        if request.path == "/predict" and not hasattr(
            snapshot.model, "predict"
        ):
            raise ValidationError(
                f"{type(snapshot.model).__name__} has no classifier; "
                "/predict needs a pipeline model (fit with --classifier)"
            )
        try:
            result = await self._batchers[request.path].submit(views)
        except RequestTimeout as error:
            raise ProtocolError(503, "timeout", str(error)) from None
        except ServerDraining as error:
            raise ProtocolError(503, "draining", str(error)) from None
        except ServerOverloaded as error:
            raise ProtocolError(
                429,
                "overloaded",
                str(error),
                headers={
                    "Retry-After": str(
                        max(1, math.ceil(error.retry_after))
                    )
                },
            ) from None
        key = "outputs" if request.path == "/transform" else "labels"
        return json_response(
            {
                key: result.output.tolist(),
                "batch_id": result.batch_id,
                "batch_size": result.batch_size,
                "batch_rows": result.batch_rows,
                "model_version": result.snapshot.version,
                "model_hash": result.snapshot.sha256,
            }
        )

    # -- introspection -------------------------------------------------------

    def health(self) -> dict:
        snapshot = self.manager.current()
        load = {
            route.lstrip("/"): batcher.load
            for route, batcher in self._batchers.items()
        }
        breaker = self.manager.breaker
        if self._draining:
            status = "draining"
        elif any(entry["at_capacity"] for entry in load.values()):
            status = "overloaded"
        elif breaker["state"] == "open":
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "model_version": snapshot.version,
            "model_hash": snapshot.sha256,
            "requests_served": self.requests_served,
            "errors": self.errors,
            "load": load,
            "reload_breaker": breaker,
            "batcher": {
                route.lstrip("/"): dict(batcher.stats)
                for route, batcher in self._batchers.items()
            },
        }

    # -- lifecycle -----------------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    async def begin_drain(self) -> None:
        """Refuse new work, flush the queues, finish parked requests."""
        self._draining = True
        await asyncio.gather(
            *(batcher.drain() for batcher in self._batchers.values())
        )

    # -- connection handling -------------------------------------------------

    async def handle_connection(self, reader, writer) -> None:
        """One keep-alive HTTP/1.1 connection, request by request."""
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await read_request(
                        reader, max_body=self.max_body
                    )
                except ProtocolError as error:
                    response = error_response(
                        error.status,
                        error.error_type,
                        str(error),
                        close=error.close,
                    )
                    writer.write(response.encode())
                    await writer.drain()
                    if error.close:
                        break
                    continue
                except (
                    asyncio.IncompleteReadError,
                    ConnectionResetError,
                ):
                    break
                if request is None:
                    break
                response = await self.handle(request)
                # after a drain started, finish this response but do
                # not keep the connection open for more requests
                response.close = response.close or not request.keep_alive
                if self._draining:
                    response.close = True
                writer.write(response.encode())
                await writer.drain()
                if response.close:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()

    def close_idle_connections(self) -> None:
        """Force-close remaining (idle keep-alive) connections."""
        for writer in tuple(self._writers):
            writer.close()


async def serve_forever(
    app: ServeApp,
    host: str = "127.0.0.1",
    port: int = 8100,
    *,
    ready=None,
    install_signal_handlers: bool = True,
) -> None:
    """Run the server until SIGTERM/SIGINT, then drain gracefully.

    ``ready`` (if given) is called with the bound ``(host, port)`` once
    the socket is listening — the CLI prints its startup line from it,
    and tests use it to learn an ephemeral port.
    """
    stop = asyncio.Event()
    server = await asyncio.start_server(app.handle_connection, host, port)
    if install_signal_handlers:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # non-Unix event loops
                pass
    bound = server.sockets[0].getsockname()[:2]
    if ready is not None:
        ready(bound)
    try:
        await stop.wait()
    finally:
        # graceful drain: stop accepting, answer everything parked,
        # then drop whatever connections are still idling.
        server.close()
        await server.wait_closed()
        await app.begin_drain()
        app.close_idle_connections()


def run_server(
    model_path,
    host: str = "127.0.0.1",
    port: int = 8100,
    *,
    max_batch: int = 32,
    window_seconds: float = 0.005,
    timeout_seconds: float | None = 30.0,
    max_body: int = DEFAULT_MAX_BODY,
    max_inflight_rows: int | None = None,
) -> None:
    """Blocking entry point behind ``python -m repro serve``."""
    manager = ModelManager(model_path)
    app = ServeApp(
        manager,
        max_batch=max_batch,
        window_seconds=window_seconds,
        timeout_seconds=timeout_seconds,
        max_body=max_body,
        max_inflight_rows=max_inflight_rows,
    )

    def _ready(bound) -> None:
        snapshot = manager.current()
        print(
            f"serving {model_path} (sha256 {snapshot.sha256[:12]}…) on "
            f"http://{bound[0]}:{bound[1]} — window "
            f"{window_seconds * 1000:g} ms, max batch {max_batch}",
            flush=True,
        )

    asyncio.run(serve_forever(app, host, port, ready=_ready))
