"""Micro-batching: park concurrent requests, flush one model call.

The insight that makes the PR 5 threaded kernels win — one BLAS call
amortizes many inputs — applies directly to serving: ``n`` concurrent
one-sample requests cost nearly the same as one ``n``-sample
``transform``. :class:`MicroBatcher` therefore parks each request in an
async queue and flushes when either

* the queued sample rows reach ``max_batch``, or
* ``window_seconds`` elapse after the first queued request

— whichever comes first. A flush snapshots the current model (so a
hot-reload between flushes never mixes versions *within* a batch),
stacks the per-request views into one ``(d_p, Σnᵢ)`` matrix per view,
runs the model once in a worker thread (NumPy releases the GIL in the
BLAS call, keeping the event loop responsive), and scatters contiguous
row slices back to each waiter.

All timing goes through a :class:`Clock` so the batcher is testable
with a :class:`ManualClock` — deadlines, per-request timeouts, and
drain are exercised deterministically, no ``sleep`` anywhere.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ReproError, ServerOverloaded
from repro.utils.validation import check_positive_int

__all__ = [
    "BatchResult",
    "Clock",
    "LoopClock",
    "ManualClock",
    "MicroBatcher",
    "RequestTimeout",
    "ServerDraining",
    "ServerOverloaded",
]


class RequestTimeout(ReproError):
    """A queued request hit its deadline before any flush picked it up."""


class ServerDraining(ReproError):
    """The batcher is draining (shutdown); new requests are refused."""


# -- clocks ------------------------------------------------------------------


class Clock:
    """Scheduling surface the batcher needs: ``monotonic`` + ``call_later``.

    ``call_later`` returns a handle with a ``cancel()`` method.
    """

    def monotonic(self) -> float:
        raise NotImplementedError

    def call_later(self, delay: float, callback):
        raise NotImplementedError


class LoopClock(Clock):
    """The real clock: delegates to the running asyncio event loop."""

    def monotonic(self) -> float:
        return asyncio.get_running_loop().time()

    def call_later(self, delay: float, callback):
        return asyncio.get_running_loop().call_later(delay, callback)


class _ManualTimer:
    __slots__ = ("when", "callback", "cancelled")

    def __init__(self, when: float, callback):
        self.when = when
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class ManualClock(Clock):
    """A deterministic clock driven explicitly by ``advance()``.

    Timers fire synchronously, in deadline order, from inside
    ``advance`` — tests control exactly when a batch window or a
    request timeout elapses, so timing-dependent behavior is exercised
    without a single real sleep.
    """

    def __init__(self):
        self._now = 0.0
        self._timers: list[tuple[float, int, _ManualTimer]] = []
        self._counter = itertools.count()

    def monotonic(self) -> float:
        return self._now

    def call_later(self, delay: float, callback) -> _ManualTimer:
        timer = _ManualTimer(self._now + max(0.0, delay), callback)
        heapq.heappush(self._timers, (timer.when, next(self._counter), timer))
        return timer

    def advance(self, seconds: float = 0.0) -> None:
        """Move time forward, firing every timer that comes due."""
        self._now += max(0.0, seconds)
        while self._timers and self._timers[0][0] <= self._now:
            _, _, timer = heapq.heappop(self._timers)
            if not timer.cancelled:
                timer.callback()


# -- the batcher -------------------------------------------------------------


@dataclass
class BatchResult:
    """What ``submit`` resolves to: this request's rows + batch metadata."""

    output: np.ndarray
    batch_id: int
    batch_size: int
    batch_rows: int
    snapshot: object


class _Pending:
    __slots__ = ("views", "n_rows", "future", "timeout_handle")

    def __init__(self, views, n_rows, future):
        self.views = views
        self.n_rows = n_rows
        self.future = future
        self.timeout_handle = None


class MicroBatcher:
    """Coalesce concurrent requests into single model calls.

    Parameters
    ----------
    runner:
        ``runner(snapshot, stacked_views) -> array`` — the one model
        call per flush. The returned array's first axis must be the
        sample axis (``transform`` outputs ``(N, k)``, ``predict``
        outputs ``(N,)``), so contiguous row slices scatter back to the
        submitting requests.
    get_snapshot:
        Called once per flush for the model snapshot handed to
        ``runner`` — the hot-reload seam: the model manager checks the
        file here, so a swap lands *between* batches, never inside one.
    max_batch:
        Flush as soon as this many sample rows are queued.
    window_seconds:
        Flush this long after the first request of a batch arrives,
        even if ``max_batch`` was not reached. ``0`` still coalesces
        requests that arrive in the same event-loop turn.
    timeout_seconds:
        Per-request deadline while *queued*; a request picked into a
        running flush is past cancellation and always gets its result.
    max_inflight_rows:
        Bounded admission: total sample rows allowed queued + inside
        running batches. A submit that would exceed it is rejected
        immediately with :class:`ServerOverloaded` (surfaced as a
        structured 429 with ``Retry-After``) — already-admitted
        requests keep their service guarantee; the overload never grows
        the queue. ``None`` (default) leaves admission unbounded.
    clock:
        Timing source; defaults to the event loop's clock.
    """

    def __init__(
        self,
        runner,
        get_snapshot,
        *,
        max_batch: int = 32,
        window_seconds: float = 0.005,
        timeout_seconds: float | None = None,
        max_inflight_rows: int | None = None,
        clock: Clock | None = None,
    ):
        self._runner = runner
        self._get_snapshot = get_snapshot
        self.max_batch = check_positive_int(max_batch, "max_batch")
        if window_seconds < 0:
            raise ValueError(
                f"window_seconds must be >= 0, got {window_seconds}"
            )
        if timeout_seconds is not None and timeout_seconds <= 0:
            raise ValueError(
                f"timeout_seconds must be positive, got {timeout_seconds}"
            )
        self.window_seconds = float(window_seconds)
        self.timeout_seconds = timeout_seconds
        if max_inflight_rows is not None:
            max_inflight_rows = check_positive_int(
                max_inflight_rows, "max_inflight_rows"
            )
        self.max_inflight_rows = max_inflight_rows
        self._clock = clock if clock is not None else LoopClock()
        self._queue: list[_Pending] = []
        self._queued_rows = 0
        self._inflight_rows = 0
        self._window_handle = None
        self._flush_lock = asyncio.Lock()
        self._flush_tasks: set[asyncio.Task] = set()
        self._batch_ids = itertools.count(1)
        self._draining = False
        self.stats = {
            "batches": 0,
            "requests": 0,
            "rows": 0,
            "max_batch_requests": 0,
            "flush_on_size": 0,
            "flush_on_window": 0,
            "flush_on_drain": 0,
            "timeouts": 0,
            "rejected": 0,
        }

    # -- submission ----------------------------------------------------------

    async def submit(self, views: list[np.ndarray]) -> BatchResult:
        """Park one request (``(d_p, n)`` views) until its batch runs."""
        if self._draining:
            raise ServerDraining("server is draining; request refused")
        n_rows = int(views[0].shape[1])
        if (
            self.max_inflight_rows is not None
            and self._queued_rows + self._inflight_rows + n_rows
            > self.max_inflight_rows
        ):
            self.stats["rejected"] += 1
            occupancy = self._queued_rows + self._inflight_rows
            raise ServerOverloaded(
                f"admission bound reached: {occupancy} rows in flight "
                f"+ {n_rows} requested exceeds max_inflight_rows="
                f"{self.max_inflight_rows}; retry shortly",
                # one window is roughly how long a flush takes to free
                # capacity; the HTTP layer rounds this up for the header
                retry_after=max(self.window_seconds, 0.001),
            )
        future = asyncio.get_running_loop().create_future()
        pending = _Pending(views, n_rows, future)
        if self.timeout_seconds is not None:
            pending.timeout_handle = self._clock.call_later(
                self.timeout_seconds, lambda: self._expire(pending)
            )
        first = not self._queue
        self._queue.append(pending)
        self._queued_rows += n_rows
        if self._queued_rows >= self.max_batch:
            self._trigger_flush("flush_on_size")
        elif first:
            self._window_handle = self._clock.call_later(
                self.window_seconds,
                lambda: self._trigger_flush("flush_on_window"),
            )
        return await future

    def _expire(self, pending: _Pending) -> None:
        if pending.future.done() or pending not in self._queue:
            return
        self._queue.remove(pending)
        self._queued_rows -= pending.n_rows
        self.stats["timeouts"] += 1
        pending.future.set_exception(
            RequestTimeout(
                f"request spent more than {self.timeout_seconds}s queued "
                "without being flushed"
            )
        )
        if not self._queue and self._window_handle is not None:
            self._window_handle.cancel()
            self._window_handle = None

    # -- flushing ------------------------------------------------------------

    def _trigger_flush(self, reason: str) -> None:
        """Capture the queued batch *now* and schedule its execution."""
        if self._window_handle is not None:
            self._window_handle.cancel()
            self._window_handle = None
        if not self._queue:
            return
        batch, self._queue = self._queue, []
        # rows move from queued to in-flight at capture time, so the
        # admission bound keeps counting them until their batch finishes
        self._inflight_rows += self._queued_rows
        self._queued_rows = 0
        for pending in batch:
            if pending.timeout_handle is not None:
                pending.timeout_handle.cancel()
        self.stats[reason] += 1
        task = asyncio.get_running_loop().create_task(self._run_batch(batch))
        self._flush_tasks.add(task)
        task.add_done_callback(self._flush_tasks.discard)

    async def _run_batch(self, batch: list[_Pending]) -> None:
        try:
            await self._execute_batch(batch)
        finally:
            # capacity frees only once the batch is fully settled —
            # success or failure — so admission can never oversubscribe
            self._inflight_rows -= sum(p.n_rows for p in batch)

    async def _execute_batch(self, batch: list[_Pending]) -> None:
        # The lock serializes model calls, preserving batch order and
        # bounding compute concurrency to one in-flight batch.
        async with self._flush_lock:
            batch_id = next(self._batch_ids)
            try:
                snapshot = self._get_snapshot()
                n_views = len(batch[0].views)
                stacked = [
                    np.concatenate(
                        [pending.views[p] for pending in batch], axis=1
                    )
                    for p in range(n_views)
                ]
                output = await asyncio.get_running_loop().run_in_executor(
                    None, self._runner, snapshot, stacked
                )
            except Exception as error:
                for pending in batch:
                    if not pending.future.done():
                        pending.future.set_exception(error)
                return
        batch_rows = sum(pending.n_rows for pending in batch)
        self.stats["batches"] += 1
        self.stats["requests"] += len(batch)
        self.stats["rows"] += batch_rows
        self.stats["max_batch_requests"] = max(
            self.stats["max_batch_requests"], len(batch)
        )
        offset = 0
        for pending in batch:
            rows = output[offset:offset + pending.n_rows]
            offset += pending.n_rows
            if not pending.future.done():
                pending.future.set_result(
                    BatchResult(
                        output=rows,
                        batch_id=batch_id,
                        batch_size=len(batch),
                        batch_rows=batch_rows,
                        snapshot=snapshot,
                    )
                )

    async def drain(self) -> None:
        """Refuse new requests, flush the queue, wait for in-flight work."""
        self._draining = True
        self._trigger_flush("flush_on_drain")
        while self._flush_tasks:
            await asyncio.gather(
                *tuple(self._flush_tasks), return_exceptions=True
            )

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def queued_requests(self) -> int:
        return len(self._queue)

    @property
    def load(self) -> dict:
        """Admission-bound occupancy, as ``/healthz`` reports it."""
        occupancy = self._queued_rows + self._inflight_rows
        return {
            "queued_rows": self._queued_rows,
            "inflight_rows": self._inflight_rows,
            "max_inflight_rows": self.max_inflight_rows,
            "at_capacity": (
                self.max_inflight_rows is not None
                and occupancy >= self.max_inflight_rows
            ),
        }
