"""Model persistence: fitted estimators as ``.npz`` payload + JSON header.

A saved model is a single ``np.savez`` archive holding

* ``__repro_header__`` — a JSON document with the format name/version,
  the estimator's registry key and constructor params, and a *schema* of
  its fitted attributes (which are arrays, which are lists of arrays,
  which are plain JSON values);
* one archive entry per fitted array (lists of arrays fan out to
  ``attr.0``, ``attr.1``, …).

``load_model`` rebuilds the estimator through the registry — ``.npz``
plus JSON only, no pickle, so a model file cannot execute code — and
restores the fitted attributes, after which ``transform`` behaves
exactly like the in-memory original. The format is versioned so a
future layout change can refuse (or migrate) old files explicitly
instead of misreading them.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile

import numpy as np

from repro.api.registry import get_estimator_class
from repro.exceptions import ValidationError

__all__ = [
    "MODEL_FORMAT",
    "MODEL_FORMAT_VERSION",
    "PIPELINE_FORMAT",
    "hash_model_file",
    "load_model",
    "save_model",
]

MODEL_FORMAT = "repro-model"
PIPELINE_FORMAT = "repro-pipeline"
#: version 2 (this library): fitted attributes may carry accumulated
#: moment state (``kind: "moments"``) so incremental ``partial_fit``
#: sessions resume across save/load; version-1 files (no moments) load
#: unchanged, older readers refuse version-2 files explicitly.
MODEL_FORMAT_VERSION = 2
_HEADER_KEY = "__repro_header__"


# -- value (de)coding -------------------------------------------------------


def _to_jsonable(value):
    """Plain-JSON form of a scalar/sequence value, or TypeError."""
    if isinstance(value, np.generic):
        value = value.item()
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(item) for item in value]
    raise TypeError(f"not JSON-serializable: {type(value).__name__}")


def _encode_value(attr: str, value, prefix: str):
    """``(schema entry, arrays)`` for one fitted attribute."""
    from repro.core.engine import MomentState

    key = prefix + attr
    if isinstance(value, np.ndarray):
        return {"kind": "array"}, {key: value}
    if isinstance(value, MomentState):
        meta, state_arrays = value.state_dict()
        entry = {
            "kind": "moments",
            "meta": meta,
            "arrays": sorted(state_arrays),
        }
        return entry, {
            f"{key}.{name}": array for name, array in state_arrays.items()
        }
    if (
        isinstance(value, (list, tuple))
        and value
        and all(isinstance(item, np.ndarray) for item in value)
    ):
        arrays = {f"{key}.{i}": item for i, item in enumerate(value)}
        entry = {
            "kind": "arrays",
            "length": len(value),
            "sequence": "tuple" if isinstance(value, tuple) else "list",
        }
        return entry, arrays
    try:
        encoded = _to_jsonable(value)
    except TypeError:
        raise ValidationError(
            f"cannot persist fitted attribute {attr!r} of type "
            f"{type(value).__name__}; add it to the class's "
            "_non_persistent_ tuple if transform does not need it"
        ) from None
    entry = {"kind": "json", "value": encoded}
    if isinstance(value, tuple):
        entry["sequence"] = "tuple"
    return entry, {}


def _decode_value(entry: dict, attr: str, payload, prefix: str):
    key = prefix + attr
    kind = entry.get("kind")
    if kind == "array":
        return payload[key]
    if kind == "arrays":
        items = [payload[f"{key}.{i}"] for i in range(entry["length"])]
        return tuple(items) if entry.get("sequence") == "tuple" else items
    if kind == "moments":
        from repro.core.engine import MomentState

        return MomentState.from_state_dict(
            entry["meta"],
            {name: payload[f"{key}.{name}"] for name in entry["arrays"]},
        )
    if kind == "json":
        value = entry["value"]
        if entry.get("sequence") == "tuple" and isinstance(value, list):
            return tuple(value)
        return value
    raise ValidationError(f"unknown fitted-attribute kind {kind!r} in header")


# -- estimator (de)coding ---------------------------------------------------


def encode_estimator(estimator, prefix: str = "") -> tuple[dict, dict]:
    """``(header fragment, arrays)`` for one estimator (fitted or not).

    Everything in ``vars(estimator)`` that is not a constructor parameter
    is treated as fitted state, minus the class's ``_non_persistent_``
    attributes (derived objects like decomposition results that
    ``transform`` does not need).
    """
    params = estimator.get_params()
    try:
        json.dumps(params)
    except TypeError:
        raise ValidationError(
            f"{type(estimator).__name__} parameters are not "
            "JSON-serializable (e.g. callable kernels or a Generator "
            "random_state); use precomputed-kernel mode / seed integers "
            "to persist this estimator"
        ) from None
    skip = set(params) | set(getattr(type(estimator), "_non_persistent_", ()))
    state = {}
    arrays = {}
    for attr, value in vars(estimator).items():
        if attr in skip:
            continue
        entry, attr_arrays = _encode_value(attr, value, prefix)
        state[attr] = entry
        arrays.update(attr_arrays)
    # vars() rather than getattr: an unregistered *subclass* inherits the
    # parent's registry stamp but must be refused, or it would silently
    # load back as the parent class.
    name = vars(type(estimator)).get("_registry_name_")
    if name is None or get_estimator_class(
        name, type(estimator)._registry_kind_
    ) is not type(estimator):
        raise ValidationError(
            f"{type(estimator).__name__} is not registered; only "
            "registry estimators can be persisted (see repro.api.register)"
        )
    header = {
        "estimator": name,
        "kind": type(estimator)._registry_kind_,
        "params": params,
        "state": state,
    }
    return header, arrays


def decode_estimator(header: dict, payload, prefix: str = ""):
    """Rebuild an estimator from its header fragment and array payload."""
    cls = get_estimator_class(header["estimator"], header.get("kind", "reducer"))
    estimator = cls(**dict(header.get("params", {})))
    for attr, entry in header.get("state", {}).items():
        setattr(estimator, attr, _decode_value(entry, attr, payload, prefix))
    return estimator


# -- archive I/O ------------------------------------------------------------


def write_archive(path, header: dict, arrays: dict) -> None:
    """Write header + arrays to ``path`` exactly (no ``.npz`` appending).

    The write is **atomic**: the archive is fully written to a temporary
    file in the target directory and then ``os.replace``-d into place.
    A crash (or full disk) mid-save can therefore never leave a
    truncated or corrupt file at ``path`` — readers see either the old
    complete model or the new complete model, which is what lets a
    serving process overwrite its model file in place.
    """
    entries = dict(arrays)
    entries[_HEADER_KEY] = np.array(json.dumps(header))
    path = os.fspath(path)
    descriptor, tmp_path = tempfile.mkstemp(
        dir=os.path.dirname(path) or ".",
        prefix=os.path.basename(path) + ".",
        suffix=".tmp",
    )
    try:
        with os.fdopen(descriptor, "wb") as handle:
            np.savez(handle, **entries)
        # mkstemp creates 0o600 files; give the model the permissions a
        # plain open() would have (umask-honoring), so a serving process
        # under another user can still read an overwritten model.
        umask = os.umask(0)
        os.umask(umask)
        os.chmod(tmp_path, 0o666 & ~umask)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def read_archive(path) -> tuple[dict, "np.lib.npyio.NpzFile"]:
    """Read ``(header, payload)`` from a model file, validating the format."""
    payload = np.load(path, allow_pickle=False)
    if _HEADER_KEY not in payload.files:
        payload.close()
        raise ValidationError(
            f"{path!s} is not a repro model file (missing header entry)"
        )
    header = json.loads(str(payload[_HEADER_KEY][()]))
    fmt = header.get("format")
    if fmt not in (MODEL_FORMAT, PIPELINE_FORMAT):
        payload.close()
        raise ValidationError(
            f"{path!s} has unknown format {fmt!r}; expected "
            f"{MODEL_FORMAT!r} or {PIPELINE_FORMAT!r}"
        )
    version = header.get("version")
    if not isinstance(version, int) or version > MODEL_FORMAT_VERSION:
        payload.close()
        raise ValidationError(
            f"{path!s} uses format version {version!r}, newer than this "
            f"library understands (<= {MODEL_FORMAT_VERSION}); upgrade "
            "the library to load it"
        )
    return header, payload


# -- public API -------------------------------------------------------------


def save_model(model, path):
    """Persist an estimator (or a pipeline) to ``path``; returns ``path``.

    Registered estimators are written in the :data:`MODEL_FORMAT` layout;
    :class:`~repro.api.pipeline.MultiviewPipeline` instances delegate to
    their composite :data:`PIPELINE_FORMAT` layout. Either way the file
    is loadable with the single :func:`load_model` entry point.
    """
    from repro.api.pipeline import MultiviewPipeline

    if isinstance(model, MultiviewPipeline):
        return model.save(path)
    header, arrays = encode_estimator(model)
    header = {
        "format": MODEL_FORMAT,
        "version": MODEL_FORMAT_VERSION,
        **header,
    }
    write_archive(path, header, arrays)
    return path


def hash_model_file(path, *, chunk_size: int = 1 << 20) -> str:
    """SHA-256 hex digest of a model file's bytes.

    The content hash is the identity a serving process reports for the
    model it loaded (``/modelz``): because saves are atomic, the hash
    of the file on disk either equals the hash of the loaded model or a
    complete newer model — never a torn intermediate state.
    """
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            block = handle.read(chunk_size)
            if not block:
                break
            digest.update(block)
    return digest.hexdigest()


def load_model(path):
    """Load whatever :func:`save_model` wrote: an estimator or a pipeline."""
    header, payload = read_archive(path)
    with payload:
        if header["format"] == PIPELINE_FORMAT:
            from repro.api.pipeline import MultiviewPipeline

            return MultiviewPipeline._from_archive(header, payload)
        return decode_estimator(header, payload)
