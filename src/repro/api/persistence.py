"""Model persistence: fitted estimators as ``.npz`` payload + JSON header.

A saved model is a single ``np.savez`` archive holding

* ``__repro_header__`` — a JSON document with the format name/version,
  the estimator's registry key and constructor params, and a *schema* of
  its fitted attributes (which are arrays, which are lists of arrays,
  which are plain JSON values);
* one archive entry per fitted array (lists of arrays fan out to
  ``attr.0``, ``attr.1``, …).

``load_model`` rebuilds the estimator through the registry — ``.npz``
plus JSON only, no pickle, so a model file cannot execute code — and
restores the fitted attributes, after which ``transform`` behaves
exactly like the in-memory original. The format is versioned so a
future layout change can refuse (or migrate) old files explicitly
instead of misreading them.

The physical layer (atomic writes, content hashing, verification) lives
in :mod:`repro.artifacts.io` and is shared with the ``.moments`` shard
artifacts of the distributed fit protocol.
"""

from __future__ import annotations

import json

from repro.artifacts.io import (
    HEADER_KEY as _HEADER_KEY,
    file_sha256,
    read_artifact,
    verify_payload,
    write_artifact,
)
from repro.api.registry import get_estimator_class
from repro.exceptions import PersistenceError, ValidationError

import numpy as np

__all__ = [
    "MODEL_FORMAT",
    "MODEL_FORMAT_VERSION",
    "PIPELINE_FORMAT",
    "hash_model_file",
    "load_model",
    "save_model",
]

MODEL_FORMAT = "repro-model"
PIPELINE_FORMAT = "repro-pipeline"
#: version 3 (this library): the header records ``payload_sha256`` (a
#: content hash checked by ``load_model(path, verify=True)`` and
#: ``repro verify``) and may carry a ``provenance`` block (resolved
#: config, input shard hashes, and the parent-model hash chain that
#: ``repro update`` extends). Version-2 files (moments, no hashes) and
#: version-1 files (no moments) load unchanged; older readers refuse
#: version-3 files explicitly.
MODEL_FORMAT_VERSION = 3


# -- value (de)coding -------------------------------------------------------


def _to_jsonable(value):
    """Plain-JSON form of a scalar/sequence value, or TypeError."""
    if isinstance(value, np.generic):
        value = value.item()
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(item) for item in value]
    if isinstance(value, dict):
        if not all(isinstance(key, str) for key in value):
            raise TypeError("dict keys must be strings to persist as JSON")
        return {key: _to_jsonable(item) for key, item in value.items()}
    raise TypeError(f"not JSON-serializable: {type(value).__name__}")


def _encode_value(attr: str, value, prefix: str):
    """``(schema entry, arrays)`` for one fitted attribute."""
    from repro.core.engine import MomentState

    key = prefix + attr
    if isinstance(value, np.ndarray):
        return {"kind": "array"}, {key: value}
    if isinstance(value, MomentState):
        meta, state_arrays = value.state_dict()
        entry = {
            "kind": "moments",
            "meta": meta,
            "arrays": sorted(state_arrays),
        }
        return entry, {
            f"{key}.{name}": array for name, array in state_arrays.items()
        }
    if (
        isinstance(value, (list, tuple))
        and value
        and all(isinstance(item, np.ndarray) for item in value)
    ):
        arrays = {f"{key}.{i}": item for i, item in enumerate(value)}
        entry = {
            "kind": "arrays",
            "length": len(value),
            "sequence": "tuple" if isinstance(value, tuple) else "list",
        }
        return entry, arrays
    try:
        encoded = _to_jsonable(value)
    except TypeError:
        raise ValidationError(
            f"cannot persist fitted attribute {attr!r} of type "
            f"{type(value).__name__}; add it to the class's "
            "_non_persistent_ tuple if transform does not need it"
        ) from None
    entry = {"kind": "json", "value": encoded}
    if isinstance(value, tuple):
        entry["sequence"] = "tuple"
    return entry, {}


def _decode_value(entry: dict, attr: str, payload, prefix: str):
    key = prefix + attr
    kind = entry.get("kind")
    if kind == "array":
        return payload[key]
    if kind == "arrays":
        items = [payload[f"{key}.{i}"] for i in range(entry["length"])]
        return tuple(items) if entry.get("sequence") == "tuple" else items
    if kind == "moments":
        from repro.core.engine import MomentState

        return MomentState.from_state_dict(
            entry["meta"],
            {name: payload[f"{key}.{name}"] for name in entry["arrays"]},
        )
    if kind == "json":
        value = entry["value"]
        if entry.get("sequence") == "tuple" and isinstance(value, list):
            return tuple(value)
        return value
    raise ValidationError(f"unknown fitted-attribute kind {kind!r} in header")


# -- estimator (de)coding ---------------------------------------------------


def encode_estimator(estimator, prefix: str = "") -> tuple[dict, dict]:
    """``(header fragment, arrays)`` for one estimator (fitted or not).

    Everything in ``vars(estimator)`` that is not a constructor parameter
    is treated as fitted state, minus the class's ``_non_persistent_``
    attributes (derived objects like decomposition results that
    ``transform`` does not need).
    """
    params = estimator.get_params()
    try:
        json.dumps(params)
    except TypeError:
        raise ValidationError(
            f"{type(estimator).__name__} parameters are not "
            "JSON-serializable (e.g. callable kernels or a Generator "
            "random_state); use precomputed-kernel mode / seed integers "
            "to persist this estimator"
        ) from None
    skip = set(params) | set(getattr(type(estimator), "_non_persistent_", ()))
    state = {}
    arrays = {}
    for attr, value in vars(estimator).items():
        if attr in skip:
            continue
        entry, attr_arrays = _encode_value(attr, value, prefix)
        state[attr] = entry
        arrays.update(attr_arrays)
    # vars() rather than getattr: an unregistered *subclass* inherits the
    # parent's registry stamp but must be refused, or it would silently
    # load back as the parent class.
    name = vars(type(estimator)).get("_registry_name_")
    if name is None or get_estimator_class(
        name, type(estimator)._registry_kind_
    ) is not type(estimator):
        raise ValidationError(
            f"{type(estimator).__name__} is not registered; only "
            "registry estimators can be persisted (see repro.api.register)"
        )
    header = {
        "estimator": name,
        "kind": type(estimator)._registry_kind_,
        "params": params,
        "state": state,
    }
    return header, arrays


def decode_estimator(header: dict, payload, prefix: str = ""):
    """Rebuild an estimator from its header fragment and array payload."""
    cls = get_estimator_class(header["estimator"], header.get("kind", "reducer"))
    estimator = cls(**dict(header.get("params", {})))
    for attr, entry in header.get("state", {}).items():
        setattr(estimator, attr, _decode_value(entry, attr, payload, prefix))
    return estimator


# -- archive I/O ------------------------------------------------------------


def write_archive(path, header: dict, arrays: dict) -> None:
    """Write header + arrays to ``path`` exactly (no ``.npz`` appending).

    Delegates to :func:`repro.artifacts.io.write_artifact`: the write is
    **atomic** (temporary file + ``os.replace``, so a crash or full disk
    mid-save never leaves a torn file at ``path`` — readers see either
    the old complete model or the new complete model, which is what lets
    a serving process overwrite its model file in place) and the payload
    content hash is recorded in the header as ``payload_sha256``.
    """
    write_artifact(path, header, arrays)


def read_archive(path) -> tuple[dict, "np.lib.npyio.NpzFile"]:
    """Read ``(header, payload)`` from a model file, validating the format."""
    header, payload = read_artifact(path)
    fmt = header.get("format")
    if fmt not in (MODEL_FORMAT, PIPELINE_FORMAT):
        payload.close()
        raise ValidationError(
            f"{path!s} has unknown format {fmt!r}; expected "
            f"{MODEL_FORMAT!r} or {PIPELINE_FORMAT!r}"
        )
    version = header.get("version")
    if not isinstance(version, int) or version > MODEL_FORMAT_VERSION:
        payload.close()
        raise ValidationError(
            f"{path!s} uses format version {version!r}, newer than this "
            f"library understands (<= {MODEL_FORMAT_VERSION}); upgrade "
            "the library to load it"
        )
    return header, payload


# -- public API -------------------------------------------------------------


def save_model(model, path, *, provenance: dict | None = None):
    """Persist an estimator (or a pipeline) to ``path``; returns ``path``.

    Registered estimators are written in the :data:`MODEL_FORMAT` layout;
    :class:`~repro.api.pipeline.MultiviewPipeline` instances delegate to
    their composite :data:`PIPELINE_FORMAT` layout. Either way the file
    is loadable with the single :func:`load_model` entry point. The
    header always records the payload's content hash; ``provenance``
    (see :func:`repro.artifacts.provenance_block`) additionally records
    where the model came from — the resolved config, the input shard
    hashes of a ``repro reduce``, and the parent hash chain a
    ``repro update`` extends.
    """
    from repro.api.pipeline import MultiviewPipeline

    if isinstance(model, MultiviewPipeline):
        return model.save(path, provenance=provenance)
    header, arrays = encode_estimator(model)
    header = {
        "format": MODEL_FORMAT,
        "version": MODEL_FORMAT_VERSION,
        **header,
    }
    if provenance is not None:
        header["provenance"] = dict(provenance)
    write_archive(path, header, arrays)
    return path


def hash_model_file(path, *, chunk_size: int = 1 << 20) -> str:
    """SHA-256 hex digest of a model file's bytes.

    The content hash is the identity a serving process reports for the
    model it loaded (``/modelz``) and the value a child model's
    provenance chain records for its parent: because saves are atomic,
    the hash of the file on disk either equals the hash of the loaded
    model or a complete newer model — never a torn intermediate state.
    """
    return file_sha256(path, chunk_size=chunk_size)


def load_model(path, *, verify: bool = False):
    """Load whatever :func:`save_model` wrote: an estimator or a pipeline.

    With ``verify=True`` the array payload is re-hashed against the
    ``payload_sha256`` recorded in the header before anything is
    decoded, so bit-rot or truncation raises
    :class:`~repro.exceptions.PersistenceError` naming the file instead
    of surfacing as a numpy traceback (or, worse, silently corrupt
    projections). Files written before format v3 record no hash and
    fail verification explicitly.
    """
    header, payload = read_archive(path)
    with payload:
        if verify:
            verify_payload(header, payload, path)
        try:
            if header["format"] == PIPELINE_FORMAT:
                from repro.api.pipeline import MultiviewPipeline

                return MultiviewPipeline._from_archive(header, payload)
            return decode_estimator(header, payload)
        except KeyError as error:
            raise PersistenceError(
                f"{path!s} model payload does not decode (missing entry "
                f"{error}); the file is incomplete or was not written by "
                "this library"
            ) from None
