"""String-keyed estimator registry: names to classes, names to instances.

Every estimator in the library registers itself under a short stable key
(``@register("tcca")``), split into two kinds:

* **reducers** — the multi-view dimension reducers the paper compares
  (TCCA, KTCCA, the CCA family, PCA, DSE, SSMVD, spectral);
* **classifiers** — the downstream learners (RLS, kNN).

``make_reducer("tcca", n_components=5)`` replaces hand-wired imports and
constructor calls; the same keys name estimators in saved-model headers
(:mod:`repro.api.persistence`), configs, and the ``python -m repro fit``
CLI, so "which estimator is this" is a string everywhere a string is
needed.

Registration happens at import time of the estimator modules; lookups
lazily import the built-in modules so ``make_reducer`` works without the
caller importing anything else first.
"""

from __future__ import annotations

import importlib

from repro.exceptions import ValidationError

__all__ = [
    "available_classifiers",
    "available_reducers",
    "classifier_from_config",
    "get_estimator_class",
    "make_classifier",
    "make_reducer",
    "reducer_from_config",
    "register",
]

_KINDS = ("reducer", "classifier")
_REGISTRY: dict[str, dict[str, type]] = {kind: {} for kind in _KINDS}

#: importing these modules registers every built-in estimator.
_BUILTIN_MODULES = (
    "repro.baselines.dse",
    "repro.baselines.pca",
    "repro.baselines.spectral",
    "repro.baselines.ssmvd",
    "repro.cca.cca",
    "repro.cca.kcca",
    "repro.cca.lscca",
    "repro.cca.maxvar",
    "repro.classifiers.knn",
    "repro.classifiers.rls",
    "repro.core.ktcca",
    "repro.core.tcca",
)
_builtins_loaded = False


def _ensure_builtins() -> None:
    global _builtins_loaded
    if not _builtins_loaded:
        # Flag only after every import succeeded: a failed import must
        # surface again on the next lookup, not decay into misleading
        # "unknown reducer" errors (re-registration of the same class is
        # a no-op, so retrying is safe).
        for module in _BUILTIN_MODULES:
            importlib.import_module(module)
        _builtins_loaded = True


def _check_kind(kind: str) -> str:
    if kind not in _KINDS:
        raise ValidationError(
            f"kind must be one of {_KINDS}, got {kind!r}"
        )
    return kind


def register(name: str, *, kind: str = "reducer"):
    """Class decorator registering an estimator under a stable string key.

    Stamps ``_registry_name_`` / ``_registry_kind_`` on the class so
    :meth:`~repro.cca.base.ParamsMixin.to_config` and the persistence
    layer can name it. Re-registering the *same* class under its key is a
    no-op; claiming an existing key with a different class raises.
    """
    _check_kind(kind)
    key = str(name).lower()
    if not key:
        raise ValidationError("registry name must be a non-empty string")

    def decorator(cls: type) -> type:
        existing = _REGISTRY[kind].get(key)
        if existing is not None and existing is not cls:
            raise ValidationError(
                f"{kind} {key!r} is already registered to "
                f"{existing.__name__}; pick a different name"
            )
        _REGISTRY[kind][key] = cls
        cls._registry_name_ = key
        cls._registry_kind_ = kind
        return cls

    return decorator


def get_estimator_class(name: str, kind: str = "reducer") -> type:
    """Resolve a registry key to its estimator class."""
    _check_kind(kind)
    _ensure_builtins()
    try:
        return _REGISTRY[kind][str(name).lower()]
    except KeyError:
        raise ValidationError(
            f"unknown {kind} {name!r}; registered {kind}s: "
            f"{sorted(_REGISTRY[kind])}"
        ) from None


def make_reducer(name: str, **params):
    """Construct a registered multi-view reducer by name."""
    return get_estimator_class(name, "reducer")(**params)


def make_classifier(name: str, **params):
    """Construct a registered classifier by name."""
    return get_estimator_class(name, "classifier")(**params)


def available_reducers() -> list[str]:
    """Sorted registry keys of all reducers."""
    _ensure_builtins()
    return sorted(_REGISTRY["reducer"])


def available_classifiers() -> list[str]:
    """Sorted registry keys of all classifiers."""
    _ensure_builtins()
    return sorted(_REGISTRY["classifier"])


def _from_config(config: dict, kind: str):
    if not isinstance(config, dict) or "estimator" not in config:
        raise ValidationError(
            "config must be a dict with an 'estimator' key "
            "(the output of to_config())"
        )
    cls = get_estimator_class(config["estimator"], kind)
    return cls.from_config(config)


def reducer_from_config(config: dict):
    """Build an unfitted reducer from a ``to_config()`` dict."""
    return _from_config(config, "reducer")


def classifier_from_config(config: dict):
    """Build an unfitted classifier from a ``to_config()`` dict."""
    return _from_config(config, "classifier")
