"""A servable multi-view pipeline: preprocessing → reducer → classifier.

:class:`MultiviewPipeline` is the deployable unit the experiments
hand-assemble today: project the views with a fitted multi-view reducer,
concatenate the per-view projections into the ``(N, m·r)``
representation, and classify. It carries the whole thing through
``fit`` / ``predict`` / ``save`` / ``load``, so a model fitted once can
be shipped as a single file and served — the CLI's
``python -m repro fit … / predict …`` loop is exactly this class.

Only inductive reducers (those with an out-of-sample ``transform``, e.g.
TCCA / CCA / CCA-LS / CCA-MAXVAR) can predict on new data; transductive
ones (DSE, SSMVD, spectral) are rejected at construction.
"""

from __future__ import annotations

import numpy as np

from repro.api.persistence import (
    MODEL_FORMAT_VERSION,
    PIPELINE_FORMAT,
    decode_estimator,
    encode_estimator,
    write_archive,
)
from repro.api.registry import make_classifier, make_reducer
from repro.exceptions import NotFittedError, ValidationError
from repro.parallel.executors import (
    apply_parallel_params,
    check_executor_name,
    check_n_jobs,
)
from repro.utils.preprocessing import unit_scale_views
from repro.utils.validation import check_views

__all__ = ["MultiviewPipeline"]

_REDUCER_PREFIX = "reducer:"
_CLASSIFIER_PREFIX = "classifier:"


class MultiviewPipeline:
    """Compose a multi-view reducer and a classifier into one model.

    Parameters
    ----------
    reducer:
        A registry key (``"tcca"``) or a reducer instance. Must expose
        ``fit_transform_combined`` / ``transform_combined`` (inductive).
    classifier:
        A registry key (``"rls"``, ``"knn"``) or a classifier instance.
    scale_views:
        Normalize every sample of every view to unit norm before the
        reducer (the CAT-style preprocessing; stateless, so it applies
        identically at fit and predict time).
    reducer_params, classifier_params:
        Constructor keywords forwarded to :func:`~repro.api.registry.
        make_reducer` / ``make_classifier`` when the corresponding
        argument is a registry key.
    n_jobs, executor:
        Parallel execution configuration applied to the reducer (see
        :class:`~repro.core.tcca.TCCA`). ``None`` leaves the reducer's
        own setting untouched; a value requires a reducer that accepts
        the corresponding parameter. Policy is configuration — it is
        saved with the pipeline but never changes what a fit computes.
    """

    def __init__(
        self,
        reducer="tcca",
        classifier="rls",
        *,
        scale_views: bool = False,
        reducer_params: dict | None = None,
        classifier_params: dict | None = None,
        n_jobs=None,
        executor: str | None = None,
    ):
        if isinstance(reducer, str):
            reducer = make_reducer(reducer, **dict(reducer_params or {}))
        elif reducer_params:
            raise ValidationError(
                "reducer_params only apply when reducer is a registry name"
            )
        if isinstance(classifier, str):
            classifier = make_classifier(
                classifier, **dict(classifier_params or {})
            )
        elif classifier_params:
            raise ValidationError(
                "classifier_params only apply when classifier is a "
                "registry name"
            )
        for method in ("fit_transform_combined", "transform_combined"):
            if not hasattr(reducer, method):
                raise ValidationError(
                    f"{type(reducer).__name__} has no {method}; the "
                    "pipeline needs an inductive multi-view reducer "
                    "(e.g. tcca, cca, lscca, maxvar)"
                )
        for method in ("fit", "predict"):
            if not hasattr(classifier, method):
                raise ValidationError(
                    f"{type(classifier).__name__} has no {method}; not a "
                    "classifier"
                )
        self.reducer = reducer
        self.classifier = classifier
        self.scale_views = bool(scale_views)
        self.n_jobs = check_n_jobs(n_jobs)
        self.executor = (
            None if executor is None else check_executor_name(executor)
        )
        apply_parallel_params(
            reducer,
            {
                key: value
                for key, value in (("n_jobs", self.n_jobs),
                                   ("executor", self.executor))
                if value is not None
            },
        )

    # -- estimator API ------------------------------------------------------

    def _preprocess(self, views) -> list[np.ndarray]:
        views = check_views(views, min_views=2)
        if self.scale_views:
            views = unit_scale_views(views)
        return views

    def fit(self, views, labels) -> "MultiviewPipeline":
        """Fit reducer and classifier on ``(d_p, N)`` views + ``N`` labels."""
        views = self._preprocess(views)
        labels = self._check_labels(views, labels)
        features = self.reducer.fit_transform_combined(views)
        self.classifier.fit(features, labels)
        self._replay = None
        self.n_views_ = len(views)
        return self

    @staticmethod
    def _check_labels(views, labels) -> np.ndarray:
        labels = np.asarray(labels)
        if labels.shape[0] != views[0].shape[1]:
            raise ValidationError(
                f"got {labels.shape[0]} labels for {views[0].shape[1]} "
                "samples"
            )
        return labels

    def partial_fit(self, views, labels) -> "MultiviewPipeline":
        """Fold a labeled minibatch into the pipeline incrementally.

        The reducer must support ``partial_fit`` (e.g. TCCA): the
        minibatch folds into its accumulated moments and the subspace
        refreshes warm-started. The classifiers are not incremental, so
        the pipeline keeps a labeled replay buffer (every minibatch seen
        by ``partial_fit``, ``O(N_labeled)`` memory) and refits the
        classifier on the re-projected buffer after each refresh — after
        every call the pipeline predicts with a model consistent with
        *all* labeled data seen so far. The buffer is saved with the
        pipeline, so ``python -m repro update`` continues a session
        across processes. (With an implicit-solver reducer, whose own
        moment state also retains the samples, the session therefore
        holds the labeled data twice — acceptable while labeled data is
        the small fraction, which is the incremental serving regime.)
        """
        from repro.core.engine import SampleStore

        views = self._preprocess(views)
        labels = self._check_labels(views, labels)
        if not hasattr(self.reducer, "partial_fit"):
            raise ValidationError(
                f"{type(self.reducer).__name__} has no partial_fit; "
                "incremental pipelines need an incremental reducer "
                "(e.g. tcca)"
            )
        replay = getattr(self, "_replay", None)
        if replay is None:
            replay = (SampleStore(), [])
            self._replay = replay
        store, label_batches = replay
        self.reducer.partial_fit(views)
        store.add(views)
        label_batches.append(labels)
        features = self.reducer.transform_combined(store.views)
        self.classifier.fit(features, np.concatenate(label_batches))
        self.n_views_ = len(views)
        return self

    def _check_fitted(self) -> None:
        if not hasattr(self, "n_views_"):
            raise NotFittedError(
                "MultiviewPipeline must be fitted before use"
            )

    def transform(self, views, *, chunk_size: int | None = None) -> np.ndarray:
        """The ``(N, m·r)`` representation the classifier consumes.

        ``chunk_size`` forwards to reducers whose ``transform`` is
        memory-bounded over sample slices (e.g. TCCA), so projecting a
        very large ``N`` never materializes more than one slice of
        centered intermediates.
        """
        self._check_fitted()
        views = self._preprocess(views)
        if chunk_size is None:
            return self.reducer.transform_combined(views)
        import inspect

        signature = inspect.signature(self.reducer.transform)
        if "chunk_size" not in signature.parameters:
            raise ValidationError(
                f"{type(self.reducer).__name__}.transform does not "
                "support chunk_size"
            )
        return np.hstack(
            self.reducer.transform(views, chunk_size=chunk_size)
        )

    def predict(self, views) -> np.ndarray:
        """Predicted labels for new multi-view samples."""
        self._check_fitted()
        return self.classifier.predict(self.transform(views))

    def score(self, views, labels) -> float:
        """Mean accuracy on the given data."""
        labels = np.asarray(labels)
        return float(np.mean(self.predict(views) == labels))

    # -- introspection ------------------------------------------------------

    @property
    def view_dims(self) -> tuple[int, ...] | None:
        """Fitted per-view feature dimensions, or ``None`` before fit.

        The serving layer validates every request against these, so a
        wrong view count / per-view dimension fails as a typed 4xx
        before the batcher ever stacks the request.
        """
        dims = getattr(self.reducer, "_dims", None)
        if dims is None:
            return None
        return tuple(int(dim) for dim in dims)

    def describe(self) -> dict:
        """Identity summary for serving introspection (``/modelz``)."""
        reducer_name = vars(type(self.reducer)).get(
            "_registry_name_", type(self.reducer).__name__
        )
        classifier_name = vars(type(self.classifier)).get(
            "_registry_name_", type(self.classifier).__name__
        )
        dims = self.view_dims
        return {
            "reducer": reducer_name,
            "classifier": classifier_name,
            "scale_views": self.scale_views,
            "n_views": getattr(self, "n_views_", None),
            "n_components": getattr(
                self.reducer, "n_components", None
            ),
            "view_dims": None if dims is None else list(dims),
        }

    # -- persistence --------------------------------------------------------

    def save(self, path, *, provenance: dict | None = None):
        """Write the whole pipeline to one model file; returns ``path``.

        ``provenance`` (see :func:`repro.artifacts.provenance_block`)
        records where the model came from in the header — resolved
        config, reduce input shards, and the parent hash chain.
        """
        reducer_header, arrays = encode_estimator(
            self.reducer, prefix=_REDUCER_PREFIX
        )
        classifier_header, classifier_arrays = encode_estimator(
            self.classifier, prefix=_CLASSIFIER_PREFIX
        )
        header = {
            "format": PIPELINE_FORMAT,
            "version": MODEL_FORMAT_VERSION,
            "scale_views": self.scale_views,
            "n_jobs": self.n_jobs,
            "executor": self.executor,
            "n_views": getattr(self, "n_views_", None),
            "reducer": reducer_header,
            "classifier": classifier_header,
        }
        replay_arrays = {}
        replay = getattr(self, "_replay", None)
        if replay is not None and replay[0].n_samples > 0:
            store, label_batches = replay
            for index, view in enumerate(store.views):
                replay_arrays[f"replay:view{index}"] = view
            replay_arrays["replay:labels"] = np.concatenate(label_batches)
            header["replay_views"] = len(store.dims)
        if provenance is not None:
            header["provenance"] = dict(provenance)
        write_archive(
            path, header, {**arrays, **classifier_arrays, **replay_arrays}
        )
        return path

    @classmethod
    def _from_archive(cls, header: dict, payload) -> "MultiviewPipeline":
        pipeline = cls(
            reducer=decode_estimator(
                header["reducer"], payload, prefix=_REDUCER_PREFIX
            ),
            classifier=decode_estimator(
                header["classifier"], payload, prefix=_CLASSIFIER_PREFIX
            ),
            scale_views=bool(header.get("scale_views", False)),
            n_jobs=header.get("n_jobs"),
            executor=header.get("executor"),
        )
        if header.get("n_views") is not None:
            pipeline.n_views_ = int(header["n_views"])
        if header.get("replay_views"):
            from repro.core.engine import SampleStore

            store = SampleStore()
            store.add(
                [
                    payload[f"replay:view{index}"]
                    for index in range(int(header["replay_views"]))
                ]
            )
            pipeline._replay = (store, [payload["replay:labels"]])
        return pipeline

    @classmethod
    def load(cls, path) -> "MultiviewPipeline":
        """Load a pipeline written by :meth:`save` (or :func:`save_model`)."""
        from repro.api.persistence import load_model

        model = load_model(path)
        if not isinstance(model, cls):
            raise ValidationError(
                f"{path!s} holds a bare {type(model).__name__}, not a "
                "pipeline; use repro.api.load_model"
            )
        return model
