"""Unified estimator API: registry, config round-trips, persistence, serving.

This package turns the reproduction's estimators into deployable
artifacts:

* :mod:`repro.api.registry` — every estimator under a stable string key:
  ``make_reducer("tcca", n_components=5)``, ``make_classifier("rls")``;
* :mod:`repro.api.persistence` — ``save_model`` / ``load_model``: fitted
  arrays in an ``.npz`` payload plus a versioned JSON header with the
  config and fitted-attribute schema (no pickle);
* :mod:`repro.api.pipeline` — :class:`MultiviewPipeline`, the servable
  preprocessing → reducer → classifier unit behind
  ``python -m repro fit / transform / predict``.

Fit once, save, serve::

    from repro.api import MultiviewPipeline, load_model

    pipeline = MultiviewPipeline(
        "tcca", "rls", reducer_params={"n_components": 5, "random_state": 0}
    ).fit(train_views, train_labels)
    pipeline.save("model.npz")

    served = load_model("model.npz")
    predictions = served.predict(new_views)
"""

from repro.api.persistence import (
    MODEL_FORMAT,
    MODEL_FORMAT_VERSION,
    PIPELINE_FORMAT,
    hash_model_file,
    load_model,
    save_model,
)
from repro.api.pipeline import MultiviewPipeline
from repro.api.registry import (
    available_classifiers,
    available_reducers,
    classifier_from_config,
    get_estimator_class,
    make_classifier,
    make_reducer,
    reducer_from_config,
    register,
)

__all__ = [
    "MODEL_FORMAT",
    "MODEL_FORMAT_VERSION",
    "MultiviewPipeline",
    "PIPELINE_FORMAT",
    "available_classifiers",
    "available_reducers",
    "classifier_from_config",
    "get_estimator_class",
    "hash_model_file",
    "load_model",
    "make_classifier",
    "make_reducer",
    "reducer_from_config",
    "register",
    "save_model",
]
