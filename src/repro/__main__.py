"""Command-line entry point: list and run the registered experiments.

Usage::

    python -m repro list
    python -m repro run tab2
    python -m repro run fig6 --override n_samples=500 --override n_runs=5
"""

from __future__ import annotations

import argparse
import ast
import sys
import warnings

from repro.exceptions import ConvergenceWarning
from repro.experiments import EXPERIMENTS, run_experiment


def _parse_override(text: str) -> tuple[str, object]:
    """Parse a ``key=value`` override; the value is a Python literal."""
    key, separator, raw = text.partition("=")
    if not separator or not key:
        raise argparse.ArgumentTypeError(
            f"override must look like key=value, got {text!r}"
        )
    try:
        value = ast.literal_eval(raw)
    except (SyntaxError, ValueError):
        value = raw  # fall back to the raw string
    return key, value


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Reproduce the tables and figures of 'Tensor Canonical "
            "Correlation Analysis for Multi-view Dimension Reduction' "
            "(Luo et al., ICDE 2016)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list registered experiments")

    run_parser = subparsers.add_parser(
        "run", help="run one experiment and print its table/series"
    )
    run_parser.add_argument(
        "experiment_id", choices=sorted(EXPERIMENTS), metavar="experiment",
        help="experiment id (fig3..fig10, tab1..tab4)",
    )
    run_parser.add_argument(
        "--override",
        action="append",
        default=[],
        type=_parse_override,
        metavar="key=value",
        help="driver keyword override (repeatable), e.g. n_samples=500",
    )
    return parser


def main(argv=None) -> int:
    """CLI body; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        width = max(len(spec.experiment_id) for spec in EXPERIMENTS.values())
        for experiment_id in sorted(EXPERIMENTS):
            spec = EXPERIMENTS[experiment_id]
            print(
                f"{experiment_id:<{width}}  {spec.paper_artifact:<9} "
                f"{spec.description}"
            )
        return 0

    warnings.simplefilter("ignore", ConvergenceWarning)
    result = run_experiment(args.experiment_id, **dict(args.override))
    if result.panels:
        print(result.series())
        print()
        print(result.table())
    if result.notes:
        print(result.notes)
    return 0


if __name__ == "__main__":
    sys.exit(main())
