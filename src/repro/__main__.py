"""Command-line entry point: experiments, plus the fit/serve model loop.

Experiment reproduction::

    python -m repro list
    python -m repro run tab2
    python -m repro run fig6 --override n_samples=500 --override n_runs=5

Model artifacts (the precursor to a serving layer) — fit an estimator or
a reducer→classifier pipeline, save it as a single ``.npz`` model file,
and transform / predict from the saved file later::

    python -m repro estimators
    python -m repro fit tcca --synthetic 240 --param n_components=3 \
        --classifier rls --out model.npz
    python -m repro transform model.npz --synthetic 240
    python -m repro predict model.npz --synthetic 240

Incremental serving loop — fit with ``--incremental`` so the model file
carries its accumulated moment state, then fold new data into it without
ever refitting from scratch (warm-started refresh)::

    python -m repro fit tcca --incremental --synthetic 400 --out model.npz
    python -m repro update model.npz --data new_batch.npz
    python -m repro update model.npz --data later_batch.npz --out v2.npz

Distributed fitting — workers each make one pass over their shard of
the data and write a ``.moments`` artifact (sufficient statistics only,
no shared memory); the reducer merges the shards in deterministic order
and finalizes the exact same model a single-process fit would produce::

    python -m repro accumulate tcca --data all.npz --shard 0/3 --out part-0.moments
    python -m repro accumulate tcca --data all.npz --shard 1/3 --out part-1.moments
    python -m repro accumulate tcca --data all.npz --shard 2/3 --out part-2.moments
    python -m repro reduce part-*.moments --out model.npz
    python -m repro inspect model.npz
    python -m repro verify model.npz

Every model header records a payload content hash (``repro verify``
and ``load_model(path, verify=True)`` detect bit-rot/truncation) and a
provenance block — the resolved config, the input shard hashes of a
reduce, and the parent hash chain that every ``repro update`` extends
(``repro verify MODEL --parents v1.npz v0.npz`` walks the chain).

Serving — an asyncio HTTP server that micro-batches concurrent
``/transform`` / ``/predict`` requests into single model calls and
hot-reloads the model whenever ``repro update`` atomically replaces the
file (``/healthz`` and ``/modelz`` report liveness, version, the
model's content hash, and its provenance chain)::

    python -m repro serve model.npz --port 8100 --batch-window-ms 5

Data files (``--data``) are ``.npz`` archives with one ``(d_p, N)`` array
per view under ``view0``, ``view1``, … and an optional length-``N``
``labels`` array; ``--synthetic N --seed S`` draws the same
:func:`~repro.datasets.synthetic.make_multiview_latent` dataset on both
the fit and the predict side of the loop.
"""

from __future__ import annotations

import argparse
import ast
import json
import os
import re
import sys
import warnings

import inspect

import numpy as np

from repro.exceptions import ConvergenceWarning, ReproError
from repro.experiments import EXPERIMENTS, run_experiment


def _positive_int(text: str) -> int:
    """Argparse type for strictly positive integers (e.g. --chunk-size)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _jobs_int(text: str) -> int:
    """Argparse type for --jobs: an integer >= 1, or -1 for all cores."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value != -1 and value < 1:
        raise argparse.ArgumentTypeError(
            f"must be >= 1 (or -1 for all cores), got {value}"
        )
    return value


def _add_parallel_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared --jobs / --executor execution-policy options."""
    parser.add_argument(
        "--jobs",
        type=_jobs_int,
        default=None,
        metavar="N",
        help="worker count of the parallel execution layer (-1 = all "
        "cores; default: the REPRO_JOBS environment variable, else "
        "serial)",
    )
    parser.add_argument(
        "--executor",
        choices=("auto", "serial", "thread", "process"),
        default=None,
        help="execution policy for parallel work (default auto: threads "
        "when more than one worker)",
    )


def _parse_override(text: str) -> tuple[str, object]:
    """Parse a ``key=value`` override; the value is a Python literal."""
    key, separator, raw = text.partition("=")
    if not separator or not key:
        raise argparse.ArgumentTypeError(
            f"override must look like key=value, got {text!r}"
        )
    try:
        value = ast.literal_eval(raw)
    except (SyntaxError, ValueError):
        value = raw  # fall back to the raw string
    return key, value


def _add_data_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared --data / --synthetic data-source options."""
    parser.add_argument(
        "--data",
        metavar="FILE.npz",
        help="npz archive with view0..viewN (d_p, N) arrays and an "
        "optional 'labels' array",
    )
    parser.add_argument(
        "--synthetic",
        type=_positive_int,
        metavar="N",
        help="draw an N-sample synthetic latent-factor dataset instead "
        "of reading --data (deterministic given --seed)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="random seed of --synthetic (default 0)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Reproduce the tables and figures of 'Tensor Canonical "
            "Correlation Analysis for Multi-view Dimension Reduction' "
            "(Luo et al., ICDE 2016) — and fit, save, and serve its "
            "estimators as model files."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list registered experiments")

    run_parser = subparsers.add_parser(
        "run", help="run one experiment and print its table/series"
    )
    run_parser.add_argument(
        "experiment_id", choices=sorted(EXPERIMENTS), metavar="experiment",
        help="experiment id (fig3..fig10, tab1..tab4)",
    )
    run_parser.add_argument(
        "--override",
        action="append",
        default=[],
        type=_parse_override,
        metavar="key=value",
        help="driver keyword override (repeatable), e.g. n_samples=500",
    )
    run_parser.add_argument(
        "--stream",
        action="store_true",
        help=(
            "complexity experiments (fig7-fig10) only: also measure the "
            "out-of-core TCCA-STREAM path so time/peak-memory is reported "
            "for both the batch and streaming covariance engines"
        ),
    )
    run_parser.add_argument(
        "--chunk-size",
        type=_positive_int,
        default=None,
        metavar="N",
        help="minibatch size of the streaming path (implies --stream)",
    )
    run_parser.add_argument(
        "--solver",
        choices=("dense", "implicit", "auto"),
        default=None,
        help=(
            "complexity experiments (fig7-fig10) only: 'implicit'/'auto' "
            "also measure the TCCA-IMPLICIT row — TCCA solved tensor-free, "
            "never materializing the ∏d_p covariance tensor"
        ),
    )
    run_parser.add_argument(
        "--jobs",
        type=_jobs_int,
        default=None,
        metavar="N",
        help="set REPRO_JOBS for this run, so every TCCA/KTCCA fit inside "
        "the experiment uses N parallel workers (-1 = all cores)",
    )

    subparsers.add_parser(
        "estimators",
        help="list the registered reducers and classifiers",
    )

    fit_parser = subparsers.add_parser(
        "fit",
        help="fit a registered reducer (or reducer+classifier pipeline) "
        "and save it as a model file",
    )
    fit_parser.add_argument(
        "reducer", metavar="reducer",
        help="registry key of the multi-view reducer, e.g. tcca "
        "(see `python -m repro estimators`)",
    )
    _add_data_arguments(fit_parser)
    fit_parser.add_argument(
        "--param",
        action="append",
        default=[],
        type=_parse_override,
        metavar="key=value",
        help="reducer constructor parameter (repeatable), "
        "e.g. n_components=5",
    )
    fit_parser.add_argument(
        "--classifier",
        metavar="NAME",
        help="also fit a classifier on the reduced representation and "
        "save a servable pipeline (requires labels)",
    )
    fit_parser.add_argument(
        "--classifier-param",
        action="append",
        default=[],
        type=_parse_override,
        metavar="key=value",
        help="classifier constructor parameter (repeatable)",
    )
    fit_parser.add_argument(
        "--incremental",
        action="store_true",
        help="fit via partial_fit so the saved model carries its "
        "accumulated moments and can be grown later with `repro update`",
    )
    fit_parser.add_argument(
        "--precision",
        choices=("float64", "mixed", "float32"),
        default=None,
        metavar="POLICY",
        help="dtype policy of the fit: float64 (default), mixed "
        "(float32 sweeps over float64 moments with a float64 polish), "
        "or float32; recorded in the model header so load/serve "
        "reproduce it (shorthand for --param precision=POLICY)",
    )
    fit_parser.add_argument(
        "--approx",
        choices=("exact", "nystrom", "rff"),
        default=None,
        metavar="MODE",
        help="kernel approximation of a ktcca fit: exact (default), "
        "nystrom landmarks, or rff random Fourier features — the "
        "approximate modes fit a streaming TCCA on (k, N) feature maps "
        "(shorthand for --param approx=MODE)",
    )
    fit_parser.add_argument(
        "--n-features",
        type=_positive_int,
        default=None,
        metavar="K",
        help="feature-map width k of an approximate ktcca fit "
        "(shorthand for --param n_features=K)",
    )
    _add_parallel_arguments(fit_parser)
    fit_parser.add_argument(
        "--out",
        required=True,
        metavar="MODEL.npz",
        help="where to write the model file",
    )

    accumulate_parser = subparsers.add_parser(
        "accumulate",
        help="one-pass moment accumulation over (a shard of) a dataset; "
        "writes a .moments shard artifact for `repro reduce`",
    )
    accumulate_parser.add_argument(
        "reducer", metavar="reducer", nargs="?", default="tcca",
        help="registry key of the moment-based reducer (default tcca); "
        "every shard of one reduce must use the same reducer and params",
    )
    _add_data_arguments(accumulate_parser)
    accumulate_parser.add_argument(
        "--param",
        action="append",
        default=[],
        type=_parse_override,
        metavar="key=value",
        help="reducer constructor parameter (repeatable); must match "
        "across the shards of one reduce",
    )
    accumulate_parser.add_argument(
        "--precision",
        choices=("float64", "mixed", "float32"),
        default=None,
        metavar="POLICY",
        help="dtype policy of the accumulation (shorthand for "
        "--param precision=POLICY); every shard of one reduce must "
        "use the same policy — mismatched accumulate dtypes refuse "
        "to merge",
    )
    accumulate_parser.add_argument(
        "--shard",
        metavar="I/K",
        default=None,
        help="accumulate only the I-th of K contiguous sample shards "
        "(zero-based, e.g. 0/3); default: the whole dataset",
    )
    _add_parallel_arguments(accumulate_parser)
    accumulate_parser.add_argument(
        "--checkpoint-every",
        type=_positive_int,
        default=None,
        metavar="ROWS",
        help="write a resumable OUT.ckpt checkpoint after every ROWS "
        "ingested rows, so a killed worker restarts from its last "
        "chunk boundary with --resume instead of row 0 "
        "(default: no checkpointing)",
    )
    accumulate_parser.add_argument(
        "--resume",
        action="store_true",
        help="pick up at the OUT.ckpt checkpoint left by a killed run "
        "(bit-identical to an uninterrupted pass; starts fresh when no "
        "checkpoint exists); implies checkpointing",
    )
    accumulate_parser.add_argument(
        "--out",
        required=True,
        metavar="PART.moments",
        help="where to write the shard artifact",
    )

    reduce_parser = subparsers.add_parser(
        "reduce",
        help="merge .moments shards (any order) and finalize the exact "
        "single-process model; writes a model file with shard provenance",
    )
    reduce_parser.add_argument(
        "shards", nargs="+", metavar="PART.moments",
        help="shard artifacts written by `repro accumulate`; merged in "
        "deterministic order regardless of how they are listed here",
    )
    reduce_parser.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the payload-hash integrity check of the input shards",
    )
    reduce_parser.add_argument(
        "--on-corrupt",
        choices=("fail", "skip"),
        default="fail",
        help="what an integrity failure costs: 'fail' (default) aborts "
        "naming every corrupt shard; 'skip' quarantines them, reduces "
        "the healthy remainder, and records the sidelined files in the "
        "model's provenance block",
    )
    reduce_parser.add_argument(
        "--out",
        required=True,
        metavar="MODEL.npz",
        help="where to write the reduced model file",
    )

    inspect_parser = subparsers.add_parser(
        "inspect",
        help="print a JSON summary of a model or .moments artifact "
        "(format, config, sample counts, hashes, provenance chain)",
    )
    inspect_parser.add_argument(
        "artifact", metavar="FILE",
        help="model file or .moments shard to describe",
    )

    verify_parser = subparsers.add_parser(
        "verify",
        help="check an artifact's payload against its recorded content "
        "hash; with --parents, also verify the provenance chain",
    )
    verify_parser.add_argument(
        "artifact", metavar="FILE",
        help="model file or .moments shard to verify",
    )
    verify_parser.add_argument(
        "--parents",
        nargs="+",
        default=[],
        metavar="MODEL.npz",
        help="ancestor model files (any order); each must hash to its "
        "link in the artifact's provenance chain",
    )

    update_parser = subparsers.add_parser(
        "update",
        help="fold new data into a saved incremental model "
        "(partial_fit: merge moments, re-whiten, warm-started re-solve)",
    )
    update_parser.add_argument(
        "model", metavar="MODEL.npz",
        help="model file written by `fit --incremental` (or a previous "
        "update)",
    )
    _add_data_arguments(update_parser)
    _add_parallel_arguments(update_parser)
    update_parser.add_argument(
        "--out",
        metavar="MODEL.npz",
        help="where to write the updated model (default: overwrite the "
        "input file)",
    )

    serve_parser = subparsers.add_parser(
        "serve",
        help="serve a saved model over HTTP with async micro-batched "
        "inference and hot reload on `repro update`",
    )
    serve_parser.add_argument(
        "model", metavar="MODEL.npz",
        help="model file written by fit (hot-reloaded when the file is "
        "atomically replaced, e.g. by `repro update`)",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default "
        "127.0.0.1)",
    )
    serve_parser.add_argument(
        "--port", type=int, default=8100,
        help="bind port (default 8100; 0 picks a free port)",
    )
    serve_parser.add_argument(
        "--batch-window-ms", type=float, default=5.0, metavar="MS",
        help="micro-batch window: how long the first queued request "
        "waits for company before its batch flushes (default 5)",
    )
    serve_parser.add_argument(
        "--max-batch", type=_positive_int, default=32, metavar="N",
        help="flush a batch as soon as it holds N sample rows "
        "(default 32)",
    )
    serve_parser.add_argument(
        "--timeout-s", type=float, default=30.0, metavar="S",
        help="per-request queueing deadline in seconds (default 30)",
    )
    serve_parser.add_argument(
        "--max-body-mb", type=float, default=8.0, metavar="MB",
        help="request body ceiling; larger payloads get a 413 "
        "(default 8)",
    )
    serve_parser.add_argument(
        "--max-inflight-rows", type=_positive_int, default=None,
        metavar="N",
        help="bounded admission: above N sample rows queued + running "
        "per route, new requests get a structured 429 with Retry-After "
        "while admitted work completes (default: unbounded)",
    )

    transform_parser = subparsers.add_parser(
        "transform",
        help="project data with a saved model and report/save the "
        "combined representation",
    )
    transform_parser.add_argument(
        "model", metavar="MODEL.npz", help="model file written by fit"
    )
    _add_data_arguments(transform_parser)
    transform_parser.add_argument(
        "--out",
        metavar="FILE.npy",
        help="save the (N, m*r) representation as a .npy array",
    )

    predict_parser = subparsers.add_parser(
        "predict",
        help="predict labels with a saved pipeline model",
    )
    predict_parser.add_argument(
        "model", metavar="MODEL.npz",
        help="pipeline model file (fit with --classifier)",
    )
    _add_data_arguments(predict_parser)
    predict_parser.add_argument(
        "--out",
        metavar="FILE.npy",
        help="save the predicted labels as a .npy array",
    )
    return parser


def _load_dataset(args, parser: argparse.ArgumentParser):
    """``(views, labels-or-None)`` from --data or --synthetic."""
    if (args.data is None) == (args.synthetic is None):
        parser.error("exactly one of --data / --synthetic is required")
    if args.synthetic is not None:
        from repro.datasets import make_multiview_latent

        data = make_multiview_latent(
            n_samples=args.synthetic, random_state=args.seed
        )
        return data.views, data.labels
    with np.load(args.data, allow_pickle=False) as payload:
        view_keys = sorted(
            (key for key in payload.files if re.fullmatch(r"view\d+", key)),
            key=lambda key: int(key[4:]),
        )
        if not view_keys:
            parser.error(
                f"{args.data} holds no view0..viewN arrays; expected the "
                "multi-view npz layout"
            )
        views = [payload[key] for key in view_keys]
        labels = payload["labels"] if "labels" in payload.files else None
    return views, labels


def _save_array(path: str, array: np.ndarray) -> None:
    """np.save without the silent ``.npy`` suffix appending."""
    with open(path, "wb") as handle:
        np.save(handle, array)


def _command_estimators() -> int:
    from repro.api import (
        available_classifiers,
        available_reducers,
        get_estimator_class,
    )

    print("reducers:")
    for name in available_reducers():
        cls = get_estimator_class(name, "reducer")
        print(f"  {name:<10} {cls.__name__}")
    print("classifiers:")
    for name in available_classifiers():
        cls = get_estimator_class(name, "classifier")
        print(f"  {name:<10} {cls.__name__}")
    return 0


def _parallel_updates(args) -> dict:
    """The --jobs / --executor values as estimator parameter updates."""
    updates = {}
    if getattr(args, "jobs", None) is not None:
        updates["n_jobs"] = args.jobs
    if getattr(args, "executor", None) is not None:
        updates["executor"] = args.executor
    return updates


def _apply_parallel_updates(estimator, updates, parser) -> None:
    """Set --jobs / --executor on an estimator, or fail with a clear error."""
    from repro.parallel import apply_parallel_params

    try:
        apply_parallel_params(estimator, updates)
    except ReproError as error:
        parser.error(str(error))


def _source_description(args) -> str:
    """A human-readable provenance tag for the --data/--synthetic source."""
    if args.synthetic is not None:
        return f"synthetic:{args.synthetic}:seed{args.seed}"
    return os.path.basename(args.data)


def _reducer_params(args, parser: argparse.ArgumentParser) -> dict:
    """Merge ``--param`` overrides with the dedicated flag shorthands."""
    params = dict(args.param)
    for name, flag in (
        ("precision", "--precision"),
        ("approx", "--approx"),
        ("n_features", "--n-features"),
    ):
        value = getattr(args, name, None)
        if value is None:
            continue
        if name in params and params[name] != value:
            parser.error(
                f"{flag} {value} conflicts with --param "
                f"{name}={params[name]}"
            )
        params[name] = value
    return params


def _command_accumulate(args, parser: argparse.ArgumentParser) -> int:
    from repro.artifacts import (
        accumulate_views,
        parse_shard_spec,
        save_moments,
    )

    views, _labels = _load_dataset(args, parser)
    shard = None if args.shard is None else parse_shard_spec(args.shard)
    params = _reducer_params(args, parser)
    params.update(_parallel_updates(args))
    source = _source_description(args)
    checkpointing = args.resume or args.checkpoint_every is not None
    progress = None
    if checkpointing:
        from repro.reliability import (
            accumulate_views_checkpointed,
            checkpoint_path_for,
            discard_checkpoint,
        )

        ckpt = checkpoint_path_for(args.out)
        moments, resolved, progress = accumulate_views_checkpointed(
            views,
            estimator=args.reducer,
            params=params,
            shard=shard,
            checkpoint_path=ckpt,
            checkpoint_every=args.checkpoint_every or 4096,
            resume=args.resume,
            source=source,
        )
    else:
        moments, resolved = accumulate_views(
            views, estimator=args.reducer, params=params, shard=shard
        )
    digest = save_moments(
        moments,
        args.out,
        estimator=args.reducer,
        params=resolved,
        shard=(
            None if shard is None else {"index": shard[0], "count": shard[1]}
        ),
        source=source,
    )
    if checkpointing:
        # The shard artifact now supersedes its checkpoint; a stale .ckpt
        # would make a later --resume re-emit already-reduced rows.
        discard_checkpoint(ckpt)
    bounds = "" if shard is None else f" (shard {shard[0]}/{shard[1]})"
    if progress is not None and progress["resumed_at"]:
        print(
            f"resumed at row {progress['resumed_at']}/"
            f"{progress['total_rows']} from {ckpt}"
        )
    print(
        f"accumulated {moments.n_samples} samples{bounds} into "
        f"{args.reducer} moments -> {args.out} [sha256 {digest[:16]}…]"
    )
    return 0


def _command_reduce(args, parser: argparse.ArgumentParser) -> int:
    from repro.api import save_model
    from repro.artifacts import provenance_block, reduce_shards

    model, report = reduce_shards(
        args.shards, verify=not args.no_verify, on_corrupt=args.on_corrupt
    )
    quarantined = report.get("quarantined") or []
    provenance = provenance_block(
        "reduce",
        config=report["params"],
        shards=report["shards"],
        quarantined=quarantined,
    )
    save_model(model, args.out, provenance=provenance)
    for entry in quarantined:
        print(f"quarantined {entry['name']}: {entry['error']}")
    print(
        f"reduced {report['n_shards']} shards "
        f"({report['n_samples']} samples total) into "
        f"{report['estimator']} -> {args.out}"
    )
    return 0


def _header_dtype_policy(header: dict) -> dict | None:
    """The recorded ``dtype_policy_`` of a model header, if any.

    Looks in the model's own fitted state and, for pipeline headers, in
    the embedded reducer fragment. Models saved before the policy
    existed return ``None`` (implicitly all-float64).
    """
    for fragment in (header, header.get("reducer") or {}):
        entry = (fragment.get("state") or {}).get("dtype_policy_")
        if isinstance(entry, dict) and entry.get("kind") == "json":
            return entry.get("value")
    return None


def _format_dtype_policy(policy: dict) -> str:
    return (
        f"compute={policy.get('compute_dtype')} "
        f"accumulate={policy.get('accumulate_dtype')} "
        f"polish={'yes' if policy.get('polish') else 'no'}"
    )


def _command_inspect(args, parser: argparse.ArgumentParser) -> int:
    from repro.artifacts import MOMENTS_FORMAT, chain_summary, read_header

    header = read_header(args.artifact)
    summary = {
        "path": args.artifact,
        "format": header.get("format"),
        "version": header.get("version"),
        "payload_sha256": header.get("payload_sha256"),
    }
    if header.get("format") == MOMENTS_FORMAT:
        summary.update(
            estimator=header.get("estimator"),
            params=header.get("params"),
            dims=header.get("dims"),
            n_samples=header.get("n_samples"),
            shard=header.get("shard"),
            source=header.get("source"),
        )
    else:
        for key in ("estimator", "kind", "params", "reducer", "classifier"):
            if key in header:
                value = header[key]
                # pipeline headers nest whole estimator fragments; keep
                # the identity, drop the fitted-state schema noise.
                if isinstance(value, dict) and "state" in value:
                    value = {
                        k: v for k, v in value.items() if k != "state"
                    }
                summary[key] = value
        dtype_policy = _header_dtype_policy(header)
        if dtype_policy is not None:
            summary["dtype_policy"] = dtype_policy
        summary["provenance"] = chain_summary(header)
    print(json.dumps(summary, indent=2))
    return 0


def _command_verify(args, parser: argparse.ArgumentParser) -> int:
    from repro.artifacts import (
        MOMENTS_FORMAT,
        load_moments,
        read_artifact,
        verify_chain,
        verify_payload,
    )

    header, payload = read_artifact(args.artifact)
    with payload:
        digest = verify_payload(header, payload, args.artifact)
    if header.get("format") == MOMENTS_FORMAT:
        load_moments(args.artifact)  # full decode: state must rebuild too
        if args.parents:
            parser.error("--parents only applies to model files")
    print(f"payload OK    {args.artifact} [sha256 {digest[:16]}…]")
    if header.get("format") != MOMENTS_FORMAT:
        dtype_policy = _header_dtype_policy(header)
        if dtype_policy is not None:
            print(
                f"dtype policy  {_format_dtype_policy(dtype_policy)}"
            )
        chain = (header.get("provenance") or {}).get("parents") or []
        if args.parents:
            verified = verify_chain(header, args.parents, args.artifact)
            for record in verified:
                created = record["created"] or "?"
                print(
                    f"ancestor OK   {record['path']} "
                    f"[{created}, sha256 {record['sha256'][:16]}…]"
                )
            print(
                f"chain OK      {len(verified)} generation(s) verified"
            )
        elif chain:
            print(
                f"chain         {len(chain)} ancestor(s) recorded "
                "(pass --parents to verify them)"
            )
    return 0


def _command_fit(args, parser: argparse.ArgumentParser) -> int:
    from repro.api import MultiviewPipeline, make_reducer, save_model
    from repro.artifacts import provenance_block

    views, labels = _load_dataset(args, parser)
    reducer = make_reducer(args.reducer, **_reducer_params(args, parser))
    _apply_parallel_updates(reducer, _parallel_updates(args), parser)
    if getattr(type(reducer), "_single_view_", False):
        parser.error(
            f"{args.reducer!r} is a single-view estimator; the fit "
            "command feeds a multi-view dataset — use a multi-view "
            "reducer (e.g. tcca, cca, lscca, maxvar, dse, ssmvd)"
        )
    if args.incremental and not hasattr(reducer, "partial_fit"):
        parser.error(
            f"{args.reducer!r} has no partial_fit; --incremental needs an "
            "incremental reducer (e.g. tcca)"
        )
    if args.classifier is not None:
        if labels is None:
            parser.error(
                "--classifier needs labels (a 'labels' array in --data, "
                "or --synthetic data)"
            )
        model = MultiviewPipeline(
            reducer,
            args.classifier,
            classifier_params=dict(args.classifier_param),
        )
        if args.incremental:
            model.partial_fit(views, labels)
        else:
            model.fit(views, labels)
        kind = f"pipeline[{args.reducer} -> {args.classifier}]"
    else:
        if args.classifier_param:
            parser.error("--classifier-param requires --classifier")
        model = (
            reducer.partial_fit(views)
            if args.incremental
            else reducer.fit(views)
        )
        kind = args.reducer
    provenance = provenance_block(
        "fit",
        config=reducer.get_params(),
        source=_source_description(args),
    )
    save_model(model, args.out, provenance=provenance)
    n = views[0].shape[1]
    mode = " (incremental)" if args.incremental else ""
    print(
        f"fitted {kind} on {len(views)} views x {n} samples{mode} "
        f"-> {args.out}"
    )
    return 0


def _command_update(args, parser: argparse.ArgumentParser) -> int:
    from repro.api import MultiviewPipeline, load_model, save_model
    from repro.artifacts import parent_link, provenance_block, read_header

    views, labels = _load_dataset(args, parser)
    # The chain link must capture the parent file as it is *now* — the
    # save below may overwrite it in place.
    parent_header = read_header(args.model)
    link = parent_link(args.model, parent_header)
    parents = list(
        (parent_header.get("provenance") or {}).get("parents") or []
    )
    parents.append(link)
    model = load_model(args.model)
    updates = _parallel_updates(args)
    if isinstance(model, MultiviewPipeline):
        if labels is None:
            parser.error(
                "updating a pipeline model needs labels (a 'labels' array "
                "in --data, or --synthetic data)"
            )
        reducer = model.reducer
        if getattr(reducer, "moments_", None) is None:
            parser.error(
                f"{args.model} was not fitted incrementally; refit it "
                "with `repro fit --incremental` to make it updatable"
            )
        _apply_parallel_updates(reducer, updates, parser)
        model.partial_fit(views, labels)
        moments = reducer.moments_
    else:
        if not hasattr(model, "partial_fit"):
            parser.error(
                f"{type(model).__name__} models cannot be updated "
                "incrementally"
            )
        if getattr(model, "moments_", None) is None:
            parser.error(
                f"{args.model} was not fitted incrementally; refit it "
                "with `repro fit --incremental` to make it updatable"
            )
        _apply_parallel_updates(model, updates, parser)
        model.partial_fit(views)
        moments = model.moments_
        reducer = model
    out = args.out or args.model
    provenance = provenance_block(
        "update",
        config=reducer.get_params(),
        source=_source_description(args),
        parents=parents,
    )
    save_model(model, out, provenance=provenance)
    result = getattr(reducer, "decomposition_result_", None)
    sweeps = "" if result is None else f" in {result.n_iterations} sweeps"
    print(
        f"folded {views[0].shape[1]} new samples into {args.model} "
        f"({moments.n_samples} accumulated){sweeps} -> {out}"
    )
    return 0


def _command_serve(args, parser: argparse.ArgumentParser) -> int:
    from repro.serve import run_server

    if args.port < 0 or args.port > 65535:
        parser.error(f"--port must be in [0, 65535], got {args.port}")
    if args.batch_window_ms < 0:
        parser.error(
            f"--batch-window-ms must be >= 0, got {args.batch_window_ms}"
        )
    if args.timeout_s <= 0:
        parser.error(f"--timeout-s must be positive, got {args.timeout_s}")
    if args.max_body_mb <= 0:
        parser.error(
            f"--max-body-mb must be positive, got {args.max_body_mb}"
        )
    try:
        run_server(
            args.model,
            args.host,
            args.port,
            max_batch=args.max_batch,
            window_seconds=args.batch_window_ms / 1000.0,
            timeout_seconds=args.timeout_s,
            max_body=int(args.max_body_mb * 1024 * 1024),
            max_inflight_rows=args.max_inflight_rows,
        )
    except KeyboardInterrupt:
        pass
    print("server drained and stopped", flush=True)
    return 0


def _command_transform(args, parser: argparse.ArgumentParser) -> int:
    from repro.api import MultiviewPipeline, load_model

    views, _labels = _load_dataset(args, parser)
    model = load_model(args.model)
    if isinstance(model, MultiviewPipeline):
        representation = model.transform(views)
    elif hasattr(model, "transform_combined"):
        representation = model.transform_combined(views)
    else:
        print(
            f"error: {type(model).__name__} has no combined multi-view "
            "transform (transductive or single-view estimator)",
            file=sys.stderr,
        )
        return 2
    print(
        f"transformed {representation.shape[0]} samples -> "
        f"{representation.shape[1]} dimensions"
    )
    if args.out:
        _save_array(args.out, representation)
        print(f"saved representation -> {args.out}")
    return 0


def _command_predict(args, parser: argparse.ArgumentParser) -> int:
    from repro.api import MultiviewPipeline, load_model

    views, labels = _load_dataset(args, parser)
    model = load_model(args.model)
    if not isinstance(model, MultiviewPipeline):
        print(
            f"error: {args.model} holds a bare {type(model).__name__}; "
            "predict needs a pipeline model (fit with --classifier)",
            file=sys.stderr,
        )
        return 2
    predictions = model.predict(views)
    print(f"predicted {predictions.shape[0]} labels")
    if labels is not None:
        accuracy = float(np.mean(predictions == np.asarray(labels)))
        print(f"accuracy: {accuracy:.4f}")
    if args.out:
        _save_array(args.out, np.asarray(predictions))
        print(f"saved predictions -> {args.out}")
    return 0


def main(argv=None) -> int:
    """CLI body; returns the process exit code."""
    from repro.reliability import install_from_env

    # Arm any REPRO_FAULTS plan before dispatch so fault-injection specs
    # reach worker subprocesses spawned by the command (the env var is
    # inherited; each process installs its own plan).
    install_from_env()
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "run":
        driver_params = inspect.signature(
            EXPERIMENTS[args.experiment_id].driver
        ).parameters
        if (
            args.stream or args.chunk_size is not None
        ) and "stream" not in driver_params:
            parser.error(
                f"--stream/--chunk-size only apply to experiments whose "
                f"driver supports streaming (fig7-fig10), not "
                f"{args.experiment_id!r}"
            )
        if args.solver is not None and "solver" not in driver_params:
            parser.error(
                f"--solver only applies to experiments whose driver "
                f"supports solver selection (fig7-fig10), not "
                f"{args.experiment_id!r}"
            )
    if args.command == "list":
        width = max(len(spec.experiment_id) for spec in EXPERIMENTS.values())
        for experiment_id in sorted(EXPERIMENTS):
            spec = EXPERIMENTS[experiment_id]
            print(
                f"{experiment_id:<{width}}  {spec.paper_artifact:<9} "
                f"{spec.description}"
            )
        return 0
    if args.command == "estimators":
        return _command_estimators()
    if args.command in (
        "fit",
        "update",
        "serve",
        "transform",
        "predict",
        "accumulate",
        "reduce",
        "inspect",
        "verify",
    ):
        handler = {
            "fit": _command_fit,
            "update": _command_update,
            "serve": _command_serve,
            "transform": _command_transform,
            "predict": _command_predict,
            "accumulate": _command_accumulate,
            "reduce": _command_reduce,
            "inspect": _command_inspect,
            "verify": _command_verify,
        }[args.command]
        try:
            return handler(args, parser)
        except (ReproError, OSError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2

    warnings.simplefilter("ignore", ConvergenceWarning)
    overrides = dict(args.override)
    # --stream / --chunk-size are sugar for the complexity drivers'
    # keywords; only forwarded when given so other drivers are unaffected.
    # A bare --chunk-size implies --stream (it configures nothing else).
    if args.stream or args.chunk_size is not None:
        overrides["stream"] = True
    if args.chunk_size is not None:
        overrides["chunk_size"] = args.chunk_size
    if args.solver is not None:
        overrides["solver"] = args.solver
    if args.jobs is not None:
        # REPRO_JOBS is the n_jobs=None default of every estimator, so
        # setting it parallelizes each fit inside the experiment without
        # the drivers having to thread a parameter through — scoped to
        # this run so programmatic main() calls leak nothing.
        previous = os.environ.get("REPRO_JOBS")
        os.environ["REPRO_JOBS"] = str(args.jobs)
        try:
            result = run_experiment(args.experiment_id, **overrides)
        finally:
            if previous is None:
                del os.environ["REPRO_JOBS"]
            else:
                os.environ["REPRO_JOBS"] = previous
    else:
        result = run_experiment(args.experiment_id, **overrides)
    if result.panels:
        print(result.series())
        print()
        print(result.table())
    if result.notes:
        print(result.notes)
    return 0


if __name__ == "__main__":
    sys.exit(main())
