"""Command-line entry point: list and run the registered experiments.

Usage::

    python -m repro list
    python -m repro run tab2
    python -m repro run fig6 --override n_samples=500 --override n_runs=5
"""

from __future__ import annotations

import argparse
import ast
import sys
import warnings

import inspect

from repro.exceptions import ConvergenceWarning
from repro.experiments import EXPERIMENTS, run_experiment


def _positive_int(text: str) -> int:
    """Argparse type for strictly positive integers (e.g. --chunk-size)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _parse_override(text: str) -> tuple[str, object]:
    """Parse a ``key=value`` override; the value is a Python literal."""
    key, separator, raw = text.partition("=")
    if not separator or not key:
        raise argparse.ArgumentTypeError(
            f"override must look like key=value, got {text!r}"
        )
    try:
        value = ast.literal_eval(raw)
    except (SyntaxError, ValueError):
        value = raw  # fall back to the raw string
    return key, value


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Reproduce the tables and figures of 'Tensor Canonical "
            "Correlation Analysis for Multi-view Dimension Reduction' "
            "(Luo et al., ICDE 2016)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list registered experiments")

    run_parser = subparsers.add_parser(
        "run", help="run one experiment and print its table/series"
    )
    run_parser.add_argument(
        "experiment_id", choices=sorted(EXPERIMENTS), metavar="experiment",
        help="experiment id (fig3..fig10, tab1..tab4)",
    )
    run_parser.add_argument(
        "--override",
        action="append",
        default=[],
        type=_parse_override,
        metavar="key=value",
        help="driver keyword override (repeatable), e.g. n_samples=500",
    )
    run_parser.add_argument(
        "--stream",
        action="store_true",
        help=(
            "complexity experiments (fig7-fig10) only: also measure the "
            "out-of-core TCCA-STREAM path so time/peak-memory is reported "
            "for both the batch and streaming covariance engines"
        ),
    )
    run_parser.add_argument(
        "--chunk-size",
        type=_positive_int,
        default=None,
        metavar="N",
        help="minibatch size of the streaming path (implies --stream)",
    )
    return parser


def main(argv=None) -> int:
    """CLI body; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "run" and (args.stream or args.chunk_size is not None):
        driver = EXPERIMENTS[args.experiment_id].driver
        if "stream" not in inspect.signature(driver).parameters:
            parser.error(
                f"--stream/--chunk-size only apply to experiments whose "
                f"driver supports streaming (fig7-fig10), not "
                f"{args.experiment_id!r}"
            )
    if args.command == "list":
        width = max(len(spec.experiment_id) for spec in EXPERIMENTS.values())
        for experiment_id in sorted(EXPERIMENTS):
            spec = EXPERIMENTS[experiment_id]
            print(
                f"{experiment_id:<{width}}  {spec.paper_artifact:<9} "
                f"{spec.description}"
            )
        return 0

    warnings.simplefilter("ignore", ConvergenceWarning)
    overrides = dict(args.override)
    # --stream / --chunk-size are sugar for the complexity drivers'
    # keywords; only forwarded when given so other drivers are unaffected.
    # A bare --chunk-size implies --stream (it configures nothing else).
    if args.stream or args.chunk_size is not None:
        overrides["stream"] = True
    if args.chunk_size is not None:
        overrides["chunk_size"] = args.chunk_size
    result = run_experiment(args.experiment_id, **overrides)
    if result.panels:
        print(result.series())
        print()
        print(result.table())
    if result.notes:
        print(result.notes)
    return 0


if __name__ == "__main__":
    sys.exit(main())
