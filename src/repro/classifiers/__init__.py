"""Downstream learners used by the paper's evaluation protocol.

* :class:`~repro.classifiers.rls.RLSClassifier` — regularized least squares
  with γ = 10⁻² and an appended bias feature (SecStr / Ads experiments).
* :class:`~repro.classifiers.knn.KNNClassifier` — k-nearest neighbors with
  majority voting (web image annotation experiments).
* score-averaging / majority-vote combiners for the (AVG) method variants.
"""

from repro.classifiers.rls import RLSClassifier
from repro.classifiers.knn import KNNClassifier
from repro.classifiers.combination import (
    average_score_predict,
    majority_vote_predict,
)

__all__ = [
    "KNNClassifier",
    "RLSClassifier",
    "average_score_predict",
    "majority_vote_predict",
]
