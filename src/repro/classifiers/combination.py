"""Prediction combiners for the (AVG)-style method variants.

The paper combines the ``m(m-1)/2`` two-view CCA subsets either by
averaging predicted scores (RLS-based experiments) or by majority voting
over predicted labels (kNN-based experiments).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError

__all__ = ["average_score_predict", "majority_vote_predict"]


def average_score_predict(classifiers, feature_sets) -> np.ndarray:
    """Average the decision scores of fitted classifiers, then decide.

    Parameters
    ----------
    classifiers:
        Fitted classifiers exposing ``decision_function`` and
        ``predict_from_scores`` over *identical* class sets.
    feature_sets:
        One feature matrix per classifier (same sample count).
    """
    classifiers = list(classifiers)
    feature_sets = list(feature_sets)
    if not classifiers or len(classifiers) != len(feature_sets):
        raise ValidationError(
            "need one feature set per classifier and at least one of each"
        )
    reference = classifiers[0].classes_
    scores = None
    for classifier, features in zip(classifiers, feature_sets):
        if not np.array_equal(classifier.classes_, reference):
            raise ValidationError(
                "all classifiers must share the same class set"
            )
        current = np.asarray(classifier.decision_function(features))
        scores = current if scores is None else scores + current
    scores = scores / len(classifiers)
    return classifiers[0].predict_from_scores(scores)


def majority_vote_predict(classifiers, feature_sets) -> np.ndarray:
    """Majority vote over the label predictions of fitted classifiers.

    Ties are broken in favor of the earliest classifier's prediction.
    """
    classifiers = list(classifiers)
    feature_sets = list(feature_sets)
    if not classifiers or len(classifiers) != len(feature_sets):
        raise ValidationError(
            "need one feature set per classifier and at least one of each"
        )
    all_predictions = [
        np.asarray(classifier.predict(features))
        for classifier, features in zip(classifiers, feature_sets)
    ]
    stacked = np.stack(all_predictions, axis=0)  # (n_classifiers, N)
    n_samples = stacked.shape[1]
    out = np.empty(n_samples, dtype=stacked.dtype)
    for column in range(n_samples):
        votes = stacked[:, column]
        values, counts = np.unique(votes, return_counts=True)
        winners = values[counts == counts.max()]
        if winners.shape[0] == 1:
            out[column] = winners[0]
        else:
            winner_set = set(winners.tolist())
            for vote in votes:  # earliest classifier wins ties
                if vote in winner_set:
                    out[column] = vote
                    break
    return out
