"""Regularized least squares classification (the paper's base learner).

Section 5.1: ``argmin_w (1/N_l) Σ_n (w^T x_n - y_n)² + γ ‖w‖²`` with
``γ = 10⁻²`` and a constant feature of 1 appended for the bias. Binary
labels map to ±1 targets; multi-class uses one-vs-rest with argmax over the
per-class scores.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import register
from repro.cca.base import ParamsMixin
from repro.exceptions import NotFittedError, ValidationError

__all__ = ["RLSClassifier"]


@register("rls", kind="classifier")
class RLSClassifier(ParamsMixin):
    """One-vs-rest ridge regression classifier on ``(N, d)`` sample rows.

    Parameters
    ----------
    gamma:
        Ridge weight γ (the paper fixes ``10⁻²``).
    add_bias:
        Append the constant-1 feature of the paper's setup.

    Attributes
    ----------
    classes_:
        Sorted unique training labels.
    coef_:
        ``(d + bias, n_classes)`` weight matrix (a single column when the
        problem is binary).
    """

    def __init__(self, gamma: float = 1e-2, *, add_bias: bool = True):
        if gamma < 0.0:
            raise ValidationError(f"gamma must be >= 0, got {gamma}")
        self.gamma = float(gamma)
        self.add_bias = bool(add_bias)

    def _design(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ValidationError(
                f"features must be (N, d), got ndim={features.ndim}"
            )
        if self.add_bias:
            ones = np.ones((features.shape[0], 1))
            features = np.hstack([features, ones])
        return features

    def fit(self, features, labels) -> "RLSClassifier":
        """Fit on ``(N, d)`` features and length-``N`` labels."""
        design = self._design(features)
        labels = np.asarray(labels)
        if labels.ndim != 1 or labels.shape[0] != design.shape[0]:
            raise ValidationError(
                "labels must be 1-D with one entry per sample; got shape "
                f"{labels.shape} for {design.shape[0]} samples"
            )
        self.classes_ = np.unique(labels)
        if self.classes_.shape[0] < 2:
            raise ValidationError(
                "need at least two classes in the training labels"
            )
        n, d = design.shape
        # Targets: +1 for the class, -1 for the rest; binary keeps a single
        # column for the second (positive) class.
        if self.classes_.shape[0] == 2:
            targets = np.where(labels == self.classes_[1], 1.0, -1.0)[:, None]
        else:
            targets = np.where(
                labels[:, None] == self.classes_[None, :], 1.0, -1.0
            )
        gram = design.T @ design / n + self.gamma * np.eye(d)
        rhs = design.T @ targets / n
        self.coef_ = np.linalg.solve(gram, rhs)
        return self

    def decision_function(self, features) -> np.ndarray:
        """Raw scores: ``(N,)`` for binary, ``(N, n_classes)`` otherwise."""
        if not hasattr(self, "coef_"):
            raise NotFittedError("RLSClassifier must be fitted first")
        design = self._design(features)
        if design.shape[1] != self.coef_.shape[0]:
            raise ValidationError(
                f"features have {design.shape[1]} columns (incl. bias) but "
                f"the model was fitted with {self.coef_.shape[0]}"
            )
        scores = design @ self.coef_
        if self.classes_.shape[0] == 2:
            return scores[:, 0]
        return scores

    def predict(self, features) -> np.ndarray:
        """Predicted labels."""
        scores = self.decision_function(features)
        return self.predict_from_scores(scores)

    def predict_from_scores(self, scores) -> np.ndarray:
        """Map (possibly averaged) scores back to class labels."""
        if not hasattr(self, "classes_"):
            raise NotFittedError("RLSClassifier must be fitted first")
        scores = np.asarray(scores, dtype=np.float64)
        if self.classes_.shape[0] == 2:
            return np.where(scores >= 0.0, self.classes_[1], self.classes_[0])
        return self.classes_[np.argmax(scores, axis=1)]

    def score(self, features, labels) -> float:
        """Mean accuracy on the given data."""
        labels = np.asarray(labels)
        return float(np.mean(self.predict(features) == labels))
