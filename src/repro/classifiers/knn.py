"""k-nearest-neighbor classifier (the paper's web-image-annotation learner).

Euclidean distances on ``(N, d)`` sample rows, majority vote over the ``k``
nearest training samples with ties broken by the closest neighbor among the
tied classes. The paper tunes ``k ∈ {1, …, 10}`` on the validation split.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import register
from repro.cca.base import ParamsMixin
from repro.exceptions import NotFittedError, ValidationError
from repro.utils.validation import check_positive_int

__all__ = ["KNNClassifier"]


@register("knn", kind="classifier")
class KNNClassifier(ParamsMixin):
    """Majority-vote kNN on row-sample feature matrices.

    Parameters
    ----------
    n_neighbors:
        ``k``; capped at the training-set size during ``fit``.
    """

    def __init__(self, n_neighbors: int = 1):
        self.n_neighbors = check_positive_int(n_neighbors, "n_neighbors")

    def fit(self, features, labels) -> "KNNClassifier":
        """Store the ``(N, d)`` training features and labels."""
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels)
        if features.ndim != 2:
            raise ValidationError(
                f"features must be (N, d), got ndim={features.ndim}"
            )
        if labels.ndim != 1 or labels.shape[0] != features.shape[0]:
            raise ValidationError(
                "labels must be 1-D with one entry per sample; got shape "
                f"{labels.shape} for {features.shape[0]} samples"
            )
        self._train = features
        self._labels = labels
        self.classes_ = np.unique(labels)
        self.k_ = min(self.n_neighbors, features.shape[0])
        return self

    def _neighbor_ids(self, features: np.ndarray) -> np.ndarray:
        sq_train = np.sum(self._train**2, axis=1)[None, :]
        sq_test = np.sum(features**2, axis=1)[:, None]
        distances = sq_test + sq_train - 2.0 * features @ self._train.T
        order = np.argsort(distances, axis=1, kind="stable")
        return order[:, : self.k_]

    def predict(self, features) -> np.ndarray:
        """Majority-vote labels for ``(M, d)`` query rows."""
        if not hasattr(self, "_train"):
            raise NotFittedError("KNNClassifier must be fitted first")
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[1] != self._train.shape[1]:
            raise ValidationError(
                "query features must be (M, d) with d matching training "
                f"data; got {features.shape} for d={self._train.shape[1]}"
            )
        neighbor_ids = self._neighbor_ids(features)
        neighbor_labels = self._labels[neighbor_ids]
        predictions = np.empty(features.shape[0], dtype=self._labels.dtype)
        for row in range(features.shape[0]):
            votes = neighbor_labels[row]
            values, counts = np.unique(votes, return_counts=True)
            winners = values[counts == counts.max()]
            if winners.shape[0] == 1:
                predictions[row] = winners[0]
            else:
                # Tie: the nearest neighbor whose label is among the tied
                # classes decides (neighbors are distance-sorted).
                winner_set = set(winners.tolist())
                for label in votes:
                    if label in winner_set:
                        predictions[row] = label
                        break
        return predictions

    def score(self, features, labels) -> float:
        """Mean accuracy on the given data."""
        labels = np.asarray(labels)
        return float(np.mean(self.predict(features) == labels))
