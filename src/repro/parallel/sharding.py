"""Stream sharding and map-reduce accumulation — the parallel ingest path.

The sample axis of every statistic TCCA accumulates is purely additive,
and the streaming accumulators (:mod:`repro.streaming.covariance`,
:class:`repro.core.engine.MomentState`) all expose an **exact**
``merge()``. That makes moment accumulation an embarrassingly parallel
map-reduce: split the chunk sequence of a
:class:`~repro.streaming.views.ViewStream` into shards
(:func:`shard_stream`), accumulate each shard independently on a worker,
and reduce with ``merge()`` (:func:`accumulate_parallel`). Because the
merge is exact in exact arithmetic, the reduced state matches the
single-pass state to floating-point round-off *regardless of shard count
or order* — parallelism never changes what is computed, only when.

Shards are contiguous blocks of whole chunks, so the union of the
shards' chunk sequences is exactly the parent's chunk sequence.
:class:`~repro.streaming.views.ArrayViewStream` shards slice the
underlying arrays directly — under a process executor each worker is
shipped only its own slice. Other stream types are wrapped in a
:class:`StreamShard`, which produces only its own chunks when the
parent supports random chunk access (``chunk_at``, e.g.
:class:`~repro.streaming.views.GeneratorViewStream`) and otherwise
replays the parent pass and keeps its block (such shards re-generate
the chunks *before* their block; cost, not correctness).
"""

from __future__ import annotations

import pickle
from functools import partial

from repro.exceptions import ValidationError
from repro.parallel.executors import ExecutionPolicy, SerialExecutor
from repro.streaming.views import (
    ArrayViewStream,
    ViewStream,
    _chunk_bounds,
    as_view_stream,
    iter_validated_chunks,
)
from repro.utils.validation import check_positive_int

__all__ = [
    "StreamShard",
    "accumulate_parallel",
    "parallel_chunk_size",
    "shard_stream",
]


def parallel_chunk_size(
    n_samples: int,
    n_workers: int,
    *,
    chunks_per_worker: int = 4,
    min_chunk: int = 64,
) -> int:
    """A chunk size giving each worker a few chunks of meaningful width.

    Small enough that ``n_workers`` contiguous shards all get work (with
    ``chunks_per_worker`` chunks each for load balance), large enough
    (``min_chunk``) that per-chunk BLAS calls stay efficient.
    """
    n_samples = check_positive_int(n_samples, "n_samples")
    n_workers = check_positive_int(n_workers, "n_workers")
    target = -(-n_samples // (n_workers * max(1, int(chunks_per_worker))))
    return max(min(min_chunk, n_samples), target)


class StreamShard(ViewStream):
    """One contiguous block of whole chunks of a parent stream.

    Yields the parent's chunk indices in ``[chunk_lo, chunk_hi)``. When
    the parent supports random chunk access (a ``chunk_at(index, start,
    stop)`` method, e.g. :class:`~repro.streaming.views.
    GeneratorViewStream`) and the block's sample bounds are known, only
    the shard's own chunks are ever produced; otherwise the parent pass
    is replayed and chunks before the block are skipped (stopping as
    soon as the block is done). The shard advertises the exact sample
    count of its block, so :func:`~repro.streaming.views.
    iter_validated_chunks` validates it like any stream; an empty block
    (``chunk_lo >= chunk_hi``) is a legal shard that yields nothing.
    """

    def __init__(self, parent: ViewStream, chunk_lo: int, chunk_hi: int,
                 n_samples: int, bounds=None):
        self._dims = tuple(parent.dims)
        # An empty block needs no parent — and must not hold one: a
        # process worker would otherwise deserialize the whole parent
        # dataset just to yield nothing.
        self._parent = parent if chunk_lo < chunk_hi else None
        self._chunk_lo = int(chunk_lo)
        self._chunk_hi = int(chunk_hi)
        self._n_samples = int(n_samples)
        #: per-chunk (start, stop) sample bounds of the block, parallel
        #: to range(chunk_lo, chunk_hi); enables the chunk_at fast path.
        self._bounds = None if bounds is None else list(bounds)

    @property
    def dims(self) -> tuple[int, ...]:
        return self._dims

    @property
    def n_samples(self) -> int:
        return self._n_samples

    def chunks(self):
        if self._parent is None:
            return
        chunk_at = getattr(self._parent, "chunk_at", None)
        if chunk_at is not None and self._bounds is not None:
            for index, (start, stop) in zip(
                range(self._chunk_lo, self._chunk_hi), self._bounds
            ):
                yield chunk_at(index, start, stop)
            return
        for index, chunk in enumerate(self._parent.chunks()):
            if index >= self._chunk_hi:
                break
            if index >= self._chunk_lo:
                yield chunk


def shard_stream(stream, n_shards: int) -> list[ViewStream]:
    """Split a stream into ``n_shards`` contiguous whole-chunk blocks.

    The shards partition the parent's chunk sequence: concatenating their
    passes in shard order replays the parent pass exactly. Chunks are
    dealt out as evenly as possible; when the stream has fewer chunks
    than shards the trailing shards are empty (zero samples) — harmless
    to accumulate and merge.

    The stream must expose its chunk geometry (a ``chunk_size``
    attribute, as both library stream types do) so shard sample counts
    are known without a data pass.
    """
    stream = as_view_stream(stream)
    n_shards = check_positive_int(n_shards, "n_shards")
    if n_shards == 1:
        return [stream]
    chunk_size = getattr(stream, "chunk_size", None)
    if chunk_size is None:
        raise ValidationError(
            f"cannot shard a {type(stream).__name__} without a "
            "chunk_size attribute: shard sample counts need the chunk "
            "geometry up front"
        )
    bounds = list(_chunk_bounds(stream.n_samples, int(chunk_size)))
    base, extra = divmod(len(bounds), n_shards)
    shards: list[ViewStream] = []
    chunk_lo = 0
    array_views = (
        stream._views if isinstance(stream, ArrayViewStream) else None
    )
    for index in range(n_shards):
        chunk_hi = chunk_lo + base + (1 if index < extra else 0)
        if chunk_lo >= chunk_hi:
            shards.append(StreamShard(stream, chunk_lo, chunk_hi, 0))
            continue
        start, stop = bounds[chunk_lo][0], bounds[chunk_hi - 1][1]
        if array_views is not None:
            # Slice the arrays directly: a process worker is then shipped
            # only its shard's samples, not the whole dataset.
            shards.append(
                ArrayViewStream(
                    [view[:, start:stop] for view in array_views],
                    chunk_size=int(chunk_size),
                )
            )
        else:
            shards.append(
                StreamShard(
                    stream,
                    chunk_lo,
                    chunk_hi,
                    stop - start,
                    bounds=bounds[chunk_lo:chunk_hi],
                )
            )
        chunk_lo = chunk_hi
    return shards


def _accumulate_shard(factory, transform, shard):
    """Worker body: fresh accumulator, fold the shard's chunks in."""
    state = factory()
    for chunks in iter_validated_chunks(shard):
        if transform is not None:
            chunks = transform(chunks)
        state.update(chunks)
    return state


def accumulate_parallel(
    stream,
    factory,
    policy: ExecutionPolicy | None = None,
    *,
    transform=None,
    n_shards: int | None = None,
):
    """Map-reduce accumulation: per-shard states reduced with ``merge()``.

    Parameters
    ----------
    stream:
        The chunked source (anything
        :func:`~repro.streaming.views.as_view_stream` accepts).
    factory:
        Zero-argument callable returning a fresh accumulator — anything
        with ``update(chunks)`` and ``merge(other)``
        (:class:`~repro.streaming.covariance.StreamingCovarianceTensor`,
        :class:`~repro.core.engine.MomentState`, …). Must be picklable
        for a process policy (``functools.partial`` of the class is).
    policy:
        The :class:`~repro.parallel.executors.ExecutionPolicy` to map
        shards across (default serial).
    transform:
        Optional per-chunk transform (e.g. whitening) applied before
        ``update``; must be picklable for a process policy.
    n_shards:
        Shard count; defaults to the policy's worker count. The result
        is independent of this choice up to floating-point round-off.

    Returns the reduce of all shard states, merged **in shard order** —
    deterministic for a given shard count whichever executor ran the map.
    """
    stream = as_view_stream(stream)
    if policy is None:
        policy = SerialExecutor()
    if n_shards is None:
        n_shards = policy.n_workers
    if n_shards <= 1:
        return _accumulate_shard(factory, transform, stream)
    try:
        shards = shard_stream(stream, n_shards)
    except ValidationError:
        # Streams without an up-front chunk geometry cannot be sharded;
        # accumulate sequentially — parallelism is an optimization, not
        # part of the result contract.
        return _accumulate_shard(factory, transform, stream)
    worker = partial(_accumulate_shard, factory, transform)
    try:
        states = policy.map(worker, shards)
    except (pickle.PicklingError, AttributeError, TypeError):
        fallback = policy.for_shared_memory()
        if fallback is policy:
            raise
        # The shards (or factory/transform) cannot cross a process
        # boundary — e.g. a GeneratorViewStream whose chunk factory is
        # a closure, as the library's stream_*_like datasets build
        # them. Threads share memory and never pickle; same result.
        states = fallback.map(worker, shards)
    merged = states[0]
    for state in states[1:]:
        merged = merged.merge(state)
    return merged
