"""Pluggable execution policies — how independent work items run.

Every parallel path in the library (sharded moment accumulation, fanned
per-view eigendecompositions, blocked contraction kernels) is written
against one tiny interface: an :class:`ExecutionPolicy` with
:meth:`~ExecutionPolicy.map`. Three implementations cover the practical
space:

* :class:`SerialExecutor` — plain in-process iteration; the default, and
  bit-identical to the historical single-core code paths;
* :class:`ThreadExecutor` — a thread pool. NumPy releases the GIL inside
  its BLAS and ufunc/einsum kernels, where essentially all of a fit's
  time goes, so threads parallelize the hot loops *without* pickling any
  data — the right default whenever ``n_jobs > 1``;
* :class:`ProcessExecutor` — a process pool, for workloads where Python-
  level overhead matters or true isolation is wanted. Work items and
  results cross process boundaries, so both must be picklable (shard
  streams and the streaming accumulators are).

Selection is config, not fitted state: estimators take
``executor="auto"|"serial"|"thread"|"process"`` plus ``n_jobs`` and call
:func:`resolve_executor` at fit time. ``n_jobs=None`` defers to the
``REPRO_JOBS`` environment variable (so a deployment can turn the whole
library multi-core without touching call sites), ``-1`` means all cores.

Two reliability behaviors ride on every policy:

* **per-task retry** — attach a
  :class:`~repro.reliability.RetryPolicy` via ``with_retry`` and every
  work item is retried under it (tasks must be effectively pure — every
  parallel site in the library maps pure functions);
* **graceful demotion** — when a pool *breaks* (a worker process dies,
  the interpreter is shutting down), the policy falls back instead of
  crashing the fit: process → thread → serial, re-running the broken
  map in the fallback and warning with
  :class:`~repro.exceptions.ReliabilityWarning`. Demotion is sticky for
  the policy instance — a machine that killed one pool will likely kill
  the next.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)

import numpy as np

from repro.exceptions import ReliabilityWarning, ValidationError
from repro.reliability.faults import fault_point

__all__ = [
    "EXECUTOR_NAMES",
    "ExecutionPolicy",
    "JOBS_ENV",
    "ProcessExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "apply_parallel_params",
    "check_executor_name",
    "check_n_jobs",
    "effective_n_jobs",
    "resolve_executor",
]

#: environment variable supplying the default worker count when an
#: estimator is constructed with ``n_jobs=None``.
JOBS_ENV = "REPRO_JOBS"

EXECUTOR_NAMES = ("auto", "serial", "thread", "process")


def check_n_jobs(n_jobs, name: str = "n_jobs"):
    """Validate an ``n_jobs`` parameter: ``None``, ``-1``, or an int >= 1."""
    if n_jobs is None:
        return None
    if isinstance(n_jobs, bool) or not isinstance(n_jobs, (int, np.integer)):
        raise ValidationError(
            f"{name} must be an integer >= 1, or -1 for all cores; "
            f"got {n_jobs!r}"
        )
    n_jobs = int(n_jobs)
    if n_jobs != -1 and n_jobs < 1:
        raise ValidationError(
            f"{name} must be an integer >= 1, or -1 for all cores; "
            f"got {n_jobs}"
        )
    return n_jobs


def check_executor_name(executor, name: str = "executor") -> str:
    """Validate an executor name against :data:`EXECUTOR_NAMES`."""
    if executor not in EXECUTOR_NAMES:
        raise ValidationError(
            f"unknown {name} {executor!r}; expected one of {EXECUTOR_NAMES}"
        )
    return executor


def effective_n_jobs(n_jobs=None) -> int:
    """Resolve ``n_jobs`` into a concrete worker count.

    ``None`` reads the :data:`JOBS_ENV` environment variable (missing or
    empty means 1 — the serial default); ``-1`` means every core the
    machine reports. The result is always >= 1.
    """
    if n_jobs is None:
        raw = os.environ.get(JOBS_ENV)
        if raw is None or not raw.strip():
            return 1
        try:
            n_jobs = int(raw)
        except ValueError:
            raise ValidationError(
                f"{JOBS_ENV}={raw!r} is not an integer; set it to a "
                "worker count >= 1 (or -1 for all cores)"
            ) from None
        check_n_jobs(n_jobs, name=JOBS_ENV)
    else:
        n_jobs = check_n_jobs(n_jobs)
    if n_jobs == -1:
        return max(1, os.cpu_count() or 1)
    return n_jobs


def apply_parallel_params(estimator, updates: dict) -> None:
    """Apply ``n_jobs``/``executor`` updates to an estimator, validated.

    The single copy of "does this estimator support the parallel
    parameters" shared by :class:`~repro.api.pipeline.MultiviewPipeline`
    and the ``--jobs``/``--executor`` CLI flags: raises a clear
    :class:`~repro.exceptions.ValidationError` naming the unsupported
    parameters instead of a ``TypeError`` from deep inside ``__init__``.
    """
    if not updates:
        return
    supported = (
        set(estimator._param_names())
        if hasattr(estimator, "_param_names")
        else set()
    )
    missing = sorted(set(updates) - supported)
    if missing:
        raise ValidationError(
            f"{type(estimator).__name__} does not accept the parallel "
            f"parameter(s) {', '.join(missing)}; use a parallel-aware "
            "estimator (e.g. tcca) or drop them"
        )
    estimator.set_params(**updates)


class _StarCall:
    """Picklable ``fn(*args)`` adapter behind :meth:`ExecutionPolicy.starmap`."""

    def __init__(self, fn):
        self.fn = fn

    def __call__(self, args):
        return self.fn(*args)


class _RetryTask:
    """Picklable per-task retry wrapper: ``policy.run(fn, item)``.

    Applied around the work function *before* it enters a pool, so each
    item retries independently inside its worker — a transient failure
    costs one item's retries, never the whole map. Also the executors'
    ``"executor.task"`` fault seam, counted per attempt, so tests
    script "fail the first attempt of the third task" exactly.
    """

    def __init__(self, fn, policy):
        self.fn = fn
        self.policy = policy

    def __call__(self, item):
        def _attempt():
            fault_point("executor.task")
            return self.fn(item)

        _attempt.__name__ = getattr(self.fn, "__name__", repr(self.fn))
        return self.policy.run(_attempt)


class ExecutionPolicy:
    """How a batch of independent work items is executed.

    The contract is deliberately minimal so every parallel site in the
    library stays deterministic: :meth:`map` returns results **in input
    order** regardless of completion order, and callers reduce partial
    results in that fixed order — so a computation gives the same answer
    (to round-off) whichever executor runs it.
    """

    #: number of concurrent workers this policy aims for.
    n_workers: int = 1

    #: optional per-task :class:`~repro.reliability.RetryPolicy`.
    retry_policy = None

    def with_retry(self, policy) -> "ExecutionPolicy":
        """Attach a per-task retry policy; returns ``self`` for chaining."""
        self.retry_policy = policy
        return self

    def _task(self, fn):
        """Wrap ``fn`` with this policy's retry (identity without one)."""
        if self.retry_policy is None or isinstance(fn, _RetryTask):
            return fn
        return _RetryTask(fn, self.retry_policy)

    def map(self, fn, items) -> list:
        """Apply ``fn`` to every item; results in input order."""
        raise NotImplementedError

    def starmap(self, fn, items) -> list:
        """Like :meth:`map` but unpacks each item as ``fn(*item)``."""
        return self.map(_StarCall(fn), [tuple(item) for item in items])

    def for_shared_memory(self) -> "ExecutionPolicy":
        """The policy to use for kernels over shared in-process arrays.

        Process pools would pickle the (possibly large) operands per
        call; thread pools share them for free, and the kernels in
        question spend their time in GIL-releasing BLAS. Thread and
        serial policies return themselves.
        """
        return self

    def shutdown(self) -> None:
        """Release any pooled workers (no-op for pool-less policies)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n_workers={self.n_workers})"


class SerialExecutor(ExecutionPolicy):
    """In-process iteration — the default, zero-overhead policy."""

    n_workers = 1

    def map(self, fn, items) -> list:
        fault_point("executor.map")
        task = self._task(fn)
        return [task(item) for item in items]


class _PoolExecutor(ExecutionPolicy):
    """Shared machinery of the pool-backed policies.

    The pool is created lazily on first use and **reused** across
    :meth:`map` calls — a fit maps once per stage and once per solver
    sweep, so paying pool startup per call would swamp small kernels
    (hundreds of pools per fit). Workers shut down when the policy is
    garbage collected (``concurrent.futures`` tears pools down via the
    executor's weakref) or explicitly via :meth:`shutdown`.
    """

    _pool_class: type | None = None

    def __init__(self, n_workers: int = 2):
        if isinstance(n_workers, bool) or not isinstance(
            n_workers, (int, np.integer)
        ):
            raise ValidationError(
                f"n_workers must be an integer >= 1, got {n_workers!r}"
            )
        self.n_workers = max(1, int(n_workers))
        self._pool = None
        self._fallback: ExecutionPolicy | None = None

    def _get_pool(self):
        if self._pool is None:
            self._pool = self._pool_class(max_workers=self.n_workers)
        return self._pool

    def shutdown(self) -> None:
        """Release the pool's workers (idempotent; pool recreates on use)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._fallback is not None:
            self._fallback.shutdown()

    def _demotion_target(self) -> ExecutionPolicy:
        """The next-softer policy to fall back to when the pool breaks."""
        return SerialExecutor()

    def _demote(self, error: BaseException) -> ExecutionPolicy:
        self._fallback = self._demotion_target()
        warnings.warn(
            f"{type(self).__name__} pool broke "
            f"({type(error).__name__}: {error}); demoting to "
            f"{type(self._fallback).__name__} and re-running the batch — "
            "results are unchanged, throughput degrades",
            ReliabilityWarning,
            stacklevel=3,
        )
        try:
            # the broken pool cannot be drained; release what it will give
            if self._pool is not None:
                self._pool.shutdown(wait=False)
        except Exception:
            pass
        self._pool = None
        return self._fallback

    def map(self, fn, items) -> list:
        fault_point("executor.map")
        items = list(items)
        task = self._task(fn)
        if self._fallback is not None:
            return self._fallback.map(task, items)
        if len(items) <= 1 or self.n_workers <= 1:
            return [task(item) for item in items]
        try:
            return list(self._get_pool().map(task, items))
        except BrokenExecutor as error:
            # a worker died (OOM kill, hard crash) or the pool broke:
            # demote and re-run the whole batch — tasks are pure, so a
            # rerun is safe; partial results from the broken pool are
            # discarded.
            return self._demote(error).map(task, items)


class ThreadExecutor(_PoolExecutor):
    """Thread-pool policy — shares memory, wins on GIL-releasing kernels."""

    _pool_class = ThreadPoolExecutor


class ProcessExecutor(_PoolExecutor):
    """Process-pool policy — true isolation; work and results are pickled."""

    _pool_class = ProcessPoolExecutor

    def for_shared_memory(self) -> ExecutionPolicy:
        return ThreadExecutor(self.n_workers)

    def _demotion_target(self) -> ExecutionPolicy:
        # threads first — same width, no worker processes to kill; if
        # the thread pool somehow breaks too, it demotes to serial.
        return ThreadExecutor(self.n_workers)


def resolve_executor(executor="auto", n_jobs=None) -> ExecutionPolicy:
    """Turn ``(executor, n_jobs)`` config into an :class:`ExecutionPolicy`.

    An :class:`ExecutionPolicy` instance passes through unchanged
    (``n_jobs`` is ignored — the instance already carries its width).
    ``"auto"`` picks :class:`ThreadExecutor` whenever more than one
    worker is requested — the hot loops are GIL-releasing NumPy kernels,
    so threads parallelize them without any pickling cost — and
    :class:`SerialExecutor` otherwise. ``n_jobs=None`` defers to the
    ``REPRO_JOBS`` environment variable; ``-1`` means all cores.
    """
    if isinstance(executor, ExecutionPolicy):
        return executor
    if executor is None:
        executor = "auto"
    check_executor_name(executor)
    if executor == "serial":
        return SerialExecutor()
    workers = effective_n_jobs(n_jobs)
    if executor == "thread":
        return ThreadExecutor(workers)
    if executor == "process":
        return ProcessExecutor(workers)
    return ThreadExecutor(workers) if workers > 1 else SerialExecutor()
