"""Parallel execution layer: pluggable executors and sharded map-reduce.

Everything multi-core in the library goes through this package. The
:mod:`~repro.parallel.executors` module defines the execution-policy
abstraction (serial / thread / process, selected by
``executor="auto"|"serial"|"thread"|"process"`` + ``n_jobs``, with a
``REPRO_JOBS`` environment default); :mod:`~repro.parallel.sharding`
turns moment accumulation into map-reduce over stream shards, reduced
with the accumulators' exact ``merge()`` — so parallel fits match serial
fits to floating-point round-off regardless of shard count or order.
"""

from repro.parallel.executors import (
    EXECUTOR_NAMES,
    ExecutionPolicy,
    JOBS_ENV,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    apply_parallel_params,
    check_executor_name,
    check_n_jobs,
    effective_n_jobs,
    resolve_executor,
)
from repro.parallel.sharding import (
    StreamShard,
    accumulate_parallel,
    parallel_chunk_size,
    shard_stream,
)

__all__ = [
    "EXECUTOR_NAMES",
    "ExecutionPolicy",
    "JOBS_ENV",
    "ProcessExecutor",
    "SerialExecutor",
    "StreamShard",
    "ThreadExecutor",
    "accumulate_parallel",
    "apply_parallel_params",
    "check_executor_name",
    "check_n_jobs",
    "effective_n_jobs",
    "parallel_chunk_size",
    "resolve_executor",
    "shard_stream",
]
