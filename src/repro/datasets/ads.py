"""Internet-advertisements-like synthetic generator.

The UCI Internet-Ads task predicts whether a hyperlinked image is an ad
from binary term-presence features grouped (as the paper groups them) into
three views: image URL / caption / alt-text terms (588 dims), current-site
URL terms (495 dims), and anchor URL terms (472 dims). The dataset is small
(3,279 instances, ~14% positive) with high total dimension (1,555) — the
regime where the paper observes CAT over-fitting and a reduced TCCA margin.

The generator mirrors that structure: sparse Bernoulli background term
rates per vocabulary, a set of ad-indicative terms per view with elevated
rates, and a per-sample *campaign* switch that activates indicative terms
in all three views simultaneously (the order-3 dependence).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.synthetic import MultiviewDataset
from repro.exceptions import DatasetError
from repro.utils.rng import check_random_state, check_seed_sequence, chunk_rng

__all__ = ["make_ads_like", "stream_ads_like", "DEFAULT_DIMS"]

#: the paper's view dimensions: caption+alt / site URL / anchor URL terms
DEFAULT_DIMS = (588, 495, 472)


def make_ads_like(
    n_samples: int = 3279,
    dims=DEFAULT_DIMS,
    *,
    positive_rate: float = 0.14,
    background_rate: float = 0.02,
    indicative_fraction: float = 0.05,
    indicative_rate: float = 0.35,
    campaign_coherence: float = 0.8,
    random_state=None,
) -> MultiviewDataset:
    """Sample an Ads-like sparse binary 3-view dataset.

    Parameters
    ----------
    n_samples:
        Number of hyperlink instances (UCI has 3,279).
    dims:
        Vocabulary sizes per view.
    positive_rate:
        Fraction of ad (label 1) instances (~14% in UCI).
    background_rate:
        Bernoulli rate of non-indicative terms.
    indicative_fraction:
        Fraction of each vocabulary that is ad-indicative.
    indicative_rate:
        Bernoulli rate of indicative terms when active.
    campaign_coherence:
        Probability that an *ad* expresses its indicative terms in all
        three views jointly; otherwise each view activates independently
        with the same marginal probability.
    random_state:
        Seed.

    Returns
    -------
    MultiviewDataset
        Binary views of shape ``(dims[p], N)`` and labels in {0, 1}.
    """
    if n_samples < 2:
        raise DatasetError(f"n_samples must be >= 2, got {n_samples}")
    if not 0.0 < positive_rate < 1.0:
        raise DatasetError(
            f"positive_rate must be in (0, 1), got {positive_rate}"
        )
    if not 0.0 <= campaign_coherence <= 1.0:
        raise DatasetError(
            f"campaign_coherence must be in [0, 1], got {campaign_coherence}"
        )
    dims = tuple(int(d) for d in dims)
    rng = check_random_state(random_state)

    labels = (rng.random(n_samples) < positive_rate).astype(np.int64)

    # Coherent ads activate their indicative terms in all three views at
    # once; non-coherent ads activate each view independently with
    # probability 1/2 — so view coherence is the extra, order-3 signal.
    coherent = rng.random(n_samples) < campaign_coherence
    joint_active = coherent & (labels == 1)

    views = []
    indicative_masks = []
    for dim in dims:
        n_indicative = max(1, int(round(indicative_fraction * dim)))
        indicative = rng.choice(dim, size=n_indicative, replace=False)
        mask = np.zeros(dim, dtype=bool)
        mask[indicative] = True
        indicative_masks.append(mask)

        independent = (
            (~coherent) & (labels == 1) & (rng.random(n_samples) < 0.5)
        )
        active = joint_active | independent
        rates = np.full((dim, n_samples), background_rate)
        rates[np.ix_(mask, np.flatnonzero(active))] = indicative_rate
        views.append(
            (rng.random((dim, n_samples)) < rates).astype(np.float64)
        )

    return MultiviewDataset(
        views=views,
        labels=labels,
        name="ads-like",
        metadata={
            "n_classes": 2,
            "positive_rate": positive_rate,
            "campaign_coherence": campaign_coherence,
            "indicative_masks": indicative_masks,
        },
    )


def stream_ads_like(
    n_samples: int = 3279,
    dims=DEFAULT_DIMS,
    *,
    chunk_size: int = 256,
    positive_rate: float = 0.14,
    background_rate: float = 0.02,
    indicative_fraction: float = 0.05,
    indicative_rate: float = 0.35,
    campaign_coherence: float = 0.8,
    random_state=None,
):
    """Chunked Ads-like stream — instances are generated on demand.

    Same term-presence model as :func:`make_ads_like`: the per-view
    indicative-term vocabularies are drawn once from a dedicated seed and
    each chunk of hyperlink instances is sampled lazily from its own
    derived seed, so at most ``chunk_size`` of the 1,555-dimensional
    instances are resident at a time and every pass yields identical
    chunks. The realization for a given seed differs from the batch
    factory's (different draw order); the distribution is identical.

    Returns
    -------
    repro.streaming.views.GeneratorViewStream
    """
    from repro.streaming.views import GeneratorViewStream

    if n_samples < 2:
        raise DatasetError(f"n_samples must be >= 2, got {n_samples}")
    if not 0.0 < positive_rate < 1.0:
        raise DatasetError(
            f"positive_rate must be in (0, 1), got {positive_rate}"
        )
    if not 0.0 <= campaign_coherence <= 1.0:
        raise DatasetError(
            f"campaign_coherence must be in [0, 1], got {campaign_coherence}"
        )
    dims = tuple(int(d) for d in dims)
    root = check_seed_sequence(random_state)
    structure_rng = chunk_rng(root, 0)

    indicative_masks = []
    for dim in dims:
        n_indicative = max(1, int(round(indicative_fraction * dim)))
        indicative = structure_rng.choice(dim, size=n_indicative, replace=False)
        mask = np.zeros(dim, dtype=bool)
        mask[indicative] = True
        indicative_masks.append(mask)

    def sample_chunk(index: int, start: int, stop: int):
        rng = chunk_rng(root, index + 1)
        n = stop - start
        labels = (rng.random(n) < positive_rate).astype(np.int64)
        coherent = rng.random(n) < campaign_coherence
        joint_active = coherent & (labels == 1)
        views = []
        for dim, mask in zip(dims, indicative_masks):
            independent = (
                (~coherent) & (labels == 1) & (rng.random(n) < 0.5)
            )
            active = joint_active | independent
            rates = np.full((dim, n), background_rate)
            rates[np.ix_(mask, np.flatnonzero(active))] = indicative_rate
            views.append(
                (rng.random((dim, n)) < rates).astype(np.float64)
            )
        return tuple(views)

    return GeneratorViewStream(
        sample_chunk,
        n_samples,
        dims,
        chunk_size=chunk_size,
        name="ads-like-stream",
    )
