"""SecStr-like synthetic generator (biometric structure prediction).

The real SecStr benchmark (Chapelle et al. 2006) predicts the secondary
structure of the central amino acid of a 15-position sequence window, each
position a 21-symbol categorical one-hot — 315 binary features split by
the paper into left-context / middle / right-context views of 105
dimensions each.

The generator reproduces that structure with a motif model designed around
the statistics that drive the paper's comparison:

* **signal motifs** — sequence-wide symbol-preference patterns whose
  *activation probability depends on the class* (low/high per class). A
  Bernoulli activation with rate far from 1/2 has a non-zero third central
  moment, so class-relevant motifs leave a strong imprint on the order-3
  covariance tensor across the three context views (TCCA's signal), while
  each single position carries only a weak linear class cue;
* **nuisance motifs** — "stylistic" patterns shared by exactly *two*
  context views, activated with class-independent probability 1/2.
  Bernoulli(1/2) has zero third central moment: these motifs inflate
  pairwise covariances (distracting CCA / CCA-LS) yet contribute nothing
  to the odd-order joint moments TCCA analyzes.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.datasets.synthetic import MultiviewDataset
from repro.exceptions import DatasetError
from repro.utils.rng import check_random_state, check_seed_sequence, chunk_rng

__all__ = [
    "make_secstr_like",
    "stream_secstr_like",
    "N_POSITIONS",
    "N_SYMBOLS",
    "VIEW_SLICES",
]

N_POSITIONS = 15
N_SYMBOLS = 21
#: positions of the left / middle / right context views ([-7,-3], [-2,2], [3,7])
VIEW_SLICES = (slice(0, 5), slice(5, 10), slice(10, 15))


def _one_hot(symbols: np.ndarray, n_symbols: int) -> np.ndarray:
    """One-hot encode ``(N, P)`` symbol indices into ``(N, P * n_symbols)``."""
    n, p = symbols.shape
    out = np.zeros((n, p * n_symbols))
    rows = np.repeat(np.arange(n), p)
    cols = (np.arange(p) * n_symbols)[None, :] + symbols
    out[rows, cols.ravel()] = 1.0
    return out


def _sample_categorical(rng, probabilities: np.ndarray) -> np.ndarray:
    """Sample one index per row of a ``(N, S)`` probability matrix."""
    cdf = np.cumsum(probabilities, axis=1)
    draws = rng.random(probabilities.shape[0])[:, None]
    return np.clip(
        (draws > cdf).sum(axis=1), 0, probabilities.shape[1] - 1
    )


def make_secstr_like(
    n_samples: int = 2000,
    *,
    n_signal_motifs: int = 4,
    n_nuisance_motifs: int = 4,
    signal_tilt: float = 1.2,
    nuisance_tilt: float = 1.6,
    activation_low: float = 0.15,
    activation_high: float = 0.85,
    random_state=None,
) -> MultiviewDataset:
    """Sample a SecStr-like 3-view binary dataset.

    Parameters
    ----------
    n_samples:
        Number of sequence windows.
    n_signal_motifs:
        Class-informative motifs spanning all three context regions.
    n_nuisance_motifs:
        Class-irrelevant motifs per *pair* of context regions, activated
        with probability 1/2 (pairwise-covariance distractors).
    signal_tilt, nuisance_tilt:
        Logit-scale strength of the motif symbol preferences.
    activation_low, activation_high:
        The two class-conditional activation rates of signal motifs.
    random_state:
        Seed.

    Returns
    -------
    MultiviewDataset
        Three 105-dimensional binary views and labels in {0, 1}.
    """
    if n_samples < 2:
        raise DatasetError(f"n_samples must be >= 2, got {n_samples}")
    if not 0.0 < activation_low < activation_high < 1.0:
        raise DatasetError(
            "need 0 < activation_low < activation_high < 1; got "
            f"{activation_low}, {activation_high}"
        )
    if n_signal_motifs < 1:
        raise DatasetError(
            f"n_signal_motifs must be >= 1, got {n_signal_motifs}"
        )
    rng = check_random_state(random_state)
    n_views = len(VIEW_SLICES)

    labels = rng.integers(0, 2, size=n_samples)
    background_logits = 0.3 * rng.standard_normal((N_POSITIONS, N_SYMBOLS))

    # Signal motifs: symbol tilts across all positions, with bimodal
    # class-conditional activation probabilities.
    signal_tilts = signal_tilt * rng.standard_normal(
        (n_signal_motifs, N_POSITIONS, N_SYMBOLS)
    )
    activation = np.where(
        rng.random((2, n_signal_motifs)) < 0.5,
        activation_low,
        activation_high,
    )
    for k in range(n_signal_motifs):
        while activation[0, k] == activation[1, k]:
            activation[:, k] = np.where(
                rng.random(2) < 0.5, activation_low, activation_high
            )
    signal_active = (
        rng.random((n_samples, n_signal_motifs)) < activation[labels]
    )

    # Nuisance motifs: per view pair, zero tilt outside the pair, fair-coin
    # activation (zero third central moment).
    pairs = list(combinations(range(n_views), 2))
    nuisance_tilts = []
    for pair in pairs:
        for _ in range(n_nuisance_motifs):
            tilt = np.zeros((N_POSITIONS, N_SYMBOLS))
            for view_index in pair:
                view_slice = VIEW_SLICES[view_index]
                tilt[view_slice] = nuisance_tilt * rng.standard_normal(
                    (view_slice.stop - view_slice.start, N_SYMBOLS)
                )
            nuisance_tilts.append(tilt)
    nuisance_tilts = (
        np.stack(nuisance_tilts)
        if nuisance_tilts
        else np.zeros((0, N_POSITIONS, N_SYMBOLS))
    )
    nuisance_active = rng.random((n_samples, nuisance_tilts.shape[0])) < 0.5

    # Per-sample position logits -> categorical symbols.
    logits = np.broadcast_to(
        background_logits, (n_samples, N_POSITIONS, N_SYMBOLS)
    ).copy()
    logits += np.einsum("nk,kps->nps", signal_active, signal_tilts)
    if nuisance_tilts.shape[0]:
        logits += np.einsum(
            "nk,kps->nps", nuisance_active, nuisance_tilts
        )
    logits -= logits.max(axis=2, keepdims=True)
    probabilities = np.exp(logits)
    probabilities /= probabilities.sum(axis=2, keepdims=True)

    symbols = np.empty((n_samples, N_POSITIONS), dtype=np.int64)
    for position in range(N_POSITIONS):
        symbols[:, position] = _sample_categorical(
            rng, probabilities[:, position, :]
        )

    encoded = _one_hot(symbols, N_SYMBOLS)  # (N, 315)
    views = []
    for view_slice in VIEW_SLICES:
        start = view_slice.start * N_SYMBOLS
        stop = view_slice.stop * N_SYMBOLS
        views.append(encoded[:, start:stop].T.copy())  # (105, N)

    return MultiviewDataset(
        views=views,
        labels=labels,
        name="secstr-like",
        metadata={
            "n_classes": 2,
            "n_signal_motifs": n_signal_motifs,
            "n_nuisance_motifs": n_nuisance_motifs,
            "signal_tilt": signal_tilt,
            "nuisance_tilt": nuisance_tilt,
        },
    )


def stream_secstr_like(
    n_samples: int = 2000,
    *,
    chunk_size: int = 256,
    n_signal_motifs: int = 4,
    n_nuisance_motifs: int = 4,
    signal_tilt: float = 1.2,
    nuisance_tilt: float = 1.6,
    activation_low: float = 0.15,
    activation_high: float = 0.85,
    random_state=None,
):
    """Chunked SecStr-like stream — windows are generated on demand.

    Same motif model as :func:`make_secstr_like`: the motif structure
    (background logits, signal/nuisance tilts, class activation rates) is
    drawn once from a dedicated seed, and each chunk of sequence windows is
    sampled lazily from its own derived seed — at most ``chunk_size``
    windows are resident at a time and every pass over the stream yields
    identical chunks. The realization for a given seed differs from the
    batch factory's (different draw order); the distribution is identical.

    Returns
    -------
    repro.streaming.views.GeneratorViewStream
    """
    from repro.streaming.views import GeneratorViewStream

    if n_samples < 2:
        raise DatasetError(f"n_samples must be >= 2, got {n_samples}")
    if not 0.0 < activation_low < activation_high < 1.0:
        raise DatasetError(
            "need 0 < activation_low < activation_high < 1; got "
            f"{activation_low}, {activation_high}"
        )
    if n_signal_motifs < 1:
        raise DatasetError(
            f"n_signal_motifs must be >= 1, got {n_signal_motifs}"
        )
    root = check_seed_sequence(random_state)
    structure_rng = chunk_rng(root, 0)
    n_views = len(VIEW_SLICES)

    # Motif structure, drawn once (cf. the body of make_secstr_like).
    background_logits = 0.3 * structure_rng.standard_normal(
        (N_POSITIONS, N_SYMBOLS)
    )
    signal_tilts = signal_tilt * structure_rng.standard_normal(
        (n_signal_motifs, N_POSITIONS, N_SYMBOLS)
    )
    activation = np.where(
        structure_rng.random((2, n_signal_motifs)) < 0.5,
        activation_low,
        activation_high,
    )
    for k in range(n_signal_motifs):
        while activation[0, k] == activation[1, k]:
            activation[:, k] = np.where(
                structure_rng.random(2) < 0.5,
                activation_low,
                activation_high,
            )
    pairs = list(combinations(range(n_views), 2))
    nuisance_tilts = []
    for pair in pairs:
        for _ in range(n_nuisance_motifs):
            tilt = np.zeros((N_POSITIONS, N_SYMBOLS))
            for view_index in pair:
                view_slice = VIEW_SLICES[view_index]
                tilt[view_slice] = nuisance_tilt * structure_rng.standard_normal(
                    (view_slice.stop - view_slice.start, N_SYMBOLS)
                )
            nuisance_tilts.append(tilt)
    nuisance_tilts = (
        np.stack(nuisance_tilts)
        if nuisance_tilts
        else np.zeros((0, N_POSITIONS, N_SYMBOLS))
    )

    def sample_chunk(index: int, start: int, stop: int):
        rng = chunk_rng(root, index + 1)
        n = stop - start
        labels = rng.integers(0, 2, size=n)
        signal_active = (
            rng.random((n, n_signal_motifs)) < activation[labels]
        )
        nuisance_active = rng.random((n, nuisance_tilts.shape[0])) < 0.5

        logits = np.broadcast_to(
            background_logits, (n, N_POSITIONS, N_SYMBOLS)
        ).copy()
        logits += np.einsum("nk,kps->nps", signal_active, signal_tilts)
        if nuisance_tilts.shape[0]:
            logits += np.einsum(
                "nk,kps->nps", nuisance_active, nuisance_tilts
            )
        logits -= logits.max(axis=2, keepdims=True)
        probabilities = np.exp(logits)
        probabilities /= probabilities.sum(axis=2, keepdims=True)

        symbols = np.empty((n, N_POSITIONS), dtype=np.int64)
        for position in range(N_POSITIONS):
            symbols[:, position] = _sample_categorical(
                rng, probabilities[:, position, :]
            )
        encoded = _one_hot(symbols, N_SYMBOLS)
        return tuple(
            encoded[
                :,
                view_slice.start * N_SYMBOLS:view_slice.stop * N_SYMBOLS,
            ].T.copy()
            for view_slice in VIEW_SLICES
        )

    return GeneratorViewStream(
        sample_chunk,
        n_samples,
        tuple(
            (view_slice.stop - view_slice.start) * N_SYMBOLS
            for view_slice in VIEW_SLICES
        ),
        chunk_size=chunk_size,
        name="secstr-like-stream",
    )
