"""NUS-WIDE-mammal-like synthetic generator (web image annotation).

The paper annotates 10 visually confusable mammal concepts using three
visual views: 500-d bag of visual words (SIFT), 144-d color
auto-correlogram, and 128-d wavelet texture. This generator reproduces that
geometry:

* **BoW view** — per-class Dirichlet topic mixtures over latent visual
  topics, each topic a distribution over 500 visual words; samples are
  multinomial word-count histograms (non-negative, suited to the χ²
  kernel the paper uses for this view);
* **correlogram / texture views** — continuous Gaussian features around
  per-class means, driven by the *same* per-sample topic mixture so that
  all three views co-vary jointly (the order-3 structure);
* **confusable classes** — class centers are sampled in sibling pairs
  (cat/tiger-style) so nearest-neighbor classification is genuinely hard,
  as the paper emphasizes.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.synthetic import MultiviewDataset
from repro.exceptions import DatasetError
from repro.utils.rng import check_random_state, check_seed_sequence, chunk_rng

__all__ = [
    "make_nuswide_like",
    "stream_nuswide_like",
    "DEFAULT_DIMS",
    "CONCEPTS",
]

#: the paper's view dimensions: BoW-SIFT / color correlogram / wavelet texture
DEFAULT_DIMS = (500, 144, 128)
#: the 10 mammal concepts of the NUS-WIDE subset
CONCEPTS = (
    "bear", "cat", "cow", "dog", "elk",
    "fox", "horse", "tiger", "whale", "zebra",
)


def make_nuswide_like(
    n_samples: int = 2000,
    dims=DEFAULT_DIMS,
    *,
    n_classes: int = 10,
    n_topics: int = 40,
    topic_concentration: float = 0.3,
    class_separation: float = 0.35,
    sibling_closeness: float = 0.2,
    words_per_image: int = 150,
    words_dispersion: float = 0.0,
    noise_std: float = 2.5,
    gain_dispersion: float = 0.0,
    n_signal_factors: int = 5,
    signal_strength: float = 1.5,
    n_nuisance_factors: int = 6,
    nuisance_strength: float = 2.0,
    random_state=None,
) -> MultiviewDataset:
    """Sample a NUS-WIDE-like 10-class 3-view dataset.

    Parameters
    ----------
    n_samples:
        Number of images.
    dims:
        ``(bow, correlogram, texture)`` dimensions.
    n_classes:
        Number of concepts (paper: 10 mammals).
    n_topics:
        Latent visual topics behind the BoW view.
    topic_concentration:
        Dirichlet concentration of per-class topic mixtures (smaller →
        peakier, easier classes).
    class_separation:
        Scale of per-class mean offsets in the continuous views.
    sibling_closeness:
        Classes are generated in sibling pairs; the second sibling's center
        is ``sibling_closeness`` of the way back toward the first — small
        values make cat-vs-tiger-style confusions.
    words_per_image:
        Median multinomial draw size of the BoW histograms.
    words_dispersion:
        Log-normal sigma of the per-image word count (images yield very
        different numbers of SIFT keypoints). Raw-histogram kNN distances
        are dominated by this scale variation; centered covariance-based
        reducers are robust to it — the mechanism that keeps BSF/CAT below
        the DR methods, as in the paper.
    noise_std:
        Noise level of the continuous views.
    gain_dispersion:
        Log-normal sigma of a per-sample, per-view multiplicative gain on
        the continuous views (illumination/contrast variability); same
        role as ``words_dispersion``.
    n_signal_factors:
        Class-informative "salient content" factors shared by *all three*
        views: each fires with a class-dependent (low/high) probability and
        an exponential magnitude, entering the BoW view as a word-tilt and
        the continuous views linearly. The skewed activation gives them a
        strong order-3 signature — the structure TCCA exploits.
    signal_strength:
        Loading scale of the signal factors.
    n_nuisance_factors:
        Class-free Gaussian factors shared by each *pair* of views
        ("lighting"/"style" effects). Their symmetric distribution adds
        pairwise covariance without touching the order-3 covariance
        tensor — the distractor that separates TCCA from the pairwise
        CCA extensions.
    nuisance_strength:
        Loading scale of the nuisance factors.
    random_state:
        Seed.

    Returns
    -------
    MultiviewDataset
        BoW view (counts, non-negative) plus two continuous views; labels
        in ``[0, n_classes)``. ``metadata['concepts']`` names the classes.
    """
    if n_samples < n_classes:
        raise DatasetError(
            f"n_samples={n_samples} must be >= n_classes={n_classes}"
        )
    if n_classes < 2:
        raise DatasetError(f"n_classes must be >= 2, got {n_classes}")
    dims = tuple(int(d) for d in dims)
    if len(dims) != 3:
        raise DatasetError(f"dims must have 3 entries, got {dims}")
    rng = check_random_state(random_state)
    bow_dim, correlogram_dim, texture_dim = dims

    labels = rng.integers(0, n_classes, size=n_samples)

    # Topic model for the BoW view. Class priors are generated in sibling
    # pairs (cat/tiger-style): the odd class's prior is a convex blend of
    # its sibling's and a fresh draw, so siblings share most of their
    # visual content and are genuinely confusable.
    topics = rng.dirichlet(np.full(bow_dim, 0.1), size=n_topics)  # (T, W)
    class_topic_priors = np.empty((n_classes, n_topics))
    for cls in range(0, n_classes, 2):
        base = rng.dirichlet(np.full(n_topics, topic_concentration))
        class_topic_priors[cls] = base
        if cls + 1 < n_classes:
            fresh = rng.dirichlet(np.full(n_topics, topic_concentration))
            blended = (
                (1.0 - sibling_closeness) * base + sibling_closeness * fresh
            )
            class_topic_priors[cls + 1] = blended / blended.sum()

    # Continuous-view class centers in sibling pairs.
    def sibling_centers(dim: int) -> np.ndarray:
        centers = np.empty((n_classes, dim))
        for cls in range(0, n_classes, 2):
            base = rng.standard_normal(dim) * class_separation
            centers[cls] = base
            if cls + 1 < n_classes:
                offset = rng.standard_normal(dim) * class_separation
                centers[cls + 1] = (
                    base + sibling_closeness * (offset - base)
                )
        return centers

    correlogram_centers = sibling_centers(correlogram_dim)
    texture_centers = sibling_centers(texture_dim)

    # Per-sample topic mixture (shared latent state across all views).
    mixtures = np.empty((n_samples, n_topics))
    for cls in range(n_classes):
        members = np.flatnonzero(labels == cls)
        if members.size:
            mixtures[members] = rng.dirichlet(
                class_topic_priors[cls] * n_topics + 0.05, size=members.size
            )

    # Class-informative activation factors shared by all three views:
    # class-dependent firing rate (low/high) with exponential magnitude.
    if n_signal_factors > 0:
        rates = np.where(
            rng.random((n_classes, n_signal_factors)) < 0.5, 0.1, 0.9
        )
        for k in range(n_signal_factors):
            while np.ptp(rates[:, k]) == 0.0:
                rates[:, k] = np.where(rng.random(n_classes) < 0.5, 0.1, 0.9)
        fired = rng.random((n_samples, n_signal_factors)) < rates[labels]
        signal_factors = fired * rng.exponential(
            1.0, size=(n_samples, n_signal_factors)
        )
    else:
        signal_factors = np.zeros((n_samples, 0))

    # Class-free pairwise nuisance: a Gaussian "style" factor per view pair.
    # bow<->continuous coupling enters the word distribution as a smooth
    # exponential tilt; continuous<->continuous enters linearly.
    nuisance_bow_corr = rng.standard_normal((n_samples, n_nuisance_factors))
    nuisance_bow_tex = rng.standard_normal((n_samples, n_nuisance_factors))
    nuisance_corr_tex = rng.standard_normal((n_samples, n_nuisance_factors))

    # BoW histograms with signal and nuisance word tilts.
    word_probabilities = mixtures @ topics  # (N, W)
    tilt_factors = []
    tilt_scales = []
    if n_signal_factors > 0 and signal_strength > 0.0:
        tilt_factors.append(signal_factors)
        tilt_scales.append(0.4 * signal_strength)
    if n_nuisance_factors > 0 and nuisance_strength > 0.0:
        tilt_factors.append(nuisance_bow_corr)
        tilt_factors.append(nuisance_bow_tex)
        tilt_scales.extend([0.25 * nuisance_strength] * 2)
    if tilt_factors:
        tilt = np.zeros((n_samples, bow_dim))
        for factors, scale in zip(tilt_factors, tilt_scales):
            directions = rng.standard_normal((factors.shape[1], bow_dim))
            directions /= np.linalg.norm(
                directions, axis=1, keepdims=True
            )
            tilt += scale * (factors @ directions)
        word_probabilities = word_probabilities * np.exp(tilt)
        word_probabilities /= word_probabilities.sum(
            axis=1, keepdims=True
        )
    word_counts = np.maximum(
        1,
        np.round(
            words_per_image
            * rng.lognormal(0.0, words_dispersion, size=n_samples)
        ).astype(np.int64),
    )
    bow = np.empty((n_samples, bow_dim))
    for index in range(n_samples):
        bow[index] = rng.multinomial(
            word_counts[index], word_probabilities[index]
        )
    bow_view = bow.T.copy()  # (W, N), non-negative counts

    def nuisance_load(dim: int, factors: np.ndarray) -> np.ndarray:
        if n_nuisance_factors == 0 or nuisance_strength == 0.0:
            return np.zeros((dim, factors.shape[0]))
        loadings = rng.standard_normal((dim, factors.shape[1]))
        loadings /= np.maximum(np.linalg.norm(loadings, axis=0), 1e-12)
        return nuisance_strength * loadings @ factors.T

    # Continuous views: class mean + topic-driven shared factors +
    # pairwise nuisance + noise.
    correlogram_loadings = rng.standard_normal(
        (correlogram_dim, n_topics)
    ) / np.sqrt(n_topics)
    texture_loadings = rng.standard_normal(
        (texture_dim, n_topics)
    ) / np.sqrt(n_topics)
    def signal_load(dim: int) -> np.ndarray:
        if n_signal_factors == 0 or signal_strength == 0.0:
            return np.zeros((dim, n_samples))
        loadings = rng.standard_normal((dim, n_signal_factors))
        loadings /= np.maximum(np.linalg.norm(loadings, axis=0), 1e-12)
        return signal_strength * loadings @ signal_factors.T

    correlogram_view = (
        correlogram_centers[labels].T
        + 2.0 * correlogram_loadings @ mixtures.T
        + signal_load(correlogram_dim)
        + nuisance_load(correlogram_dim, nuisance_bow_corr)
        + nuisance_load(correlogram_dim, nuisance_corr_tex)
        + noise_std * rng.standard_normal((correlogram_dim, n_samples))
    )
    texture_view = (
        texture_centers[labels].T
        + 2.0 * texture_loadings @ mixtures.T
        + signal_load(texture_dim)
        + nuisance_load(texture_dim, nuisance_bow_tex)
        + nuisance_load(texture_dim, nuisance_corr_tex)
        + noise_std * rng.standard_normal((texture_dim, n_samples))
    )

    if gain_dispersion > 0.0:
        correlogram_view = correlogram_view * rng.lognormal(
            0.0, gain_dispersion, size=n_samples
        )
        texture_view = texture_view * rng.lognormal(
            0.0, gain_dispersion, size=n_samples
        )

    concepts = tuple(
        CONCEPTS[index] if index < len(CONCEPTS) else f"class{index}"
        for index in range(n_classes)
    )
    return MultiviewDataset(
        views=[bow_view, correlogram_view, texture_view],
        labels=labels,
        name="nuswide-like",
        metadata={
            "n_classes": n_classes,
            "concepts": concepts,
            "n_topics": n_topics,
            "sibling_closeness": sibling_closeness,
        },
    )


def stream_nuswide_like(
    n_samples: int = 2000,
    dims=DEFAULT_DIMS,
    *,
    chunk_size: int = 256,
    n_classes: int = 10,
    n_topics: int = 40,
    topic_concentration: float = 0.3,
    class_separation: float = 0.35,
    sibling_closeness: float = 0.2,
    words_per_image: int = 150,
    words_dispersion: float = 0.0,
    noise_std: float = 2.5,
    gain_dispersion: float = 0.0,
    n_signal_factors: int = 5,
    signal_strength: float = 1.5,
    n_nuisance_factors: int = 6,
    nuisance_strength: float = 2.0,
    random_state=None,
):
    """Chunked NUS-WIDE-like stream — images are generated on demand.

    Same topic-model geometry as :func:`make_nuswide_like`: class topic
    priors, sibling class centers, and every loading matrix are drawn once
    from a dedicated seed; each chunk of images (BoW histograms plus the
    two continuous views) is then sampled lazily from its own derived
    seed. At most ``chunk_size`` images are resident at a time and every
    pass over the stream yields identical chunks. The realization for a
    given seed differs from the batch factory's (different draw order);
    the distribution is identical.

    Returns
    -------
    repro.streaming.views.GeneratorViewStream
    """
    from repro.streaming.views import GeneratorViewStream

    if n_samples < 1:
        raise DatasetError(f"n_samples must be >= 1, got {n_samples}")
    if n_classes < 2:
        raise DatasetError(f"n_classes must be >= 2, got {n_classes}")
    dims = tuple(int(d) for d in dims)
    if len(dims) != 3:
        raise DatasetError(f"dims must have 3 entries, got {dims}")
    root = check_seed_sequence(random_state)
    rng = chunk_rng(root, 0)  # structure draws only
    bow_dim, correlogram_dim, texture_dim = dims

    topics = rng.dirichlet(np.full(bow_dim, 0.1), size=n_topics)
    class_topic_priors = np.empty((n_classes, n_topics))
    for cls in range(0, n_classes, 2):
        base = rng.dirichlet(np.full(n_topics, topic_concentration))
        class_topic_priors[cls] = base
        if cls + 1 < n_classes:
            fresh = rng.dirichlet(np.full(n_topics, topic_concentration))
            blended = (
                (1.0 - sibling_closeness) * base + sibling_closeness * fresh
            )
            class_topic_priors[cls + 1] = blended / blended.sum()

    def sibling_centers(dim: int) -> np.ndarray:
        centers = np.empty((n_classes, dim))
        for cls in range(0, n_classes, 2):
            base = rng.standard_normal(dim) * class_separation
            centers[cls] = base
            if cls + 1 < n_classes:
                offset = rng.standard_normal(dim) * class_separation
                centers[cls + 1] = (
                    base + sibling_closeness * (offset - base)
                )
        return centers

    correlogram_centers = sibling_centers(correlogram_dim)
    texture_centers = sibling_centers(texture_dim)

    if n_signal_factors > 0:
        rates = np.where(
            rng.random((n_classes, n_signal_factors)) < 0.5, 0.1, 0.9
        )
        for k in range(n_signal_factors):
            while np.ptp(rates[:, k]) == 0.0:
                rates[:, k] = np.where(rng.random(n_classes) < 0.5, 0.1, 0.9)
    else:
        rates = np.zeros((n_classes, 0))

    def unit_rows(shape) -> np.ndarray:
        directions = rng.standard_normal(shape)
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        return directions

    def unit_columns(shape) -> np.ndarray:
        loadings = rng.standard_normal(shape)
        loadings /= np.maximum(np.linalg.norm(loadings, axis=0), 1e-12)
        return loadings

    # Word-tilt directions (signal + the two bow-coupled nuisances) and
    # loading matrices of the continuous views — all structure.
    bow_tilts = []
    if n_signal_factors > 0 and signal_strength > 0.0:
        bow_tilts.append(
            (0.4 * signal_strength, unit_rows((n_signal_factors, bow_dim)))
        )
    use_nuisance = n_nuisance_factors > 0 and nuisance_strength > 0.0
    if use_nuisance:
        bow_tilts.append(
            (
                0.25 * nuisance_strength,
                unit_rows((n_nuisance_factors, bow_dim)),
            )
        )
        bow_tilts.append(
            (
                0.25 * nuisance_strength,
                unit_rows((n_nuisance_factors, bow_dim)),
            )
        )
    correlogram_loadings = rng.standard_normal(
        (correlogram_dim, n_topics)
    ) / np.sqrt(n_topics)
    texture_loadings = rng.standard_normal(
        (texture_dim, n_topics)
    ) / np.sqrt(n_topics)
    use_signal = n_signal_factors > 0 and signal_strength > 0.0
    signal_loads = {
        key: unit_columns((dim, n_signal_factors)) if use_signal else None
        for key, dim in (
            ("corr", correlogram_dim),
            ("tex", texture_dim),
        )
    }
    nuisance_loads = {
        key: unit_columns((dim, n_nuisance_factors)) if use_nuisance else None
        for key, dim in (
            (("corr", "bow_corr"), correlogram_dim),
            (("corr", "corr_tex"), correlogram_dim),
            (("tex", "bow_tex"), texture_dim),
            (("tex", "corr_tex"), texture_dim),
        )
    }

    def sample_chunk(index: int, start: int, stop: int):
        rng = chunk_rng(root, index + 1)
        n = stop - start
        labels = rng.integers(0, n_classes, size=n)
        mixtures = np.empty((n, n_topics))
        for cls in range(n_classes):
            members = np.flatnonzero(labels == cls)
            if members.size:
                mixtures[members] = rng.dirichlet(
                    class_topic_priors[cls] * n_topics + 0.05,
                    size=members.size,
                )
        if n_signal_factors > 0:
            fired = rng.random((n, n_signal_factors)) < rates[labels]
            signal_factors = fired * rng.exponential(
                1.0, size=(n, n_signal_factors)
            )
        else:
            signal_factors = np.zeros((n, 0))
        nuisance_bow_corr = rng.standard_normal((n, n_nuisance_factors))
        nuisance_bow_tex = rng.standard_normal((n, n_nuisance_factors))
        nuisance_corr_tex = rng.standard_normal((n, n_nuisance_factors))

        word_probabilities = mixtures @ topics
        # Factor sources in the same order bow_tilts was assembled.
        tilt_sources = []
        if use_signal:
            tilt_sources.append(signal_factors)
        if use_nuisance:
            tilt_sources.extend([nuisance_bow_corr, nuisance_bow_tex])
        if bow_tilts:
            tilt = np.zeros((n, bow_dim))
            for (scale, directions), factors in zip(bow_tilts, tilt_sources):
                tilt += scale * (factors @ directions)
            word_probabilities = word_probabilities * np.exp(tilt)
            word_probabilities /= word_probabilities.sum(
                axis=1, keepdims=True
            )
        word_counts = np.maximum(
            1,
            np.round(
                words_per_image
                * rng.lognormal(0.0, words_dispersion, size=n)
            ).astype(np.int64),
        )
        bow = np.empty((n, bow_dim))
        for i in range(n):
            bow[i] = rng.multinomial(word_counts[i], word_probabilities[i])

        def maybe(load, factors, dim):
            if load is None:
                return np.zeros((dim, n))
            return nuisance_strength * load @ factors.T

        def signal_part(key, dim):
            if signal_loads[key] is None:
                return np.zeros((dim, n))
            return signal_strength * signal_loads[key] @ signal_factors.T

        correlogram_view = (
            correlogram_centers[labels].T
            + 2.0 * correlogram_loadings @ mixtures.T
            + signal_part("corr", correlogram_dim)
            + maybe(
                nuisance_loads[("corr", "bow_corr")],
                nuisance_bow_corr,
                correlogram_dim,
            )
            + maybe(
                nuisance_loads[("corr", "corr_tex")],
                nuisance_corr_tex,
                correlogram_dim,
            )
            + noise_std * rng.standard_normal((correlogram_dim, n))
        )
        texture_view = (
            texture_centers[labels].T
            + 2.0 * texture_loadings @ mixtures.T
            + signal_part("tex", texture_dim)
            + maybe(
                nuisance_loads[("tex", "bow_tex")],
                nuisance_bow_tex,
                texture_dim,
            )
            + maybe(
                nuisance_loads[("tex", "corr_tex")],
                nuisance_corr_tex,
                texture_dim,
            )
            + noise_std * rng.standard_normal((texture_dim, n))
        )
        if gain_dispersion > 0.0:
            correlogram_view = correlogram_view * rng.lognormal(
                0.0, gain_dispersion, size=n
            )
            texture_view = texture_view * rng.lognormal(
                0.0, gain_dispersion, size=n
            )
        return bow.T.copy(), correlogram_view, texture_view

    return GeneratorViewStream(
        sample_chunk,
        n_samples,
        dims,
        chunk_size=chunk_size,
        name="nuswide-like-stream",
    )
