"""Synthetic multi-view dataset generators.

The paper evaluates on SecStr (protein secondary structure), the UCI
Internet-Ads set, and the NUS-WIDE mammal subset — none of which can be
downloaded in this offline environment. Each generator here reproduces the
*statistical structure* that drives the corresponding experiment (view
dimensions, sparsity, class geometry, and — crucially — class signal
carried by the joint, higher-order dependence of all views); see DESIGN.md
§4 for the substitution rationale.
"""

from repro.datasets.synthetic import (
    MultiviewDataset,
    make_multiview_latent,
    stream_multiview_latent,
)
from repro.datasets.secstr import make_secstr_like, stream_secstr_like
from repro.datasets.ads import make_ads_like, stream_ads_like
from repro.datasets.nuswide import make_nuswide_like, stream_nuswide_like
from repro.datasets.splits import (
    sample_labeled_indices,
    split_validation,
    train_test_split_indices,
)

__all__ = [
    "MultiviewDataset",
    "make_ads_like",
    "make_multiview_latent",
    "make_nuswide_like",
    "make_secstr_like",
    "sample_labeled_indices",
    "split_validation",
    "stream_ads_like",
    "stream_multiview_latent",
    "stream_nuswide_like",
    "stream_secstr_like",
    "train_test_split_indices",
]
