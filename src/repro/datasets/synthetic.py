"""Generic latent-factor multi-view generator.

The construction is designed so that the *high-order* (order-``m``)
correlation carries class signal that pairwise correlation alone dilutes —
the regime the paper's Fig. 1 motivates:

* **signal factors** are shared by all views and have *skewed* (non-zero
  third moment) distributions with class-dependent means, so they leave a
  strong imprint on the order-3 covariance tensor;
* **pairwise nuisance factors** are zero-mean *Gaussian* and shared by one
  pair of views only: they inflate pairwise covariances with
  class-irrelevant directions (distracting CCA/CCA-LS) while their
  symmetric distribution contributes nothing to odd-order joint moments,
  leaving the covariance tensor comparatively clean for TCCA.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

import numpy as np

from repro.exceptions import DatasetError
from repro.utils.rng import check_random_state, check_seed_sequence, chunk_rng

__all__ = [
    "MultiviewDataset",
    "make_multiview_latent",
    "stream_multiview_latent",
]


@dataclass
class MultiviewDataset:
    """A multi-view dataset: views ``X_p (d_p × N)``, labels, and metadata."""

    views: list[np.ndarray]
    labels: np.ndarray
    name: str = "multiview"
    metadata: dict = field(default_factory=dict)

    @property
    def n_views(self) -> int:
        """Number of views."""
        return len(self.views)

    @property
    def n_samples(self) -> int:
        """Shared sample count ``N``."""
        return int(self.views[0].shape[1])

    @property
    def dims(self) -> tuple[int, ...]:
        """Feature dimension of each view."""
        return tuple(view.shape[0] for view in self.views)

    def subset(self, indices) -> "MultiviewDataset":
        """A copy restricted to the given sample indices."""
        indices = np.asarray(indices)
        return MultiviewDataset(
            views=[view[:, indices].copy() for view in self.views],
            labels=self.labels[indices].copy(),
            name=self.name,
            metadata=dict(self.metadata),
        )

    def stream(self, chunk_size: int = 256):
        """A :class:`~repro.streaming.views.ViewStream` over this dataset.

        Adapts the resident views to the chunked-iteration protocol so
        streaming consumers (``TCCA.fit_stream``, the accumulators) can be
        run against any materialized dataset. For data that should *never*
        be fully resident, use the ``stream_*_like`` factories instead.
        """
        from repro.streaming.views import ArrayViewStream

        return ArrayViewStream(self.views, chunk_size=chunk_size)


def _skewed_noise(rng: np.random.Generator, size, shape: float = 2.0):
    """Centered, unit-variance gamma noise (third moment ``2/sqrt(shape)``)."""
    raw = rng.gamma(shape, 1.0, size=size)
    return (raw - shape) / np.sqrt(shape)


def make_multiview_latent(
    n_samples: int = 500,
    dims=(30, 25, 20),
    n_classes: int = 2,
    *,
    n_signal_factors: int = 4,
    class_separation: float = 1.0,
    signal_strength: float = 1.0,
    n_nuisance_factors: int = 4,
    nuisance_strength: float = 1.5,
    noise_std: float = 1.0,
    random_state=None,
) -> MultiviewDataset:
    """Sample a latent-factor multi-view classification dataset.

    Parameters
    ----------
    n_samples, dims, n_classes:
        Basic sizes. ``dims`` gives one feature dimension per view.
    n_signal_factors:
        Number of skewed latent factors shared by *all* views, with
        class-dependent means (the class signal).
    class_separation:
        Scale of the class-mean offsets of the signal factors.
    signal_strength:
        Loading scale of the signal factors in every view.
    n_nuisance_factors:
        Number of Gaussian nuisance factors *per view pair*; each is shared
        by exactly one pair of views and carries no class information.
    nuisance_strength:
        Loading scale of the pairwise nuisance factors.
    noise_std:
        Standard deviation of the iid Gaussian feature noise.
    random_state:
        Seed.

    Returns
    -------
    MultiviewDataset
        Views of shape ``(dims[p], n_samples)`` and integer labels in
        ``[0, n_classes)``.
    """
    if n_samples < 2:
        raise DatasetError(f"n_samples must be >= 2, got {n_samples}")
    if n_classes < 2:
        raise DatasetError(f"n_classes must be >= 2, got {n_classes}")
    dims = tuple(int(d) for d in dims)
    if len(dims) < 2 or any(d < 1 for d in dims):
        raise DatasetError(
            f"dims must list >= 2 positive view dimensions, got {dims}"
        )
    if n_signal_factors < 1:
        raise DatasetError(
            f"n_signal_factors must be >= 1, got {n_signal_factors}"
        )
    rng = check_random_state(random_state)
    n_views = len(dims)

    labels = rng.integers(0, n_classes, size=n_samples)
    # Signal factors are class-dependent *activations*: factor k fires with
    # a class-specific probability and a positive skewed magnitude when it
    # does. Presence/absence with class-dependent rates gives the factors a
    # non-zero third cumulant aligned with the classes — the signal the
    # covariance *tensor* sees — while still contributing (class-relevant)
    # second-order structure.
    low = float(np.clip(0.5 - 0.4 * class_separation, 0.02, 0.5))
    high = float(np.clip(0.5 + 0.4 * class_separation, 0.5, 0.98))
    activation_probabilities = np.where(
        rng.random((n_classes, n_signal_factors)) < 0.5, low, high
    )
    # Redraw factors that ended up uninformative (same rate for every class).
    for k in range(n_signal_factors):
        while np.ptp(activation_probabilities[:, k]) == 0.0:
            activation_probabilities[:, k] = np.where(
                rng.random(n_classes) < 0.5, low, high
            )
    active = (
        rng.random((n_samples, n_signal_factors))
        < activation_probabilities[labels]
    )
    magnitudes = rng.exponential(1.0, size=(n_samples, n_signal_factors))
    factors = active * magnitudes

    loadings = []
    for dim in dims:
        load = rng.standard_normal((dim, n_signal_factors))
        load /= np.maximum(np.linalg.norm(load, axis=0), 1e-12)
        loadings.append(load * signal_strength)

    views = [
        loadings[p] @ factors.T + noise_std * rng.standard_normal(
            (dims[p], n_samples)
        )
        for p in range(n_views)
    ]

    # Pairwise Gaussian nuisance: class-free structure visible to pairwise
    # covariances but invisible to odd-order joint moments.
    if n_nuisance_factors > 0 and nuisance_strength > 0.0:
        for p, q in combinations(range(n_views), 2):
            shared = rng.standard_normal((n_samples, n_nuisance_factors))
            for view_index in (p, q):
                load = rng.standard_normal(
                    (dims[view_index], n_nuisance_factors)
                )
                load /= np.maximum(np.linalg.norm(load, axis=0), 1e-12)
                views[view_index] = (
                    views[view_index]
                    + nuisance_strength * load @ shared.T
                )

    return MultiviewDataset(
        views=views,
        labels=labels,
        name="multiview-latent",
        metadata={
            "n_classes": n_classes,
            "n_signal_factors": n_signal_factors,
            "n_nuisance_factors": n_nuisance_factors,
            "class_separation": class_separation,
            "nuisance_strength": nuisance_strength,
            "noise_std": noise_std,
        },
    )


def stream_multiview_latent(
    n_samples: int = 500,
    dims=(30, 25, 20),
    n_classes: int = 2,
    *,
    chunk_size: int = 256,
    n_signal_factors: int = 4,
    class_separation: float = 1.0,
    signal_strength: float = 1.0,
    n_nuisance_factors: int = 4,
    nuisance_strength: float = 1.5,
    noise_std: float = 1.0,
    random_state=None,
):
    """Chunked latent-factor stream — samples are generated on demand.

    Same generative model as :func:`make_multiview_latent` (shared skewed
    signal factors, pairwise Gaussian nuisance), but the latent structure
    (class activation rates, loadings) is drawn once from a dedicated seed
    and each chunk of samples is generated lazily from its own derived
    seed, so no more than ``chunk_size`` samples are ever resident and the
    stream is re-iterable. Note the realization for a given seed differs
    from the batch factory's (different draw order); the *distribution* is
    identical.

    Returns
    -------
    repro.streaming.views.GeneratorViewStream
    """
    from repro.streaming.views import GeneratorViewStream

    if n_samples < 2:
        raise DatasetError(f"n_samples must be >= 2, got {n_samples}")
    if n_classes < 2:
        raise DatasetError(f"n_classes must be >= 2, got {n_classes}")
    dims = tuple(int(d) for d in dims)
    if len(dims) < 2 or any(d < 1 for d in dims):
        raise DatasetError(
            f"dims must list >= 2 positive view dimensions, got {dims}"
        )
    if n_signal_factors < 1:
        raise DatasetError(
            f"n_signal_factors must be >= 1, got {n_signal_factors}"
        )
    root = check_seed_sequence(random_state)
    structure_rng = chunk_rng(root, 0)
    n_views = len(dims)

    # Latent structure, drawn once (cf. the body of make_multiview_latent).
    low = float(np.clip(0.5 - 0.4 * class_separation, 0.02, 0.5))
    high = float(np.clip(0.5 + 0.4 * class_separation, 0.5, 0.98))
    activation_probabilities = np.where(
        structure_rng.random((n_classes, n_signal_factors)) < 0.5, low, high
    )
    for k in range(n_signal_factors):
        while np.ptp(activation_probabilities[:, k]) == 0.0:
            activation_probabilities[:, k] = np.where(
                structure_rng.random(n_classes) < 0.5, low, high
            )
    loadings = []
    for dim in dims:
        load = structure_rng.standard_normal((dim, n_signal_factors))
        load /= np.maximum(np.linalg.norm(load, axis=0), 1e-12)
        loadings.append(load * signal_strength)
    pair_loadings = {}
    if n_nuisance_factors > 0 and nuisance_strength > 0.0:
        for p, q in combinations(range(n_views), 2):
            for view_index in (p, q):
                load = structure_rng.standard_normal(
                    (dims[view_index], n_nuisance_factors)
                )
                load /= np.maximum(np.linalg.norm(load, axis=0), 1e-12)
                pair_loadings[(p, q), view_index] = load

    def sample_chunk(index: int, start: int, stop: int):
        rng = chunk_rng(root, index + 1)
        n = stop - start
        labels = rng.integers(0, n_classes, size=n)
        active = (
            rng.random((n, n_signal_factors))
            < activation_probabilities[labels]
        )
        magnitudes = rng.exponential(1.0, size=(n, n_signal_factors))
        factors = active * magnitudes
        views = [
            loadings[p] @ factors.T
            + noise_std * rng.standard_normal((dims[p], n))
            for p in range(n_views)
        ]
        if pair_loadings:
            for p, q in combinations(range(n_views), 2):
                shared = rng.standard_normal((n, n_nuisance_factors))
                for view_index in (p, q):
                    views[view_index] = views[view_index] + (
                        nuisance_strength
                        * pair_loadings[(p, q), view_index] @ shared.T
                    )
        return tuple(views)

    return GeneratorViewStream(
        sample_chunk,
        n_samples,
        dims,
        chunk_size=chunk_size,
        name="multiview-latent-stream",
    )
