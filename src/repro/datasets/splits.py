"""Index bookkeeping for the paper's evaluation protocol.

Every experiment uses: a handful of randomly drawn labeled instances,
20% of the remaining (test / unlabeled) data held out for validation-based
parameter selection, and transductive evaluation on the rest.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DatasetError
from repro.utils.rng import check_random_state

__all__ = [
    "sample_labeled_indices",
    "split_validation",
    "train_test_split_indices",
]


def sample_labeled_indices(
    labels,
    n_labeled: int,
    *,
    per_class: bool = False,
    random_state=None,
) -> np.ndarray:
    """Draw labeled-sample indices.

    Parameters
    ----------
    labels:
        Full label vector.
    n_labeled:
        Total labeled count (``per_class=False``) or labeled count *per
        class* (``per_class=True`` — the NUS-WIDE protocol with
        {4, 6, 8} labeled images per concept).
    per_class:
        See above.
    random_state:
        Seed.

    The draw is retried (stratified fallback) so every class has at least
    one labeled instance when ``per_class=False`` — a classifier cannot be
    trained otherwise.
    """
    labels = np.asarray(labels)
    rng = check_random_state(random_state)
    classes = np.unique(labels)
    if per_class:
        chosen = []
        for cls in classes:
            members = np.flatnonzero(labels == cls)
            if members.size < n_labeled:
                raise DatasetError(
                    f"class {cls!r} has only {members.size} samples, "
                    f"cannot draw {n_labeled} labeled per class"
                )
            chosen.append(rng.choice(members, size=n_labeled, replace=False))
        return np.sort(np.concatenate(chosen))

    if n_labeled < classes.shape[0]:
        raise DatasetError(
            f"n_labeled={n_labeled} is smaller than the number of classes "
            f"{classes.shape[0]}"
        )
    if n_labeled > labels.shape[0]:
        raise DatasetError(
            f"n_labeled={n_labeled} exceeds the dataset size "
            f"{labels.shape[0]}"
        )
    for _attempt in range(50):
        chosen = rng.choice(labels.shape[0], size=n_labeled, replace=False)
        if np.unique(labels[chosen]).shape[0] == classes.shape[0]:
            return np.sort(chosen)
    # Stratified fallback: one guaranteed sample per class, rest random.
    chosen = [
        rng.choice(np.flatnonzero(labels == cls)) for cls in classes
    ]
    remaining = np.setdiff1d(np.arange(labels.shape[0]), chosen)
    extra = rng.choice(
        remaining, size=n_labeled - len(chosen), replace=False
    )
    return np.sort(np.concatenate([np.asarray(chosen), extra]))


def split_validation(
    candidate_indices,
    *,
    fraction: float = 0.2,
    random_state=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Split indices into (validation, evaluation) parts.

    The paper holds out 20% of the test/unlabeled data for validation.
    """
    candidate_indices = np.asarray(candidate_indices)
    if not 0.0 < fraction < 1.0:
        raise DatasetError(f"fraction must be in (0, 1), got {fraction}")
    rng = check_random_state(random_state)
    shuffled = rng.permutation(candidate_indices)
    n_validation = max(1, int(round(fraction * candidate_indices.shape[0])))
    if n_validation >= candidate_indices.shape[0]:
        raise DatasetError(
            "validation split would consume every candidate index"
        )
    return np.sort(shuffled[:n_validation]), np.sort(shuffled[n_validation:])


def train_test_split_indices(
    n_samples: int,
    *,
    test_fraction: float = 0.5,
    random_state=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Random (train, test) index split of ``range(n_samples)``."""
    if n_samples < 2:
        raise DatasetError(f"n_samples must be >= 2, got {n_samples}")
    if not 0.0 < test_fraction < 1.0:
        raise DatasetError(
            f"test_fraction must be in (0, 1), got {test_fraction}"
        )
    rng = check_random_state(random_state)
    permuted = rng.permutation(n_samples)
    n_test = max(1, int(round(test_fraction * n_samples)))
    n_test = min(n_test, n_samples - 1)
    return np.sort(permuted[n_test:]), np.sort(permuted[:n_test])
