"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause while
still being able to distinguish finer-grained failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ValidationError(ReproError, ValueError):
    """Raised when user-supplied inputs fail validation.

    Examples include view matrices with mismatched sample counts, empty view
    lists, negative regularization parameters, or requested subspace
    dimensions exceeding what the data supports.
    """


class ShapeError(ValidationError):
    """Raised when an array has the wrong number of dimensions or axis sizes."""


class PersistenceError(ValidationError):
    """Raised when a saved artifact cannot be trusted or understood.

    Covers corrupted or truncated archives, payload bytes that no longer
    match the content hash recorded in the header, and provenance chains
    that do not verify — every case where the file on disk is not the
    artifact it claims to be. Subclasses :class:`ValidationError` so
    callers that already guard model loading keep working.
    """


class NotFittedError(ReproError, RuntimeError):
    """Raised when ``transform``-like methods are called before ``fit``."""


class ConvergenceWarning(UserWarning):
    """Warning emitted when an iterative solver stops before converging."""


class DecompositionError(ReproError, RuntimeError):
    """Raised when a tensor decomposition cannot proceed.

    Typical causes are degenerate inputs (an all-zero tensor has no
    meaningful rank-1 direction) or numerically singular least-squares
    systems inside ALS.
    """


class DatasetError(ReproError, ValueError):
    """Raised when a synthetic dataset generator receives invalid settings."""


class ExperimentError(ReproError, RuntimeError):
    """Raised when an experiment driver is configured inconsistently."""


class ReliabilityError(ReproError, RuntimeError):
    """Base class for failures surfaced by the reliability layer."""


class RetryExhaustedError(ReliabilityError):
    """Raised when a :class:`~repro.reliability.RetryPolicy` gives up.

    Carries the number of attempts made and chains (``__cause__``) the
    last underlying error so callers can inspect what kept failing.
    """

    def __init__(self, message: str, *, attempts: int = 0):
        super().__init__(message)
        self.attempts = int(attempts)


class InjectedFault(ReliabilityError):
    """Raised by a :class:`~repro.reliability.FaultPlan` ``fail`` rule.

    Only ever raised under an active fault plan — seeing it outside a
    fault-injection test means a plan leaked.
    """


class WorkerKilled(InjectedFault):
    """Injected stand-in for a worker process dying mid-task."""


class ServerOverloaded(ReliabilityError):
    """Raised when bounded admission rejects new serving work.

    ``retry_after`` is the suggested wait (seconds) before retrying;
    the HTTP layer surfaces it as a ``Retry-After`` header on the 429.
    """

    def __init__(self, message: str, *, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = float(retry_after)


class ReliabilityWarning(UserWarning):
    """Warning emitted when the library degrades gracefully.

    Examples: a broken process pool demoted to threads, a corrupt shard
    quarantined out of a reduce.
    """


class NumericalWarning(UserWarning):
    """Warning emitted when a numerical guard kicks in.

    Example: whitening clips near-zero eigenvalues of an ill-conditioned
    regularized covariance instead of amplifying noise directions.
    """
