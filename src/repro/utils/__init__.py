"""Shared utilities: input validation, preprocessing, and RNG handling."""

from repro.utils.rng import check_random_state, spawn_rngs
from repro.utils.validation import (
    check_positive_int,
    check_square,
    check_views,
    ensure_2d,
)
from repro.utils.preprocessing import (
    center_columns,
    center_views,
    normalize_columns,
    unit_scale_views,
)

__all__ = [
    "center_columns",
    "center_views",
    "check_positive_int",
    "check_random_state",
    "check_square",
    "check_views",
    "ensure_2d",
    "normalize_columns",
    "spawn_rngs",
    "unit_scale_views",
]
