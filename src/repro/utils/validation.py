"""Input validation helpers used across the library.

The conventions follow the paper: a multi-view dataset is a list of view
matrices ``X_p`` of shape ``(d_p, N)`` — features on the rows, the shared
sample axis on the columns.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError, ValidationError

__all__ = ["check_positive_int", "check_square", "check_views", "ensure_2d"]


def ensure_2d(
    array,
    name: str = "array",
    *,
    require_finite: bool = True,
    dtype=np.float64,
) -> np.ndarray:
    """Convert to a float 2-D :class:`numpy.ndarray`, validating shape.

    ``require_finite=False`` skips the NaN/Inf rejection — only for
    callers that run their own non-finite screening afterwards (the
    streaming accumulators' ``nan_policy`` machinery); everything else
    keeps the strict default. ``dtype=None`` preserves a float32/float64
    input dtype (non-float inputs still promote to float64) — the
    mixed-precision kernel layer's contract; the float64 default is the
    estimator-surface contract.
    """
    if dtype is None:
        out = np.asarray(array)
        if out.dtype not in (np.float32, np.float64):
            out = out.astype(np.float64)
    else:
        out = np.asarray(array, dtype=dtype)
    if out.ndim != 2:
        raise ShapeError(f"{name} must be 2-dimensional, got ndim={out.ndim}")
    if out.size == 0:
        raise ShapeError(f"{name} must be non-empty, got shape {out.shape}")
    if require_finite and not np.all(np.isfinite(out)):
        raise ValidationError(f"{name} contains NaN or infinite entries")
    return out


def check_views(
    views,
    *,
    min_views: int = 2,
    same_samples: bool = True,
    require_finite: bool = True,
    dtype=np.float64,
) -> list[np.ndarray]:
    """Validate a list of view matrices ``X_p`` of shape ``(d_p, N)``.

    Parameters
    ----------
    views:
        Sequence of array-likes, one per view.
    min_views:
        Minimum number of views required (2 for CCA, 2+ for TCCA).
    same_samples:
        Require all views to share the same number of columns ``N``.
    require_finite:
        Reject NaN/Inf entries (the default). Only the accumulators'
        ``nan_policy`` machinery — which screens non-finite samples
        itself, with a chunk-indexed error or skip-and-count — passes
        ``False``.

    Returns
    -------
    list of numpy.ndarray
        Validated float64 copies of the views.
    """
    if views is None:
        raise ValidationError("views must be a sequence of matrices, got None")
    views = list(views)
    if len(views) < min_views:
        raise ValidationError(
            f"need at least {min_views} views, got {len(views)}"
        )
    checked = [
        ensure_2d(
            view,
            name=f"views[{index}]",
            require_finite=require_finite,
            dtype=dtype,
        )
        for index, view in enumerate(views)
    ]
    if same_samples:
        sample_counts = {view.shape[1] for view in checked}
        if len(sample_counts) != 1:
            raise ValidationError(
                "all views must have the same number of samples (columns); "
                f"got column counts {sorted(sample_counts)}"
            )
    return checked


def check_square(matrix, name: str = "matrix") -> np.ndarray:
    """Validate a square 2-D matrix."""
    out = ensure_2d(matrix, name=name)
    if out.shape[0] != out.shape[1]:
        raise ShapeError(f"{name} must be square, got shape {out.shape}")
    return out


def check_positive_int(value, name: str = "value", *, minimum: int = 1) -> int:
    """Validate an integer parameter with a lower bound."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValidationError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if value < minimum:
        raise ValidationError(f"{name} must be >= {minimum}, got {value}")
    return value
