"""Random-number-generator plumbing.

Every stochastic routine in the library accepts a ``random_state`` argument
and converts it through :func:`check_random_state`, so results are
reproducible given a seed and independent streams can be spawned for
multi-run experiment protocols.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError

__all__ = ["check_random_state", "spawn_rngs"]


def check_random_state(random_state) -> np.random.Generator:
    """Coerce ``random_state`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    random_state:
        ``None`` (fresh nondeterministic generator), an ``int`` seed, a
        :class:`numpy.random.SeedSequence`, or an existing ``Generator``
        (returned unchanged).

    Returns
    -------
    numpy.random.Generator
    """
    if random_state is None:
        return np.random.default_rng()
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, (int, np.integer, np.random.SeedSequence)):
        return np.random.default_rng(random_state)
    raise ValidationError(
        "random_state must be None, an int, a SeedSequence, or a Generator; "
        f"got {type(random_state).__name__}"
    )


def spawn_rngs(random_state, n: int) -> list[np.random.Generator]:
    """Create ``n`` independent generators derived from ``random_state``.

    Used by the experiment protocol to give each of the paper's five random
    labeled draws its own stream, so adding runs never perturbs earlier ones.
    """
    if n < 0:
        raise ValidationError(f"number of generators must be >= 0, got {n}")
    root = check_random_state(random_state)
    seeds = root.integers(0, 2**63 - 1, size=n)
    return [np.random.default_rng(int(seed)) for seed in seeds]
