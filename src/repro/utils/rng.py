"""Random-number-generator plumbing.

Every stochastic routine in the library accepts a ``random_state`` argument
and converts it through :func:`check_random_state`, so results are
reproducible given a seed and independent streams can be spawned for
multi-run experiment protocols.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError

__all__ = ["check_random_state", "check_seed_sequence", "chunk_rng", "spawn_rngs"]


def check_random_state(random_state) -> np.random.Generator:
    """Coerce ``random_state`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    random_state:
        ``None`` (fresh nondeterministic generator), an ``int`` seed, a
        :class:`numpy.random.SeedSequence`, or an existing ``Generator``
        (returned unchanged).

    Returns
    -------
    numpy.random.Generator
    """
    if random_state is None:
        return np.random.default_rng()
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, (int, np.integer, np.random.SeedSequence)):
        return np.random.default_rng(random_state)
    raise ValidationError(
        "random_state must be None, an int, a SeedSequence, or a Generator; "
        f"got {type(random_state).__name__}"
    )


def check_seed_sequence(random_state) -> np.random.SeedSequence:
    """Coerce ``random_state`` into a :class:`numpy.random.SeedSequence`.

    Streaming dataset factories need *re-iterable* randomness — every pass
    over the stream must regenerate identical chunks — so they key each
    chunk off a seed sequence rather than sharing one stateful generator.
    ``None`` draws fresh entropy once (the stream stays self-consistent
    but differs between factory calls); stateful ``Generator`` instances
    are rejected because replaying them is impossible.
    """
    if random_state is None:
        return np.random.SeedSequence()
    if isinstance(random_state, np.random.SeedSequence):
        return random_state
    if isinstance(random_state, (int, np.integer)):
        return np.random.SeedSequence(int(random_state))
    raise ValidationError(
        "streaming factories need a replayable seed: None, an int, or a "
        f"SeedSequence; got {type(random_state).__name__}"
    )


#: namespaces chunk_rng's spawn keys away from SeedSequence.spawn()'s
#: 0, 1, 2, … children, so deriving both from one root never collides.
_CHUNK_SPAWN_NAMESPACE = 0x5EED_CB00


def chunk_rng(root: np.random.SeedSequence, index: int) -> np.random.Generator:
    """Deterministic generator for chunk ``index`` of a stream.

    Derived via a namespaced ``spawn_key`` so any chunk can be
    (re)generated in isolation and in any order, and so the streams stay
    independent of children the caller makes via ``root.spawn()``. Index
    ``0`` is conventionally the *structure* draw (loadings, class
    geometry) shared by all chunks; sample chunks use ``index >= 1``.
    """
    if index < 0:
        raise ValidationError(f"chunk index must be >= 0, got {index}")
    derived = np.random.SeedSequence(
        entropy=root.entropy,
        spawn_key=root.spawn_key + (_CHUNK_SPAWN_NAMESPACE, int(index)),
    )
    return np.random.default_rng(derived)


def spawn_rngs(random_state, n: int) -> list[np.random.Generator]:
    """Create ``n`` independent generators derived from ``random_state``.

    Used by the experiment protocol to give each of the paper's five random
    labeled draws its own stream, so adding runs never perturbs earlier ones.
    """
    if n < 0:
        raise ValidationError(f"number of generators must be >= 0, got {n}")
    root = check_random_state(random_state)
    seeds = root.integers(0, 2**63 - 1, size=n)
    return [np.random.default_rng(int(seed)) for seed in seeds]
