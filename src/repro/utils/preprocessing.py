"""Preprocessing transforms shared by the estimators and experiments.

The paper assumes each view matrix has been centered (zero mean per feature)
before covariance tensors are formed, and the CAT baseline concatenates
*normalized* features. These helpers implement both operations on the
``(d_p, N)`` layout used throughout the library.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_views, ensure_2d

__all__ = [
    "center_columns",
    "center_views",
    "normalize_columns",
    "unit_scale_views",
]


def center_columns(matrix, *, return_mean: bool = False):
    """Remove the per-feature (row) mean from a ``(d, N)`` matrix.

    Despite the name referring to the sample axis, centering is across
    columns for each row, i.e. every feature ends up with zero mean over the
    ``N`` samples.
    """
    matrix = ensure_2d(matrix, name="matrix")
    mean = matrix.mean(axis=1, keepdims=True)
    centered = matrix - mean
    if return_mean:
        return centered, mean
    return centered


def center_views(views) -> list[np.ndarray]:
    """Center every view of a multi-view dataset."""
    return [center_columns(view) for view in check_views(views, min_views=1)]


def normalize_columns(matrix, *, norm_floor: float = 1e-12) -> np.ndarray:
    """Scale each column (sample) of a ``(d, N)`` matrix to unit L2 norm.

    Columns whose norm falls below ``norm_floor`` are left unscaled to avoid
    amplifying numerical noise.
    """
    matrix = ensure_2d(matrix, name="matrix")
    norms = np.linalg.norm(matrix, axis=0, keepdims=True)
    safe = np.where(norms > norm_floor, norms, 1.0)
    return matrix / safe


def unit_scale_views(views) -> list[np.ndarray]:
    """Normalize every sample of every view to unit norm (CAT baseline prep)."""
    return [normalize_columns(view) for view in check_views(views, min_views=1)]
