"""repro — Tensor Canonical Correlation Analysis for multi-view dimension reduction.

A full reimplementation of Luo et al., "Tensor Canonical Correlation
Analysis for Multi-view Dimension Reduction" (ICDE 2016): the TCCA / KTCCA
estimators, every baseline the paper compares against (CCA, KCCA,
CCA-MAXVAR, CCA-LS, DSE, SSMVD), the tensor-algebra substrate they rest
on, and the evaluation harness that regenerates each table and figure.

Quickstart::

    import numpy as np
    from repro import TCCA
    from repro.datasets import make_multiview_latent

    data = make_multiview_latent(n_samples=400, random_state=0)
    tcca = TCCA(n_components=5).fit(data.views)
    representation = tcca.transform_combined(data.views)  # (N, 3 * 5)
"""

from repro.core import KTCCA, TCCA, multiview_canonical_correlation
from repro.cca import CCA, KCCA, LSCCA, MaxVarCCA
from repro.baselines import DSE, SSMVD, PCA
from repro.api import (
    MultiviewPipeline,
    load_model,
    make_classifier,
    make_reducer,
    save_model,
)
from repro.parallel import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    resolve_executor,
)

__version__ = "1.4.0"

__all__ = [
    "CCA",
    "DSE",
    "KCCA",
    "KTCCA",
    "LSCCA",
    "MaxVarCCA",
    "MultiviewPipeline",
    "PCA",
    "ProcessExecutor",
    "SSMVD",
    "SerialExecutor",
    "TCCA",
    "ThreadExecutor",
    "__version__",
    "load_model",
    "make_classifier",
    "make_reducer",
    "multiview_canonical_correlation",
    "resolve_executor",
    "save_model",
]
