"""Computational-complexity drivers — Figs. 7-10.

The paper plots per-method time and memory against the subspace dimension
on each workload. We rerun each workload's method roster with resource
instrumentation enabled and report the representation-construction cost
(the DR fit — the quantity the paper's curves are dominated by). Absolute
numbers reflect this machine, not the authors' MATLAB testbed; the
assertions of the reproduction are the *orderings*: TCCA above the matrix
CCA methods (tensor of size ∏d_p vs d²), and TCCA below DSE/SSMVD when N
is large (their N×N eigen/optimization problems dominate).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.ads import make_ads_like
from repro.datasets.nuswide import make_nuswide_like
from repro.datasets.secstr import make_secstr_like
from repro.evaluation.resources import measure_resources
from repro.experiments.ads import default_ads_methods
from repro.experiments.kernel import default_kernel_bank, default_kernel_methods
from repro.experiments.methods import ImplicitTCCAMethod, StreamingTCCAMethod
from repro.experiments.nuswide import default_nuswide_methods
from repro.experiments.reporting import ExperimentResult
from repro.experiments.secstr import default_secstr_methods

__all__ = [
    "measure_method_costs",
    "run_complexity_experiment",
]


def measure_method_costs(methods, views, dims) -> dict[str, dict[str, list]]:
    """Time/memory of ``method.groups(views, r)`` for every method and r.

    Returns ``{method: {"dims": [...], "seconds": [...], "memory_mb": [...]}}``.
    """
    costs: dict[str, dict[str, list]] = {}
    for method in methods:
        seconds = []
        memory = []
        for r in dims:
            _groups, usage = measure_resources(method.groups, views, int(r))
            seconds.append(usage.seconds)
            memory.append(usage.peak_memory_mb)
        costs[method.name] = {
            "dims": [int(r) for r in dims],
            "seconds": seconds,
            "memory_mb": memory,
        }
    return costs


def run_complexity_experiment(
    workload: str,
    *,
    n_samples: int | None = None,
    dims=(5, 10, 20, 40),
    random_state: int = 0,
    epsilon: float = 1e-2,
    stream: bool = False,
    chunk_size: int = 512,
    solver: str = "dense",
) -> ExperimentResult:
    """Measure Fig. 7/8/9/10 cost curves for one workload.

    Parameters
    ----------
    workload:
        ``"secstr"`` (Fig. 7), ``"ads"`` (Fig. 8), ``"nuswide"`` (Fig. 9)
        or ``"kernel"`` (Fig. 10).
    n_samples:
        Workload size; defaults chosen per workload so Fig. 7's
        large-N regime (where DSE/SSMVD pay their N×N cost) is visible.
    stream:
        Also measure ``TCCA-STREAM`` — TCCA fitted out-of-core from
        ``chunk_size``-sample minibatches — so the figures report peak
        memory for both the batch and the streaming covariance paths.
        Ignored on the ``"kernel"`` workload (kernel matrices are
        inherently ``N × N``).
    chunk_size:
        Minibatch size of the streaming path.
    solver:
        ``"dense"`` (default) keeps the paper's measured roster.
        ``"implicit"`` or ``"auto"`` additionally measures a
        ``TCCA-IMPLICIT`` row — the tensor-free engine — so the curves
        compare the ``∏ d_p`` path against the factored one. Ignored on
        the ``"kernel"`` workload (KTCCA's tensor is ``N^m``, a regime
        the implicit operator does not cover).
    """
    if workload == "secstr":
        n = n_samples or 2000
        data = make_secstr_like(n, random_state=random_state)
        methods = default_secstr_methods()
        figure = "fig7"
    elif workload == "ads":
        n = n_samples or 800
        data = make_ads_like(
            n, dims=(196, 165, 157), random_state=random_state
        )
        methods = default_ads_methods()
        figure = "fig8"
    elif workload == "nuswide":
        n = n_samples or 800
        data = make_nuswide_like(n, random_state=random_state)
        methods = default_nuswide_methods(epsilon_grid=(epsilon,))
        figure = "fig9"
    elif workload == "kernel":
        n = n_samples or 180
        data = make_nuswide_like(n, random_state=random_state)
        methods = default_kernel_methods(
            default_kernel_bank(), epsilon_grid=(epsilon,)
        )
        figure = "fig10"
    else:
        raise ValueError(
            "workload must be one of 'secstr', 'ads', 'nuswide', 'kernel'; "
            f"got {workload!r}"
        )

    if solver not in ("dense", "implicit", "auto"):
        raise ValueError(
            "solver must be one of 'dense', 'implicit', 'auto'; "
            f"got {solver!r}"
        )
    # Mirror the batch TCCA row's ε grid so the extra engine rows compare
    # engines, not sweep sizes.
    batch_tcca = next(
        (m for m in methods if getattr(m, "name", None) == "TCCA"), None
    )
    grid = batch_tcca.epsilons if batch_tcca is not None else (epsilon,)
    if stream and workload != "kernel":
        methods = list(methods) + [
            StreamingTCCAMethod(grid, chunk_size=chunk_size)
        ]
    if solver != "dense" and workload != "kernel":
        # The row always pins solver="implicit": the point is an engine
        # comparison, and "auto" would quietly re-run the dense engine on
        # workloads whose ∏d_p sits under the budget.
        methods = list(methods) + [ImplicitTCCAMethod(grid)]

    feasible = min(min(data.dims), data.n_samples - 2)
    sweep_dims = tuple(r for r in dims if r <= feasible) or (feasible,)
    costs = measure_method_costs(methods, data.views, sweep_dims)

    lines = [f"{figure} — {workload}, N={n}"]
    if stream:
        lines[0] += (
            f", streaming chunk_size={chunk_size}"
            if workload != "kernel"
            else " (stream ignored: kernel workload)"
        )
    if solver != "dense":
        lines[0] += (
            f", solver={solver}"
            if workload != "kernel"
            else " (solver ignored: kernel workload)"
        )
    lines.append(f"{'method':<12} " + " ".join(
        f"r={r:<4d}(s/MB)" for r in sweep_dims
    ))
    for name, cost in costs.items():
        cells = " ".join(
            f"{s:6.2f}/{m:7.1f}"
            for s, m in zip(cost["seconds"], cost["memory_mb"])
        )
        lines.append(f"{name:<12} {cells}")

    return ExperimentResult(
        experiment_id=f"{figure} ({workload} complexity)",
        description=(
            "Representation-construction time and peak memory vs "
            "subspace dimension"
        ),
        panels={},
        notes="\n".join(lines),
        extras={
            "costs": costs,
            "dims": sweep_dims,
            "n_samples": n,
            "stream": bool(stream and workload != "kernel"),
            "chunk_size": chunk_size,
            "solver": solver if workload != "kernel" else "dense",
        },
    )
