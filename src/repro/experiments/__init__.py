"""Experiment drivers — one per table / figure of the paper.

The registry maps experiment ids (``fig3``, ``tab1``, …) to driver
functions; each driver builds the synthetic workload, assembles the method
roster, runs the dimension-sweep protocol, and returns an
:class:`~repro.experiments.reporting.ExperimentResult` whose ``table()`` /
``series()`` render the same rows and curves the paper reports.
"""

from repro.experiments.methods import (
    AverageKernelMethod,
    BestSingleKernelMethod,
    BestSingleViewMethod,
    ConcatenationMethod,
    DSEMethod,
    KernelBank,
    KTCCAMethod,
    LSCCAMethod,
    MaxVarMethod,
    PairwiseCCAMethod,
    PairwiseKCCAMethod,
    SSMVDMethod,
    TCCAMethod,
)
from repro.experiments.reporting import ExperimentResult, format_table
from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment

__all__ = [
    "AverageKernelMethod",
    "BestSingleKernelMethod",
    "BestSingleViewMethod",
    "ConcatenationMethod",
    "DSEMethod",
    "EXPERIMENTS",
    "ExperimentResult",
    "KTCCAMethod",
    "KernelBank",
    "LSCCAMethod",
    "MaxVarMethod",
    "PairwiseCCAMethod",
    "PairwiseKCCAMethod",
    "SSMVDMethod",
    "TCCAMethod",
    "format_table",
    "get_experiment",
    "run_experiment",
]
