"""Internet-advertisement experiment driver — Fig. 4 and Table 2.

The paper: 3,279 instances, 100 labeled, RLS downstream, three term views
(588 / 495 / 472 dims), transductive evaluation. The high total dimension
with few labeled samples is the regime where CAT over-fits and the TCCA
margin shrinks (fewer unlabeled samples than SecStr → high-order statistics
estimated less well).
"""

from __future__ import annotations

from repro.datasets.ads import make_ads_like
from repro.evaluation.protocol import ClassifierSpec
from repro.evaluation.sweep import SweepConfig, run_dimension_sweep
from repro.experiments.methods import (
    BestSingleViewMethod,
    ConcatenationMethod,
    DSEMethod,
    LSCCAMethod,
    PairwiseCCAMethod,
    SSMVDMethod,
    TCCAMethod,
)
from repro.experiments.reporting import ExperimentResult

__all__ = ["default_ads_methods", "run_ads_experiment"]

PAPER_DIMS = (5, 10, 20, 40, 60, 80, 100, 140)


EPSILON_GRID = (1e-2, 1e-1, 1e0)


def default_ads_methods(epsilon=EPSILON_GRID):
    """The Fig. 4 / Table 2 roster.

    The paper fixes ε = 10⁻²; the synthetic Bernoulli features have a
    different variance scale, so ε is validation-selected from a small
    grid (see EXPERIMENTS.md).
    """
    return [
        BestSingleViewMethod(),
        ConcatenationMethod(),
        PairwiseCCAMethod(mode="best", epsilon=epsilon),
        PairwiseCCAMethod(mode="average", epsilon=epsilon),
        LSCCAMethod(epsilon=epsilon),
        DSEMethod(),
        SSMVDMethod(),
        TCCAMethod(epsilon=epsilon),
    ]


def run_ads_experiment(
    *,
    n_samples: int = 1600,
    dims=PAPER_DIMS,
    n_labeled: int = 100,
    n_runs: int = 5,
    random_state: int = 0,
    view_dims=(196, 165, 157),
    measure: bool = False,
) -> ExperimentResult:
    """Run the Ads reproduction (Fig. 4 curve + Table 2 rows).

    ``view_dims`` defaults to one third of the paper's vocabulary sizes so
    the default run stays laptop-fast; pass ``(588, 495, 472)`` for the
    full-size workload.
    """
    data = make_ads_like(
        n_samples, dims=view_dims, random_state=random_state
    )
    feasible = min(view_dims)
    sweep_dims = tuple(r for r in dims if r <= feasible) or (feasible,)
    config = SweepConfig(
        dims=sweep_dims,
        n_labeled=n_labeled,
        n_runs=n_runs,
        classifier=ClassifierSpec(kind="rls", gamma=1e-2),
        measure=measure,
        random_state=random_state,
    )
    sweeps = run_dimension_sweep(
        default_ads_methods(), data.views, data.labels, config
    )
    return ExperimentResult(
        experiment_id="ads (fig4 / table2)",
        description=(
            "Internet advertisement classification: accuracy vs "
            "common-subspace dimension, 100 labeled instances, RLS"
        ),
        panels={f"labeled={n_labeled}": sweeps},
    )
