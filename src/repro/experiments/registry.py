"""Experiment registry: every paper table / figure mapped to a driver.

``run_experiment(experiment_id)`` executes the driver at the default
(laptop-scale) settings; keyword overrides reach the driver directly, so
``run_experiment("fig6", n_samples=500)`` reproduces the paper's exact
sample budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.exceptions import ExperimentError
from repro.experiments.ads import run_ads_experiment
from repro.experiments.complexity import run_complexity_experiment
from repro.experiments.kernel import run_kernel_experiment
from repro.experiments.nuswide import run_nuswide_experiment
from repro.experiments.secstr import run_secstr_experiment

__all__ = ["EXPERIMENTS", "ExperimentSpec", "get_experiment", "run_experiment"]


@dataclass(frozen=True)
class ExperimentSpec:
    """A registered experiment: its paper artifact and driver."""

    experiment_id: str
    paper_artifact: str
    description: str
    driver: Callable[..., object]
    driver_kwargs: dict


def _spec(experiment_id, paper_artifact, description, driver, **kwargs):
    return ExperimentSpec(
        experiment_id=experiment_id,
        paper_artifact=paper_artifact,
        description=description,
        driver=driver,
        driver_kwargs=kwargs,
    )


EXPERIMENTS: dict[str, ExperimentSpec] = {
    spec.experiment_id: spec
    for spec in (
        _spec(
            "fig3",
            "Figure 3",
            "SecStr accuracy vs dimension, two unlabeled-set sizes",
            run_secstr_experiment,
        ),
        _spec(
            "tab1",
            "Table 1",
            "SecStr accuracies at validation-selected best dimensions",
            run_secstr_experiment,
        ),
        _spec(
            "fig4",
            "Figure 4",
            "Ads accuracy vs dimension",
            run_ads_experiment,
        ),
        _spec(
            "tab2",
            "Table 2",
            "Ads accuracies at best dimensions",
            run_ads_experiment,
        ),
        _spec(
            "fig5",
            "Figure 5",
            "NUS-WIDE accuracy vs dimension, {4,6,8} labeled per concept",
            run_nuswide_experiment,
        ),
        _spec(
            "tab3",
            "Table 3",
            "NUS-WIDE accuracies at best dimensions",
            run_nuswide_experiment,
        ),
        _spec(
            "fig6",
            "Figure 6",
            "Kernel-method accuracy vs dimension on 500-sample subset",
            run_kernel_experiment,
        ),
        _spec(
            "tab4",
            "Table 4",
            "Kernel-method accuracies at best dimensions",
            run_kernel_experiment,
        ),
        _spec(
            "fig7",
            "Figure 7",
            "SecStr time / memory vs dimension",
            run_complexity_experiment,
            workload="secstr",
        ),
        _spec(
            "fig8",
            "Figure 8",
            "Ads time / memory vs dimension",
            run_complexity_experiment,
            workload="ads",
        ),
        _spec(
            "fig9",
            "Figure 9",
            "NUS-WIDE time / memory vs dimension",
            run_complexity_experiment,
            workload="nuswide",
        ),
        _spec(
            "fig10",
            "Figure 10",
            "Kernel-method time / memory vs dimension",
            run_complexity_experiment,
            workload="kernel",
        ),
    )
}


def get_experiment(experiment_id: str) -> ExperimentSpec:
    """Look up a registered experiment by id (``fig3`` … ``fig10``, ``tabN``)."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known ids: "
            f"{sorted(EXPERIMENTS)}"
        ) from None


def run_experiment(experiment_id: str, **overrides):
    """Run a registered experiment, forwarding overrides to its driver."""
    spec = get_experiment(experiment_id)
    kwargs = dict(spec.driver_kwargs)
    kwargs.update(overrides)
    return spec.driver(**kwargs)
