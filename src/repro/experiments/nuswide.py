"""NUS-WIDE web image annotation drivers — Fig. 5 / Table 3 (linear).

The paper: a 10-mammal subset, three visual views (500-d BoW-SIFT, 144-d
color correlogram, 128-d wavelet texture), kNN downstream with
k ∈ {1,…,10} tuned on validation, {4, 6, 8} labeled images per concept,
and ε tuned over {10^i, i = −5…4}. We keep the view dimensions and tune ε
over a trimmed grid by default (the full grid is a constructor away).
"""

from __future__ import annotations

from repro.datasets.nuswide import make_nuswide_like
from repro.evaluation.protocol import ClassifierSpec
from repro.evaluation.sweep import SweepConfig, run_dimension_sweep
from repro.experiments.methods import (
    BestSingleViewMethod,
    ConcatenationMethod,
    DSEMethod,
    LSCCAMethod,
    PairwiseCCAMethod,
    SSMVDMethod,
    TCCAMethod,
)
from repro.experiments.reporting import ExperimentResult

__all__ = ["default_nuswide_methods", "run_nuswide_experiment"]

PAPER_DIMS = (5, 10, 20, 40, 60, 80, 100)
#: trimmed version of the paper's {10^i | i = -5..4} ε grid
DEFAULT_EPSILON_GRID = (1e0, 1e1, 3e1)


def default_nuswide_methods(epsilon_grid=DEFAULT_EPSILON_GRID):
    """The Fig. 5 / Table 3 roster with ε validated over ``epsilon_grid``."""
    return [
        BestSingleViewMethod(),
        ConcatenationMethod(),
        PairwiseCCAMethod(mode="best", epsilon=epsilon_grid),
        PairwiseCCAMethod(mode="average", epsilon=epsilon_grid),
        LSCCAMethod(epsilon=epsilon_grid),
        DSEMethod(),
        SSMVDMethod(),
        TCCAMethod(epsilon=epsilon_grid),
    ]


def run_nuswide_experiment(
    *,
    n_samples: int = 1200,
    labeled_per_concept=(4, 6, 8),
    dims=PAPER_DIMS,
    n_runs: int = 5,
    random_state: int = 0,
    epsilon_grid=DEFAULT_EPSILON_GRID,
    measure: bool = False,
) -> ExperimentResult:
    """Run the NUS-WIDE linear reproduction (Fig. 5 panels + Table 3 rows).

    One panel per labeled-per-concept budget, as in the paper's three
    sub-figures.
    """
    data = make_nuswide_like(n_samples, random_state=random_state)
    feasible = min(data.dims)
    sweep_dims = tuple(r for r in dims if r <= feasible) or (feasible,)
    panels = {}
    for n_labeled in labeled_per_concept:
        config = SweepConfig(
            dims=sweep_dims,
            n_labeled=n_labeled,
            per_class_labeled=True,
            n_runs=n_runs,
            classifier=ClassifierSpec(kind="knn"),
            measure=measure,
            random_state=random_state + n_labeled,
        )
        panels[f"labeled={n_labeled}/concept"] = run_dimension_sweep(
            default_nuswide_methods(epsilon_grid),
            data.views,
            data.labels,
            config,
        )
    return ExperimentResult(
        experiment_id="nuswide (fig5 / table3)",
        description=(
            "Web image annotation on the mammal subset: accuracy vs "
            "common-subspace dimension, kNN classifier, {4, 6, 8} labeled "
            "images per concept"
        ),
        panels=panels,
    )
