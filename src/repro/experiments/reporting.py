"""Result containers and plain-text rendering of tables / figure series."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.evaluation.sweep import MethodSweep

__all__ = ["ExperimentResult", "format_series", "format_table"]


def format_table(sweeps: dict[str, MethodSweep], *, title: str = "") -> str:
    """Render best-dimension accuracies as the paper's table rows.

    Each row is ``method  mean±std  (per-run best dims)`` with accuracies
    in percent, like Tables 1-4.
    """
    lines = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    width = max((len(name) for name in sweeps), default=6)
    lines.append(f"{'Method':<{width}}  Accuracy (%)   best dims")
    for name, sweep in sweeps.items():
        mean, std, best_dims = sweep.best_dimension_summary()
        lines.append(
            f"{name:<{width}}  {100 * mean:5.2f}±{100 * std:4.2f}   "
            f"{best_dims}"
        )
    return "\n".join(lines)


def format_series(sweeps: dict[str, MethodSweep], *, title: str = "") -> str:
    """Render accuracy-vs-dimension curves as aligned text columns."""
    lines = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    names = list(sweeps)
    if not names:
        return "\n".join(lines)
    dims = sweeps[names[0]].dims
    header = "dim   " + "  ".join(f"{name:>10}" for name in names)
    lines.append(header)
    for j, r in enumerate(dims):
        row = f"{r:<5d} " + "  ".join(
            f"{100 * sweeps[name].mean_curve()[j]:10.2f}" for name in names
        )
        lines.append(row)
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """Outcome of one experiment driver (one or more panels of sweeps).

    ``panels`` maps a panel label (e.g. the unlabeled-set size of Fig. 3 or
    the labeled-per-concept count of Fig. 5) to the per-method sweeps of
    that panel.
    """

    experiment_id: str
    description: str
    panels: dict[str, dict[str, MethodSweep]]
    notes: str = ""
    extras: dict = field(default_factory=dict)

    def table(self) -> str:
        """All panels rendered as best-dimension tables."""
        blocks = [
            format_table(
                sweeps, title=f"{self.experiment_id} — {panel}"
            )
            for panel, sweeps in self.panels.items()
        ]
        return "\n\n".join(blocks)

    def series(self) -> str:
        """All panels rendered as accuracy-vs-dimension series."""
        blocks = [
            format_series(
                sweeps, title=f"{self.experiment_id} — {panel}"
            )
            for panel, sweeps in self.panels.items()
        ]
        return "\n\n".join(blocks)

    def summary(self) -> dict[str, dict[str, float]]:
        """Nested ``{panel: {method: best-dim mean accuracy}}`` numbers."""
        return {
            panel: {
                name: sweep.best_dimension_summary()[0]
                for name, sweep in sweeps.items()
            }
            for panel, sweeps in self.panels.items()
        }
