"""SecStr experiment drivers — Fig. 3 and Table 1.

The paper: 100 labeled windows, RLS downstream, two unlabeled regimes
(84K and the full ~1.3M set; DSE and SSMVD attempt only the smaller one
because their N×N eigen/optimization problems do not scale), five random
labeled draws, transductive accuracy. The synthetic workload keeps the
paper's 3×105-d binary structure while scaling N to laptop sizes; the
two panels differ only in how much unlabeled data the (unsupervised) fits
may consume — the axis along which the paper shows all CCA-family methods
improving.
"""

from __future__ import annotations

from repro.datasets.secstr import make_secstr_like
from repro.evaluation.protocol import ClassifierSpec
from repro.evaluation.sweep import SweepConfig, run_dimension_sweep
from repro.experiments.methods import (
    BestSingleViewMethod,
    ConcatenationMethod,
    DSEMethod,
    LSCCAMethod,
    PairwiseCCAMethod,
    SSMVDMethod,
    TCCAMethod,
)
from repro.experiments.reporting import ExperimentResult

__all__ = ["default_secstr_methods", "run_secstr_experiment"]

#: the paper's dimension grid, truncated to the 105-d views
PAPER_DIMS = (5, 10, 20, 40, 60, 80, 100)


EPSILON_GRID = (1e-2, 1e-1, 1e0)


def default_secstr_methods(
    *, include_transductive_only: bool = True, epsilon=EPSILON_GRID
):
    """The Fig. 3 / Table 1 method roster.

    The paper fixes ε = 10⁻² on the real SecStr features; our synthetic
    one-hot features have a different variance scale, so ε is selected on
    validation from a small grid (see EXPERIMENTS.md).
    """
    methods = [
        BestSingleViewMethod(),
        ConcatenationMethod(),
        PairwiseCCAMethod(mode="best", epsilon=epsilon),
        PairwiseCCAMethod(mode="average", epsilon=epsilon),
        LSCCAMethod(epsilon=epsilon),
    ]
    if include_transductive_only:
        methods.append(DSEMethod())
        methods.append(SSMVDMethod())
    methods.append(TCCAMethod(epsilon=epsilon))
    return methods


def run_secstr_experiment(
    *,
    n_unlabeled_small: int = 1200,
    n_unlabeled_large: int | None = 4000,
    n_labeled: int = 100,
    dims=PAPER_DIMS,
    n_runs: int = 5,
    random_state: int = 0,
    measure: bool = False,
) -> ExperimentResult:
    """Run the SecStr reproduction (Fig. 3 panels + Table 1 rows).

    Parameters
    ----------
    n_unlabeled_small:
        Sample count of the small-unlabeled panel (stands in for 84K).
    n_unlabeled_large:
        Sample count of the large-unlabeled panel (stands in for 1.3M);
        ``None`` skips it. DSE / SSMVD run only on the small panel, as in
        the paper ("No Attempt").
    n_labeled, dims, n_runs, random_state:
        Protocol settings (paper: 100 labeled, 5 runs).
    measure:
        Record per-dimension time/memory (used by the Fig. 7 driver).
    """
    classifier = ClassifierSpec(kind="rls", gamma=1e-2)
    panels = {}

    small = make_secstr_like(n_unlabeled_small, random_state=random_state)
    config = SweepConfig(
        dims=tuple(dims),
        n_labeled=n_labeled,
        n_runs=n_runs,
        classifier=classifier,
        measure=measure,
        random_state=random_state,
    )
    panels[f"unlabeled={n_unlabeled_small}"] = run_dimension_sweep(
        default_secstr_methods(include_transductive_only=True),
        small.views,
        small.labels,
        config,
    )

    if n_unlabeled_large is not None:
        large = make_secstr_like(
            n_unlabeled_large, random_state=random_state + 1
        )
        panels[f"unlabeled={n_unlabeled_large}"] = run_dimension_sweep(
            default_secstr_methods(include_transductive_only=False),
            large.views,
            large.labels,
            config,
        )

    return ExperimentResult(
        experiment_id="secstr (fig3 / table1)",
        description=(
            "Biometric structure prediction: accuracy vs common-subspace "
            "dimension, 100 labeled instances, RLS classifier, two "
            "unlabeled-set sizes"
        ),
        panels=panels,
        notes=(
            "DSE/SSMVD appear only in the small-unlabeled panel (the paper "
            "marks the large one 'No Attempt' for them)."
        ),
    )
