"""Non-linear (kernel) annotation drivers — Fig. 6 / Table 4.

The paper's Section 5.2: a small set of 500 images from the mammal subset,
one kernel per view (``exp(-d/λ)``, λ = max distance; χ² distance for the
visual-word histogram, L2 for the rest), kNN downstream, methods BSK / AVG
/ KCCA (BST) / KCCA (AVG) / KTCCA, ε tuned over {10^i, i = −7…2} (trimmed
by default).
"""

from __future__ import annotations

from repro.datasets.nuswide import make_nuswide_like
from repro.evaluation.protocol import ClassifierSpec
from repro.evaluation.sweep import SweepConfig, run_dimension_sweep
from repro.experiments.methods import (
    AverageKernelMethod,
    BestSingleKernelMethod,
    KernelBank,
    KTCCAMethod,
    PairwiseKCCAMethod,
)
from repro.experiments.reporting import ExperimentResult
from repro.kernels.functions import ExponentialKernel

__all__ = [
    "default_kernel_bank",
    "default_kernel_methods",
    "run_kernel_experiment",
]

PAPER_DIMS = (5, 10, 20, 40, 60, 80)
DEFAULT_EPSILON_GRID = (1e0, 1e1, 1e2)


def default_kernel_bank() -> KernelBank:
    """The paper's kernels: χ² for the BoW view, L2 for the other two."""
    return KernelBank(
        [
            ExponentialKernel(distance="chi2"),
            ExponentialKernel(distance="euclidean"),
            ExponentialKernel(distance="euclidean"),
        ]
    )


def default_kernel_methods(
    bank: KernelBank | None = None,
    epsilon_grid=DEFAULT_EPSILON_GRID,
):
    """The Fig. 6 / Table 4 roster sharing one kernel bank."""
    bank = bank if bank is not None else default_kernel_bank()
    return [
        BestSingleKernelMethod(bank),
        AverageKernelMethod(bank),
        PairwiseKCCAMethod(bank, mode="best", epsilon=epsilon_grid),
        PairwiseKCCAMethod(bank, mode="average", epsilon=epsilon_grid),
        KTCCAMethod(bank, epsilon=epsilon_grid),
    ]


def run_kernel_experiment(
    *,
    n_samples: int = 220,
    labeled_per_concept=(4, 6, 8),
    dims=PAPER_DIMS,
    n_runs: int = 5,
    random_state: int = 0,
    epsilon_grid=DEFAULT_EPSILON_GRID,
    measure: bool = False,
) -> ExperimentResult:
    """Run the kernel-method reproduction (Fig. 6 panels + Table 4 rows).

    ``n_samples`` defaults below the paper's 500 because the KTCCA tensor
    is ``N³`` (500³ ≈ 1 GB); pass ``n_samples=500`` to match the paper on
    a machine with memory to spare.
    """
    data = make_nuswide_like(n_samples, random_state=random_state)
    sweep_dims = tuple(r for r in dims if r <= n_samples - 1) or (
        n_samples - 1,
    )
    panels = {}
    for n_labeled in labeled_per_concept:
        bank = default_kernel_bank()
        config = SweepConfig(
            dims=sweep_dims,
            n_labeled=n_labeled,
            per_class_labeled=True,
            n_runs=n_runs,
            classifier=ClassifierSpec(kind="knn"),
            measure=measure,
            random_state=random_state + n_labeled,
        )
        panels[f"labeled={n_labeled}/concept"] = run_dimension_sweep(
            default_kernel_methods(bank, epsilon_grid),
            data.views,
            data.labels,
            config,
        )
    return ExperimentResult(
        experiment_id="kernel (fig6 / table4)",
        description=(
            "Non-linear web image annotation on a small sample: kernel "
            "methods with per-view exp(-d/λ) kernels, kNN classifier"
        ),
        panels=panels,
    )
