"""Method adapters: every compared approach as a candidate-group factory.

Each adapter exposes ``name`` and ``groups(views, r)`` returning candidate
groups for :func:`repro.evaluation.protocol.evaluate_groups`:

=================  =====================================================
paper name          adapter
=================  =====================================================
BSF                 :class:`BestSingleViewMethod`
CAT                 :class:`ConcatenationMethod`
CCA (BST) / (AVG)   :class:`PairwiseCCAMethod` (``mode``)
CCA-LS              :class:`LSCCAMethod`
CCA-MAXVAR          :class:`MaxVarMethod` (extension — not in the tables)
DSE                 :class:`DSEMethod`
SSMVD               :class:`SSMVDMethod`
TCCA                :class:`TCCAMethod`
BSK                 :class:`BestSingleKernelMethod`
AVG (kernels)       :class:`AverageKernelMethod`
KCCA (BST) / (AVG)  :class:`PairwiseKCCAMethod` (``mode``)
KTCCA               :class:`KTCCAMethod`
=================  =====================================================

Requested dimensions beyond what a method supports are capped at the
method's feasible maximum (the paper's sweep reaches r=300 on 105-d views;
beyond the cap the curves flatten).

Adapters construct their estimators through the registry
(:func:`repro.api.registry.make_reducer`), so the comparison roster and
the servable API build models the same way.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.api.registry import make_reducer
from repro.core.tcca import (
    resolve_tcca_solver,
    whitened_covariance_operator,
    whitened_covariance_operator_streaming,
    whitened_covariance_tensor,
    whitened_covariance_tensor_streaming,
)
from repro.evaluation.protocol import Candidate
from repro.exceptions import ValidationError
from repro.kernels.centering import center_kernel, normalize_kernel
from repro.streaming.views import ArrayViewStream
from repro.utils.preprocessing import unit_scale_views

__all__ = [
    "AverageKernelMethod",
    "BestSingleKernelMethod",
    "BestSingleViewMethod",
    "ConcatenationMethod",
    "DSEMethod",
    "ImplicitTCCAMethod",
    "KTCCAMethod",
    "KernelBank",
    "LSCCAMethod",
    "MaxVarMethod",
    "PairwiseCCAMethod",
    "PairwiseKCCAMethod",
    "SSMVDMethod",
    "StreamingTCCAMethod",
    "TCCAMethod",
]


def _as_grid(epsilon) -> tuple[float, ...]:
    """Normalize an ε or ε-grid argument into a tuple of floats."""
    # np.isscalar(np.array(1.0)) is False, so a 0-d array would fall
    # through and be iterated (a crash); treat anything 0-dimensional as
    # a single ε.
    if np.isscalar(epsilon) or getattr(epsilon, "ndim", None) == 0:
        return (float(epsilon),)
    grid = tuple(float(value) for value in epsilon)
    if not grid:
        raise ValidationError("epsilon grid must be non-empty")
    return grid


def _views_key(views) -> tuple:
    """Identity key of a list of view arrays (caching within one dataset)."""
    return tuple(id(view) for view in views)


class GroupCacheMixin:
    """Memoizes ``groups(views, r)`` per (views identity, r).

    The unsupervised fits are independent of the labeled draws, so sweeps
    that revisit the same (views, r) — e.g. the three labeled-budget panels
    of the NUS-WIDE experiments — reuse the representations instead of
    refitting. The cache keys on array *identity*, so passing different
    data objects never aliases.
    """

    def groups(self, views, r):
        """Cached candidate groups for ``(views, r)``."""
        cache = getattr(self, "_group_cache", None)
        if cache is None:
            cache = {}
            self._group_cache = cache
        key = (_views_key(views), int(r))
        if key not in cache:
            cache[key] = self._build_groups(views, int(r))
        return cache[key]


# --------------------------------------------------------------------------
# Linear methods
# --------------------------------------------------------------------------


class BestSingleViewMethod(GroupCacheMixin):
    """BSF — each raw view is its own group; validation picks the best."""

    name = "BSF"

    def _build_groups(self, views, r):
        """One singleton group per view; ``r`` is ignored (raw features)."""
        del r
        return [
            [Candidate("features", view.T, tag=f"view{p}")]
            for p, view in enumerate(views)
        ]


class ConcatenationMethod(GroupCacheMixin):
    """CAT — concatenation of the sample-normalized views."""

    name = "CAT"

    def _build_groups(self, views, r):
        """A single group with the ``(N, Σd_p)`` concatenation."""
        del r
        stacked = np.vstack(unit_scale_views(views))
        return [[Candidate("features", stacked.T, tag="cat")]]


class PairwiseCCAMethod(GroupCacheMixin):
    """CCA on every two-view subset, combined as (BST) or (AVG).

    Parameters
    ----------
    mode:
        ``"best"`` — every pair is its own group, validation selects one
        (the paper's CCA (BST)); ``"average"`` — all pairs of one ε form a
        single group whose predictions are combined (CCA (AVG)).
    epsilon:
        Scalar or grid; each ε multiplies the group list and validation
        selects among them.
    """

    def __init__(self, mode: str = "best", epsilon=1e-2):
        if mode not in ("best", "average"):
            raise ValidationError(
                f"mode must be 'best' or 'average', got {mode!r}"
            )
        self.mode = mode
        self.epsilons = _as_grid(epsilon)
        self.name = "CCA (BST)" if mode == "best" else "CCA (AVG)"

    def _build_groups(self, views, r):
        """Candidate groups of pairwise-CCA representations."""
        groups = []
        for epsilon in self.epsilons:
            pair_candidates = []
            for p, q in combinations(range(len(views)), 2):
                r_eff = min(r, views[p].shape[0], views[q].shape[0])
                model = make_reducer(
                    "cca", n_components=r_eff, epsilon=epsilon
                )
                z = model.fit_transform_combined([views[p], views[q]])
                pair_candidates.append(
                    Candidate(
                        "features", z, tag=f"pair({p},{q}) eps={epsilon:g}"
                    )
                )
            if self.mode == "best":
                groups.extend([candidate] for candidate in pair_candidates)
            else:
                groups.append(pair_candidates)
        return groups


class LSCCAMethod(GroupCacheMixin):
    """CCA-LS (Vía et al. 2007) — one ``(N, m·r)`` representation per ε."""

    name = "CCA-LS"

    def __init__(self, epsilon=1e-2, *, max_iter: int = 300, random_state=0):
        self.epsilons = _as_grid(epsilon)
        self.max_iter = max_iter
        self.random_state = random_state

    def _build_groups(self, views, r):
        """One group per ε with the combined LSCCA representation."""
        r_eff = min(r, views[0].shape[1] - 1)
        groups = []
        for epsilon in self.epsilons:
            model = make_reducer(
                "lscca",
                n_components=r_eff,
                epsilon=epsilon,
                max_iter=self.max_iter,
                random_state=self.random_state,
            )
            z = model.fit_transform_combined(views)
            groups.append(
                [Candidate("features", z, tag=f"eps={epsilon:g}")]
            )
        return groups


class MaxVarMethod(GroupCacheMixin):
    """CCA-MAXVAR (Kettenring 1971) — SVD-based multiset CCA."""

    name = "CCA-MAXVAR"

    def __init__(self, epsilon=1e-2):
        self.epsilons = _as_grid(epsilon)

    def _build_groups(self, views, r):
        """One group per ε with the combined MAXVAR representation."""
        r_eff = min(r, views[0].shape[1] - 1)
        groups = []
        for epsilon in self.epsilons:
            model = make_reducer(
                "maxvar", n_components=r_eff, epsilon=epsilon
            )
            z = model.fit_transform_combined(views)
            groups.append(
                [Candidate("features", z, tag=f"eps={epsilon:g}")]
            )
        return groups


class DSEMethod(GroupCacheMixin):
    """DSE (Long et al. 2008) — transductive consensus spectral embedding."""

    name = "DSE"

    def __init__(self, *, pca_components: int = 100, n_neighbors: int = 10):
        self.pca_components = pca_components
        self.n_neighbors = n_neighbors

    def _build_groups(self, views, r):
        """A single group with the ``(N, r)`` consensus embedding."""
        n = views[0].shape[1]
        r_eff = min(r, n - 2)
        model = make_reducer(
            "dse",
            n_components=r_eff,
            pca_components=self.pca_components,
            n_neighbors=self.n_neighbors,
        )
        return [[Candidate("features", model.fit_transform(views), tag="dse")]]


class SSMVDMethod(GroupCacheMixin):
    """SSMVD (Han et al. 2012) — structured-sparse consensus representation."""

    name = "SSMVD"

    def __init__(
        self,
        *,
        beta: float = 0.1,
        pca_components: int = 100,
        max_iter: int = 30,
        random_state=0,
    ):
        self.beta = beta
        self.pca_components = pca_components
        self.max_iter = max_iter
        self.random_state = random_state

    def _build_groups(self, views, r):
        """A single group with the ``(N, r)`` consensus representation."""
        n = views[0].shape[1]
        r_eff = min(r, n - 1)
        model = make_reducer(
            "ssmvd",
            n_components=r_eff,
            beta=self.beta,
            pca_components=self.pca_components,
            max_iter=self.max_iter,
            random_state=self.random_state,
        )
        return [
            [Candidate("features", model.fit_transform(views), tag="ssmvd")]
        ]


class TCCAMethod(GroupCacheMixin):
    """TCCA — the proposed method; one ``(N, m·r)`` representation per ε.

    ``solver`` selects the tensor engine: ``"dense"`` (default — the
    paper's measured path), ``"implicit"`` (tensor-free contractions), or
    ``"auto"``; the precomputed whitening state shared across the ``r``
    sweep is built in the matching form.
    """

    name = "TCCA"

    def __init__(
        self,
        epsilon=1e-2,
        *,
        solver: str = "dense",
        decomposition: str = "als",
        max_iter: int = 100,
        random_state=0,
    ):
        self.epsilons = _as_grid(epsilon)
        self.solver = solver
        self.decomposition = decomposition
        self.max_iter = max_iter
        self.random_state = random_state

    def _resolved_solver(self, views) -> str:
        return resolve_tcca_solver(
            self.solver,
            [view.shape[0] for view in views],
            self.decomposition,
        )

    def _compute_whitened(self, views, epsilon):
        """Build the whitening state; subclasses override the engine."""
        if self._resolved_solver(views) == "implicit":
            return whitened_covariance_operator(views, epsilon)
        return whitened_covariance_tensor(views, epsilon)

    def _whitened(self, views, epsilon):
        """Whitening state per (views, ε), shared across the r sweep."""
        cache = getattr(self, "_whitened_cache", None)
        if cache is None:
            cache = {}
            self._whitened_cache = cache
        key = (_views_key(views), float(epsilon))
        if key not in cache:
            cache[key] = self._compute_whitened(views, epsilon)
        return cache[key]

    def _build_groups(self, views, r):
        """One group per ε with the combined TCCA representation."""
        r_eff = min([r] + [view.shape[0] for view in views])
        groups = []
        for epsilon in self.epsilons:
            model = make_reducer(
                "tcca",
                n_components=r_eff,
                epsilon=epsilon,
                solver=self.solver,
                decomposition=self.decomposition,
                max_iter=self.max_iter,
                random_state=self.random_state,
            )
            model.fit(views, precomputed=self._whitened(views, epsilon))
            z = model.transform_combined(views)
            groups.append(
                [Candidate("features", z, tag=f"eps={epsilon:g}")]
            )
        return groups


class StreamingTCCAMethod(TCCAMethod):
    """TCCA fitted out-of-core — the ``--stream`` complexity path.

    Identical estimator, representation, and ε/r sweep as
    :class:`TCCAMethod`; only the whitening state is built differently —
    accumulated from ``chunk_size``-sample minibatches via
    :func:`whitened_covariance_tensor_streaming` — so the peak memory the
    complexity experiments record excludes any ``N``-sized covariance
    intermediates.
    """

    name = "TCCA-STREAM"

    def __init__(self, epsilon=1e-2, *, chunk_size: int = 512, **kwargs):
        super().__init__(epsilon, **kwargs)
        self.chunk_size = int(chunk_size)

    def _compute_whitened(self, views, epsilon):
        """Accumulate the whitening state from minibatches."""
        stream = ArrayViewStream(views, chunk_size=self.chunk_size)
        if self._resolved_solver(views) == "implicit":
            return whitened_covariance_operator_streaming(stream, epsilon)
        return whitened_covariance_tensor_streaming(stream, epsilon)


class ImplicitTCCAMethod(TCCAMethod):
    """TCCA solved tensor-free — the ``--solver implicit`` complexity row.

    Identical estimator, representation, and ε/r sweep as
    :class:`TCCAMethod`; only the tensor engine differs — contractions are
    factored through the whitened views
    (:func:`~repro.core.tcca.whitened_covariance_operator`), so the
    ``∏ d_p`` covariance tensor the complexity figures revolve around is
    never materialized.
    """

    name = "TCCA-IMPLICIT"

    def __init__(self, epsilon=1e-2, **kwargs):
        kwargs.setdefault("solver", "implicit")
        super().__init__(epsilon, **kwargs)


# --------------------------------------------------------------------------
# Kernel methods (Section 5.2 roster)
# --------------------------------------------------------------------------


class KernelBank:
    """Computes and caches the per-view kernel matrices of one dataset.

    Parameters
    ----------
    kernel_factories:
        One kernel callable per view (e.g.
        :class:`~repro.kernels.functions.ExponentialKernel` with χ²
        distance for histogram views) — fitted on and applied to the full
        transductive sample set.
    """

    def __init__(self, kernel_factories):
        self.kernel_factories = list(kernel_factories)
        self._cache_key = None
        self._raw = None

    def raw_kernels(self, views) -> list[np.ndarray]:
        """Uncentered ``(N, N)`` kernel matrices, cached per views identity."""
        key = tuple(id(view) for view in views)
        if self._cache_key != key:
            if len(views) != len(self.kernel_factories):
                raise ValidationError(
                    f"bank has {len(self.kernel_factories)} kernels but got "
                    f"{len(views)} views"
                )
            self._raw = [
                kernel.fit(view)(view)
                for kernel, view in zip(self.kernel_factories, views)
            ]
            self._cache_key = key
        return self._raw

    def centered_kernels(self, views) -> list[np.ndarray]:
        """Feature-space-centered kernel matrices."""
        return [center_kernel(kernel) for kernel in self.raw_kernels(views)]

    def normalized_kernels(self, views) -> list[np.ndarray]:
        """Cosine-normalized kernel matrices (for BSK / AVG)."""
        return [
            normalize_kernel(kernel) for kernel in self.raw_kernels(views)
        ]

    @staticmethod
    def kernel_distances(kernel: np.ndarray) -> np.ndarray:
        """Kernel-induced distance ``sqrt(K_ii + K_jj - 2 K_ij)``."""
        diagonal = np.diag(kernel)
        squared = diagonal[:, None] + diagonal[None, :] - 2.0 * kernel
        return np.sqrt(np.maximum(squared, 0.0))


class BestSingleKernelMethod(GroupCacheMixin):
    """BSK — each view's kernel-induced distances; validation picks one."""

    name = "BSK"

    def __init__(self, bank: KernelBank):
        self.bank = bank

    def _build_groups(self, views, r):
        """One singleton distance group per view; ``r`` is ignored."""
        del r
        return [
            [
                Candidate(
                    "distances",
                    self.bank.kernel_distances(kernel),
                    tag=f"kernel{p}",
                )
            ]
            for p, kernel in enumerate(self.bank.normalized_kernels(views))
        ]


class AverageKernelMethod(GroupCacheMixin):
    """AVG — kNN on the average of the normalized view kernels."""

    name = "AVG"

    def __init__(self, bank: KernelBank):
        self.bank = bank

    def _build_groups(self, views, r):
        """A single distance group from the averaged kernel."""
        del r
        kernels = self.bank.normalized_kernels(views)
        averaged = sum(kernels) / len(kernels)
        return [
            [
                Candidate(
                    "distances",
                    self.bank.kernel_distances(averaged),
                    tag="avg-kernel",
                )
            ]
        ]


class PairwiseKCCAMethod(GroupCacheMixin):
    """KCCA on every two-view kernel pair, combined as (BST) or (AVG)."""

    def __init__(self, bank: KernelBank, mode: str = "best", epsilon=1e-2):
        if mode not in ("best", "average"):
            raise ValidationError(
                f"mode must be 'best' or 'average', got {mode!r}"
            )
        self.bank = bank
        self.mode = mode
        self.epsilons = _as_grid(epsilon)
        self.name = "KCCA (BST)" if mode == "best" else "KCCA (AVG)"

    def _build_groups(self, views, r):
        """Candidate groups of pairwise-KCCA representations."""
        kernels = self.bank.centered_kernels(views)
        n = kernels[0].shape[0]
        r_eff = min(r, n - 1)
        groups = []
        for epsilon in self.epsilons:
            pair_candidates = []
            for p, q in combinations(range(len(views)), 2):
                model = make_reducer(
                    "kcca", n_components=r_eff, epsilon=epsilon, center=False
                ).fit([kernels[p], kernels[q]])
                z = np.hstack(model.transform_train())
                pair_candidates.append(
                    Candidate(
                        "features", z, tag=f"pair({p},{q}) eps={epsilon:g}"
                    )
                )
            if self.mode == "best":
                groups.extend([candidate] for candidate in pair_candidates)
            else:
                groups.append(pair_candidates)
        return groups


class KTCCAMethod(GroupCacheMixin):
    """KTCCA — the proposed non-linear method on the full kernel tensor."""

    name = "KTCCA"

    def __init__(
        self,
        bank: KernelBank,
        epsilon=1e-2,
        *,
        decomposition: str = "als",
        max_iter: int = 100,
        random_state=0,
    ):
        self.bank = bank
        self.epsilons = _as_grid(epsilon)
        self.decomposition = decomposition
        self.max_iter = max_iter
        self.random_state = random_state

    def _build_groups(self, views, r):
        """One group per ε with the combined KTCCA representation."""
        kernels = self.bank.centered_kernels(views)
        n = kernels[0].shape[0]
        r_eff = min(r, n - 1)
        groups = []
        for epsilon in self.epsilons:
            model = make_reducer(
                "ktcca",
                n_components=r_eff,
                epsilon=epsilon,
                center=False,
                decomposition=self.decomposition,
                max_iter=self.max_iter,
                random_state=self.random_state,
            ).fit(kernels)
            z = model.transform_train_combined()
            groups.append(
                [Candidate("features", z, tag=f"eps={epsilon:g}")]
            )
        return groups
