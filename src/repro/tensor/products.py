"""Kronecker and Khatri-Rao matrix products.

The Khatri-Rao (column-wise Kronecker) product is the workhorse of CP-ALS:
for the mode-``p`` unfolding convention in :mod:`repro.tensor.dense`, the
least-squares update for factor ``U_p`` contracts the unfolding against the
Khatri-Rao product of the remaining factors taken in reverse cyclic order.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError, ValidationError

__all__ = ["khatri_rao", "kronecker"]


def kronecker(matrices) -> np.ndarray:
    """Kronecker product of a sequence of matrices, left to right."""
    matrices = [np.asarray(matrix, dtype=np.float64) for matrix in matrices]
    if not matrices:
        raise ValidationError("need at least one matrix")
    for index, matrix in enumerate(matrices):
        if matrix.ndim != 2:
            raise ShapeError(
                f"matrices[{index}] must be 2-D, got ndim={matrix.ndim}"
            )
    result = matrices[0]
    for matrix in matrices[1:]:
        result = np.kron(result, matrix)
    return result


def khatri_rao(matrices) -> np.ndarray:
    """Column-wise Kronecker product of matrices sharing a column count.

    For inputs ``A_1 (I_1 × R), …, A_k (I_k × R)`` the result has shape
    ``(∏ I_j) × R`` with the ``r``'th column equal to
    ``A_1[:, r] ⊗ A_2[:, r] ⊗ … ⊗ A_k[:, r]``.
    """
    matrices = [np.asarray(matrix, dtype=np.float64) for matrix in matrices]
    if not matrices:
        raise ValidationError("need at least one matrix")
    n_columns = None
    for index, matrix in enumerate(matrices):
        if matrix.ndim != 2:
            raise ShapeError(
                f"matrices[{index}] must be 2-D, got ndim={matrix.ndim}"
            )
        if n_columns is None:
            n_columns = matrix.shape[1]
        elif matrix.shape[1] != n_columns:
            raise ShapeError(
                "all matrices must share a column count; "
                f"matrices[{index}] has {matrix.shape[1]} != {n_columns}"
            )
    if len(matrices) == 1:
        return matrices[0]
    # Each fold (I, R) ⊙ (J, R) -> (I·J, R) runs through einsum, whose
    # specialized inner loop beats a broadcasting multiply
    # (a[:, None, :] * b[None, :, :]) at the small column counts CP-ALS
    # uses — benchmarks/test_bench_implicit.py measures both. The final
    # (largest) fold writes straight into a pre-allocated output instead
    # of a temporary.
    result = matrices[0]
    for matrix in matrices[1:-1]:
        result = np.einsum("ir,jr->ijr", result, matrix).reshape(
            -1, n_columns
        )
    last = matrices[-1]
    out = np.empty((result.shape[0] * last.shape[0], n_columns))
    np.einsum(
        "ir,jr->ijr",
        result,
        last,
        out=out.reshape(result.shape[0], last.shape[0], n_columns),
    )
    return out
