"""Kronecker and Khatri-Rao matrix products.

The Khatri-Rao (column-wise Kronecker) product is the workhorse of CP-ALS:
for the mode-``p`` unfolding convention in :mod:`repro.tensor.dense`, the
least-squares update for factor ``U_p`` contracts the unfolding against the
Khatri-Rao product of the remaining factors taken in reverse cyclic order.

Both products are array-API generic: they run in the namespace and
floating dtype of their inputs (non-floating inputs are promoted to
float64, the reference dtype), so a float32 factor set stays float32
through the hot loop.
"""

from __future__ import annotations

import numpy as np

from repro.backends import array_namespace, einsum
from repro.exceptions import ShapeError, ValidationError

__all__ = ["khatri_rao", "kronecker"]


def _as_float_matrices(matrices):
    """Inputs as floating-point arrays in their shared namespace."""
    matrices = list(matrices)
    if not matrices:
        raise ValidationError("need at least one matrix")
    xp = array_namespace(*matrices)
    converted = []
    for index, matrix in enumerate(matrices):
        matrix = xp.asarray(matrix)
        if not xp.isdtype(matrix.dtype, "real floating"):
            matrix = xp.astype(matrix, xp.float64)
        if matrix.ndim != 2:
            raise ShapeError(
                f"matrices[{index}] must be 2-D, got ndim={matrix.ndim}"
            )
        converted.append(matrix)
    return xp, converted


def kronecker(matrices):
    """Kronecker product of a sequence of matrices, left to right."""
    xp, matrices = _as_float_matrices(matrices)
    if xp is np:
        result = matrices[0]
        for matrix in matrices[1:]:
            result = np.kron(result, matrix)
        return result
    result = matrices[0]
    for matrix in matrices[1:]:
        rows_a, cols_a = result.shape
        rows_b, cols_b = matrix.shape
        block = result[:, None, :, None] * matrix[None, :, None, :]
        result = xp.reshape(block, (rows_a * rows_b, cols_a * cols_b))
    return result


def khatri_rao(matrices):
    """Column-wise Kronecker product of matrices sharing a column count.

    For inputs ``A_1 (I_1 × R), …, A_k (I_k × R)`` the result has shape
    ``(∏ I_j) × R`` with the ``r``'th column equal to
    ``A_1[:, r] ⊗ A_2[:, r] ⊗ … ⊗ A_k[:, r]``.
    """
    xp, matrices = _as_float_matrices(matrices)
    n_columns = matrices[0].shape[1]
    for index, matrix in enumerate(matrices[1:], start=1):
        if matrix.shape[1] != n_columns:
            raise ShapeError(
                "all matrices must share a column count; "
                f"matrices[{index}] has {matrix.shape[1]} != {n_columns}"
            )
    if len(matrices) == 1:
        return matrices[0]
    # Each fold (I, R) ⊙ (J, R) -> (I·J, R) runs through einsum, whose
    # specialized inner loop beats a broadcasting multiply
    # (a[:, None, :] * b[None, :, :]) at the small column counts CP-ALS
    # uses — benchmarks/test_bench_implicit.py measures both. The final
    # (largest) fold writes straight into a pre-allocated output instead
    # of a temporary (NumPy only; other namespaces lack einsum's out=).
    result = matrices[0]
    for matrix in matrices[1:-1]:
        result = xp.reshape(
            einsum(xp, "ir,jr->ijr", result, matrix), (-1, n_columns)
        )
    last = matrices[-1]
    if xp is np:
        dtype = np.result_type(result.dtype, last.dtype)
        out = np.empty((result.shape[0] * last.shape[0], n_columns), dtype)
        np.einsum(
            "ir,jr->ijr",
            result,
            last,
            out=out.reshape(result.shape[0], last.shape[0], n_columns),
        )
        return out
    return xp.reshape(
        einsum(xp, "ir,jr->ijr", result, last),
        (result.shape[0] * last.shape[0], n_columns),
    )
