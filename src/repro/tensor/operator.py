"""Implicit (matrix-free) covariance tensors — the tensor-free TCCA engine.

The whitened covariance tensor ``M = (1/N) Σ_n x̃_1n ∘ x̃_2n ∘ … ∘ x̃_mn``
costs ``∏ d_p`` memory to materialize — the scaling wall the paper's
complexity experiments (Figs. 7-10) measure. But every quantity CP-ALS and
HOPM read off ``M`` is a *contraction*, and contractions of a sum of outer
products factor through the data:

* the MTTKRP ``M_(p) · khatri_rao(U_{q≠p})`` collapses to
  ``X̃_p (⊙_{q≠p} X̃_q^T U_q) / N`` — a Hadamard product of ``(N, r)``
  projections, ``O(N · Σ d_p · r)`` with **zero** ``∏ d_p`` objects;
* ``M ×_1 v_1^T … ×_m v_m^T = (1/N) Σ_n ∏_p (x̃_pn · v_p)``;
* the mode-``p`` Gram
  ``M_(p) M_(p)^T = (1/N²) X̃_p (⊙_{q≠p} X̃_q^T X̃_q) X̃_p^T`` reduces to
  sample-Gram Hadamard products — HOSVD-style initialization reads its
  eigenvectors, and ``‖M‖_F² = tr(M_(0) M_(0)^T)`` (the solver's
  convergence normalizer) falls out of the same cached matrix.

:class:`CovarianceTensorOperator` packages these identities behind one
interface with two backends: resident whitened view matrices (the batch
path) or a re-iterable chunked :class:`~repro.streaming.views.ViewStream`
plus whitening state (the out-of-core path, which whitens chunks on the
fly and pays one stream pass per contraction).
"""

from __future__ import annotations

import math
from functools import partial

import numpy as np

from repro.exceptions import ShapeError, ValidationError
from repro.parallel.executors import ExecutionPolicy, SerialExecutor
from repro.parallel.sharding import shard_stream
from repro.streaming.views import iter_validated_chunks
from repro.utils.validation import check_views

__all__ = ["CovarianceTensorOperator"]

#: sample-block budget for the pairwise-Gram accumulations, expressed in
#: *float64-equivalent* elements (a byte budget of ``2**23 * 8`` ≈ 64 MB):
#: the ``(N, block)`` intermediates stay near 64 MB regardless of ``N``
#: or the compute dtype — float32 blocks get twice the rows for the same
#: bytes.
DEFAULT_BLOCK_FLOATS = 2**23


def _block_rows(block_floats: int, row_bytes: int) -> int:
    """Rows fitting the byte budget ``block_floats`` float64s imply."""
    budget_bytes = int(block_floats) * np.dtype(np.float64).itemsize
    return max(1, budget_bytes // max(int(row_bytes), 1))


def _as_kernel_policy(policy) -> ExecutionPolicy:
    """The execution policy the blocked kernels should run under.

    Kernels contract *shared, resident* arrays, so a process policy is
    converted to its thread twin (numpy releases the GIL in BLAS and the
    einsum/ufunc loops — threads win here without pickling operands).
    """
    if not isinstance(policy, ExecutionPolicy):
        return SerialExecutor()
    return policy.for_shared_memory()


def _check_factors(shape, factors, dtype=np.float64):
    """Validate one factor matrix per mode with a shared column count."""
    factors = [np.asarray(factor, dtype=dtype) for factor in factors]
    if len(factors) != len(shape):
        raise ValidationError(
            f"need one factor per mode ({len(shape)}), got {len(factors)}"
        )
    rank = None
    for mode, (factor, size) in enumerate(zip(factors, shape)):
        if factor.ndim != 2:
            raise ShapeError(
                f"factors[{mode}] must be 2-D, got ndim={factor.ndim}"
            )
        if factor.shape[0] != size:
            raise ShapeError(
                f"factors[{mode}] has {factor.shape[0]} rows but mode "
                f"{mode} has size {size}"
            )
        if rank is None:
            rank = factor.shape[1]
        elif factor.shape[1] != rank:
            raise ShapeError(
                "all factors must share a column count; "
                f"factors[{mode}] has {factor.shape[1]} != {rank}"
            )
    return factors


def _check_vectors(shape, vectors, dtype=np.float64):
    """Validate one contraction vector per mode."""
    vectors = [
        np.asarray(vector, dtype=dtype).ravel() for vector in vectors
    ]
    if len(vectors) != len(shape):
        raise ValidationError(
            f"need one vector per mode ({len(shape)}), got {len(vectors)}"
        )
    for mode, (vector, size) in enumerate(zip(vectors, shape)):
        if vector.shape[0] != size:
            raise ShapeError(
                f"vectors[{mode}] has length {vector.shape[0]} but mode "
                f"{mode} has size {size}"
            )
    return vectors


class _MatrixBackend:
    """Contractions against resident whitened view matrices ``(d_p, N)``.

    The blocked passes (unfolding Grams, MTTKRP) map independent sample
    blocks across the execution policy's workers and reduce the per-block
    partial sums in the caller, **in block order** — so the threaded and
    serial results agree to round-off, and exactly when the block
    partition matches.
    """

    def __init__(
        self, views, block_floats: int = DEFAULT_BLOCK_FLOATS, policy=None
    ):
        # dtype=None: the backend contracts in whatever floating dtype
        # the (already whitened) views arrive in — float32 under the
        # mixed policy, float64 otherwise.
        self.views = check_views(views, min_views=2, dtype=None)
        common = np.result_type(*(view.dtype for view in self.views))
        self.views = [
            view.astype(common, copy=False) for view in self.views
        ]
        self.block_floats = int(block_floats)
        self.policy = _as_kernel_policy(policy)

    @property
    def dtype(self) -> np.dtype:
        return self.views[0].dtype

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(view.shape[0] for view in self.views)

    @property
    def n_samples(self) -> int:
        return int(self.views[0].shape[1])

    def _mttkrp_block(self, factors, mode: int, start: int, stop: int):
        rank = factors[0].shape[1]
        hadamard = np.ones((stop - start, rank), dtype=self.dtype)
        for other, (view, factor) in enumerate(zip(self.views, factors)):
            if other == mode:
                continue
            hadamard *= view[:, start:stop].T @ factor
        return self.views[mode][:, start:stop] @ hadamard

    def mttkrp(self, factors, mode: int) -> np.ndarray:
        n = self.n_samples
        if self.policy.n_workers > 1:
            partials = self.policy.starmap(
                partial(self._mttkrp_block, factors, mode),
                self._sample_blocks(),
            )
            result = partials[0]
            for block in partials[1:]:
                result += block
            return result / n
        return self._mttkrp_block(factors, mode, 0, n) / n

    def multi_contract(self, vectors) -> float:
        product = np.ones(self.n_samples, dtype=self.dtype)
        for view, vector in zip(self.views, vectors):
            product *= view.T @ vector
        return float(product.sum() / self.n_samples)

    def _sample_blocks(self):
        # One (N, block) product buffer is alive per view — and one set
        # per concurrent worker — so the *byte* budget is split across
        # all of them to keep the peak near block_floats float64s
        # regardless of width or compute dtype.
        n = self.n_samples
        row_bytes = (
            n * len(self.views) * self.policy.n_workers * self.dtype.itemsize
        )
        step = _block_rows(self.block_floats, row_bytes)
        for start in range(0, n, step):
            yield start, min(start + step, n)

    def _gram_block(self, start: int, stop: int) -> list[np.ndarray]:
        """Every mode's Gram contribution of samples ``[start, stop)``."""
        n = self.n_samples
        # One set of per-view Gram blocks serves every mode; only the
        # skip-one Hadamard product differs per mode.
        products = [view.T @ view[:, start:stop] for view in self.views]
        partials = []
        for mode, view in enumerate(self.views):
            weights = np.ones((n, stop - start), dtype=self.dtype)
            for other, product in enumerate(products):
                if other == mode:
                    continue
                weights *= product
            partials.append((view @ weights) @ view[:, start:stop].T)
        return partials

    def mode_grams(self) -> list[np.ndarray]:
        n = self.n_samples
        blocks = list(self._sample_blocks())
        if self.policy.n_workers > 1 and len(blocks) > 1:
            per_block = self.policy.starmap(self._gram_block, blocks)
        else:
            per_block = [self._gram_block(start, stop) for start, stop in blocks]
        results = [
            np.zeros((view.shape[0], view.shape[0]), dtype=self.dtype)
            for view in self.views
        ]
        for partials in per_block:
            for mode, block in enumerate(partials):
                results[mode] += block
        return [result / (n * n) for result in results]


class _StreamBackend:
    """Contractions against a chunked stream, whitening chunks on the fly.

    Each contraction makes one pass over the stream (``frobenius_norm_sq``
    and ``mode_gram`` need *pairs* of samples, so they make nested passes);
    peak memory is one whitened chunk per view plus the ``(n_chunk, r)``
    projections — independent of both ``N`` and ``∏ d_p``.

    Under a parallel policy the single-pass contractions (MTTKRP, full
    contraction) split the stream into shards and reduce the per-shard
    partial sums in shard order; the nested-pass Gram computation runs
    once per fit and stays sequential.
    """

    def __init__(self, stream, whiteners, means, policy=None, dtype=None):
        self.stream = stream
        self.policy = _as_kernel_policy(policy)
        # Whitening state stays float64 (it came out of the float64
        # eigendecomposition); ``dtype`` is the dtype whitened chunks are
        # cast to for the contractions — float32 under the mixed policy.
        self.dtype = np.dtype(np.float64 if dtype is None else dtype)
        self.whiteners = [
            np.asarray(whitener, dtype=np.float64) for whitener in whiteners
        ]
        self.means = [
            np.asarray(mean, dtype=np.float64).reshape(-1, 1)
            for mean in means
        ]
        if len(self.whiteners) != stream.n_views or len(
            self.means
        ) != stream.n_views:
            raise ValidationError(
                f"need one whitener and one mean per view "
                f"({stream.n_views}), got {len(self.whiteners)} and "
                f"{len(self.means)}"
            )
        for index, (whitener, mean, dim) in enumerate(
            zip(self.whiteners, self.means, stream.dims)
        ):
            if whitener.shape != (dim, dim) or mean.shape != (dim, 1):
                raise ValidationError(
                    f"whitener/mean shapes for view {index} do not match "
                    f"the stream dimension {dim}"
                )

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(whitener.shape[0] for whitener in self.whiteners)

    @property
    def n_samples(self) -> int:
        return int(self.stream.n_samples)

    def _whitened_chunks(self, stream=None):
        for chunks in iter_validated_chunks(
            self.stream if stream is None else stream
        ):
            yield [
                (whitener @ (np.asarray(chunk, dtype=np.float64) - mean))
                .astype(self.dtype, copy=False)
                for whitener, chunk, mean in zip(
                    self.whiteners, chunks, self.means
                )
            ]

    def _shards(self) -> list | None:
        """Stream shards for a parallel single-pass contraction."""
        if self.policy.n_workers <= 1:
            return None
        try:
            shards = shard_stream(self.stream, self.policy.n_workers)
        except ValidationError:
            # Streams without an up-front chunk geometry cannot be
            # sharded; contract them sequentially.
            return None
        return shards if len(shards) > 1 else None

    def _mttkrp_shard(self, factors, mode: int, stream) -> np.ndarray:
        rank = factors[0].shape[1]
        result = np.zeros((self.shape[mode], rank), dtype=self.dtype)
        for whitened in self._whitened_chunks(stream):
            hadamard = np.ones((whitened[0].shape[1], rank), dtype=self.dtype)
            for other, (chunk, factor) in enumerate(zip(whitened, factors)):
                if other == mode:
                    continue
                hadamard *= chunk.T @ factor
            result += whitened[mode] @ hadamard
        return result

    def mttkrp(self, factors, mode: int) -> np.ndarray:
        shards = self._shards()
        if shards is None:
            return self._mttkrp_shard(factors, mode, self.stream) / self.n_samples
        partials = self.policy.map(
            partial(self._mttkrp_shard, factors, mode), shards
        )
        result = partials[0]
        for block in partials[1:]:
            result += block
        return result / self.n_samples

    def _contract_shard(self, vectors, stream) -> float:
        total = 0.0
        for whitened in self._whitened_chunks(stream):
            product = np.ones(whitened[0].shape[1], dtype=self.dtype)
            for chunk, vector in zip(whitened, vectors):
                product *= chunk.T @ vector
            total += float(product.sum())
        return total

    def multi_contract(self, vectors) -> float:
        shards = self._shards()
        if shards is None:
            return self._contract_shard(vectors, self.stream) / self.n_samples
        totals = self.policy.map(partial(self._contract_shard, vectors), shards)
        return float(sum(totals)) / self.n_samples

    def mode_grams(self) -> list[np.ndarray]:
        results = [
            np.zeros((size, size), dtype=self.dtype) for size in self.shape
        ]
        for left in self._whitened_chunks():
            for right in self._whitened_chunks():
                # Per-view chunk-pair Grams are shared by every mode's
                # skip-one Hadamard product, so the nested pass (and its
                # chunk re-whitening) happens once, not once per mode.
                products = [
                    chunk_l.T @ chunk_r
                    for chunk_l, chunk_r in zip(left, right)
                ]
                for mode in range(len(results)):
                    weights = np.ones(products[0].shape, dtype=self.dtype)
                    for other, product in enumerate(products):
                        if other == mode:
                            continue
                        weights *= product
                    results[mode] += (left[mode] @ weights) @ right[mode].T
        n = self.n_samples
        return [result / (n * n) for result in results]


class CovarianceTensorOperator:
    """The covariance tensor ``M`` of whitened views, as contractions only.

    Represents ``M = (1/N) Σ_n x̃_1n ∘ … ∘ x̃_mn`` without ever holding a
    ``∏ d_p`` object. Built either :meth:`from_views` (resident whitened
    matrices) or :meth:`from_stream` (a chunked stream plus whitening
    state, for the out-of-core path); the implicit CP solvers in
    :mod:`repro.tensor.decomposition.implicit` consume the interface and
    never see the backend.
    """

    def __init__(self, backend):
        self._backend = backend
        self._mode_grams: list[np.ndarray] | None = None

    @classmethod
    def from_views(
        cls, views, *, block_floats: int = DEFAULT_BLOCK_FLOATS, policy=None
    ) -> "CovarianceTensorOperator":
        """Operator over resident (already whitened, centered) views.

        A parallel ``policy`` threads the blocked Gram/MTTKRP kernels
        (process policies are demoted to their thread twin — the operands
        are shared arrays and the kernels release the GIL in BLAS).
        """
        return cls(
            _MatrixBackend(views, block_floats=block_floats, policy=policy)
        )

    @classmethod
    def from_stream(
        cls, stream, *, whiteners, means, policy=None, dtype=None
    ) -> "CovarianceTensorOperator":
        """Operator over a re-iterable chunked stream of *raw* views.

        Chunks are centered with ``means`` (``(d_p, 1)`` columns) and
        whitened with ``whiteners`` (``(d_p, d_p)``) on the fly during
        every contraction, so nothing ``N``-sized is ever resident. A
        parallel ``policy`` splits each single-pass contraction across
        stream shards. ``dtype`` sets the contraction dtype of the
        whitened chunks (whitening itself stays float64).
        """
        return cls(
            _StreamBackend(stream, whiteners, means, policy=policy, dtype=dtype)
        )

    @property
    def dtype(self) -> np.dtype:
        """The floating dtype contractions compute in."""
        return np.dtype(self._backend.dtype)

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape ``(d_1, …, d_m)`` of the represented tensor."""
        return self._backend.shape

    @property
    def order(self) -> int:
        """Number of modes ``m``."""
        return len(self.shape)

    @property
    def n_samples(self) -> int:
        """Number of samples the covariance averages over."""
        return self._backend.n_samples

    @property
    def n_entries(self) -> int:
        """``∏ d_p`` — what materializing the tensor would cost in floats."""
        return math.prod(self.shape)  # exact — never wraps

    def mttkrp(self, factors, mode: int) -> np.ndarray:
        """``M_(mode) · khatri_rao(reversed other factors)`` — implicitly.

        ``factors`` holds one ``(d_p, r)`` matrix per mode (the entry for
        ``mode`` itself is ignored); the result is ``(d_mode, r)``. This is
        the only quantity a CP-ALS mode update reads off the tensor.
        """
        factors = _check_factors(self.shape, factors, self.dtype)
        mode = self._check_mode(mode)
        return self._backend.mttkrp(factors, mode)

    def multi_contract(self, vectors) -> float:
        """Full contraction ``M ×_1 v_1^T ×_2 … ×_m v_m^T``."""
        vectors = _check_vectors(self.shape, vectors, self.dtype)
        return self._backend.multi_contract(vectors)

    def frobenius_norm_sq(self) -> float:
        """``‖M‖_F² = tr(M_(0) M_(0)^T)``, via the cached mode-0 Gram.

        Shares the :meth:`mode_gram` cache with HOSVD-style
        initialization, so when both run (the default solver
        configuration) the stream backend pays its nested pass only once.
        """
        return float(np.trace(self.mode_gram(0)))

    def mode_gram(self, mode: int) -> np.ndarray:
        """``M_(mode) M_(mode)^T`` — the ``(d_mode, d_mode)`` unfolding Gram.

        Its eigenvectors are the left singular vectors of the mode-``mode``
        unfolding, which is all an HOSVD-style initialization needs. All
        ``m`` Grams are computed together on first use and cached
        (``Σ d_p²`` floats) — the per-view sample-Gram products they share
        are built once, and on the stream backend the single nested pass
        over the data serves every mode.
        """
        mode = self._check_mode(mode)
        if self._mode_grams is None:
            self._mode_grams = self._backend.mode_grams()
        return self._mode_grams[mode]

    def _check_mode(self, mode: int) -> int:
        if not isinstance(mode, (int, np.integer)) or isinstance(mode, bool):
            raise ValidationError(f"mode must be an integer, got {mode!r}")
        mode = int(mode)
        if not 0 <= mode < self.order:
            raise ValidationError(
                f"mode must be in [0, {self.order - 1}] for an order-"
                f"{self.order} operator, got {mode}"
            )
        return mode

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(shape={self.shape}, "
            f"n_samples={self.n_samples})"
        )
