"""Higher-order power method (HOPM) for the best rank-1 approximation.

De Lathauwer, De Moor & Vandewalle (2000b) show the best rank-1
approximation ``min ‖A - ρ u_1 ∘ … ∘ u_m‖_F`` with unit-norm ``u_p`` is
found by alternating power iterations: fix all vectors but one and set the
free vector to the (normalized) contraction of the tensor against the
others. The attained ``ρ = A ×_1 u_1^T … ×_m u_m^T`` is exactly the
high-order canonical correlation of Theorem 1, which is why TCCA's rank-1
subproblem is this routine.

The iteration itself (:func:`hopm_core`) only touches the tensor through
two callables — the skip-one contraction and the full contraction — so the
dense path here and the tensor-free path in
:mod:`repro.tensor.decomposition.implicit` share the loop verbatim.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.exceptions import ConvergenceWarning, DecompositionError
from repro.tensor.cp import CPTensor
from repro.tensor.decomposition.init import initialize_factors
from repro.tensor.decomposition.result import DecompositionResult
from repro.tensor.dense import frobenius_norm, mode_product
from repro.utils.validation import check_positive_int

__all__ = ["best_rank1", "hopm_core", "rank1_contraction"]


def rank1_contraction(
    tensor: np.ndarray, vectors: list[np.ndarray], skip: int
) -> np.ndarray:
    """Contract ``tensor`` against every vector except mode ``skip``.

    Returns the 1-D fiber along mode ``skip``:
    ``A ×_1 u_1^T … ×_{skip-1} u_{skip-1}^T ×_{skip+1} u_{skip+1}^T … ``.
    """
    result = tensor
    # Contract from the highest mode downwards so earlier mode indices stay
    # valid as axes are squeezed out.
    for mode in range(tensor.ndim - 1, -1, -1):
        if mode == skip:
            continue
        result = np.squeeze(
            mode_product(result, vectors[mode][None, :], mode), axis=mode
        )
    return np.asarray(result).ravel()


def hopm_core(
    contract_skip,
    multi_contract,
    vectors: list[np.ndarray],
    *,
    max_iter: int,
    tol: float,
    warn_on_no_convergence: bool,
) -> DecompositionResult:
    """Shared HOPM power-iteration loop over abstract contractions.

    Parameters
    ----------
    contract_skip:
        ``contract_skip(vectors, skip) -> (d_skip,)`` — the tensor
        contracted against every vector except mode ``skip``.
    multi_contract:
        ``multi_contract(vectors) -> float`` — the full contraction, used
        once at the end for the sign-correct ``ρ``.
    vectors:
        Initial unit vectors, one per mode; updated in place.
    max_iter, tol, warn_on_no_convergence:
        As in :func:`best_rank1`.
    """
    ndim = len(vectors)
    rho = 0.0
    previous_rho = -np.inf
    fit_history: list[float] = []
    converged = False
    iteration = 0
    for iteration in range(1, max_iter + 1):
        for mode in range(ndim):
            fiber = contract_skip(vectors, mode)
            norm = np.linalg.norm(fiber)
            if norm == 0.0:
                # Degenerate direction: restart this mode with a safe basis
                # vector rather than dividing by zero.
                fiber = np.zeros_like(fiber)
                fiber[0] = 1.0
                norm = 1.0
            vectors[mode] = fiber / norm
            rho = float(norm)
        fit_history.append(rho)
        if abs(rho - previous_rho) < tol * max(abs(rho), 1.0):
            converged = True
            break
        previous_rho = rho

    if not converged and warn_on_no_convergence:
        warnings.warn(
            f"HOPM did not converge in {max_iter} iterations",
            ConvergenceWarning,
            stacklevel=3,
        )

    # Final ρ as the full contraction, which is sign-correct.
    rho = float(multi_contract(vectors))
    cp = CPTensor(
        weights=np.array([rho]),
        factors=[vector[:, None].copy() for vector in vectors],
    )
    return DecompositionResult(
        cp=cp,
        n_iterations=iteration,
        converged=converged,
        fit_history=fit_history,
    )


def best_rank1(
    tensor,
    *,
    max_iter: int = 200,
    tol: float = 1e-10,
    init: str = "hosvd",
    random_state=None,
    warn_on_no_convergence: bool = True,
    factors_init=None,
) -> DecompositionResult:
    """Best rank-1 approximation of ``tensor`` via HOPM.

    ``factors_init`` (one ``(I_p, 1)`` column per mode) warm-starts the
    power iteration from a previous solution instead of the ``init``
    strategy.

    Returns
    -------
    DecompositionResult
        A rank-1 :class:`~repro.tensor.cp.CPTensor` whose single weight is
        the attained multilinear Rayleigh quotient ``ρ``. ``fit_history``
        traces ``ρ`` per iteration.
    """
    tensor = np.asarray(tensor)
    if tensor.dtype not in (np.float32, np.float64):
        tensor = tensor.astype(np.float64)
    if tensor.ndim < 2:
        raise DecompositionError(
            f"HOPM needs an order >= 2 tensor, got order {tensor.ndim}"
        )
    max_iter = check_positive_int(max_iter, "max_iter")
    if frobenius_norm(tensor) == 0.0:
        raise DecompositionError(
            "cannot approximate the zero tensor: no rank-1 direction exists"
        )

    factors = initialize_factors(
        tensor,
        1,
        method=init,
        random_state=random_state,
        factors_init=factors_init,
    )
    vectors = [factor[:, 0] for factor in factors]

    def contract_skip(current_vectors, skip):
        return rank1_contraction(tensor, current_vectors, skip=skip)

    def multi_contract(current_vectors):
        return rank1_contraction(tensor, current_vectors, skip=0) @ (
            current_vectors[0]
        )

    return hopm_core(
        contract_skip,
        multi_contract,
        vectors,
        max_iter=max_iter,
        tol=tol,
        warn_on_no_convergence=warn_on_no_convergence,
    )
