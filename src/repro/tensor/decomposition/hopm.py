"""Higher-order power method (HOPM) for the best rank-1 approximation.

De Lathauwer, De Moor & Vandewalle (2000b) show the best rank-1
approximation ``min ‖A - ρ u_1 ∘ … ∘ u_m‖_F`` with unit-norm ``u_p`` is
found by alternating power iterations: fix all vectors but one and set the
free vector to the (normalized) contraction of the tensor against the
others. The attained ``ρ = A ×_1 u_1^T … ×_m u_m^T`` is exactly the
high-order canonical correlation of Theorem 1, which is why TCCA's rank-1
subproblem is this routine.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.exceptions import ConvergenceWarning, DecompositionError
from repro.tensor.cp import CPTensor
from repro.tensor.decomposition.init import initialize_factors
from repro.tensor.decomposition.result import DecompositionResult
from repro.tensor.dense import frobenius_norm, mode_product
from repro.utils.validation import check_positive_int

__all__ = ["best_rank1", "rank1_contraction"]


def rank1_contraction(
    tensor: np.ndarray, vectors: list[np.ndarray], skip: int
) -> np.ndarray:
    """Contract ``tensor`` against every vector except mode ``skip``.

    Returns the 1-D fiber along mode ``skip``:
    ``A ×_1 u_1^T … ×_{skip-1} u_{skip-1}^T ×_{skip+1} u_{skip+1}^T … ``.
    """
    result = tensor
    # Contract from the highest mode downwards so earlier mode indices stay
    # valid as axes are squeezed out.
    for mode in range(tensor.ndim - 1, -1, -1):
        if mode == skip:
            continue
        result = np.squeeze(
            mode_product(result, vectors[mode][None, :], mode), axis=mode
        )
    return np.asarray(result, dtype=np.float64).ravel()


def best_rank1(
    tensor,
    *,
    max_iter: int = 200,
    tol: float = 1e-10,
    init: str = "hosvd",
    random_state=None,
    warn_on_no_convergence: bool = True,
) -> DecompositionResult:
    """Best rank-1 approximation of ``tensor`` via HOPM.

    Returns
    -------
    DecompositionResult
        A rank-1 :class:`~repro.tensor.cp.CPTensor` whose single weight is
        the attained multilinear Rayleigh quotient ``ρ``. ``fit_history``
        traces ``ρ`` per iteration.
    """
    tensor = np.asarray(tensor, dtype=np.float64)
    if tensor.ndim < 2:
        raise DecompositionError(
            f"HOPM needs an order >= 2 tensor, got order {tensor.ndim}"
        )
    max_iter = check_positive_int(max_iter, "max_iter")
    if frobenius_norm(tensor) == 0.0:
        raise DecompositionError(
            "cannot approximate the zero tensor: no rank-1 direction exists"
        )

    factors = initialize_factors(
        tensor, 1, method=init, random_state=random_state
    )
    vectors = [factor[:, 0] for factor in factors]

    rho = 0.0
    previous_rho = -np.inf
    fit_history: list[float] = []
    converged = False
    iteration = 0
    for iteration in range(1, max_iter + 1):
        for mode in range(tensor.ndim):
            fiber = rank1_contraction(tensor, vectors, skip=mode)
            norm = np.linalg.norm(fiber)
            if norm == 0.0:
                # Degenerate direction: restart this mode with a safe basis
                # vector rather than dividing by zero.
                fiber = np.zeros_like(fiber)
                fiber[0] = 1.0
                norm = 1.0
            vectors[mode] = fiber / norm
            rho = float(norm)
        fit_history.append(rho)
        if abs(rho - previous_rho) < tol * max(abs(rho), 1.0):
            converged = True
            break
        previous_rho = rho

    if not converged and warn_on_no_convergence:
        warnings.warn(
            f"HOPM did not converge in {max_iter} iterations",
            ConvergenceWarning,
            stacklevel=2,
        )

    # Final ρ as the full contraction, which is sign-correct.
    rho = float(
        rank1_contraction(tensor, vectors, skip=0) @ vectors[0]
    )
    cp = CPTensor(
        weights=np.array([rho]),
        factors=[vector[:, None].copy() for vector in vectors],
    )
    return DecompositionResult(
        cp=cp,
        n_iterations=iteration,
        converged=converged,
        fit_history=fit_history,
    )
