"""Rank-``r`` CP decomposition by alternating least squares (CP-ALS).

This is the solver the paper adopts (Kroonenberg & De Leeuw 1980; Comon et
al. 2009): TCCA's rank-``r`` canonical factors are the CP factors of the
whitened covariance tensor ``M``, fitted for all ``r`` components *jointly*
— the property the paper credits for TCCA's flat accuracy at large ``r``
(no greedy deflation, so variance is spread across all factors).
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.exceptions import ConvergenceWarning, DecompositionError
from repro.tensor.cp import CPTensor
from repro.tensor.decomposition.init import initialize_factors
from repro.tensor.decomposition.result import DecompositionResult
from repro.tensor.dense import cyclic_mode_order, frobenius_norm, unfold
from repro.tensor.products import khatri_rao
from repro.utils.validation import check_positive_int

__all__ = ["cp_als"]


def _als_rhs(
    unfoldings: list[np.ndarray],
    factors: list[np.ndarray],
    mode: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Right-hand side ``X_(p) K`` and Gram matrix for the mode-``p`` update.

    With the forward-cyclic unfolding convention, the CP model satisfies
    ``X_(p) = U_p diag(λ) K^T`` where ``K`` is the Khatri-Rao product of the
    other factors taken in *reverse* cyclic order.
    """
    order = len(factors)
    others = [
        factors[other] for other in reversed(cyclic_mode_order(order, mode))
    ]
    khatri = khatri_rao(others)
    gram = np.ones((factors[0].shape[1], factors[0].shape[1]))
    for other, factor in enumerate(factors):
        if other == mode:
            continue
        gram = gram * (factor.T @ factor)
    return unfoldings[mode] @ khatri, gram


def cp_als(
    tensor,
    rank: int,
    *,
    max_iter: int = 200,
    tol: float = 1e-8,
    init: str = "hosvd",
    random_state=None,
    warn_on_no_convergence: bool = True,
) -> DecompositionResult:
    """Fit a rank-``rank`` CP decomposition with alternating least squares.

    Parameters
    ----------
    tensor:
        Dense input tensor of order >= 2.
    rank:
        Number of rank-1 components to fit jointly.
    max_iter:
        Maximum number of full ALS sweeps.
    tol:
        Convergence tolerance on the decrease of the relative reconstruction
        error between consecutive sweeps.
    init:
        ``"hosvd"`` (default) or ``"random"`` factor initialization.
    random_state:
        Seed used by random initialization / padding.
    warn_on_no_convergence:
        Emit :class:`~repro.exceptions.ConvergenceWarning` when ``max_iter``
        is reached without meeting ``tol``.

    Returns
    -------
    DecompositionResult
        With factors normalized to unit columns and component weights sorted
        in decreasing ``|λ|`` order.
    """
    tensor = np.asarray(tensor, dtype=np.float64)
    if tensor.ndim < 2:
        raise DecompositionError(
            f"CP-ALS needs an order >= 2 tensor, got order {tensor.ndim}"
        )
    rank = check_positive_int(rank, "rank")
    max_iter = check_positive_int(max_iter, "max_iter")
    norm_x = frobenius_norm(tensor)
    if norm_x == 0.0:
        raise DecompositionError(
            "cannot decompose the zero tensor: no rank-1 direction exists"
        )

    factors = initialize_factors(
        tensor, rank, method=init, random_state=random_state
    )
    weights = np.ones(rank)
    unfoldings = [unfold(tensor, mode) for mode in range(tensor.ndim)]
    norm_x_sq = norm_x**2

    fit_history: list[float] = []
    previous_error = np.inf
    converged = False
    iteration = 0
    for iteration in range(1, max_iter + 1):
        for mode in range(tensor.ndim):
            rhs, gram = _als_rhs(unfoldings, factors, mode)
            # Solve U_p gram = rhs for U_p; pinv guards rank-deficient grams.
            try:
                updated = np.linalg.solve(gram.T, rhs.T).T
            except np.linalg.LinAlgError:
                updated = rhs @ np.linalg.pinv(gram)
            norms = np.linalg.norm(updated, axis=0)
            safe = np.where(norms > 0.0, norms, 1.0)
            factors[mode] = updated / safe
            weights = norms

        # Relative error via the factor-side identity:
        # ‖X - X̂‖² = ‖X‖² - 2⟨X, X̂⟩ + ‖X̂‖², all cheap in factor form.
        rhs, gram = _als_rhs(unfoldings, factors, tensor.ndim - 1)
        last = factors[tensor.ndim - 1] * weights
        cross = float(np.sum(rhs * last))
        gram_full = gram * (
            factors[tensor.ndim - 1].T @ factors[tensor.ndim - 1]
        )
        model_sq = float(weights @ gram_full @ weights)
        error_sq = max(norm_x_sq - 2.0 * cross + model_sq, 0.0)
        error = float(np.sqrt(error_sq) / norm_x)
        fit_history.append(error)

        if abs(previous_error - error) < tol:
            converged = True
            break
        previous_error = error

    if not converged and warn_on_no_convergence:
        warnings.warn(
            f"CP-ALS did not converge in {max_iter} iterations "
            f"(last error decrease above tol={tol})",
            ConvergenceWarning,
            stacklevel=2,
        )

    order_by_weight = np.argsort(-np.abs(weights))
    cp = CPTensor(
        weights=weights[order_by_weight],
        factors=[factor[:, order_by_weight] for factor in factors],
    )
    return DecompositionResult(
        cp=cp,
        n_iterations=iteration,
        converged=converged,
        fit_history=fit_history,
    )
