"""Rank-``r`` CP decomposition by alternating least squares (CP-ALS).

This is the solver the paper adopts (Kroonenberg & De Leeuw 1980; Comon et
al. 2009): TCCA's rank-``r`` canonical factors are the CP factors of the
whitened covariance tensor ``M``, fitted for all ``r`` components *jointly*
— the property the paper credits for TCCA's flat accuracy at large ``r``
(no greedy deflation, so variance is spread across all factors).

The sweep loop lives in :func:`cp_als_core`, which only touches the target
tensor through an ``mttkrp(factors, mode)`` callable and its squared
Frobenius norm. :func:`cp_als` wires it to dense unfoldings;
:func:`repro.tensor.decomposition.implicit.cp_als_implicit` wires the same
core to a :class:`~repro.tensor.operator.CovarianceTensorOperator`, so the
dense and tensor-free solvers share every line of convergence,
normalization, and weight-ordering logic.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.backends import array_namespace
from repro.exceptions import ConvergenceWarning, DecompositionError
from repro.tensor.cp import CPTensor
from repro.tensor.decomposition.init import initialize_factors
from repro.tensor.decomposition.result import DecompositionResult
from repro.tensor.dense import cyclic_mode_order, frobenius_norm, unfold
from repro.tensor.products import khatri_rao
from repro.utils.validation import check_positive_int

__all__ = ["cp_als", "cp_als_core"]


def _hadamard_gram(grams, skip: int):
    """Hadamard product of the cached factor Grams, excluding mode ``skip``.

    This is the normal-equation matrix of the mode-``skip`` least-squares
    update: ``⊙_{q≠skip} U_q^T U_q``.
    """
    xp = array_namespace(*grams)
    rank = grams[0].shape[0]
    gram = xp.ones((rank, rank), dtype=grams[0].dtype)
    for other, factor_gram in enumerate(grams):
        if other == skip:
            continue
        gram = gram * factor_gram
    return gram


def cp_als_core(
    mttkrp,
    factors: list[np.ndarray],
    norm_x_sq: float,
    *,
    max_iter: int,
    tol: float,
    warn_on_no_convergence: bool,
) -> DecompositionResult:
    """Shared CP-ALS sweep loop over an abstract MTTKRP.

    Parameters
    ----------
    mttkrp:
        ``mttkrp(factors, mode) -> (d_mode, r)`` — the matricized-tensor
        times Khatri-Rao product ``X_(mode) · khatri_rao(reversed other
        factors)``. The only way the loop reads the target tensor.
    factors:
        Initial ``(d_p, r)`` factor matrices with unit-norm columns;
        updated in place.
    norm_x_sq:
        ``‖X‖_F²`` of the target, for the factor-side error identity.
    max_iter, tol, warn_on_no_convergence:
        As in :func:`cp_als`.

    Notes
    -----
    The per-mode Gram matrices ``U_q^T U_q`` are cached and refreshed only
    for the factor each mode update changes, and the final mode's
    rhs/Gram pair is reused for the error evaluation — no per-sweep
    recomputation of unchanged ``O(d_q r²)`` products.
    """
    ndim = len(factors)
    xp = array_namespace(*factors)
    dtype = factors[0].dtype
    norm_x = float(np.sqrt(norm_x_sq))
    weights = xp.ones(factors[0].shape[1], dtype=dtype)
    grams = [factor.T @ factor for factor in factors]

    fit_history: list[float] = []
    previous_error = np.inf
    converged = False
    iteration = 0
    for iteration in range(1, max_iter + 1):
        for mode in range(ndim):
            rhs = mttkrp(factors, mode)
            gram = _hadamard_gram(grams, mode)
            # Solve U_p gram = rhs for U_p; pinv guards rank-deficient grams.
            # (torch raises a RuntimeError subclass where numpy raises
            # LinAlgError; both fall through to the pinv path.)
            try:
                updated = (xp.linalg.solve(gram.T, rhs.T)).T
            except (np.linalg.LinAlgError, RuntimeError):
                updated = rhs @ xp.linalg.pinv(gram)
            norms = xp.linalg.vector_norm(updated, axis=0)
            safe = xp.where(norms > 0.0, norms, xp.ones((), dtype=dtype))
            factors[mode] = updated / safe
            weights = norms
            grams[mode] = factors[mode].T @ factors[mode]

        # Relative error via the factor-side identity
        # ‖X - X̂‖² = ‖X‖² - 2⟨X, X̂⟩ + ‖X̂‖², all cheap in factor form.
        # The last mode update's rhs and Hadamard Gram are exactly the
        # pair the identity needs (the other factors did not change after
        # it), so they are reused instead of recomputed.
        last = factors[ndim - 1] * weights
        cross = float(xp.sum(rhs * last))
        gram_full = gram * grams[ndim - 1]
        model_sq = float(weights @ gram_full @ weights)
        error_sq = max(norm_x_sq - 2.0 * cross + model_sq, 0.0)
        error = float(np.sqrt(error_sq) / norm_x)
        fit_history.append(error)

        if abs(previous_error - error) < tol:
            converged = True
            break
        previous_error = error

    if not converged and warn_on_no_convergence:
        warnings.warn(
            f"CP-ALS did not converge in {max_iter} iterations "
            f"(last error decrease above tol={tol})",
            ConvergenceWarning,
            stacklevel=3,
        )

    order_by_weight = xp.argsort(-xp.abs(weights))
    cp = CPTensor(
        weights=xp.take(weights, order_by_weight, axis=0),
        factors=[
            xp.take(factor, order_by_weight, axis=1) for factor in factors
        ],
    )
    return DecompositionResult(
        cp=cp,
        n_iterations=iteration,
        converged=converged,
        fit_history=fit_history,
    )


def cp_als(
    tensor,
    rank: int,
    *,
    max_iter: int = 200,
    tol: float = 1e-8,
    init: str = "hosvd",
    random_state=None,
    warn_on_no_convergence: bool = True,
    factors_init=None,
) -> DecompositionResult:
    """Fit a rank-``rank`` CP decomposition with alternating least squares.

    Parameters
    ----------
    tensor:
        Dense input tensor of order >= 2.
    rank:
        Number of rank-1 components to fit jointly.
    max_iter:
        Maximum number of full ALS sweeps.
    tol:
        Convergence tolerance on the decrease of the relative reconstruction
        error between consecutive sweeps.
    init:
        ``"hosvd"`` (default) or ``"random"`` factor initialization.
    random_state:
        Seed used by random initialization / padding.
    warn_on_no_convergence:
        Emit :class:`~repro.exceptions.ConvergenceWarning` when ``max_iter``
        is reached without meeting ``tol``.
    factors_init:
        Optional warm-start factors (one ``(I_p, rank)`` matrix per mode)
        overriding ``init`` — ALS resumes from them, which near a previous
        solution re-converges in a handful of sweeps.

    Returns
    -------
    DecompositionResult
        With factors normalized to unit columns and component weights sorted
        in decreasing ``|λ|`` order.
    """
    xp = array_namespace(tensor)
    tensor = xp.asarray(tensor)
    if not xp.isdtype(tensor.dtype, "real floating"):
        tensor = xp.astype(tensor, xp.float64)
    if tensor.ndim < 2:
        raise DecompositionError(
            f"CP-ALS needs an order >= 2 tensor, got order {tensor.ndim}"
        )
    rank = check_positive_int(rank, "rank")
    max_iter = check_positive_int(max_iter, "max_iter")
    norm_x = frobenius_norm(tensor)
    if norm_x == 0.0:
        raise DecompositionError(
            "cannot decompose the zero tensor: no rank-1 direction exists"
        )

    factors = initialize_factors(
        tensor,
        rank,
        method=init,
        random_state=random_state,
        factors_init=factors_init,
    )
    unfoldings = [unfold(tensor, mode) for mode in range(tensor.ndim)]
    ndim = tensor.ndim

    def dense_mttkrp(current_factors, mode):
        # With the forward-cyclic unfolding convention, the CP model
        # satisfies X_(p) = U_p diag(λ) K^T where K is the Khatri-Rao
        # product of the other factors taken in *reverse* cyclic order.
        others = [
            current_factors[other]
            for other in reversed(cyclic_mode_order(ndim, mode))
        ]
        return unfoldings[mode] @ khatri_rao(others)

    return cp_als_core(
        dense_mttkrp,
        factors,
        norm_x**2,
        max_iter=max_iter,
        tol=tol,
        warn_on_no_convergence=warn_on_no_convergence,
    )
