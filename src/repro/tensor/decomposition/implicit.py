"""Tensor-free CP solvers over a :class:`CovarianceTensorOperator`.

Dense CP-ALS on the whitened covariance tensor ``M`` pays ``∏ d_p`` memory
and an ``O(r · ∏ d_p)`` Khatri-Rao contraction per mode update — the
scaling wall of the paper's complexity experiments. But the ALS mode
update only reads ``M`` through its MTTKRP, and for a covariance tensor of
``N`` samples that contraction factors through the data:
``X̃_p (⊙_{q≠p} X̃_q^T U_q) / N`` — ``O(N · Σ d_p · r)`` per sweep with no
``∏ d_p`` object anywhere. The solvers here run the *same* sweep loops as
the dense ones (:func:`~repro.tensor.decomposition.als.cp_als_core`,
:func:`~repro.tensor.decomposition.hopm.hopm_core` — shared code, not
parallel implementations) against an operator's contractions, so the two
paths agree to round-off while the implicit one scales to view dimensions
where the dense tensor would not fit in memory at all.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DecompositionError
from repro.tensor.decomposition.als import cp_als_core
from repro.tensor.decomposition.hopm import hopm_core
from repro.tensor.decomposition.init import initialize_factors_implicit
from repro.tensor.decomposition.result import DecompositionResult
from repro.utils.validation import check_positive_int

__all__ = ["best_rank1_implicit", "cp_als_implicit"]


def _check_operator(operator):
    shape = getattr(operator, "shape", None)
    if shape is None or len(shape) < 2:
        raise DecompositionError(
            "implicit solvers need an order >= 2 tensor operator, got "
            f"{operator!r}"
        )
    if operator.frobenius_norm_sq() == 0.0:
        raise DecompositionError(
            "cannot decompose the zero tensor: no rank-1 direction exists"
        )


def cp_als_implicit(
    operator,
    rank: int,
    *,
    max_iter: int = 200,
    tol: float = 1e-8,
    init: str = "hosvd",
    random_state=None,
    warn_on_no_convergence: bool = True,
    factors_init=None,
) -> DecompositionResult:
    """Rank-``rank`` CP decomposition of an implicit covariance tensor.

    Parameters
    ----------
    operator:
        A :class:`~repro.tensor.operator.CovarianceTensorOperator` (or any
        object exposing ``shape``, ``mttkrp(factors, mode)``,
        ``frobenius_norm_sq()``, and ``mode_gram(mode)``).
    rank, max_iter, tol, init, random_state, warn_on_no_convergence:
        As in :func:`~repro.tensor.decomposition.als.cp_als`.
    factors_init:
        Optional warm-start factors overriding ``init``, as in the dense
        solver — and skipping the operator's HOSVD Gram pass.

    Returns
    -------
    DecompositionResult
        Same contract as the dense solver: unit-norm factor columns,
        weights sorted by decreasing ``|λ|``, relative-error fit history.
    """
    rank = check_positive_int(rank, "rank")
    max_iter = check_positive_int(max_iter, "max_iter")
    _check_operator(operator)
    factors = initialize_factors_implicit(
        operator,
        rank,
        method=init,
        random_state=random_state,
        factors_init=factors_init,
    )
    return cp_als_core(
        operator.mttkrp,
        factors,
        operator.frobenius_norm_sq(),
        max_iter=max_iter,
        tol=tol,
        warn_on_no_convergence=warn_on_no_convergence,
    )


def best_rank1_implicit(
    operator,
    *,
    max_iter: int = 200,
    tol: float = 1e-10,
    init: str = "hosvd",
    random_state=None,
    warn_on_no_convergence: bool = True,
    factors_init=None,
) -> DecompositionResult:
    """Best rank-1 approximation of an implicit tensor via HOPM.

    The skip-one contraction of HOPM *is* a rank-1 MTTKRP, so the dense
    power loop runs unchanged against ``operator.mttkrp``; the final
    sign-correct ``ρ`` comes from ``operator.multi_contract``.
    ``factors_init`` warm-starts the iteration as in :func:`cp_als_implicit`.
    """
    max_iter = check_positive_int(max_iter, "max_iter")
    _check_operator(operator)
    factors = initialize_factors_implicit(
        operator,
        1,
        method=init,
        random_state=random_state,
        factors_init=factors_init,
    )
    vectors = [factor[:, 0] for factor in factors]

    def contract_skip(current_vectors, skip):
        columns = [np.asarray(v)[:, None] for v in current_vectors]
        return operator.mttkrp(columns, skip).ravel()

    return hopm_core(
        contract_skip,
        operator.multi_contract,
        vectors,
        max_iter=max_iter,
        tol=tol,
        warn_on_no_convergence=warn_on_no_convergence,
    )
