"""Shared result container for tensor decompositions."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.tensor.cp import CPTensor

__all__ = ["DecompositionResult"]


@dataclass
class DecompositionResult:
    """Outcome of an iterative tensor decomposition.

    Attributes
    ----------
    cp:
        The fitted CP tensor (unit-norm factor columns, norms absorbed into
        the weights).
    n_iterations:
        Number of outer iterations performed.
    converged:
        Whether the stopping tolerance was met before ``max_iter``.
    fit_history:
        Per-iteration objective trace. For ALS this is the relative
        reconstruction error ``‖X - X̂‖_F / ‖X‖_F``; for the power methods it
        is the Rayleigh quotient ``ρ`` of the current component.
    """

    cp: CPTensor
    n_iterations: int
    converged: bool
    fit_history: list[float] = field(default_factory=list)

    @property
    def rank(self) -> int:
        """Rank of the fitted CP tensor."""
        return self.cp.rank

    def relative_error(self, tensor: np.ndarray) -> float:
        """Relative Frobenius reconstruction error against ``tensor``."""
        tensor = np.asarray(tensor, dtype=np.float64)
        denominator = np.linalg.norm(tensor.ravel())
        if denominator == 0.0:
            return 0.0
        residual = tensor - self.cp.to_dense()
        return float(np.linalg.norm(residual.ravel()) / denominator)
