"""Higher-order SVD (Tucker decomposition via mode-wise SVDs).

De Lathauwer et al. (2000a). Used here as a reference decomposition, as the
default initializer for CP-ALS/HOPM, and in tests as an independent check of
the unfolding conventions (the HOSVD core must reproduce the tensor exactly
when no truncation is applied).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DecompositionError, ValidationError
from repro.tensor.dense import multi_mode_product, unfold

__all__ = ["TuckerTensor", "hosvd"]


@dataclass
class TuckerTensor:
    """Tucker form: core tensor ``G`` plus orthonormal mode factors ``U_p``."""

    core: np.ndarray
    factors: list[np.ndarray]

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the dense tensor this Tucker form represents."""
        return tuple(factor.shape[0] for factor in self.factors)

    def to_dense(self) -> np.ndarray:
        """Materialize ``G ×_1 U_1 ×_2 … ×_m U_m``."""
        return multi_mode_product(self.core, self.factors)


def hosvd(tensor, ranks=None) -> TuckerTensor:
    """Higher-order SVD with optional per-mode truncation.

    Parameters
    ----------
    tensor:
        Input tensor of order >= 1.
    ranks:
        Per-mode truncation ranks; ``None`` keeps every mode full.

    Returns
    -------
    TuckerTensor
        ``factors[p]`` holds the leading left singular vectors of the
        mode-``p`` unfolding; ``core = A ×_1 U_1^T … ×_m U_m^T``.
    """
    tensor = np.asarray(tensor, dtype=np.float64)
    if tensor.ndim < 1:
        raise DecompositionError("hosvd needs a tensor with at least 1 mode")
    if ranks is None:
        ranks = list(tensor.shape)
    ranks = [int(rank) for rank in ranks]
    if len(ranks) != tensor.ndim:
        raise ValidationError(
            f"ranks must have one entry per mode ({tensor.ndim}), "
            f"got {len(ranks)}"
        )
    for mode, rank in enumerate(ranks):
        if not 1 <= rank <= tensor.shape[mode]:
            raise ValidationError(
                f"ranks[{mode}] must be in [1, {tensor.shape[mode]}], "
                f"got {rank}"
            )
    factors = []
    for mode in range(tensor.ndim):
        left, _singular_values, _right = np.linalg.svd(
            unfold(tensor, mode), full_matrices=False
        )
        factors.append(left[:, : ranks[mode]])
    core = multi_mode_product(
        tensor, [factor.T for factor in factors]
    )
    return TuckerTensor(core=core, factors=factors)
