"""Factor-matrix initialization strategies for iterative decompositions."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.tensor.dense import unfold
from repro.utils.rng import check_random_state

__all__ = ["initialize_factors"]


def initialize_factors(
    tensor: np.ndarray,
    rank: int,
    *,
    method: str = "hosvd",
    random_state=None,
) -> list[np.ndarray]:
    """Initial factor matrices for CP-type decompositions.

    Parameters
    ----------
    tensor:
        The target tensor.
    rank:
        Number of components.
    method:
        ``"hosvd"`` — leading left singular vectors of each unfolding
        (padded with random columns when ``rank`` exceeds a mode size);
        ``"random"`` — standard normal entries with unit-norm columns.
    random_state:
        Seed for the random parts.

    Returns
    -------
    list of ``(I_p, rank)`` arrays with unit-norm columns.
    """
    if method not in ("hosvd", "random"):
        raise ValidationError(
            f"unknown initialization method {method!r}; "
            "expected 'hosvd' or 'random'"
        )
    rng = check_random_state(random_state)
    factors = []
    for mode in range(tensor.ndim):
        size = tensor.shape[mode]
        if method == "random":
            factor = rng.standard_normal((size, rank))
        else:
            unfolding = unfold(tensor, mode)
            left, _singular_values, _right = np.linalg.svd(
                unfolding, full_matrices=False
            )
            n_available = min(rank, left.shape[1])
            factor = np.empty((size, rank))
            factor[:, :n_available] = left[:, :n_available]
            if n_available < rank:
                factor[:, n_available:] = rng.standard_normal(
                    (size, rank - n_available)
                )
        norms = np.linalg.norm(factor, axis=0)
        norms = np.where(norms > 0.0, norms, 1.0)
        factors.append(factor / norms)
    return factors
