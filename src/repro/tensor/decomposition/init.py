"""Factor-matrix initialization strategies for iterative decompositions.

Both entry points produce the same mathematical initialization — leading
left singular vectors per unfolding (``"hosvd"``) or unit-norm Gaussian
columns (``"random"``) — but read the target differently:
:func:`initialize_factors` from a dense tensor,
:func:`initialize_factors_implicit` from a
:class:`~repro.tensor.operator.CovarianceTensorOperator` via the mode
Grams ``M_(p) M_(p)^T`` (whose eigenvectors are the unfolding's left
singular vectors), never materializing a ``∏ d_p`` object. Column signs
are canonicalized in both so the two paths hand the solvers the same
starting point up to round-off — LAPACK's SVD and eigendecomposition sign
choices are arbitrary and build-dependent.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError, ValidationError
from repro.tensor.dense import unfold
from repro.utils.rng import check_random_state

__all__ = [
    "check_factors_init",
    "initialize_factors",
    "initialize_factors_implicit",
]

_INIT_METHODS = ("hosvd", "random")


def _canonicalize_column_signs(factor: np.ndarray) -> np.ndarray:
    """Flip columns so each column's largest-|entry| pivot is positive.

    Removes the sign indeterminacy of SVD/eigendecomposition outputs;
    flipping init columns mirrors the ALS/HOPM trajectory exactly (the
    final :meth:`~repro.tensor.cp.CPTensor.canonicalize_signs` lands on
    the same representative), so this only makes runs reproducible across
    BLAS builds and initialization backends.
    """
    pivots = factor[
        np.argmax(np.abs(factor), axis=0), np.arange(factor.shape[1])
    ]
    factor[:, pivots < 0.0] *= -1.0
    return factor


def _normalize_columns(factor: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(factor, axis=0)
    norms = np.where(norms > 0.0, norms, 1.0)
    return factor / norms


def _check_method(method: str) -> None:
    if method not in _INIT_METHODS:
        raise ValidationError(
            f"unknown initialization method {method!r}; "
            "expected 'hosvd' or 'random'"
        )


def check_factors_init(
    shape, rank: int, factors_init, *, dtype=None
) -> list[np.ndarray]:
    """Validate user-supplied warm-start factors against ``shape``/``rank``.

    Returns normalized *copies* — unit columns, like every other
    initialization — but deliberately without sign canonicalization:
    warm factors are already oriented (e.g. by a previous fit's
    ``canonicalize_signs``) and flipping them would discard that state.
    Zero columns are left as drawn by ``_normalize_columns``'s guard.
    ``dtype`` casts the copies into the target's compute dtype (the
    mixed-precision polish warm-starts a float64 solve from float32
    factors this way); the default keeps float64.
    """
    dtype = np.float64 if dtype is None else np.dtype(dtype)
    factors = [
        np.array(factor, dtype=dtype, copy=True) for factor in factors_init
    ]
    if len(factors) != len(shape):
        raise ValidationError(
            f"factors_init must provide one factor per mode "
            f"({len(shape)}), got {len(factors)}"
        )
    for mode, (factor, size) in enumerate(zip(factors, shape)):
        if factor.ndim != 2 or factor.shape != (int(size), rank):
            raise ShapeError(
                f"factors_init[{mode}] must have shape ({size}, {rank}), "
                f"got {factor.shape}"
            )
        if not np.all(np.isfinite(factor)):
            raise ValidationError(
                f"factors_init[{mode}] contains NaN or infinite entries"
            )
    return [_normalize_columns(factor) for factor in factors]


def _pad_random(factor: np.ndarray, n_available: int, rng) -> None:
    if n_available < factor.shape[1]:
        factor[:, n_available:] = rng.standard_normal(
            (factor.shape[0], factor.shape[1] - n_available)
        )


def initialize_factors(
    tensor: np.ndarray,
    rank: int,
    *,
    method: str = "hosvd",
    random_state=None,
    factors_init=None,
) -> list[np.ndarray]:
    """Initial factor matrices for CP-type decompositions.

    Parameters
    ----------
    tensor:
        The target tensor.
    rank:
        Number of components.
    method:
        ``"hosvd"`` — leading left singular vectors of each unfolding
        (padded with random columns when ``rank`` exceeds a mode size);
        ``"random"`` — standard normal entries with unit-norm columns.
    random_state:
        Seed for the random parts.
    factors_init:
        Optional explicit starting factors — one ``(I_p, rank)`` matrix
        per mode. When given, ``method`` is bypassed and the (normalized,
        copied) factors are returned as-is; this is the warm-start hook
        incremental refits use to resume ALS/HOPM from a previous
        solution's factors.

    Returns
    -------
    list of ``(I_p, rank)`` arrays with unit-norm columns and
    sign-canonicalized pivots (warm factors keep their own signs).
    """
    dtype = (
        tensor.dtype
        if tensor.dtype in (np.float32, np.float64)
        else np.float64
    )
    if factors_init is not None:
        return check_factors_init(
            tensor.shape, rank, factors_init, dtype=dtype
        )
    _check_method(method)
    rng = check_random_state(random_state)
    factors = []
    for mode in range(tensor.ndim):
        size = tensor.shape[mode]
        if method == "random":
            factor = rng.standard_normal((size, rank)).astype(
                dtype, copy=False
            )
        else:
            unfolding = unfold(tensor, mode)
            left, _singular_values, _right = np.linalg.svd(
                unfolding, full_matrices=False
            )
            n_available = min(rank, left.shape[1])
            factor = np.empty((size, rank), dtype=dtype)
            factor[:, :n_available] = left[:, :n_available]
            _pad_random(factor, n_available, rng)
        factors.append(_canonicalize_column_signs(_normalize_columns(factor)))
    return factors


def initialize_factors_implicit(
    operator,
    rank: int,
    *,
    method: str = "hosvd",
    random_state=None,
    factors_init=None,
) -> list[np.ndarray]:
    """Initial factors from an implicit tensor, without any unfolding.

    The ``"hosvd"`` method eigendecomposes the ``(d_p, d_p)`` mode Grams
    ``M_(p) M_(p)^T`` the operator exposes — their leading eigenvectors
    are the unfolding's leading left singular vectors — so the cost is
    ``O(Σ d_p³)`` plus the operator's Gram contractions instead of an SVD
    of a ``d_p × ∏_{q≠p} d_q`` matrix. The ``"random"`` method draws the
    exact same variates as the dense path (same shapes, same order), so
    dense and implicit solves start bit-identically. ``factors_init``
    bypasses both exactly as in :func:`initialize_factors` — and skips
    the operator's Gram pass entirely, which on stream-backed operators
    saves the nested data pass.
    """
    dtype = np.dtype(getattr(operator, "dtype", np.float64))
    if factors_init is not None:
        return check_factors_init(
            operator.shape, rank, factors_init, dtype=dtype
        )
    _check_method(method)
    rng = check_random_state(random_state)
    shape = operator.shape
    factors = []
    for mode in range(len(shape)):
        size = shape[mode]
        if method == "random":
            factor = rng.standard_normal((size, rank)).astype(
                dtype, copy=False
            )
        else:
            eigenvalues, eigenvectors = np.linalg.eigh(
                operator.mode_gram(mode)
            )
            del eigenvalues  # ascending order; only the ordering is used
            leading = eigenvectors[:, ::-1]
            # Mirror the dense path's svd(full_matrices=False) column
            # count so any random padding consumes identical rng draws.
            n_columns = min(
                size,
                int(
                    np.prod(
                        [shape[q] for q in range(len(shape)) if q != mode],
                        dtype=np.int64,
                    )
                ),
            )
            n_available = min(rank, n_columns)
            factor = np.empty((size, rank), dtype=dtype)
            factor[:, :n_available] = leading[:, :n_available]
            _pad_random(factor, n_available, rng)
        factors.append(_canonicalize_column_signs(_normalize_columns(factor)))
    return factors
