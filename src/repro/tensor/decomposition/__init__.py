"""Tensor decomposition algorithms.

* :func:`~repro.tensor.decomposition.als.cp_als` — rank-``r`` CP
  decomposition by alternating least squares (the solver the paper adopts
  for TCCA/KTCCA).
* :func:`~repro.tensor.decomposition.hopm.best_rank1` — higher-order power
  method for the best rank-1 approximation (De Lathauwer et al. 2000b).
* :func:`~repro.tensor.decomposition.implicit.cp_als_implicit` /
  :func:`~repro.tensor.decomposition.implicit.best_rank1_implicit` — the
  same solvers run tensor-free against a
  :class:`~repro.tensor.operator.CovarianceTensorOperator` (shared sweep
  cores, no ``∏ d_p`` objects).
* :func:`~repro.tensor.decomposition.power.tensor_power_deflation` —
  greedy rank-1 deflation (tensor power method, Allen 2012).
* :func:`~repro.tensor.decomposition.hosvd.hosvd` — higher-order SVD,
  used for initialization and as a reference Tucker decomposition.
"""

from repro.tensor.decomposition.result import DecompositionResult
from repro.tensor.decomposition.als import cp_als, cp_als_core
from repro.tensor.decomposition.hopm import best_rank1, hopm_core
from repro.tensor.decomposition.implicit import (
    best_rank1_implicit,
    cp_als_implicit,
)
from repro.tensor.decomposition.init import check_factors_init
from repro.tensor.decomposition.power import tensor_power_deflation
from repro.tensor.decomposition.hosvd import hosvd

__all__ = [
    "DecompositionResult",
    "best_rank1",
    "best_rank1_implicit",
    "check_factors_init",
    "cp_als",
    "cp_als_core",
    "cp_als_implicit",
    "hopm_core",
    "hosvd",
    "tensor_power_deflation",
]
