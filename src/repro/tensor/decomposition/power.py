"""Greedy deflation-based tensor power method (Allen, 2012).

Extracts ``rank`` components one at a time: fit the best rank-1
approximation (HOPM), subtract it, and repeat on the residual. Unlike CP-ALS
this is greedy — the paper cites exactly this contrast to explain why TCCA's
ALS-fitted factors share variance across components while deflation
concentrates it in the leading ones (Section 5.1.1, observation 5). The
ablation benchmark compares the two on downstream accuracy.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DecompositionError
from repro.tensor.cp import CPTensor
from repro.tensor.decomposition.hopm import best_rank1
from repro.tensor.decomposition.result import DecompositionResult
from repro.tensor.dense import frobenius_norm
from repro.utils.validation import check_positive_int

__all__ = ["tensor_power_deflation"]


def tensor_power_deflation(
    tensor,
    rank: int,
    *,
    max_iter: int = 200,
    tol: float = 1e-10,
    init: str = "hosvd",
    random_state=None,
) -> DecompositionResult:
    """Rank-``rank`` CP approximation by repeated rank-1 deflation.

    Returns
    -------
    DecompositionResult
        ``fit_history`` holds the relative residual norm after each
        deflation step; ``converged`` reports whether every inner HOPM run
        converged.
    """
    tensor = np.asarray(tensor, dtype=np.float64)
    rank = check_positive_int(rank, "rank")
    norm_x = frobenius_norm(tensor)
    if norm_x == 0.0:
        raise DecompositionError(
            "cannot decompose the zero tensor: no rank-1 direction exists"
        )

    residual = tensor.copy()
    weights = np.zeros(rank)
    factors = [np.zeros((size, rank)) for size in tensor.shape]
    fit_history: list[float] = []
    all_converged = True
    total_iterations = 0
    for component in range(rank):
        if frobenius_norm(residual) <= tol * norm_x:
            # Residual exhausted: remaining components stay zero.
            fit_history.extend(
                [fit_history[-1] if fit_history else 0.0]
                * (rank - component)
            )
            break
        step = best_rank1(
            residual,
            max_iter=max_iter,
            tol=tol,
            init=init,
            random_state=random_state,
            warn_on_no_convergence=False,
        )
        all_converged = all_converged and step.converged
        total_iterations += step.n_iterations
        weight, vectors = step.cp.component(0)
        weights[component] = weight
        for mode, vector in enumerate(vectors):
            factors[mode][:, component] = vector
        residual = residual - step.cp.to_dense()
        fit_history.append(frobenius_norm(residual) / norm_x)

    cp = CPTensor(weights=weights, factors=factors)
    return DecompositionResult(
        cp=cp,
        n_iterations=total_iterations,
        converged=all_converged,
        fit_history=fit_history,
    )
