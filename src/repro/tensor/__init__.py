"""Dense tensor algebra and CP decompositions.

This subpackage is the multilinear-algebra substrate of the library. It
implements, from scratch on top of numpy:

* mode-``p`` matricization (unfolding) and its inverse (:mod:`repro.tensor.dense`),
* mode-``p`` tensor-matrix products and multi-mode products,
* Kronecker and Khatri-Rao products (:mod:`repro.tensor.products`),
* the :class:`~repro.tensor.cp.CPTensor` container for rank-``r`` CP form,
* CP-ALS, the higher-order power method (HOPM), a deflation-based tensor
  power method, and HOSVD (:mod:`repro.tensor.decomposition`).

The unfolding convention is the forward-cyclic ordering used by the paper
(its Eq. 4.3): the columns of the mode-``p`` unfolding run over modes
``p+1, p+2, …, m, 1, …, p-1``, so that ``B = A ×_p U`` satisfies
``B_(p) = U @ A_(p)`` and a full multi-mode product becomes
``B_(p) = U_p A_(p) (U_{c_{L}} ⊗ … ⊗ U_{c_1})^T``.
"""

from repro.tensor.dense import (
    fold,
    frobenius_norm,
    inner_product,
    mode_product,
    multi_mode_product,
    outer_product,
    unfold,
)
from repro.tensor.products import khatri_rao, kronecker
from repro.tensor.cp import CPTensor, rank1_tensor
from repro.tensor.operator import CovarianceTensorOperator
from repro.tensor.decomposition import (
    DecompositionResult,
    best_rank1,
    best_rank1_implicit,
    cp_als,
    cp_als_implicit,
    hosvd,
    tensor_power_deflation,
)

__all__ = [
    "CPTensor",
    "CovarianceTensorOperator",
    "DecompositionResult",
    "best_rank1",
    "best_rank1_implicit",
    "cp_als",
    "cp_als_implicit",
    "fold",
    "frobenius_norm",
    "hosvd",
    "inner_product",
    "khatri_rao",
    "kronecker",
    "mode_product",
    "multi_mode_product",
    "outer_product",
    "rank1_tensor",
    "tensor_power_deflation",
    "unfold",
]
