"""Dense tensor operations: unfolding, mode products, outer products, norms.

Unfolding convention
--------------------
For an ``m``-order tensor ``A`` of shape ``(I_1, …, I_m)``, the mode-``p``
unfolding ``A_(p)`` is an ``I_p × (∏_{q≠p} I_q)`` matrix whose columns
enumerate the remaining modes in *forward cyclic* order
``p+1, p+2, …, m, 1, …, p-1`` (the ordering used in Eq. 4.3 of the paper).
With this convention,

``(A ×_1 U_1 ×_2 … ×_m U_m)_(p) = U_p A_(p) (U_{c_L} ⊗ … ⊗ U_{c_1})^T``

where ``c_1 … c_L`` is that same cyclic ordering, which is what makes the
ALS update in :mod:`repro.tensor.decomposition.als` a plain matrix product.

Every kernel here dispatches on the namespace and floating dtype of its
inputs (:mod:`repro.backends`): non-floating inputs promote to float64,
float32/float64 arrays stay in their dtype and backend.
"""

from __future__ import annotations

import numpy as np

from repro.backends import array_namespace, reshape_fortran
from repro.exceptions import ShapeError, ValidationError

__all__ = [
    "cyclic_mode_order",
    "fold",
    "frobenius_norm",
    "inner_product",
    "mode_product",
    "multi_mode_product",
    "outer_product",
    "unfold",
]


def _as_float(xp, array):
    """``array`` in ``xp`` with a real floating dtype (default float64)."""
    array = xp.asarray(array)
    if not xp.isdtype(array.dtype, "real floating"):
        array = xp.astype(array, xp.float64)
    return array


def _check_tensor(tensor, name: str = "tensor", xp=None):
    if xp is None:
        xp = array_namespace(tensor)
    out = _as_float(xp, tensor)
    if out.ndim < 1:
        raise ShapeError(f"{name} must have at least 1 mode, got a scalar")
    return out


def _check_mode(tensor, mode: int) -> int:
    if not isinstance(mode, (int, np.integer)) or isinstance(mode, bool):
        raise ValidationError(f"mode must be an integer, got {mode!r}")
    mode = int(mode)
    if not 0 <= mode < tensor.ndim:
        raise ValidationError(
            f"mode must be in [0, {tensor.ndim - 1}] for an order-{tensor.ndim} "
            f"tensor, got {mode}"
        )
    return mode


def cyclic_mode_order(ndim: int, mode: int) -> list[int]:
    """Forward-cyclic ordering of the non-``mode`` axes.

    Returns ``[mode+1, …, ndim-1, 0, …, mode-1]`` — the column ordering of
    the mode-``mode`` unfolding.
    """
    return [(mode + offset) % ndim for offset in range(1, ndim)]


def unfold(tensor, mode: int):
    """Mode-``mode`` matricization with forward-cyclic column ordering."""
    xp = array_namespace(tensor)
    tensor = _check_tensor(tensor, xp=xp)
    mode = _check_mode(tensor, mode)
    order = [mode] + cyclic_mode_order(tensor.ndim, mode)
    # Fortran order makes the *first* trailing axis vary fastest, which is
    # exactly the Kronecker ordering U_{c_L} ⊗ … ⊗ U_{c_1} in Eq. 4.3.
    permuted = xp.permute_dims(tensor, tuple(order))
    return reshape_fortran(xp, permuted, (tensor.shape[mode], -1))


def fold(matrix, mode: int, shape):
    """Inverse of :func:`unfold`: rebuild the tensor of the given ``shape``."""
    xp = array_namespace(matrix)
    matrix = _as_float(xp, matrix)
    shape = tuple(int(size) for size in shape)
    if matrix.ndim != 2:
        raise ShapeError(f"matrix must be 2-D, got ndim={matrix.ndim}")
    if not 0 <= mode < len(shape):
        raise ValidationError(
            f"mode must be in [0, {len(shape) - 1}], got {mode}"
        )
    order = [mode] + cyclic_mode_order(len(shape), mode)
    permuted_shape = tuple(shape[axis] for axis in order)
    expected = (shape[mode], int(np.prod(permuted_shape[1:], dtype=np.int64)))
    if matrix.shape != expected:
        raise ShapeError(
            f"matrix shape {matrix.shape} incompatible with tensor shape "
            f"{shape} at mode {mode}; expected {expected}"
        )
    tensor = reshape_fortran(xp, matrix, permuted_shape)
    inverse_order = tuple(int(axis) for axis in np.argsort(order))
    return xp.permute_dims(tensor, inverse_order)


def _moveaxis(xp, array, source: int, destination: int):
    """``np.moveaxis`` via the array-API ``permute_dims``."""
    axes = list(range(array.ndim))
    axes.insert(
        destination if destination >= 0 else array.ndim + destination,
        axes.pop(source),
    )
    return xp.permute_dims(array, tuple(axes))


def mode_product(tensor, matrix, mode: int):
    """Mode-``mode`` product ``B = A ×_mode U`` with ``U`` of shape ``(J, I_mode)``.

    A 1-D ``matrix`` is treated as a row vector ``(1, I_mode)`` and the
    resulting singleton axis is kept, matching the paper's use of
    ``C ×_p h_p^T``.
    """
    xp = array_namespace(tensor, matrix)
    tensor = _check_tensor(tensor, xp=xp)
    mode = _check_mode(tensor, mode)
    matrix = _as_float(xp, matrix)
    if matrix.ndim == 1:
        matrix = matrix[None, :]
    if matrix.ndim != 2:
        raise ShapeError(f"matrix must be 1-D or 2-D, got ndim={matrix.ndim}")
    if matrix.shape[1] != tensor.shape[mode]:
        raise ShapeError(
            f"matrix has {matrix.shape[1]} columns but tensor mode {mode} has "
            f"size {tensor.shape[mode]}"
        )
    moved = _moveaxis(xp, tensor, mode, -1)
    product = moved @ matrix.T
    return _moveaxis(xp, product, -1, mode)


def multi_mode_product(tensor, matrices, modes=None, *, skip=None):
    """Apply a sequence of mode products ``A ×_{m_1} U_1 ×_{m_2} U_2 …``.

    Parameters
    ----------
    tensor:
        Input tensor.
    matrices:
        One matrix (or vector) per entry of ``modes``.
    modes:
        Modes to contract; defaults to ``0 … len(matrices)-1``.
    skip:
        Optional mode index to leave untouched (its matrix is ignored).
        This is the standard trick in ALS where all factors but one are
        contracted.
    """
    tensor = _check_tensor(tensor)
    matrices = list(matrices)
    if modes is None:
        modes = list(range(len(matrices)))
    modes = [int(mode) for mode in modes]
    if len(modes) != len(matrices):
        raise ValidationError(
            f"got {len(matrices)} matrices but {len(modes)} modes"
        )
    result = tensor
    for matrix, mode in zip(matrices, modes):
        if skip is not None and mode == skip:
            continue
        result = mode_product(result, matrix, mode)
    return result


def outer_product(vectors):
    """Outer product ``v_1 ∘ v_2 ∘ … ∘ v_m`` of a sequence of 1-D vectors."""
    vectors = list(vectors)
    if not vectors:
        raise ValidationError("need at least one vector")
    xp = array_namespace(*vectors)
    vectors = [_as_float(xp, vector) for vector in vectors]
    for index, vector in enumerate(vectors):
        if vector.ndim != 1:
            raise ShapeError(
                f"vectors[{index}] must be 1-D, got ndim={vector.ndim}"
            )
    result = vectors[0]
    for vector in vectors[1:]:
        result = result[..., None] * vector
    return result


def inner_product(tensor_a, tensor_b) -> float:
    """Tensor inner product ``⟨A, B⟩ = Σ A(i…) B(i…)``."""
    xp = array_namespace(tensor_a, tensor_b)
    tensor_a = _check_tensor(tensor_a, "tensor_a", xp=xp)
    tensor_b = _check_tensor(tensor_b, "tensor_b", xp=xp)
    if tensor_a.shape != tensor_b.shape:
        raise ShapeError(
            f"tensors must share a shape, got {tensor_a.shape} and "
            f"{tensor_b.shape}"
        )
    return float(xp.sum(tensor_a * tensor_b))


def frobenius_norm(tensor) -> float:
    """Frobenius norm ``‖A‖_F = sqrt(⟨A, A⟩)`` (Eq. 4.4 of the paper)."""
    xp = array_namespace(tensor)
    tensor = _check_tensor(tensor, xp=xp)
    return float(
        xp.linalg.vector_norm(xp.reshape(tensor, (-1,)))
    )
