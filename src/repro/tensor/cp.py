"""CP (CANDECOMP/PARAFAC) tensor representation.

A rank-``r`` CP tensor is ``Σ_k λ^(k) u_1^(k) ∘ u_2^(k) ∘ … ∘ u_m^(k)``
(the weighted sum of rank-1 tensors in Fig. 2 of the paper). We store the
weights ``λ`` and the factor matrices ``U_p = [u_p^(1), …, u_p^(r)]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ShapeError, ValidationError
from repro.tensor.dense import cyclic_mode_order, fold, outer_product
from repro.tensor.products import khatri_rao

__all__ = ["CPTensor", "rank1_tensor"]


def _as_host_float(array) -> np.ndarray:
    """``array`` as a host (NumPy) float array, preserving float32/float64."""
    from repro.backends import to_numpy

    out = to_numpy(array)
    if out.dtype not in (np.float32, np.float64):
        out = out.astype(np.float64)
    return out


def rank1_tensor(vectors, weight: float = 1.0) -> np.ndarray:
    """Dense rank-1 tensor ``weight · v_1 ∘ v_2 ∘ … ∘ v_m``."""
    return float(weight) * outer_product(vectors)


@dataclass
class CPTensor:
    """Rank-``r`` CP tensor: weights ``λ ∈ R^r`` plus factor matrices.

    Attributes
    ----------
    weights:
        1-D array of length ``r``.
    factors:
        List of ``(I_p, r)`` matrices, one per mode.
    """

    weights: np.ndarray
    factors: list[np.ndarray] = field(default_factory=list)

    def __post_init__(self) -> None:
        # CP results live on the host: whatever backend produced the
        # factors, the canonical representation is NumPy in the floating
        # dtype the solver computed in (float32 factors stay float32).
        self.weights = _as_host_float(self.weights)
        if self.weights.ndim != 1:
            raise ShapeError(
                f"weights must be 1-D, got ndim={self.weights.ndim}"
            )
        self.factors = [_as_host_float(factor) for factor in self.factors]
        if not self.factors:
            raise ValidationError("CPTensor needs at least one factor matrix")
        rank = self.weights.shape[0]
        for index, factor in enumerate(self.factors):
            if factor.ndim != 2:
                raise ShapeError(
                    f"factors[{index}] must be 2-D, got ndim={factor.ndim}"
                )
            if factor.shape[1] != rank:
                raise ShapeError(
                    f"factors[{index}] has {factor.shape[1]} columns but the "
                    f"rank (len(weights)) is {rank}"
                )

    @property
    def rank(self) -> int:
        """Number of rank-1 components."""
        return int(self.weights.shape[0])

    @property
    def order(self) -> int:
        """Number of modes."""
        return len(self.factors)

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the dense tensor this CP form represents."""
        return tuple(factor.shape[0] for factor in self.factors)

    def to_dense(self) -> np.ndarray:
        """Materialize the dense tensor (use with care for large shapes)."""
        unfold0 = (self.factors[0] * self.weights) @ khatri_rao(
            [self.factors[mode] for mode in
             reversed(cyclic_mode_order(self.order, 0))]
        ).T
        return fold(unfold0, 0, self.shape)

    def unfold(self, mode: int) -> np.ndarray:
        """Mode-``mode`` unfolding computed directly from the factors."""
        if not 0 <= mode < self.order:
            raise ValidationError(
                f"mode must be in [0, {self.order - 1}], got {mode}"
            )
        others = [
            self.factors[other]
            for other in reversed(cyclic_mode_order(self.order, mode))
        ]
        return (self.factors[mode] * self.weights) @ khatri_rao(others).T

    def norm(self) -> float:
        """Frobenius norm computed factor-wise without densifying.

        Uses ``‖X‖² = λᵀ (∘ Gram) λ`` where the Hadamard product of the
        factor Gram matrices gives the pairwise component inner products.
        """
        gram = np.outer(self.weights, self.weights)
        for factor in self.factors:
            gram = gram * (factor.T @ factor)
        return float(np.sqrt(max(gram.sum(), 0.0)))

    def normalize(self) -> "CPTensor":
        """Return an equivalent CP tensor with unit-norm factor columns.

        Column norms are absorbed into the weights. Zero columns keep a zero
        weight and a zero column.
        """
        weights = self.weights.copy()
        factors = []
        for factor in self.factors:
            norms = np.linalg.norm(factor, axis=0)
            safe = np.where(norms > 0.0, norms, 1.0)
            factors.append(factor / safe)
            weights = weights * norms
        return CPTensor(weights=weights, factors=factors)

    def canonicalize_signs(self) -> "CPTensor":
        """Return an equivalent CP tensor with a deterministic sign choice.

        CP factors are sign-ambiguous: flipping any *pair* of factor
        columns of one component leaves the represented tensor unchanged,
        so two numerically identical fits can return factors differing by
        signs. This picks the representative where each factor column's
        largest-magnitude entry is positive; when the flips required for a
        component multiply to −1 (which would change the tensor), the flip
        of the last factor is dropped. Weights are never touched, so
        canonical-correlation weights keep their sign.
        """
        factors = [factor.copy() for factor in self.factors]
        for k in range(self.rank):
            signs = []
            for factor in factors:
                column = factor[:, k]
                pivot = column[np.argmax(np.abs(column))]
                signs.append(-1.0 if pivot < 0.0 else 1.0)
            if np.prod(signs) < 0.0:
                signs[-1] = -signs[-1]
            for factor, sign in zip(factors, signs):
                if sign < 0.0:
                    factor[:, k] *= -1.0
        return CPTensor(weights=self.weights.copy(), factors=factors)

    def component(self, index: int) -> tuple[float, list[np.ndarray]]:
        """Weight and per-mode vectors of the ``index``'th rank-1 component."""
        if not 0 <= index < self.rank:
            raise ValidationError(
                f"component index must be in [0, {self.rank - 1}], got {index}"
            )
        return (
            float(self.weights[index]),
            [factor[:, index].copy() for factor in self.factors],
        )
