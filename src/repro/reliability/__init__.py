"""Reliability layer: retries, checkpoints, fault injection.

PRs 5–7 made the fit parallel, distributed, and servable; every layer
was fail-fast. This package turns hard failures into retries, resumes,
and graceful degradation:

* :mod:`repro.reliability.policy` — :class:`RetryPolicy`: bounded
  attempts, exponential backoff with *deterministic* jitter, typed
  retryable-error classification, waits through the same injectable
  clock the serve layer uses (tests never sleep);
* :mod:`repro.reliability.checkpoint` — periodic checkpointing of
  in-progress accumulation to ``.moments`` checkpoint artifacts and
  ``repro accumulate --resume``: a killed worker restarts from its last
  chunk boundary, bit-exactly, instead of row 0;
* :mod:`repro.reliability.faults` — :class:`FaultPlan`: deterministic
  fault injection (fail-Nth-write, corrupt-payload, slow-call,
  worker-death) behind the artifact writer, the executors, the
  accumulation loop, and the server's reload path, activated in-process
  or across processes via ``REPRO_FAULTS``.

The consumers live elsewhere: ``reduce_shards(..., on_corrupt="skip")``
quarantines corrupt shards into the provenance block, the executors
retry per-task and demote process → thread → serial on pool breakage,
and the server bounds admission (429 + ``Retry-After``) and
circuit-breaks hot-reload storms.

This package sits *below* :mod:`repro.artifacts` (the artifact writer
imports the fault seams), so only :mod:`repro.reliability.faults` and
:mod:`repro.reliability.policy` may be imported at module level from
there; checkpointing imports artifacts lazily.
"""

from repro.exceptions import (
    InjectedFault,
    ReliabilityError,
    ReliabilityWarning,
    RetryExhaustedError,
    ServerOverloaded,
    WorkerKilled,
)
from repro.reliability.checkpoint import (
    CHECKPOINT_KIND,
    CHECKPOINT_SUFFIX,
    accumulate_views_checkpointed,
    checkpoint_path_for,
    discard_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.reliability.faults import (
    FAULTS_ENV,
    FaultPlan,
    fault_point,
    install_from_env,
    install_plan,
    uninstall_plan,
)
from repro.reliability.policy import DEFAULT_RETRYABLE, RetryPolicy

__all__ = [
    "CHECKPOINT_KIND",
    "CHECKPOINT_SUFFIX",
    "DEFAULT_RETRYABLE",
    "FAULTS_ENV",
    "FaultPlan",
    "InjectedFault",
    "ReliabilityError",
    "ReliabilityWarning",
    "RetryExhaustedError",
    "RetryPolicy",
    "ServerOverloaded",
    "WorkerKilled",
    "accumulate_views_checkpointed",
    "checkpoint_path_for",
    "discard_checkpoint",
    "fault_point",
    "install_from_env",
    "install_plan",
    "load_checkpoint",
    "save_checkpoint",
    "uninstall_plan",
]
