"""Retry policies: bounded attempts, exponential backoff, typed errors.

:class:`RetryPolicy` is the one retry decision-maker the library uses —
checkpoint writes, per-task executor retries, and anything a caller
wraps with :meth:`RetryPolicy.run`. Three properties keep it testable
and predictable:

* **typed classification** — only errors in ``retryable`` are retried;
  a :class:`~repro.exceptions.ValidationError` (bad input stays bad)
  propagates immediately, an :class:`OSError` (transient filesystem or
  network hiccup) earns another attempt;
* **deterministic jitter** — the backoff spread is a hash of
  ``(seed, attempt)``, not a PRNG draw, so a given policy produces the
  same delay sequence every run: tests assert exact waits;
* **injectable waiting** — delays go through the same ``Clock``
  protocol the serve layer uses
  (:class:`~repro.serve.batcher.ManualClock` in tests), so no test of
  the retry path ever sleeps.
"""

from __future__ import annotations

import hashlib
import time
from typing import Callable

from repro.exceptions import RetryExhaustedError, ValidationError

__all__ = ["DEFAULT_RETRYABLE", "RetryPolicy"]

#: Errors worth a second attempt by default: transient OS/IO failures
#: and timeouts. Validation errors are deliberately absent — retrying
#: bad input cannot fix it.
DEFAULT_RETRYABLE: tuple[type[BaseException], ...] = (
    OSError,
    TimeoutError,
    ConnectionError,
)


class RetryPolicy:
    """Bounded retry with exponential backoff and deterministic jitter.

    Parameters
    ----------
    max_attempts:
        Total tries including the first (``1`` disables retrying).
    base_delay, multiplier, max_delay:
        Backoff schedule: attempt ``k``'s failure waits
        ``min(max_delay, base_delay * multiplier**(k-1))`` seconds,
        stretched by jitter.
    jitter:
        Fraction of the raw delay added as deterministic spread in
        ``[0, jitter)`` — derived from ``hash(seed, attempt)``, so two
        policies with the same seed back off identically.
    retryable:
        Exception types that earn another attempt; everything else
        propagates unchanged on first failure.
    seed:
        Jitter seed. Give each worker its own seed to de-synchronize a
        fleet retrying against the same resource.
    clock:
        Optional timing source. A :class:`ManualClock` (anything with
        an ``advance(seconds)`` method) makes waits instantaneous in
        tests; otherwise :func:`time.sleep` is used.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        *,
        base_delay: float = 0.05,
        multiplier: float = 2.0,
        max_delay: float = 5.0,
        jitter: float = 0.1,
        retryable: tuple[type[BaseException], ...] = DEFAULT_RETRYABLE,
        seed: int = 0,
        clock=None,
    ):
        if not isinstance(max_attempts, int) or max_attempts < 1:
            raise ValidationError(
                f"max_attempts must be an int >= 1, got {max_attempts!r}"
            )
        if base_delay < 0 or max_delay < 0:
            raise ValidationError("retry delays must be >= 0")
        if multiplier < 1.0:
            raise ValidationError(
                f"backoff multiplier must be >= 1, got {multiplier!r}"
            )
        if jitter < 0:
            raise ValidationError(f"jitter must be >= 0, got {jitter!r}")
        retryable = tuple(retryable)
        for kind in retryable:
            if not (isinstance(kind, type) and issubclass(kind, BaseException)):
                raise ValidationError(
                    f"retryable entries must be exception types, got {kind!r}"
                )
        self.max_attempts = max_attempts
        self.base_delay = float(base_delay)
        self.multiplier = float(multiplier)
        self.max_delay = float(max_delay)
        self.jitter = float(jitter)
        self.retryable = retryable
        self.seed = int(seed)
        self._clock = clock

    # -- classification & schedule ---------------------------------------

    def is_retryable(self, error: BaseException) -> bool:
        """Does ``error``'s type earn another attempt?"""
        return isinstance(error, self.retryable)

    def delay(self, attempt: int) -> float:
        """Seconds to wait after failure number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValidationError(f"attempt must be >= 1, got {attempt}")
        raw = min(
            self.max_delay, self.base_delay * self.multiplier ** (attempt - 1)
        )
        return raw * (1.0 + self.jitter * self._jitter_fraction(attempt))

    def _jitter_fraction(self, attempt: int) -> float:
        # hash-derived uniform in [0, 1): same (seed, attempt) -> same
        # fraction, so delay sequences are reproducible run to run.
        digest = hashlib.sha256(
            f"{self.seed}:{attempt}".encode("ascii")
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2.0**64

    def _wait(self, seconds: float) -> None:
        if seconds <= 0:
            return
        advance = getattr(self._clock, "advance", None)
        if advance is not None:  # manual clock: no real sleeping
            advance(seconds)
            return
        time.sleep(seconds)

    # -- execution ---------------------------------------------------------

    def run(
        self,
        fn: Callable,
        *args,
        on_retry: Callable[[int, BaseException], None] | None = None,
        **kwargs,
    ):
        """Call ``fn(*args, **kwargs)`` under this policy.

        Non-retryable errors propagate unchanged. Retryable errors are
        re-attempted with backoff until ``max_attempts`` is spent, then
        wrapped in :class:`RetryExhaustedError` (chaining the last
        failure). ``on_retry(attempt, error)`` — if given — observes
        each scheduled retry.
        """
        last_error = None
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn(*args, **kwargs)
            except Exception as error:
                if not self.is_retryable(error):
                    raise
                last_error = error
                if attempt == self.max_attempts:
                    break
                if on_retry is not None:
                    on_retry(attempt, error)
                self._wait(self.delay(attempt))
        raise RetryExhaustedError(
            f"{getattr(fn, '__name__', fn)!r} still failing after "
            f"{self.max_attempts} attempt(s): "
            f"{type(last_error).__name__}: {last_error}",
            attempts=self.max_attempts,
        ) from last_error

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = ",".join(kind.__name__ for kind in self.retryable)
        return (
            f"RetryPolicy(max_attempts={self.max_attempts}, "
            f"base_delay={self.base_delay}, multiplier={self.multiplier}, "
            f"retryable=({names}))"
        )
