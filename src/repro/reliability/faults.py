"""Deterministic fault injection behind the library's failure seams.

A :class:`FaultPlan` is a scripted set of failures keyed by *site* —
a short string naming a seam the library instruments with
:func:`fault_point` (``"artifact.write"``, ``"artifact.payload"``,
``"accumulate.chunk"``, ``"executor.map"``, ``"executor.task"``,
``"serve.reload"``). Activating a plan (context manager or
:func:`install_plan`) makes those seams fire the scripted faults at
exact call counts, so tests and CI exercise real failure paths —
crashed workers, corrupted payloads, broken pools, reload storms —
without sleeps, signals, or race conditions.

Four fault kinds cover the failure modes the reliability layer must
survive:

* ``fail`` — raise a typed error (default :class:`InjectedFault`) on
  the Nth call;
* ``kill`` — raise :class:`WorkerKilled` on the Nth call, the
  in-process stand-in for a worker dying mid-task;
* ``corrupt`` — mutate the payload passing through the seam (used by
  the artifact writer to produce files whose bytes no longer match the
  hash recorded in their header);
* ``slow`` — invoke the plan's injectable ``sleep`` (tests pass a
  recorder; nothing in this module ever sleeps unless asked to).

Plans compose across processes through the ``REPRO_FAULTS`` environment
variable (``site:action@nth[,...]``), which the CLI installs at startup
— the CI kill/resume loop uses it to crash an ``accumulate`` worker at
a precise chunk.

Inactive cost is one truthiness check per seam: with no plan installed,
:func:`fault_point` returns immediately.
"""

from __future__ import annotations

import os
import time
from typing import Callable

import numpy as np

from repro.exceptions import InjectedFault, ValidationError, WorkerKilled

__all__ = [
    "FAULTS_ENV",
    "FaultPlan",
    "fault_point",
    "install_from_env",
    "install_plan",
    "uninstall_plan",
]

FAULTS_ENV = "REPRO_FAULTS"

_ACTIONS = ("fail", "kill", "corrupt", "slow")

# Stack of active plans; the innermost (last) plan wins per site. Plans
# are per-process — a child process starts clean and picks up faults
# only via REPRO_FAULTS.
_ACTIVE: list["FaultPlan"] = []


class _Rule:
    """One scripted fault: *action* on the *nth* call at a site."""

    __slots__ = ("action", "nth", "error", "seconds", "repeat")

    def __init__(self, action, nth, *, error=None, seconds=0.0, repeat=False):
        if action not in _ACTIONS:
            raise ValidationError(
                f"unknown fault action {action!r}; expected one of {_ACTIONS}"
            )
        nth = int(nth)
        if nth < 1:
            raise ValidationError(f"fault rule nth must be >= 1, got {nth}")
        self.action = action
        self.nth = nth
        self.error = error
        self.seconds = float(seconds)
        self.repeat = bool(repeat)

    def matches(self, count: int) -> bool:
        if self.repeat:
            return count >= self.nth
        return count == self.nth


class FaultPlan:
    """A deterministic script of failures, keyed by instrumented site.

    Parameters
    ----------
    sleep:
        Callable invoked by ``slow`` rules with the configured seconds.
        Defaults to :func:`time.sleep`; tests pass a recorder (or a
        :class:`~repro.serve.batcher.ManualClock`'s ``advance``) so the
        suite stays sleep-free.

    Use as a context manager so the plan cannot leak into later tests::

        plan = FaultPlan()
        plan.fail_at("artifact.write", nth=1, error=OSError("disk full"))
        with plan:
            ...  # first artifact write raises OSError

    ``plan.fired`` records every triggered fault as
    ``(site, call_count, action)`` for assertions.
    """

    def __init__(self, *, sleep: Callable[[float], None] | None = None):
        self._rules: dict[str, list[_Rule]] = {}
        self._counts: dict[str, int] = {}
        self._sleep = time.sleep if sleep is None else sleep
        self.fired: list[tuple[str, int, str]] = []

    # -- scripting -----------------------------------------------------------

    def _add(self, site: str, rule: _Rule) -> "FaultPlan":
        self._rules.setdefault(str(site), []).append(rule)
        return self

    def fail_at(self, site, nth=1, *, error=None, repeat=False):
        """Raise ``error`` (default :class:`InjectedFault`) on call *nth*."""
        return self._add(site, _Rule("fail", nth, error=error, repeat=repeat))

    def kill_at(self, site, nth=1):
        """Simulate worker death: raise :class:`WorkerKilled` on call *nth*."""
        return self._add(site, _Rule("kill", nth))

    def corrupt_at(self, site, nth=1):
        """Mutate the payload passing through the seam on call *nth*."""
        return self._add(site, _Rule("corrupt", nth))

    def slow_at(self, site, nth=1, *, seconds=0.05, repeat=False):
        """Call the plan's ``sleep`` with ``seconds`` on call *nth*."""
        return self._add(
            site, _Rule("slow", nth, seconds=seconds, repeat=repeat)
        )

    # -- firing --------------------------------------------------------------

    def fire(self, site: str, payload=None):
        """Count one call at ``site`` and apply any matching rules."""
        count = self._counts.get(site, 0) + 1
        self._counts[site] = count
        for rule in self._rules.get(site, ()):
            if not rule.matches(count):
                continue
            self.fired.append((site, count, rule.action))
            if rule.action == "slow":
                self._sleep(rule.seconds)
            elif rule.action == "corrupt":
                payload = _corrupt_payload(payload)
            elif rule.action == "kill":
                raise WorkerKilled(
                    f"injected worker death at {site!r} (call {count})"
                )
            else:  # fail
                if rule.error is not None:
                    raise rule.error
                raise InjectedFault(
                    f"injected failure at {site!r} (call {count})"
                )
        return payload

    def calls(self, site: str) -> int:
        """How many times ``site`` has fired under this plan."""
        return self._counts.get(site, 0)

    # -- activation ----------------------------------------------------------

    def __enter__(self) -> "FaultPlan":
        install_plan(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        uninstall_plan(self)

    # -- cross-process spec --------------------------------------------------

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse ``"site:action@nth[,site:action@nth...]"`` into a plan.

        The grammar behind the ``REPRO_FAULTS`` environment variable:
        ``accumulate.chunk:kill@3`` kills the worker on its third chunk;
        ``artifact.payload:corrupt@1,artifact.write:fail@2`` corrupts
        the first payload and fails the second write.
        """
        plan = cls()
        for entry in spec.split(","):
            entry = entry.strip()
            if not entry:
                continue
            try:
                site, _, rest = entry.rpartition(":")
                action, _, nth = rest.partition("@")
                if not site or not action:
                    raise ValueError(entry)
                plan._add(site, _Rule(action, nth or 1))
            except (ValueError, ValidationError):
                raise ValidationError(
                    f"bad fault spec entry {entry!r}; expected "
                    "'site:action@nth' with action in "
                    f"{_ACTIONS}"
                ) from None
        return plan


def _corrupt_payload(payload):
    """Perturb one numeric value so content hashes stop matching.

    Understands the payload shapes the instrumented seams pass through:
    a mapping of arrays (the artifact writer's entries) or a single
    array. Anything else is returned untouched.
    """
    if isinstance(payload, dict):
        corrupted = dict(payload)
        for name in sorted(corrupted):
            flipped = _corrupt_array(corrupted[name])
            if flipped is not None:
                corrupted[name] = flipped
                return corrupted
        return corrupted
    flipped = _corrupt_array(payload)
    return payload if flipped is None else flipped


def _corrupt_array(value):
    array = np.asarray(value)
    if array.dtype.kind not in "fiu" or array.size == 0:
        return None
    array = np.array(array, copy=True)
    flat = array.reshape(-1)
    flat[0] = flat[0] + 1 if flat[0] != flat[0] + 1 else flat[0] - 1
    return array


def install_plan(plan: FaultPlan) -> None:
    """Activate ``plan`` for this process (stacked; innermost wins)."""
    _ACTIVE.append(plan)


def uninstall_plan(plan: FaultPlan) -> None:
    """Deactivate ``plan`` wherever it sits in the stack."""
    try:
        _ACTIVE.remove(plan)
    except ValueError:
        pass


def install_from_env(environ=None) -> FaultPlan | None:
    """Install a plan from ``REPRO_FAULTS`` if set; return it (or None).

    Called once by the CLI entry point so shell harnesses (the CI
    kill/resume loop) can crash a worker at an exact chunk::

        REPRO_FAULTS=accumulate.chunk:kill@3 python -m repro accumulate ...
    """
    spec = (environ if environ is not None else os.environ).get(FAULTS_ENV)
    if not spec:
        return None
    plan = FaultPlan.from_spec(spec)
    install_plan(plan)
    return plan


def fault_point(site: str, payload=None):
    """The seam: count a call at ``site`` under the active plan (if any).

    Returns ``payload`` (possibly mutated by a ``corrupt`` rule) so
    callers can write ``entries = fault_point("artifact.payload",
    entries)``. With no active plan this is a single truthiness check.
    """
    if not _ACTIVE:
        return payload
    return _ACTIVE[-1].fire(site, payload)
