"""Checkpointed accumulation: a killed worker resumes, not restarts.

``repro accumulate`` over a large shard used to be all-or-nothing — a
worker dying at row 9 million of 10 repeats the whole pass. This module
makes the pass resumable by checkpointing the in-progress
:class:`~repro.core.engine.MomentState` to a ``.moments`` *checkpoint*
artifact (same atomic npz-plus-header writer as every other artifact,
``kind="checkpoint"``, plus a ``checkpoint`` header block recording the
row cursor and chunk geometry).

Resume is **bit-exact**, not merely close: checkpoints are only taken
at chunk boundaries, the chunk geometry is recorded in the header and
reused on resume (so the resumed pass sees the identical sequence of
chunk updates), and the float64 state round-trips through npz without
loss. The crash-sim tests therefore get ``resume ≡ uninterrupted`` at
the merged-model level to ≤1e-10 for free — the underlying statistics
are equal to the last bit.

Checkpoint writes go through an optional
:class:`~repro.reliability.policy.RetryPolicy`, so a transient
filesystem error costs a retry, not the shard.
"""

from __future__ import annotations

import os

from repro.exceptions import PersistenceError, ValidationError
from repro.reliability.faults import fault_point

__all__ = [
    "CHECKPOINT_KIND",
    "CHECKPOINT_SUFFIX",
    "accumulate_views_checkpointed",
    "checkpoint_path_for",
    "discard_checkpoint",
    "load_checkpoint",
    "save_checkpoint",
]

CHECKPOINT_SUFFIX = ".ckpt"
CHECKPOINT_KIND = "checkpoint"


def checkpoint_path_for(out_path) -> str:
    """The sidecar checkpoint path for a shard being written to ``out``."""
    return os.fspath(out_path) + CHECKPOINT_SUFFIX


def save_checkpoint(
    moments,
    path,
    *,
    estimator: str,
    params: dict | None = None,
    shard: dict | None = None,
    source: str | None = None,
    rows_done: int,
    total_rows: int,
    chunk_rows: int,
    retry=None,
) -> str:
    """Atomically write an in-progress accumulation checkpoint.

    The header is a regular shard header (so ``repro inspect`` reads
    it) with ``kind="checkpoint"`` — ``repro reduce`` refuses it via
    the existing config-compatibility check, a half-done shard can
    never slip into a reduce — plus a ``checkpoint`` block carrying the
    resume cursor. ``retry`` (a :class:`RetryPolicy`) absorbs transient
    write failures.
    """
    from repro.artifacts.moments import save_moments

    def _write():
        return save_moments(
            moments,
            path,
            estimator=estimator,
            kind=CHECKPOINT_KIND,
            params=params,
            shard=shard,
            source=source,
            extra={
                "checkpoint": {
                    "rows_done": int(rows_done),
                    "total_rows": int(total_rows),
                    "chunk_rows": int(chunk_rows),
                }
            },
        )

    if retry is not None:
        return retry.run(_write)
    return _write()


def load_checkpoint(path, *, verify: bool = True):
    """``(header, MomentState)`` from a checkpoint file, validated."""
    from repro.artifacts.moments import load_moments

    header, state = load_moments(path, verify=verify)
    if header.get("kind") != CHECKPOINT_KIND:
        raise PersistenceError(
            f"{path!s} is a {header.get('kind')!r} shard, not a "
            "checkpoint; refusing to resume from it"
        )
    cursor = header.get("checkpoint")
    if not isinstance(cursor, dict) or "rows_done" not in cursor:
        raise PersistenceError(
            f"{path!s} has no checkpoint cursor; the file is incomplete"
        )
    if int(cursor["rows_done"]) != state.n_samples:
        raise PersistenceError(
            f"{path!s} cursor records {cursor['rows_done']} rows but the "
            f"state holds {state.n_samples}; refusing to resume from an "
            "inconsistent checkpoint"
        )
    return header, state


def accumulate_views_checkpointed(
    views,
    *,
    estimator: str = "tcca",
    params: dict | None = None,
    shard: tuple[int, int] | None = None,
    checkpoint_path,
    checkpoint_every: int = 4096,
    resume: bool = False,
    source: str | None = None,
    retry=None,
):
    """Chunked, checkpointed version of ``accumulate_views``.

    Ingests the shard in chunks of ``checkpoint_every`` rows, writing a
    checkpoint after each completed chunk (except the last — the caller
    is about to write the real shard). With ``resume=True`` and an
    existing checkpoint, picks up at the recorded row cursor with the
    recorded chunk geometry, making the resumed pass bit-identical to
    an uninterrupted one.

    Returns ``(moments, resolved_params, progress)`` where ``progress``
    records ``resumed_at`` (0 for a fresh pass), ``total_rows``, and
    ``checkpoints`` written. The ``"accumulate.chunk"`` fault site
    fires once per chunk, so crash simulations kill the worker at an
    exact, reproducible point.
    """
    from repro.artifacts.distributed import _reducer_for, shard_bounds
    from repro.artifacts.moments import shard_config
    from repro.utils.validation import check_views

    checkpoint_every = int(checkpoint_every)
    if checkpoint_every < 1:
        raise ValidationError(
            f"checkpoint_every must be >= 1 rows, got {checkpoint_every}"
        )
    params = dict(params or {})
    reducer = _reducer_for(estimator, params)
    # defer finiteness to the moment state's nan_policy, matching
    # accumulate_views
    views = check_views(views, min_views=2, require_finite=False)
    dims = [view.shape[0] for view in views]
    shard_record = None
    if shard is not None:
        index, count = shard
        start, stop = shard_bounds(views[0].shape[1], index, count)
        views = [view[:, start:stop] for view in views]
        shard_record = {"index": index, "count": count}
    total = views[0].shape[1]

    moments = None
    rows_done = 0
    checkpoint_path = os.fspath(checkpoint_path)
    if resume and os.path.exists(checkpoint_path):
        header, moments = load_checkpoint(checkpoint_path)
        expected = {
            "estimator": str(estimator),
            "params": {
                k: v
                for k, v in reducer.get_params().items()
                if k not in ("n_jobs", "executor")
            },
            "dims": [int(d) for d in dims],
        }
        recorded = shard_config(header)
        mismatched = sorted(
            key for key in expected if recorded.get(key) != expected[key]
        )
        if mismatched:
            raise ValidationError(
                f"checkpoint {checkpoint_path!s} was accumulated under a "
                f"different configuration (differs in "
                f"{', '.join(mismatched)}); delete it or re-run with the "
                "original settings"
            )
        cursor = header["checkpoint"]
        rows_done = int(cursor["rows_done"])
        checkpoint_every = int(cursor.get("chunk_rows", checkpoint_every))
        if rows_done > total:
            raise ValidationError(
                f"checkpoint {checkpoint_path!s} records {rows_done} rows "
                f"done but the shard only has {total}; wrong dataset or "
                "shard spec?"
            )
    if moments is None:
        moments = reducer.moment_state_for(dims)

    resumed_at = rows_done
    checkpoints_written = 0
    resolved_params = reducer.get_params()
    clean_params = {
        k: v
        for k, v in resolved_params.items()
        if k not in ("n_jobs", "executor")
    }
    for begin in range(rows_done, total, checkpoint_every):
        end = min(begin + checkpoint_every, total)
        fault_point("accumulate.chunk")
        moments.update([view[:, begin:end] for view in views])
        if end < total:
            save_checkpoint(
                moments,
                checkpoint_path,
                estimator=estimator,
                params=clean_params,
                shard=shard_record,
                source=source,
                rows_done=end,
                total_rows=total,
                chunk_rows=checkpoint_every,
                retry=retry,
            )
            checkpoints_written += 1

    progress = {
        "resumed_at": int(resumed_at),
        "total_rows": int(total),
        "checkpoints": int(checkpoints_written),
        "checkpoint_every": int(checkpoint_every),
    }
    return moments, resolved_params, progress


def discard_checkpoint(path) -> bool:
    """Remove a checkpoint file if present (after the real shard landed)."""
    try:
        os.unlink(os.fspath(path))
        return True
    except FileNotFoundError:
        return False
