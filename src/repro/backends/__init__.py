"""Backend-agnostic kernels: array-API dispatch and precision policy.

The kernel layer (:mod:`repro.tensor`, :mod:`repro.linalg`,
:mod:`repro.streaming`) is written against the Python array-API
standard instead of hard-wired NumPy calls.  Two small pieces make
that work:

* :func:`array_namespace` — resolve the namespace (``xp``) that a set
  of arrays belongs to, per the standard's ``__array_namespace__``
  protocol.  NumPy is the always-available reference backend; CuPy and
  torch arrays dispatch to their own namespaces when those libraries
  are importable.  Code that used to call ``np.foo`` calls ``xp.foo``.
* :class:`DTypePolicy` — the precision contract of a fit.  Moments are
  *accumulated* in ``accumulate_dtype`` (float64 by default — the sum
  of ``N`` outer products is where cancellation lives), while the
  iterative decomposition *computes* in ``compute_dtype``.  The
  ``"mixed"`` policy drops compute to float32 for ~2x BLAS throughput
  and ~half the working-set memory, then runs a float64 polish sweep
  so the returned subspace matches the float64 fit to ~1e-4.

Nothing here imports CuPy or torch at module scope: alternative
backends are looked up lazily and only when an array of that type is
actually passed in, so the reference NumPy path costs nothing extra.
"""

from repro.backends.dispatch import (
    array_namespace,
    asarray_like,
    einsum,
    is_numpy_namespace,
    reshape_fortran,
    to_numpy,
)
from repro.backends.policy import (
    PRECISION_CHOICES,
    DTypePolicy,
    resolve_precision,
)

__all__ = [
    "DTypePolicy",
    "PRECISION_CHOICES",
    "array_namespace",
    "asarray_like",
    "einsum",
    "is_numpy_namespace",
    "reshape_fortran",
    "resolve_precision",
    "to_numpy",
]
