"""Array-namespace resolution per the Python array-API standard.

``xp = array_namespace(*arrays)`` is the one dispatch point of the
kernel layer: every hot function resolves the namespace of its inputs
once and runs the same code whether the arrays are NumPy (the
always-available reference), CuPy, torch, or ``array_api_strict``
(the conformance namespace the CI job runs the kernel tests under).

Resolution follows the standard's ``__array_namespace__`` protocol —
an array that advertises its namespace is believed.  Arrays that
predate the protocol (old NumPy) and python scalars fall back to
NumPy.  Mixing arrays from two different namespaces is a type error,
never a silent device copy.

Two helpers paper over the gaps the standard leaves open:

* :func:`einsum` — not in the array-API standard.  Used when the
  namespace provides it (NumPy/CuPy/torch all do, and it is the fast
  path); strict namespaces get an equivalent broadcast
  multiply-and-sum fallback for each contraction the kernels use.
* :func:`reshape_fortran` — ``reshape(..., order="F")`` is a NumPy
  extension.  A Fortran reshape is a C reshape conjugated with axis
  reversal, which is how the unfold/fold kernels stay portable.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "array_namespace",
    "asarray_like",
    "einsum",
    "is_numpy_namespace",
    "reshape_fortran",
    "to_numpy",
]


def _namespace_of(array):
    """The array's own namespace, or None when it does not declare one."""
    probe = getattr(array, "__array_namespace__", None)
    if probe is None:
        return None
    return probe()


def array_namespace(*arrays):
    """Resolve the array-API namespace shared by ``arrays``.

    NumPy arrays, python scalars, and protocol-less objects resolve to
    NumPy (which is itself array-API compliant as of NumPy 2.0).
    Arrays that implement ``__array_namespace__`` — CuPy, torch,
    ``array_api_strict`` — resolve to their own namespace.  Arrays
    from two *different* namespaces raise ``TypeError``: the kernels
    never copy data across backends implicitly.
    """
    resolved = None
    for array in arrays:
        namespace = _namespace_of(array)
        if namespace is None or namespace is np:
            continue
        if resolved is None:
            resolved = namespace
        elif resolved is not namespace:
            raise TypeError(
                "cannot mix arrays from different array-API namespaces: "
                f"{getattr(resolved, '__name__', resolved)!r} and "
                f"{getattr(namespace, '__name__', namespace)!r}; move the "
                "inputs to one backend first"
            )
    return np if resolved is None else resolved


def is_numpy_namespace(xp) -> bool:
    """True when ``xp`` is NumPy (including ``numpy.array_api`` shims)."""
    return xp is np or getattr(xp, "__name__", "").startswith("numpy")


def asarray_like(value, reference, *, dtype=None):
    """``asarray`` into the namespace (and optionally dtype) of ``reference``."""
    xp = array_namespace(reference)
    if dtype is None:
        return xp.asarray(value)
    return xp.asarray(value, dtype=dtype)


def to_numpy(array) -> np.ndarray:
    """A NumPy view/copy of ``array``, whatever backend it lives on.

    The bridge out of the kernel layer: fitted attributes, persisted
    payloads, and protocol responses are always NumPy.  Torch tensors
    detach (grad is meaningless for a fitted artifact) and CuPy
    arrays transfer device→host; NumPy arrays pass through untouched.
    """
    if isinstance(array, np.ndarray):
        return array
    detach = getattr(array, "detach", None)
    if detach is not None:  # torch
        array = detach()
        cpu = getattr(array, "cpu", None)
        if cpu is not None:
            array = cpu()
        return np.asarray(array)
    get = getattr(array, "get", None)
    if get is not None and not isinstance(array, dict):  # cupy
        return np.asarray(get())
    return np.asarray(array)


def einsum(xp, subscripts: str, *operands):
    """``xp.einsum`` when available, else a broadcast fallback.

    The kernels contract with a handful of fixed einsum signatures;
    namespaces without ``einsum`` (``array_api_strict``) get an exact
    broadcast multiply/``sum``/``matmul`` equivalent per signature
    rather than a general einsum re-implementation.
    """
    native = getattr(xp, "einsum", None)
    if native is not None:
        return native(subscripts, *operands)
    spec = subscripts.replace(" ", "")
    if spec == "ir,jr->ijr":
        a, b = operands
        return a[:, None, :] * b[None, :, :]
    if spec == "ir,ir->r":
        a, b = operands
        return xp.sum(a * b, axis=0)
    if spec == "ij,ij->j":
        a, b = operands
        return xp.sum(a * b, axis=0)
    if spec == "ijr,jr->ir":
        a, b = operands
        return xp.sum(a * b[None, :, :], axis=1)
    raise NotImplementedError(
        f"no einsum in {getattr(xp, '__name__', xp)!r} and no fallback "
        f"for signature {subscripts!r}"
    )


def reshape_fortran(xp, array, shape):
    """Fortran-order reshape, portable across array-API namespaces.

    NumPy gets the native ``order="F"`` fast path (no copy when the
    strides allow it).  Everywhere else, a Fortran reshape is computed
    as ``transpose(reshape(transpose(a), reversed(shape)))`` — the
    identity ``reshape_F(a, s) == reshape_C(a.T, s[::-1]).T`` with the
    full axis reversal playing the transpose.
    """
    if isinstance(array, np.ndarray):
        return np.reshape(array, shape, order="F")
    permute = getattr(xp, "permute_dims", None)
    if permute is None:  # torch exposes the standard via xp.permute_dims
        raise NotImplementedError(
            f"{getattr(xp, '__name__', xp)!r} provides neither order='F' "
            "reshape nor permute_dims"
        )
    reversed_axes = tuple(range(array.ndim - 1, -1, -1))
    flipped = permute(array, reversed_axes)
    reshaped = xp.reshape(flipped, tuple(reversed(tuple(shape))))
    back = tuple(range(reshaped.ndim - 1, -1, -1))
    return permute(reshaped, back)
