"""The precision contract of a fit: what computes in what dtype.

A TCCA fit has two numerically distinct regimes:

* **Moment accumulation** — summing ``N`` per-sample (outer-product)
  contributions.  Cancellation and magnitude spread grow with ``N``,
  so this stays float64 under every built-in policy
  (``accumulate_dtype``).
* **Iterative decomposition** — ALS/HOPM sweeps over the (small,
  whitened) moment tensor.  Each sweep is self-correcting: the
  iteration contracts toward the dominant subspace regardless of
  rounding in earlier sweeps, and the Hu & Ye linear-convergence
  result for alternating rank-one updates bounds the attainable
  accuracy by the sweep tolerance, not by accumulated error.  This
  can run in float32 (``compute_dtype``) at ~2x BLAS throughput and
  ~half the working-set bytes, provided the tolerance is relaxed to
  ~sqrt(eps_float32) and a float64 *polish* pass re-runs the sweeps
  from the converged float32 factors at the original tolerance.

:class:`DTypePolicy` names the regime pair; ``resolve_precision``
maps the user-facing ``precision=`` strings onto it.  The policy is
recorded in the model header (``dtype_policy``) so ``load_model`` and
the serving layer reproduce the fit's precision instead of silently
upcasting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError

__all__ = ["DTypePolicy", "PRECISION_CHOICES", "resolve_precision"]

#: The user-facing ``precision=`` vocabulary.
PRECISION_CHOICES = ("float64", "mixed", "float32")

_DTYPE_NAMES = {"float32": np.float32, "float64": np.float64}


def _canonical_dtype(value) -> str:
    """Validate/normalize a dtype spec to ``"float32"``/``"float64"``."""
    name = np.dtype(value).name
    if name not in _DTYPE_NAMES:
        raise ValidationError(
            f"unsupported dtype {name!r}; the precision policy supports "
            "float32 and float64"
        )
    return name


@dataclass(frozen=True)
class DTypePolicy:
    """Which dtype each regime of the fit runs in.

    Parameters
    ----------
    compute_dtype:
        Dtype of the iterative decomposition (sweeps, factors,
        canonical vectors).
    accumulate_dtype:
        Dtype of moment accumulation (covariance sums, whitening).
        Never below ``compute_dtype``'s precision under the built-in
        policies.
    polish:
        Whether a float64 polish pass re-runs the sweeps from the
        converged low-precision factors.  Only meaningful when
        ``compute_dtype`` is below float64.
    """

    compute_dtype: str = "float64"
    accumulate_dtype: str = "float64"
    polish: bool = False

    def __post_init__(self):
        object.__setattr__(
            self, "compute_dtype", _canonical_dtype(self.compute_dtype)
        )
        object.__setattr__(
            self, "accumulate_dtype", _canonical_dtype(self.accumulate_dtype)
        )

    # -- numpy views ---------------------------------------------------------

    @property
    def compute(self) -> np.dtype:
        """``compute_dtype`` as a numpy dtype."""
        return np.dtype(_DTYPE_NAMES[self.compute_dtype])

    @property
    def accumulate(self) -> np.dtype:
        """``accumulate_dtype`` as a numpy dtype."""
        return np.dtype(_DTYPE_NAMES[self.accumulate_dtype])

    @property
    def is_default(self) -> bool:
        """True for the all-float64 reference policy (bit-exact paths)."""
        return (
            self.compute_dtype == "float64"
            and self.accumulate_dtype == "float64"
            and not self.polish
        )

    def sweep_tol(self, tol: float) -> float:
        """The tolerance the low-precision sweeps should run at.

        Below ~sqrt(machine eps) a float32 sweep's convergence check
        is dominated by rounding noise and never fires; the polish
        pass owns the final tightening, so the low-precision sweeps
        stop at ``max(tol, sqrt(eps(compute_dtype)))``.
        """
        eps = float(np.finfo(self.compute).eps)
        return max(float(tol), float(np.sqrt(eps)))

    # -- persistence ---------------------------------------------------------

    def to_dict(self) -> dict:
        """The JSON-safe form recorded in model headers."""
        return {
            "compute_dtype": self.compute_dtype,
            "accumulate_dtype": self.accumulate_dtype,
            "polish": bool(self.polish),
        }

    @classmethod
    def from_dict(cls, data: dict | None) -> "DTypePolicy":
        """Rebuild from a header dict; ``None`` means the float64 default."""
        if not data:
            return cls()
        return cls(
            compute_dtype=data.get("compute_dtype", "float64"),
            accumulate_dtype=data.get("accumulate_dtype", "float64"),
            polish=bool(data.get("polish", False)),
        )


def resolve_precision(precision) -> DTypePolicy:
    """Map a user-facing ``precision=`` value onto a :class:`DTypePolicy`.

    * ``"float64"`` / ``None`` — the reference policy; bit-for-bit the
      pre-policy arithmetic.
    * ``"mixed"`` — float32 compute over float64-accumulated moments,
      plus a float64 polish pass.  The recommended fast setting.
    * ``"float32"`` — float32 everywhere, no polish.  Cheapest and
      least accurate; accumulation error grows with the sample count.

    A :class:`DTypePolicy` passes through unchanged, so power users
    can construct bespoke pairings directly.
    """
    if precision is None:
        return DTypePolicy()
    if isinstance(precision, DTypePolicy):
        return precision
    if precision == "float64":
        return DTypePolicy()
    if precision == "mixed":
        return DTypePolicy(
            compute_dtype="float32", accumulate_dtype="float64", polish=True
        )
    if precision == "float32":
        return DTypePolicy(
            compute_dtype="float32", accumulate_dtype="float32", polish=False
        )
    raise ValidationError(
        f"precision must be one of {PRECISION_CHOICES} (or a DTypePolicy), "
        f"got {precision!r}"
    )
