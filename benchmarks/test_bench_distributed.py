"""Distributed accumulate/reduce across OS processes — the fit protocol.

Not a paper artifact: this benchmark characterizes the PR-7 distributed
fit protocol end to end. ``k`` worker *processes* (real ``python -m
repro accumulate`` invocations — separate interpreters, no shared
memory) each make one pass over their ``--shard i/k`` slice and write a
``.moments`` artifact; the reduce merges the shards and finalizes. The
accumulation is the O(N · ∏d) Khatri-Rao stage that dominates a dense
TCCA fit, and the shards are embarrassingly parallel, so accumulate
wall-clock should drop toward ``k``× (minus interpreter startup) as the
shard count grows — while the reduced model stays exactly the
single-process fit (≤1e-10, asserted every run).

The speedup gate is conditional on real cores (>= 4); on smaller
machines the numbers are still printed and recorded in
``BENCH_distributed.json`` but the assertion is skipped.

NumPy's own BLAS threading is an orthogonal speedup source; CI pins
``OPENBLAS/OMP/MKL_NUM_THREADS=1`` so the ratio isolates the protocol.
"""

import os
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.artifacts import reduce_shards
from repro.core import TCCA

#: accumulation-bound configuration, sized so per-shard work dominates
#: the ~0.5s interpreter startup of each worker process.
SCALE = dict(
    dims=(96, 64, 48),
    n_samples=24_000,
    n_components=2,
    shard_counts=(1, 2, 4),
)
EPSILON = 1e-2

#: the structural claim needs real cores; below this the measurement is
#: still recorded but the speedup assertion is skipped.
MIN_CORES_FOR_ASSERT = 4
MIN_SPEEDUP = 1.6


def _latent_views(dims, n_samples, seed=0, noise=0.25, n_factors=3):
    rng = np.random.default_rng(seed)
    strengths = (2.0 * 0.5 ** np.arange(n_factors))[:, None]
    signal = strengths * rng.standard_normal((n_factors, n_samples))
    return [
        rng.standard_normal((d, n_factors)) @ signal
        + noise * rng.standard_normal((d, n_samples))
        for d in dims
    ]


def _accumulate_with_processes(data_path, out_dir, count):
    """Run ``count`` concurrent accumulate workers; returns (paths, secs)."""
    env = {**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)}
    paths = [
        os.path.join(out_dir, f"part-{index}-of-{count}.moments")
        for index in range(count)
    ]
    start = time.perf_counter()
    workers = [
        subprocess.Popen(
            [
                sys.executable, "-m", "repro", "accumulate", "tcca",
                "--data", str(data_path),
                "--shard", f"{index}/{count}",
                "--param", f"n_components={SCALE['n_components']}",
                "--param", f"epsilon={EPSILON}",
                "--param", "solver='dense'",
                "--param", "random_state=0",
                "--out", path,
            ],
            env=env,
            stdout=subprocess.DEVNULL,
        )
        for index, path in enumerate(paths)
    ]
    for worker in workers:
        assert worker.wait() == 0
    return paths, time.perf_counter() - start


def test_bench_distributed_accumulate_reduce(
    tmp_path, benchmark, bench_record
):
    """k-process accumulate + reduce: exact model, scaling wall-clock."""
    dims, n = SCALE["dims"], SCALE["n_samples"]
    views = _latent_views(dims, n)
    data_path = tmp_path / "data.npz"
    np.savez(data_path, **{f"view{i}": v for i, v in enumerate(views)})

    reference = TCCA(
        n_components=SCALE["n_components"],
        epsilon=EPSILON,
        solver="dense",
        random_state=0,
    )
    start = time.perf_counter()
    reference.fit(views)
    fit_seconds = time.perf_counter() - start

    accumulate_seconds = {}
    reduce_seconds = {}
    for count in SCALE["shard_counts"]:
        if count == 1:
            # the benchmark fixture times the canonical single-worker run
            paths, seconds = benchmark.pedantic(
                lambda: _accumulate_with_processes(data_path, tmp_path, 1),
                rounds=1,
                iterations=1,
            )
        else:
            paths, seconds = _accumulate_with_processes(
                data_path, tmp_path, count
            )
        accumulate_seconds[count] = seconds
        start = time.perf_counter()
        model, report = reduce_shards(paths)
        reduce_seconds[count] = time.perf_counter() - start
        assert report["n_samples"] == n
        # the protocol's invariant: reduce(shards) ≡ single-process fit
        np.testing.assert_allclose(
            model.correlations_,
            reference.correlations_,
            rtol=0,
            atol=1e-10,
        )
        for ours, theirs in zip(
            model.canonical_vectors_, reference.canonical_vectors_
        ):
            np.testing.assert_allclose(
                np.abs(ours), np.abs(theirs), rtol=0, atol=1e-10
            )

    cores = os.cpu_count() or 1
    widest = max(SCALE["shard_counts"])
    speedup = accumulate_seconds[1] / accumulate_seconds[widest]

    print()
    print(
        f"distributed TCCA — dims={dims}, N={n}, cores={cores}, "
        f"single-process fit {fit_seconds:.3f}s"
    )
    for count in SCALE["shard_counts"]:
        print(
            f"k={count}  accumulate {accumulate_seconds[count]:7.3f}s  "
            f"reduce {reduce_seconds[count]:6.3f}s"
        )
    print(f"accumulate speedup k={widest} vs k=1: {speedup:.2f}x")

    bench_record(
        {
            "dims": list(dims),
            "n_samples": n,
            "cpu_count": cores,
            "fit_seconds": fit_seconds,
            "accumulate_seconds": {
                str(count): accumulate_seconds[count]
                for count in SCALE["shard_counts"]
            },
            "reduce_seconds": {
                str(count): reduce_seconds[count]
                for count in SCALE["shard_counts"]
            },
            "speedup": speedup,
        },
        name="distributed",
    )

    if cores < MIN_CORES_FOR_ASSERT:
        pytest.skip(
            f"only {cores} cores; speedup assertion needs "
            f">= {MIN_CORES_FOR_ASSERT}"
        )
    assert speedup >= MIN_SPEEDUP, (
        f"{widest}-process accumulate only {speedup:.2f}x faster than one "
        f"process (expected >= {MIN_SPEEDUP}x on {cores} cores)"
    )
