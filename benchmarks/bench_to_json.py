"""Dump benchmark measurements as ``BENCH_<name>.json`` artifacts.

Benchmarks print human-readable tables; CI (and regression tooling) wants
machine-readable numbers next to them. When the ``REPRO_BENCH_DIR``
environment variable names a directory, :func:`record` writes one
``BENCH_<name>.json`` file per benchmark with its wall-clock/memory
payload; without the variable it is a no-op, so local runs stay clean.

Benchmarks call it through the ``bench_record`` fixture in
``benchmarks/conftest.py``, which fills in the test name::

    def test_bench_something(benchmark, bench_record):
        ...
        bench_record({"seconds": seconds, "peak_memory_mb": memory})
"""

from __future__ import annotations

import json
import os
import re

BENCH_DIR_ENV = "REPRO_BENCH_DIR"


def record(name: str, payload: dict) -> str | None:
    """Write ``payload`` to ``$REPRO_BENCH_DIR/BENCH_<name>.json``.

    Returns the written path, or ``None`` when ``REPRO_BENCH_DIR`` is not
    set (recording disabled).
    """
    directory = os.environ.get(BENCH_DIR_ENV)
    if not directory:
        return None
    os.makedirs(directory, exist_ok=True)
    safe = re.sub(r"[^A-Za-z0-9_.-]+", "_", str(name))
    path = os.path.join(directory, f"BENCH_{safe}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
