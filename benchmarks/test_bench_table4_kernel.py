"""Table 4 — kernel-method accuracies at best dimensions."""

from repro.experiments import run_experiment

SCALE = dict(
    n_samples=200,
    labeled_per_concept=(6,),
    dims=(5, 10, 20),
    n_runs=3,
    random_state=3,
)

EXPECTED_METHODS = {"BSK", "AVG", "KCCA (BST)", "KCCA (AVG)", "KTCCA"}


def test_bench_table4_kernel(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("tab4", **SCALE), rounds=1, iterations=1
    )
    print()
    print(result.table())

    sweeps = result.panels["labeled=6/concept"]
    assert set(sweeps) == EXPECTED_METHODS
    accuracies = {
        name: sweep.best_dimension_summary()[0]
        for name, sweep in sweeps.items()
    }
    assert min(accuracies.values()) > 0.1  # above 10-class chance
    assert accuracies["KTCCA"] >= min(accuracies.values())
