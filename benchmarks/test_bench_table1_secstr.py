"""Table 1 — SecStr accuracies at validation-selected best dimensions.

Regenerates the table rows (method, accuracy mean±std, chosen dims) on the
small-unlabeled panel with the full method roster including DSE / SSMVD.
"""

from repro.experiments import run_experiment

SCALE = dict(
    n_unlabeled_small=1500,
    n_unlabeled_large=None,  # Table 1's 1.3M column is covered by fig3
    dims=(5, 10, 20, 40),
    n_runs=3,
    random_state=0,
)


def test_bench_table1_secstr(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("tab1", **SCALE), rounds=1, iterations=1
    )
    print()
    print(result.table())

    sweeps = result.panels[f"unlabeled={SCALE['n_unlabeled_small']}"]
    assert set(sweeps) == {
        "BSF",
        "CAT",
        "CCA (BST)",
        "CCA (AVG)",
        "CCA-LS",
        "DSE",
        "SSMVD",
        "TCCA",
    }
    accuracies = {
        name: sweep.best_dimension_summary()[0]
        for name, sweep in sweeps.items()
    }
    # Everything beats chance on the binary task.
    assert min(accuracies.values()) > 0.5
    # The multiset CCA methods beat the raw-feature baselines.
    assert max(
        accuracies["CCA-LS"], accuracies["TCCA"], accuracies["CCA (AVG)"]
    ) > max(accuracies["BSF"], accuracies["CAT"])
