"""Mixed-precision vs float64 — throughput and working-set memory.

The backend-dispatch PR's performance claim, measured on the paper's
complexity-study shapes:

* **fig7 shape** (moment-heavy: large N over small dims) — dense-solver
  fit wall-clock, float64 vs mixed;
* **fig8 shape** (dims-heavy) — implicit-solver fit wall-clock, plus
  the decomposition hot-path peak (tracemalloc around the implicit
  CP-ALS sweeps, whose working set is the whitened views and MTTKRP
  buffers — exactly what ``precision="mixed"`` halves).

Writes ``BENCH_dtype.json`` (to ``$REPRO_BENCH_DIR`` when set, else the
current directory) with the raw seconds/bytes and the mixed/float64
ratios. The ≥1.5× throughput and ≤0.6× memory gates only assert on
machines with enough cores for float32 BLAS to pull ahead (the ROADMAP
note: on 1-2 core CI runners the wall-clock ratio is scheduler noise);
the numerical-agreement gate (mixed ≡ float64 canonical correlations
≤1e-4) asserts everywhere.
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc

import numpy as np

from repro.backends import resolve_precision
from repro.core.engine import whitened_covariance_operator
from repro.core.tcca import TCCA
from repro.tensor.decomposition.implicit import cp_als_implicit

#: fig7: sample count dominates (N-linear accumulation over ∏d = 1000)
SCALE_FIG7 = dict(n_samples=3000, dims=(5, 10, 20), seed=0)
#: fig8: dimensions dominate (∏d = 4032, implicit solver territory)
SCALE_FIG8 = dict(n_samples=1200, dims=(18, 16, 14), seed=1)

#: cores below which the wall-clock/memory ratios are reported but not
#: asserted — single-threaded BLAS gives float32 no lane to win in.
MIN_ASSERT_CORES = 4


def _latent_views(n_samples: int, dims, seed: int):
    """Well-conditioned two-factor views (shared benchmark recipe)."""
    rng = np.random.default_rng(seed)
    z1 = rng.standard_normal(n_samples)
    z2 = rng.standard_normal(n_samples)
    views = []
    for dim in dims:
        mixing = rng.standard_normal((dim, 2))
        views.append(
            mixing @ np.vstack([z1, 0.6 * z2])
            + 0.3 * rng.standard_normal((dim, n_samples))
        )
    return views


def _timed_fit(views, *, solver: str, precision):
    model = TCCA(
        n_components=2,
        random_state=0,
        solver=solver,
        precision=precision,
    )
    start = time.perf_counter()
    model.fit(views)
    return model, time.perf_counter() - start


def _decomposition_peak_bytes(views, *, precision) -> int:
    """Peak tracemalloc bytes of the implicit CP-ALS hot path.

    The operator (whitened views, already cast to the policy's compute
    dtype) is built *before* measurement starts, so the peak is the
    decomposition working set the precision policy actually controls.
    """
    policy = resolve_precision(precision)
    centered = [
        view - view.mean(axis=1, keepdims=True) for view in views
    ]
    whitened = whitened_covariance_operator(
        centered,
        0.01,
        dtype_policy=None if policy.is_default else policy,
    )
    tracemalloc.start()
    try:
        cp_als_implicit(
            whitened.operator,
            2,
            tol=policy.sweep_tol(1e-8),
            random_state=0,
            warn_on_no_convergence=False,
        )
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return int(peak)


def test_bench_dtype():
    payload = {"cpu_count": os.cpu_count()}

    agreements = {}
    for label, scale, solver in (
        ("fig7_dense", SCALE_FIG7, "dense"),
        ("fig8_implicit", SCALE_FIG8, "implicit"),
    ):
        views = _latent_views(
            scale["n_samples"], scale["dims"], scale["seed"]
        )
        exact, exact_seconds = _timed_fit(
            views, solver=solver, precision=None
        )
        mixed, mixed_seconds = _timed_fit(
            views, solver=solver, precision="mixed"
        )
        agreement = float(
            np.max(np.abs(mixed.correlations_ - exact.correlations_))
        )
        agreements[label] = agreement
        payload[label] = {
            "n_samples": scale["n_samples"],
            "dims": list(scale["dims"]),
            "solver": solver,
            "float64_seconds": exact_seconds,
            "mixed_seconds": mixed_seconds,
            "speedup_mixed_vs_float64": exact_seconds / mixed_seconds,
            "correlation_agreement": agreement,
        }

    memory_views = _latent_views(
        SCALE_FIG8["n_samples"], SCALE_FIG8["dims"], SCALE_FIG8["seed"]
    )
    peak64 = _decomposition_peak_bytes(memory_views, precision=None)
    peak_mixed = _decomposition_peak_bytes(memory_views, precision="mixed")
    payload["fig8_decomposition_memory"] = {
        "float64_peak_bytes": peak64,
        "mixed_peak_bytes": peak_mixed,
        "ratio_mixed_vs_float64": peak_mixed / peak64,
    }

    out_dir = os.environ.get("REPRO_BENCH_DIR") or "."
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, "BENCH_dtype.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print()
    print(json.dumps(payload, indent=2, sort_keys=True))

    # numerical agreement asserts everywhere — it does not depend on
    # the machine
    for label, agreement in agreements.items():
        assert agreement <= 1e-4, (label, agreement)

    cores = os.cpu_count() or 1
    if cores >= MIN_ASSERT_CORES:
        for label in ("fig7_dense", "fig8_implicit"):
            assert payload[label]["speedup_mixed_vs_float64"] >= 1.5, (
                label,
                payload[label],
            )
        assert (
            payload["fig8_decomposition_memory"]["ratio_mixed_vs_float64"]
            <= 0.6
        ), payload["fig8_decomposition_memory"]
