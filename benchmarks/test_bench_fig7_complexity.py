"""Fig. 7 — SecStr time / memory vs dimension.

Shape assertions (paper): TCCA costs more than the matrix CCA methods
(the d₁d₂d₃ covariance tensor vs d² covariance matrices), yet less than
DSE / SSMVD on large-N workloads (their N×N eigen / optimization problems
dominate).
"""

from repro.experiments import run_experiment

# N sits where DSE's N×N cost clearly dominates TCCA's N-linear one: at
# 2500 the TCCA < DSE+SSMVD margin was ~3% — inside wall-clock noise, so
# the ordering assertion flipped on machine jitter. 3500 makes the
# ordering structural rather than a coin flip.
SCALE = dict(n_samples=3500, dims=(5, 10, 20), random_state=0)


def test_bench_fig7_secstr_complexity(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("fig7", **SCALE), rounds=1, iterations=1
    )
    print()
    print(result.notes)

    costs = result.extras["costs"]
    total = {
        name: sum(cost["seconds"]) for name, cost in costs.items()
    }
    # TCCA above the closed-form (SVD-based) pairwise CCA methods. CCA-LS
    # is iterative, so its wall time depends on iteration caps rather than
    # problem structure and is not asserted against.
    assert total["TCCA"] > total["CCA (BST)"]
    assert total["TCCA"] > total["CCA (AVG)"]
    # TCCA below the transductive N×N methods at large N (paper's Fig. 7
    # argument for scalability in sample size).
    assert total["TCCA"] < total["DSE"] + total["SSMVD"]

    memory = {
        name: max(cost["memory_mb"]) for name, cost in costs.items()
    }
    # The covariance tensor dominates TCCA's footprint: more than the
    # pairwise CCA machinery needs.
    assert memory["TCCA"] > memory["CCA (BST)"]
