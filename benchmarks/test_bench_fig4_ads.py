"""Fig. 4 — Ads accuracy vs common-subspace dimension.

Shape assertions (paper): CAT ≈ BSF (over-fitting on the 1,555-d
concatenation with 100 labels), the CCA-based methods stay steady across
dimensions while DSE/SSMVD decay, and the subspace methods beat the raw
baselines at their best dimensions.
"""

import numpy as np

from repro.experiments import run_experiment

SCALE = dict(
    n_samples=1600,
    view_dims=(196, 165, 157),
    dims=(5, 10, 20, 40, 80),
    n_runs=3,
    random_state=0,
)


def test_bench_fig4_ads(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("fig4", **SCALE), rounds=1, iterations=1
    )
    print()
    print(result.series())
    print()
    print(result.table())

    sweeps = result.panels["labeled=100"]
    summaries = {
        name: sweep.best_dimension_summary()[0]
        for name, sweep in sweeps.items()
    }

    # CAT does not dominate BSF (high-dimension over-fitting regime).
    assert abs(summaries["CAT"] - summaries["BSF"]) < 0.08

    # The CCA-family subspace methods beat the raw baselines.
    cca_family = max(
        summaries[name]
        for name in ("CCA (BST)", "CCA (AVG)", "CCA-LS", "TCCA")
    )
    assert cca_family > max(summaries["BSF"], summaries["CAT"])

    # CCA curves are steadier across r than DSE/SSMVD (paper: the latter
    # "decrease sharply" at large r).
    def curve_drop(sweep):
        curve = sweep.mean_curve()
        return float(curve.max() - curve[-1])

    cca_drop = curve_drop(sweeps["CCA (AVG)"])
    transductive_drop = max(
        curve_drop(sweeps["DSE"]), curve_drop(sweeps["SSMVD"])
    )
    assert transductive_drop > cca_drop - 0.05

    # TCCA at its best dimension is competitive with the pairwise family
    # (paper: slightly ahead; margins shrink with few unlabeled samples).
    pairwise = max(
        summaries[name] for name in ("CCA (BST)", "CCA (AVG)", "CCA-LS")
    )
    assert summaries["TCCA"] > pairwise - 0.04
