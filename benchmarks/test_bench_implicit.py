"""Implicit (tensor-free) TCCA vs the dense covariance-tensor path.

Not a paper artifact: this benchmark characterizes the implicit CP-ALS
engine added on top of the reproduction. The dense path materializes the
whitened covariance tensor ``M`` (``∏ d_p`` floats) and pays an
``O(r · ∏ d_p)`` Khatri-Rao contraction per mode update — the wall the
paper's Figs. 7-10 measure. The implicit path factors every contraction
through the whitened views (``O(N · Σ d_p · r)`` per sweep), so view
dimensions that would need a ≥1 GB tensor fit in megabytes, and the
crossover at moderate ``d`` is structural (orders of magnitude, not a
constant factor).

Also micro-benchmarks ``khatri_rao`` (einsum folds + pre-allocated final
output — the dense path's per-update hot spot) against a pure
broadcasting-multiply candidate; the broadcasting form loses at the small
column counts CP-ALS uses, which is why the einsum kernel stayed.
"""

import time

import numpy as np

from repro.core.tcca import TCCA
from repro.evaluation.resources import measure_resources
from repro.tensor.products import khatri_rao

HIGHDIM = dict(m=3, d=512, n_samples=600, n_components=2)
SCALING = dict(m=3, n_samples=500, n_components=3, dims=(40, 90, 140))
EPSILON = 1e-2


def _shared_signal_views(m, d, n_samples, seed=0, noise=0.3):
    rng = np.random.default_rng(seed)
    t = rng.exponential(1.0, n_samples) - 1.0
    views = []
    for _ in range(m):
        direction = rng.standard_normal(d)
        direction /= np.linalg.norm(direction)
        views.append(
            np.outer(direction, t)
            + noise * rng.standard_normal((d, n_samples))
        )
    return views


def test_bench_implicit_highdim_fit(benchmark, bench_record):
    """Fit d_p=500, m=3 — the dense tensor would be 1 GB; implicit is MBs."""
    m, d, n = HIGHDIM["m"], HIGHDIM["d"], HIGHDIM["n_samples"]
    dense_tensor_mb = (d**m * 8) / (1024.0 * 1024.0)
    assert dense_tensor_mb >= 1024.0  # the dense path would need >= 1 GB
    views = _shared_signal_views(m, d, n)

    def fit():
        return measure_resources(
            lambda: TCCA(
                n_components=HIGHDIM["n_components"],
                epsilon=EPSILON,
                solver="implicit",
                random_state=0,
            ).fit(views)
        )

    model, usage = benchmark.pedantic(fit, rounds=1, iterations=1)

    print()
    print(
        f"implicit TCCA — m={m}, d_p={d}, N={n}, "
        f"r={HIGHDIM['n_components']}"
    )
    print(
        f"dense tensor would be {dense_tensor_mb:8.1f} MB; implicit fit "
        f"peak {usage.peak_memory_mb:7.1f} MB in {usage.seconds:.2f}s"
    )
    bench_record(
        {
            "m": m,
            "d": d,
            "n_samples": n,
            "dense_tensor_mb": dense_tensor_mb,
            "seconds": usage.seconds,
            "peak_memory_mb": usage.peak_memory_mb,
        }
    )

    assert model.solver_used_ == "implicit"
    assert model.covariance_tensor_shape_ == (d,) * m
    # The acceptance bar: the whole fit accumulates < 500 MB where the
    # dense tensor alone would be 1 GB.
    assert usage.peak_memory_mb < 500.0
    # The shared latent factor is still recovered.
    assert model.correlations_[0] > 0.3


def test_bench_implicit_vs_dense_scaling(benchmark, bench_record):
    """Both engines across d — same canonical subspace, diverging cost."""
    m, n, r = SCALING["m"], SCALING["n_samples"], SCALING["n_components"]

    def run_all():
        results = {}
        for d in SCALING["dims"]:
            views = _shared_signal_views(m, d, n)
            fits = {}
            for solver in ("dense", "implicit"):
                fits[solver] = measure_resources(
                    lambda solver=solver: TCCA(
                        n_components=r,
                        epsilon=EPSILON,
                        solver=solver,
                        random_state=0,
                    ).fit(views)
                )
            results[d] = (views, fits)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    print(f"implicit vs dense TCCA — m={m}, N={n}, r={r}")
    print(
        f"{'d':>5} {'dense s':>8} {'dense MB':>9} {'impl s':>8} "
        f"{'impl MB':>8} {'speedup':>8}"
    )
    payload = {"m": m, "n_samples": n, "n_components": r, "points": []}
    for d, (views, fits) in results.items():
        dense_model, dense_usage = fits["dense"]
        implicit_model, implicit_usage = fits["implicit"]
        speedup = dense_usage.seconds / max(implicit_usage.seconds, 1e-9)
        print(
            f"{d:>5} {dense_usage.seconds:8.2f} "
            f"{dense_usage.peak_memory_mb:9.1f} "
            f"{implicit_usage.seconds:8.2f} "
            f"{implicit_usage.peak_memory_mb:8.1f} {speedup:7.1f}x"
        )
        payload["points"].append(
            {
                "d": d,
                "dense_seconds": dense_usage.seconds,
                "dense_peak_memory_mb": dense_usage.peak_memory_mb,
                "implicit_seconds": implicit_usage.seconds,
                "implicit_peak_memory_mb": implicit_usage.peak_memory_mb,
            }
        )
        # Same optimum from both engines at every size.
        np.testing.assert_allclose(
            implicit_model.transform_combined(views),
            dense_model.transform_combined(views),
            atol=1e-8,
        )
    bench_record(payload)

    # Structural (>= 2x margin) wall-clock and memory win at the top d:
    # the dense path builds + contracts a d^3 tensor, the implicit one
    # never touches an object bigger than d x N.
    top = max(SCALING["dims"])
    _views, fits = results[top]
    _model, dense_usage = fits["dense"]
    _model, implicit_usage = fits["implicit"]
    assert implicit_usage.seconds * 2.0 <= dense_usage.seconds
    assert implicit_usage.peak_memory_mb * 2.0 <= dense_usage.peak_memory_mb


def _khatri_rao_broadcast(matrices):
    """Pure broadcasting-multiply fold — the candidate the kernel beat."""
    matrices = [np.asarray(matrix, dtype=np.float64) for matrix in matrices]
    n_columns = matrices[0].shape[1]
    result = matrices[0]
    for matrix in matrices[1:]:
        result = (result[:, None, :] * matrix[None, :, :]).reshape(
            -1, n_columns
        )
    return result


def test_bench_khatri_rao_microbenchmark(benchmark, bench_record):
    """khatri_rao (einsum + pre-allocated out) vs broadcasting multiply."""
    rng = np.random.default_rng(0)
    cases = {
        "pair (300x32, 200x32)": [
            rng.standard_normal((300, 32)),
            rng.standard_normal((200, 32)),
        ],
        "pair (140x3)^2 [ALS]": [
            rng.standard_normal((140, 3)) for _ in range(2)
        ],
        "triple (60x8)^3": [
            rng.standard_normal((60, 8)) for _ in range(3)
        ],
        "quad (24x4)^4": [
            rng.standard_normal((24, 4)) for _ in range(4)
        ],
    }
    repeats = 20

    def time_call(function, matrices):
        function(matrices)  # warm up
        start = time.perf_counter()
        for _ in range(repeats):
            function(matrices)
        return (time.perf_counter() - start) / repeats

    def run_all():
        timings = {}
        for label, matrices in cases.items():
            np.testing.assert_allclose(
                khatri_rao(matrices),
                _khatri_rao_broadcast(matrices),
                atol=1e-12,
            )
            timings[label] = {
                "einsum_seconds": time_call(khatri_rao, matrices),
                "broadcast_seconds": time_call(
                    _khatri_rao_broadcast, matrices
                ),
            }
        return timings

    timings = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    print(f"khatri_rao micro-benchmark ({repeats} repeats)")
    print(f"{'case':<24} {'einsum ms':>10} {'broadcast ms':>13} {'ratio':>7}")
    for label, numbers in timings.items():
        ratio = numbers["broadcast_seconds"] / max(
            numbers["einsum_seconds"], 1e-12
        )
        print(
            f"{label:<24} {numbers['einsum_seconds'] * 1e3:10.3f} "
            f"{numbers['broadcast_seconds'] * 1e3:13.3f} {ratio:6.2f}x"
        )
        # The shipped kernel must not lose to the rejected candidate by
        # more than jitter on any case (it wins outright at ALS shapes).
        assert numbers["einsum_seconds"] <= (
            numbers["broadcast_seconds"] * 1.6
        )
    bench_record({"repeats": repeats, "timings": timings})
