"""Streaming engine — batch vs. streaming TCCA cost across chunk sizes.

Not a paper artifact: this benchmark characterizes the out-of-core
covariance engine added on top of the reproduction. The batch path
materializes the whitened views (two extra ``d × N`` copies per view)
before accumulating the covariance tensor; the streaming path accumulates
the same tensor from minibatches, so its peak memory is the tensor plus
one chunk — independent of ``N`` — while wall time stays within a small
factor of batch (the same BLAS-backed Khatri-Rao kernel does the work in
both).
"""

import numpy as np

from repro.core.tcca import TCCA
from repro.datasets import make_secstr_like
from repro.evaluation.resources import measure_resources
from repro.streaming import ArrayViewStream

SCALE = dict(n_samples=4000, random_state=0)
CHUNK_SIZES = (128, 512, 2048)
N_COMPONENTS = 5
EPSILON = 1e-2


def test_bench_streaming_vs_batch(benchmark):
    data = make_secstr_like(**SCALE)

    def run_all():
        results = {}
        results["batch"] = measure_resources(
            lambda: TCCA(
                n_components=N_COMPONENTS, epsilon=EPSILON, random_state=0
            ).fit(data.views)
        )
        for chunk_size in CHUNK_SIZES:
            stream = ArrayViewStream(data.views, chunk_size=chunk_size)
            results[f"stream[{chunk_size}]"] = measure_resources(
                lambda stream=stream: TCCA(
                    n_components=N_COMPONENTS, epsilon=EPSILON, random_state=0
                ).fit_stream(stream)
            )
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    print(f"streaming vs batch TCCA — secstr-like, N={SCALE['n_samples']}")
    print(f"{'path':<14} {'seconds':>8} {'peak MB':>9} {'samples/s':>11}")
    for name, (_model, usage) in results.items():
        throughput = SCALE["n_samples"] / usage.seconds
        print(
            f"{name:<14} {usage.seconds:8.2f} {usage.peak_memory_mb:9.1f} "
            f"{throughput:11.0f}"
        )

    batch_model, batch_usage = results["batch"]
    for name, (model, usage) in results.items():
        if name == "batch":
            continue
        # Same optimum as the batch fit on every chunking.
        for batch_vectors, stream_vectors in zip(
            batch_model.canonical_vectors_, model.canonical_vectors_
        ):
            np.testing.assert_allclose(
                stream_vectors, batch_vectors, atol=1e-10
            )
        # The N-sized whitened-view copies are gone from the peak.
        assert usage.peak_memory_mb < batch_usage.peak_memory_mb
