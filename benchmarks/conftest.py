"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at
laptop scale (smaller N, truncated dimension grids, 3 random runs instead
of 5) and prints the corresponding rows/series. Scale knobs live in each
module as SCALE constants; EXPERIMENTS.md records paper-vs-measured values
from a full run.

Run with::

    pytest benchmarks/ --benchmark-only
"""

import warnings

import pytest

from repro.exceptions import ConvergenceWarning


@pytest.fixture(autouse=True)
def _silence_convergence_warnings():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", ConvergenceWarning)
        yield
