"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at
laptop scale (smaller N, truncated dimension grids, 3 random runs instead
of 5) and prints the corresponding rows/series. Scale knobs live in each
module as SCALE constants; EXPERIMENTS.md records paper-vs-measured values
from a full run.

Run with::

    pytest benchmarks/ --benchmark-only
"""

import warnings

import pytest

from bench_to_json import record
from repro.exceptions import ConvergenceWarning


@pytest.fixture(autouse=True)
def _silence_convergence_warnings():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", ConvergenceWarning)
        yield


@pytest.fixture
def bench_record(request):
    """Record this benchmark's numbers as a ``BENCH_<test>.json`` artifact.

    No-op unless the ``REPRO_BENCH_DIR`` environment variable is set (see
    :mod:`bench_to_json`); returns the written path or ``None``.
    """

    def _record(payload: dict, name: str | None = None):
        return record(name or request.node.name, payload)

    return _record
