"""Fig. 9 — NUS-WIDE time / memory vs dimension."""

from repro.experiments import run_experiment

SCALE = dict(n_samples=800, dims=(5, 10, 20), random_state=0)


def test_bench_fig9_nuswide_complexity(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("fig9", **SCALE), rounds=1, iterations=1
    )
    print()
    print(result.notes)

    costs = result.extras["costs"]
    total = {name: sum(cost["seconds"]) for name, cost in costs.items()}
    memory = {name: max(cost["memory_mb"]) for name, cost in costs.items()}

    # The 500×144×128 covariance tensor makes TCCA the costliest
    # CCA-family method in both time and memory.
    assert total["TCCA"] > total["CCA (BST)"]
    assert memory["TCCA"] > memory["CCA (BST)"]
    # Cheap baselines stay cheap.
    assert total["BSF"] < total["TCCA"]
