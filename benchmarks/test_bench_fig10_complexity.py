"""Fig. 10 — kernel-method time / memory vs dimension.

KTCCA's N³ kernel tensor dominates both axes, as in the paper.
"""

from repro.experiments import run_experiment

SCALE = dict(n_samples=170, dims=(5, 10, 20), random_state=0)


def test_bench_fig10_kernel_complexity(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("fig10", **SCALE), rounds=1, iterations=1
    )
    print()
    print(result.notes)

    costs = result.extras["costs"]
    total = {name: sum(cost["seconds"]) for name, cost in costs.items()}
    memory = {name: max(cost["memory_mb"]) for name, cost in costs.items()}

    # KTCCA's N×N×N tensor beats the pairwise N×N kernel machinery.
    assert total["KTCCA"] > total["KCCA (BST)"]
    assert memory["KTCCA"] > memory["BSK"]
