"""Ablation — concatenating Z_p (the paper's choice) vs averaging them.

The paper concatenates the per-view canonical variables into an (m·r)-dim
representation (following Foster et al.); averaging them into r dims is
the natural alternative. This bench compares the two on downstream
accuracy.
"""

import numpy as np

from repro.classifiers import RLSClassifier
from repro.core.tcca import TCCA
from repro.datasets import make_multiview_latent, sample_labeled_indices

N_SAMPLES = 1500


def test_bench_ablation_concat_vs_average(benchmark):
    data = make_multiview_latent(
        N_SAMPLES, dims=(30, 25, 20), random_state=0
    )
    labeled = sample_labeled_indices(data.labels, 100, random_state=0)
    rest = np.setdiff1d(np.arange(N_SAMPLES), labeled)

    def run():
        model = TCCA(n_components=8, epsilon=1.0, random_state=0).fit(
            data.views
        )
        zs = model.transform(data.views)
        concatenated = np.hstack(zs)
        averaged = sum(zs) / len(zs)
        out = {}
        for name, features in (
            ("concat", concatenated),
            ("average", averaged),
        ):
            classifier = RLSClassifier().fit(
                features[labeled], data.labels[labeled]
            )
            out[name] = classifier.score(
                features[rest], data.labels[rest]
            )
        return out

    accuracies = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        f"concat: {accuracies['concat']:.3f}, "
        f"average: {accuracies['average']:.3f}"
    )
    # The concatenation keeps per-view information and should not lose.
    assert accuracies["concat"] > accuracies["average"] - 0.03
