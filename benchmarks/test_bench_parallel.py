"""Serial vs parallel map-reduce fitting — the parallel execution layer.

Not a paper artifact: this benchmark characterizes the sharded
accumulation path (PR 5). A TCCA fit at moderate ``∏ d_p`` and large
``N`` is *accumulation-bound*: nearly all the wall clock goes into the
Khatri-Rao moment accumulation over samples, while the ALS sweeps on the
finished ``∏ d_p`` tensor are comparatively free. That stage is an exact
map-reduce over sample shards (``StreamingCovarianceTensor.merge``), so
with ``w`` workers the fit should approach ``w``× — the benchmark
measures the end-to-end fit (not just the accumulation) serially and
under the thread and process executors with 4 workers, asserts the
result is unchanged to ≤1e-10, and (on machines with >= 4 cores)
asserts a >= 2× end-to-end speedup for the better executor.

NumPy's own BLAS threading is an orthogonal speedup source; CI pins
``OPENBLAS/OMP/MKL_NUM_THREADS=1`` so the ratio isolates this library's
execution layer.
"""

import os
import time

import numpy as np
import pytest

from repro.core import TCCA
from repro.streaming import ArrayViewStream

#: accumulation-bound configuration: ∏d ≈ 2.9e5 keeps the ALS sweeps and
#: the merge cost negligible next to the O(N · ∏d) Khatri-Rao
#: accumulation over 40k samples.
SCALE = dict(
    dims=(96, 64, 48),
    n_samples=40_000,
    chunk_size=1000,
    n_components=2,
    workers=4,
)
EPSILON = 1e-2

#: the structural claim needs real cores; below this the measurement is
#: still recorded but the speedup assertion is skipped.
MIN_CORES_FOR_ASSERT = 4


def _latent_views(dims, n_samples, seed=0, noise=0.25, n_factors=3):
    rng = np.random.default_rng(seed)
    strengths = (2.0 * 0.5 ** np.arange(n_factors))[:, None]
    signal = strengths * rng.standard_normal((n_factors, n_samples))
    return [
        rng.standard_normal((d, n_factors)) @ signal
        + noise * rng.standard_normal((d, n_samples))
        for d in dims
    ]


def test_bench_parallel_sharded_fit_speedup(benchmark, bench_record):
    """4-worker map-reduce fit: same model ≤1e-10, >= 2x where cores exist."""
    dims, n = SCALE["dims"], SCALE["n_samples"]
    views = _latent_views(dims, n)
    stream = ArrayViewStream(views, chunk_size=SCALE["chunk_size"])
    workers = SCALE["workers"]

    def fit(executor, n_jobs=None):
        model = TCCA(
            n_components=SCALE["n_components"],
            epsilon=EPSILON,
            solver="dense",
            random_state=0,
            executor=executor,
            n_jobs=n_jobs,
        )
        start = time.perf_counter()
        model.fit_stream(stream)
        return model, time.perf_counter() - start

    # Best-of-2 on every configuration so one scheduler hiccup on a
    # shared CI runner does not decide the ratio.
    (serial, serial_first) = benchmark.pedantic(
        lambda: fit("serial"), rounds=1, iterations=1
    )
    seconds = {"serial": min(serial_first, fit("serial")[1])}
    models = {}
    for executor in ("thread", "process"):
        models[executor], first = fit(executor, workers)
        seconds[executor] = min(first, fit(executor, workers)[1])

    best = min("thread", "process", key=seconds.get)
    speedup = seconds["serial"] / seconds[best]
    cores = os.cpu_count() or 1

    print()
    print(
        f"parallel TCCA — dims={dims}, N={n}, "
        f"chunk={SCALE['chunk_size']}, workers={workers}, cores={cores}"
    )
    for label in ("serial", "thread", "process"):
        print(f"{label:<8} {seconds[label]:7.3f}s")
    print(f"best parallel ({best}): {speedup:.2f}x vs serial")

    bench_record(
        {
            "dims": list(dims),
            "n_samples": n,
            "chunk_size": SCALE["chunk_size"],
            "workers": workers,
            "cpu_count": cores,
            "serial_seconds": seconds["serial"],
            "thread_seconds": seconds["thread"],
            "process_seconds": seconds["process"],
            "best_executor": best,
            "speedup": speedup,
        },
        name="parallel",
    )

    # Parallelism must never change the fitted model: ≤1e-10 in the
    # canonical correlations whichever executor (and shard order) ran.
    for model in models.values():
        np.testing.assert_allclose(
            model.correlations_, serial.correlations_, rtol=0, atol=1e-10
        )

    if cores < MIN_CORES_FOR_ASSERT:
        pytest.skip(
            f"speedup assertion needs >= {MIN_CORES_FOR_ASSERT} cores "
            f"(found {cores}); timings recorded above"
        )
    # The structural claim of the parallel layer: an accumulation-bound
    # fit with 4 workers runs >= 2x faster end to end.
    assert speedup >= 2.0