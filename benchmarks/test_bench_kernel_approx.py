"""Kernel-approximation PR claim: the KTCCA kernel wall falls to ~linear.

Exact KTCCA materialises an ``N x N`` Gram per view and decomposes an
``N^m`` kernel covariance tensor, so doubling N multiplies the fit cost
by ~2^m. The Nyström / random-Fourier paths map each view to ``k``
explicit features once (``O(Nk)``) and hand a fixed ``k^m`` problem to
the streaming TCCA, so the fit scales ~linearly in N at fixed k.

This benchmark measures both:

* **exact scaling** — fit wall-clock at small N, power-law exponent from
  the doubling ratio, extrapolated to the large-N grid;
* **approx scaling** — Nyström and RFF fit wall-clock and tracemalloc
  peak at ``k = 64`` across ``N in {500, 2000, 8000}``;
* **agreement-vs-k** — max |approx - exact| canonical-correlation error
  on the fig6-style generator as ``k -> N``.

Writes ``BENCH_kernel_approx.json``. Gates (generous per the ROADMAP
note on CI-runner noise): exact doubling ratio is superlinear, approx
time grows at most ~3x faster than linearly, the k=64 N=8000 approx fit
costs <10% of the extrapolated exact fit, its peak memory stays far
below the N^2 Gram working set, and the Nyström agreement error at
``k = N`` is <1e-6.
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc

import numpy as np

from repro.core.ktcca import KTCCA
from repro.datasets.nuswide import make_nuswide_like

#: exact-path scaling probe (the N^m wall makes bigger N pointless here)
EXACT_GRID = (100, 200)
#: approx-path grid from the issue: ~linear across a 16x range of N
APPROX_GRID = (500, 2000, 8000)
K_FEATURES = 64
#: explicit-gamma RBF per view — keeps the bandwidth fit out of the
#: timing so the measured cost is the map + streaming TCCA itself
KERNELS = {"kind": "rbf", "gamma": 0.02}
DIMS = (20, 15, 10)
FIT_PARAMS = dict(n_components=2, max_iter=50, random_state=0)

#: the N=8000 exact working set this PR avoids: one float64 Gram per
#: view is ``3 * N^2 * 8`` bytes (and the kernel tensor N^3 is absurd).
GRAM_BYTES_AT_MAX_N = 3 * APPROX_GRID[-1] ** 2 * 8
#: approx peak-memory gate: well under a single N^2 Gram
PEAK_BYTES_GATE = 200 * 1024 * 1024


def _latent_views(n_samples: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    z = rng.standard_normal((2, n_samples))
    return [
        rng.standard_normal((dim, 2)) @ z
        + 0.3 * rng.standard_normal((dim, n_samples))
        for dim in DIMS
    ]


def _timed_fit(model, views):
    tracemalloc.start()
    start = time.perf_counter()
    try:
        model.fit(views)
        seconds = time.perf_counter() - start
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return seconds, int(peak)


def test_bench_kernel_approx():
    payload = {
        "cpu_count": os.cpu_count(),
        "k_features": K_FEATURES,
        "gram_bytes_at_max_n": GRAM_BYTES_AT_MAX_N,
    }

    # -- exact scaling + power-law extrapolation -----------------------------
    exact_rows = []
    for n in EXACT_GRID:
        views = _latent_views(n)
        seconds, peak = _timed_fit(
            KTCCA(kernels=dict(KERNELS), **FIT_PARAMS), views
        )
        exact_rows.append(
            {"n_samples": n, "seconds": seconds, "peak_bytes": peak}
        )
    doubling = exact_rows[1]["seconds"] / max(exact_rows[0]["seconds"], 1e-9)
    exponent = float(
        np.log(doubling) / np.log(EXACT_GRID[1] / EXACT_GRID[0])
    )
    extrapolated = {
        n: exact_rows[1]["seconds"] * (n / EXACT_GRID[1]) ** exponent
        for n in APPROX_GRID
    }
    payload["exact"] = {
        "grid": exact_rows,
        "doubling_ratio": doubling,
        "power_law_exponent": exponent,
        "extrapolated_seconds": {
            str(n): extrapolated[n] for n in APPROX_GRID
        },
    }

    # -- approx scaling ------------------------------------------------------
    for approx in ("nystrom", "rff"):
        rows = []
        for n in APPROX_GRID:
            views = _latent_views(n)
            seconds, peak = _timed_fit(
                KTCCA(
                    kernels=dict(KERNELS),
                    approx=approx,
                    n_features=K_FEATURES,
                    **FIT_PARAMS,
                ),
                views,
            )
            rows.append(
                {"n_samples": n, "seconds": seconds, "peak_bytes": peak}
            )
        span = APPROX_GRID[-1] / APPROX_GRID[0]
        growth = rows[-1]["seconds"] / max(rows[0]["seconds"], 1e-9)
        payload[approx] = {
            "grid": rows,
            "time_growth_over_span": growth,
            "linear_span": span,
            "share_of_extrapolated_exact_at_max_n": (
                rows[-1]["seconds"] / extrapolated[APPROX_GRID[-1]]
            ),
        }

    # -- agreement-vs-k on the fig6-style generator --------------------------
    fig6 = make_nuswide_like(60, random_state=0)
    fig6_kernels = [
        {"kind": "exponential", "distance": "chi2"},
        {"kind": "exponential", "distance": "euclidean"},
        {"kind": "exponential", "distance": "euclidean"},
    ]
    n_fig6 = fig6.views[0].shape[1]
    exact_fig6 = KTCCA(
        n_components=1, kernels=list(fig6_kernels), random_state=0
    ).fit(fig6.views)
    curve = []
    for k in (8, 16, 32, n_fig6):
        approx_fig6 = KTCCA(
            n_components=1,
            kernels=list(fig6_kernels),
            approx="nystrom",
            n_features=k,
            random_state=0,
        ).fit(fig6.views)
        curve.append(
            {
                "k": k,
                "max_abs_error": float(
                    np.abs(
                        approx_fig6.correlations_ - exact_fig6.correlations_
                    ).max()
                ),
            }
        )
    payload["agreement_vs_k"] = {"n_samples": n_fig6, "curve": curve}

    out_dir = os.environ.get("REPRO_BENCH_DIR") or "."
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, "BENCH_kernel_approx.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print()
    print(json.dumps(payload, indent=2, sort_keys=True))

    # the k=N agreement gate is machine-independent
    assert curve[-1]["max_abs_error"] < 1e-6, curve

    # scaling gates — generous bounds so scheduler noise on small CI
    # runners cannot flip them (ROADMAP note on wall-clock assertions)
    assert doubling > 2.0, payload["exact"]
    for approx in ("nystrom", "rff"):
        stats = payload[approx]
        # ~linear in N: allow 3x headroom over perfectly linear growth
        assert stats["time_growth_over_span"] < 3.0 * stats["linear_span"], (
            approx,
            stats,
        )
        # the issue's headline gate: <10% of the extrapolated exact fit
        assert stats["share_of_extrapolated_exact_at_max_n"] < 0.10, (
            approx,
            stats,
        )
        # working set independent of N^2: far below one Gram matrix
        assert stats["grid"][-1]["peak_bytes"] < PEAK_BYTES_GATE, (
            approx,
            stats,
        )
