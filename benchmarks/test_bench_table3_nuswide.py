"""Table 3 — NUS-WIDE accuracies at best dimensions, {4, 6, 8} labeled."""

from repro.experiments import run_experiment

SCALE = dict(
    n_samples=1200,
    labeled_per_concept=(4, 8),
    dims=(5, 10, 20),
    n_runs=3,
    random_state=2,
)


def test_bench_table3_nuswide(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("tab3", **SCALE), rounds=1, iterations=1
    )
    print()
    print(result.table())

    for panel, sweeps in result.panels.items():
        accuracies = {
            name: sweep.best_dimension_summary()[0]
            for name, sweep in sweeps.items()
        }
        # Subspace methods beat chance (0.1) decisively.
        assert accuracies["TCCA"] > 0.15
        assert accuracies["CCA (AVG)"] > 0.15
        # Per-run std is reported; the table renders without error.
        for sweep in sweeps.values():
            _mean, std, dims = sweep.best_dimension_summary()
            assert std >= 0.0
            assert len(dims) == SCALE["n_runs"]
