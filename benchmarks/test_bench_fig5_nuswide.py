"""Fig. 5 — NUS-WIDE annotation accuracy vs dimension, {4, 6, 8} labeled.

Shape assertions (paper): accuracy grows with the labeled budget; the
CCA-family subspace methods beat chance by a wide margin on the
10-concept task; TCCA's curve holds up at the larger dimensions (the
joint-ALS property the paper highlights).
"""

import numpy as np

from repro.experiments import run_experiment

SCALE = dict(
    n_samples=1200,
    labeled_per_concept=(4, 6, 8),
    dims=(5, 10, 20),
    n_runs=3,
    random_state=0,
)


def test_bench_fig5_nuswide(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("fig5", **SCALE), rounds=1, iterations=1
    )
    print()
    print(result.series())
    print()
    print(result.table())

    summaries = {
        panel: {
            name: sweep.best_dimension_summary()[0]
            for name, sweep in sweeps.items()
        }
        for panel, sweeps in result.panels.items()
    }

    # More labeled images per concept → better accuracy (averaged across
    # methods, allowing per-method noise).
    mean4 = np.mean(list(summaries["labeled=4/concept"].values()))
    mean8 = np.mean(list(summaries["labeled=8/concept"].values()))
    assert mean8 > mean4

    # Ten balanced classes: chance is 10%; every method clears it.
    for panel in summaries.values():
        assert min(panel.values()) > 0.1

    # TCCA stays useful at the largest swept dimension (flat-curve
    # property, paper observation 5).
    tcca = result.panels["labeled=8/concept"]["TCCA"]
    curve = tcca.mean_curve()
    assert curve[-1] > 0.6 * curve.max()
