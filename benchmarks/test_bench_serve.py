"""Latency/throughput benchmark of the ``repro serve`` micro-batcher.

Measures p50/p99 latency and request throughput for one sequential
client vs. many concurrent clients across micro-batch windows, over the
real asyncio server on loopback sockets. The numbers demonstrate the
serving claim behind the subsystem: concurrent requests coalesced into
micro-batches (one model call amortizes many requests) serve strictly
more requests per second than the same traffic handled one request at a
time — and the batch window is the explicit knob trading per-request
latency for amortization.

Printed as a table and recorded as ``BENCH_serve.json`` when
``REPRO_BENCH_DIR`` is set (the CI artifact).

Speedup assertions stay conditional on ``os.cpu_count()`` per the
ROADMAP note: single-core dev containers measure, CI enforces.
"""

from __future__ import annotations

import asyncio
import json
import os
import time

import numpy as np

from repro.api import MultiviewPipeline, save_model
from repro.datasets import make_multiview_latent
from repro.serve import ModelManager, ServeApp

DIMS = (30, 24, 18)
N_FIT = 400
N_CLIENTS = 8
REQUESTS_PER_CLIENT = 24
SEQUENTIAL_REQUESTS = 96
WINDOWS_MS = (0.0, 2.0, 10.0)


class KeepAliveClient:
    """A minimal pipelined HTTP/1.1 client on an asyncio stream."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer

    @classmethod
    async def connect(cls, port: int) -> "KeepAliveClient":
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        return cls(reader, writer)

    async def request(self, path: str, payload) -> dict:
        body = json.dumps(payload).encode()
        self.writer.write(
            f"POST {path} HTTP/1.1\r\nContent-Length: {len(body)}"
            "\r\n\r\n".encode() + body
        )
        await self.writer.drain()
        status_line = await self.reader.readline()
        assert b"200" in status_line, status_line
        length = None
        while True:
            line = await self.reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            if line.lower().startswith(b"content-length:"):
                length = int(line.split(b":")[1])
        return json.loads((await self.reader.readexactly(length)).decode())

    def close(self) -> None:
        self.writer.close()


def percentiles(latencies) -> dict:
    array = np.asarray(latencies) * 1000.0
    return {
        "p50_ms": float(np.percentile(array, 50)),
        "p99_ms": float(np.percentile(array, 99)),
        "mean_ms": float(array.mean()),
    }


async def run_traffic(app, *, n_clients: int, n_requests: int, payload):
    """``(stats, seconds)`` for n_clients × n_requests over real sockets."""
    server = await asyncio.start_server(
        app.handle_connection, "127.0.0.1", 0
    )
    port = server.sockets[0].getsockname()[1]
    latencies: list[float] = []
    batch_sizes: list[int] = []

    async def client():
        connection = await KeepAliveClient.connect(port)
        try:
            for _ in range(n_requests):
                start = time.perf_counter()
                body = await connection.request("/transform", payload)
                latencies.append(time.perf_counter() - start)
                batch_sizes.append(body["batch_size"])
        finally:
            connection.close()

    try:
        start = time.perf_counter()
        await asyncio.gather(*(client() for _ in range(n_clients)))
        seconds = time.perf_counter() - start
    finally:
        server.close()
        await server.wait_closed()
    total = n_clients * n_requests
    return {
        **percentiles(latencies),
        "requests": total,
        "req_per_s": total / seconds,
        "mean_batch_size": float(np.mean(batch_sizes)),
        "max_batch_size": int(np.max(batch_sizes)),
    }, seconds


def test_bench_serve(tmp_path, bench_record, capsys):
    data = make_multiview_latent(
        n_samples=N_FIT, dims=DIMS, random_state=0
    )
    pipeline = MultiviewPipeline(
        "tcca",
        "rls",
        reducer_params={"n_components": 3, "random_state": 0},
    ).fit(data.views, data.labels)
    path = os.fspath(tmp_path / "model.npz")
    save_model(pipeline, path)
    payload = {
        "views": [view[:, :1].T.tolist() for view in data.views]
    }

    def measure(*, n_clients, n_requests, window_seconds):
        app = ServeApp(
            ModelManager(path),
            max_batch=64,
            window_seconds=window_seconds,
            timeout_seconds=30.0,
        )
        stats, _ = asyncio.run(
            run_traffic(
                app,
                n_clients=n_clients,
                n_requests=n_requests,
                payload=payload,
            )
        )
        return stats

    results = {
        "cpu_count": os.cpu_count(),
        "n_clients": N_CLIENTS,
        "dims": list(DIMS),
    }
    # one client, one request at a time — the unbatched baseline
    results["sequential"] = measure(
        n_clients=1,
        n_requests=SEQUENTIAL_REQUESTS,
        window_seconds=0.0,
    )
    results["windows"] = {}
    for window_ms in WINDOWS_MS:
        results["windows"][f"{window_ms:g}ms"] = measure(
            n_clients=N_CLIENTS,
            n_requests=REQUESTS_PER_CLIENT,
            window_seconds=window_ms / 1000.0,
        )

    best = max(
        results["windows"].values(), key=lambda s: s["req_per_s"]
    )
    results["speedup_vs_sequential"] = (
        best["req_per_s"] / results["sequential"]["req_per_s"]
    )

    with capsys.disabled():
        print()
        print(
            f"serve benchmark — {N_CLIENTS} clients, dims {DIMS}, "
            f"{os.cpu_count()} cores"
        )
        header = (
            f"{'workload':<16}{'req/s':>9}{'p50 ms':>9}"
            f"{'p99 ms':>9}{'batch':>7}"
        )
        print(header)
        rows = [("sequential", results["sequential"])] + [
            (f"{N_CLIENTS}cli window {k}", v)
            for k, v in results["windows"].items()
        ]
        for label, stats in rows:
            print(
                f"{label:<16}{stats['req_per_s']:>9.0f}"
                f"{stats['p50_ms']:>9.2f}{stats['p99_ms']:>9.2f}"
                f"{stats['mean_batch_size']:>7.1f}"
            )
        print(
            "best concurrent vs sequential: "
            f"{results['speedup_vs_sequential']:.2f}x"
        )
    bench_record(results, name="serve")

    # correctness-of-harness invariants, always on
    assert results["sequential"]["mean_batch_size"] == 1.0
    # with 8 clients and a 10 ms window, requests must actually coalesce
    assert results["windows"]["10ms"]["mean_batch_size"] >= 1.5
    # the headline gate, conditional per the ROADMAP note on 1-core boxes
    if (os.cpu_count() or 1) >= 2:
        assert results["speedup_vs_sequential"] > 1.0, (
            "micro-batched concurrent serving should out-serve "
            "sequential single-request serving: "
            f"{results['speedup_vs_sequential']:.2f}x"
        )
