"""Fig. 6 — kernel-method annotation accuracy vs dimension (small sample).

Shape assertions (paper): AVG beats the best single kernel (BSK); KCCA
(AVG) ≥ KCCA (BST); KTCCA achieves the best accuracy under most
dimensionalities.
"""

from repro.experiments import run_experiment

SCALE = dict(
    n_samples=200,
    labeled_per_concept=(4, 6),
    dims=(5, 10, 20),
    n_runs=3,
    random_state=0,
)


def test_bench_fig6_kernel(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("fig6", **SCALE), rounds=1, iterations=1
    )
    print()
    print(result.series())
    print()
    print(result.table())

    avg_beats_bsk = 0
    for panel, sweeps in result.panels.items():
        accuracies = {
            name: sweep.best_dimension_summary()[0]
            for name, sweep in sweeps.items()
        }
        avg_beats_bsk += accuracies["AVG"] > accuracies["BSK"] - 0.02
        # KTCCA is competitive with (paper: better than) the pairwise
        # kernel methods. At N=200 the N^3 kernel tensor is estimated from
        # fewer samples than the paper's 500, so a small deficit is within
        # the expected band (see EXPERIMENTS.md).
        pairwise = max(
            accuracies["KCCA (BST)"], accuracies["KCCA (AVG)"]
        )
        assert accuracies["KTCCA"] > pairwise - 0.07
        # Everything beats 10-class chance.
        assert min(accuracies.values()) > 0.1

    # Kernel combination beats the best single kernel in at least one
    # labeled-budget panel (paper: in all; per-panel noise at N=200 is
    # large with only 40-60 labels).
    assert avg_beats_bsk >= 1
