"""Fig. 8 — Ads time / memory vs dimension."""

from repro.experiments import run_experiment

SCALE = dict(n_samples=900, dims=(5, 10, 20), random_state=0)


def test_bench_fig8_ads_complexity(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("fig8", **SCALE), rounds=1, iterations=1
    )
    print()
    print(result.notes)

    costs = result.extras["costs"]
    total = {name: sum(cost["seconds"]) for name, cost in costs.items()}
    # TCCA is the most expensive CCA-family method on the
    # high-dimensional Ads views.
    assert total["TCCA"] > total["CCA (BST)"]
    assert total["TCCA"] > total["CCA (AVG)"]

    memory = {name: max(cost["memory_mb"]) for name, cost in costs.items()}
    # The d1·d2·d3 tensor outweighs every pairwise covariance matrix.
    assert memory["TCCA"] >= memory["CCA (BST)"]
