"""Table 2 — Ads accuracies at validation-selected best dimensions."""

from repro.experiments import run_experiment

SCALE = dict(
    n_samples=1600,
    view_dims=(196, 165, 157),
    dims=(5, 10, 20, 40),
    n_runs=3,
    random_state=1,
)

EXPECTED_METHODS = {
    "BSF",
    "CAT",
    "CCA (BST)",
    "CCA (AVG)",
    "CCA-LS",
    "DSE",
    "SSMVD",
    "TCCA",
}


def test_bench_table2_ads(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("tab2", **SCALE), rounds=1, iterations=1
    )
    print()
    print(result.table())

    sweeps = result.panels["labeled=100"]
    assert set(sweeps) == EXPECTED_METHODS
    accuracies = {
        name: sweep.best_dimension_summary()[0]
        for name, sweep in sweeps.items()
    }
    majority = 1.0 - 0.14  # the dataset's negative-class rate
    # The best methods must do better than always predicting "not ad".
    assert max(accuracies.values()) > majority
    # All methods clear the trivially-informed floor by a margin.
    assert min(accuracies.values()) > 0.75
