"""Ablation — ALS vs greedy deflation (tensor power method) inside TCCA.

The paper adopts ALS and credits its *joint* fit of all r components for
TCCA's flat accuracy at large r (Section 5.1.1, observation 5), in
contrast to greedy deflation which concentrates variance in the leading
components. This bench compares the two solvers on reconstruction quality
and on downstream accuracy of the TCCA representation.
"""

import numpy as np

from repro.classifiers import RLSClassifier
from repro.core.tcca import TCCA
from repro.datasets import make_multiview_latent, sample_labeled_indices
from repro.tensor.decomposition import cp_als, tensor_power_deflation

N_SAMPLES = 1500
RANK = 8


def _downstream_accuracy(decomposition: str) -> float:
    data = make_multiview_latent(
        N_SAMPLES, dims=(30, 25, 20), random_state=0
    )
    model = TCCA(
        n_components=RANK,
        epsilon=1.0,
        decomposition=decomposition,
        random_state=0,
    ).fit(data.views)
    z = model.transform_combined(data.views)
    labeled = sample_labeled_indices(data.labels, 100, random_state=0)
    rest = np.setdiff1d(np.arange(N_SAMPLES), labeled)
    classifier = RLSClassifier().fit(z[labeled], data.labels[labeled])
    return classifier.score(z[rest], data.labels[rest])


def test_bench_ablation_als_vs_deflation(benchmark):
    accuracies = benchmark.pedantic(
        lambda: {
            "als": _downstream_accuracy("als"),
            "power": _downstream_accuracy("power"),
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(
        "TCCA downstream accuracy — "
        f"ALS: {accuracies['als']:.3f}, deflation: {accuracies['power']:.3f}"
    )
    # ALS (joint fit) should not lose to greedy deflation.
    assert accuracies["als"] > accuracies["power"] - 0.03


def test_bench_ablation_reconstruction(benchmark):
    rng = np.random.default_rng(0)
    tensor = rng.standard_normal((20, 18, 16))

    def run():
        als = cp_als(
            tensor, 6, random_state=0, warn_on_no_convergence=False
        )
        deflation = tensor_power_deflation(tensor, 6, random_state=0)
        return (
            als.relative_error(tensor),
            deflation.relative_error(tensor),
        )

    als_error, deflation_error = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print()
    print(
        f"rank-6 relative error — ALS: {als_error:.4f}, "
        f"deflation: {deflation_error:.4f}"
    )
    # Joint ALS fits at least as well as greedy deflation in Frobenius
    # error (it optimizes exactly that objective over all components).
    assert als_error <= deflation_error + 1e-6
