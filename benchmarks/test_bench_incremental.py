"""Warm-started incremental refresh vs cold refit — the staged fit engine.

Not a paper artifact: this benchmark characterizes ``TCCA.partial_fit``
(PR 4). A serving system sees new samples continuously; refitting from
scratch pays the full moment accumulation over *all* ``N`` samples plus a
cold CP solve every time. The staged engine instead keeps the mergeable
moment state in the model, folds only the new minibatch in
(``O(n_new · ∏ d_p)`` instead of ``O(N · ∏ d_p)``), rebuilds the whitened
tensor from the stored moments with ``m`` mode products, and warm-starts
CP-ALS from the previous factors — so a refresh costs a small fraction of
a cold refit while producing the same model to tight tolerance.
"""

import copy
import time

import numpy as np

from repro.core import TCCA

#: d≈140 on the leading view — the dimension regime of the paper's
#: complexity figures — with a base corpus ~20x the refresh minibatch.
SCALE = dict(
    dims=(140, 30, 20),
    n_base=6000,
    n_update=200,
    n_components=3,
)
EPSILON = 1e-2


def _latent_views(dims, n_samples, seed=0, noise=0.25, n_factors=3):
    # Shared factors with separated strengths, so every fitted component
    # sits in a well-conditioned optimum (noise-level components would
    # make the warm/cold comparison chase arbitrary local solutions).
    rng = np.random.default_rng(seed)
    strengths = (2.0 * 0.5 ** np.arange(n_factors))[:, None]
    signal = strengths * rng.standard_normal((n_factors, n_samples))
    views = []
    for d in dims:
        mixing = rng.standard_normal((d, n_factors))
        views.append(
            mixing @ signal + noise * rng.standard_normal((d, n_samples))
        )
    return views


def test_bench_incremental_refresh_vs_cold_refit(benchmark, bench_record):
    """A warm refresh must beat a cold refit >= 3x at d≈140."""
    dims = SCALE["dims"]
    n_base, n_update = SCALE["n_base"], SCALE["n_update"]
    views = _latent_views(dims, n_base + n_update)
    base = [view[:, :n_base] for view in views]
    update = [view[:, n_base:] for view in views]

    def make():
        return TCCA(
            n_components=SCALE["n_components"],
            epsilon=EPSILON,
            solver="dense",
            random_state=0,
        )

    # Session start: accumulate the base corpus once. A refresh mutates
    # the session, so each timing round runs on its own deep copy —
    # best-of-2 on both sides keeps a scheduler hiccup on a shared CI
    # runner from deciding the ratio.
    session = make().partial_fit(base)

    def refresh():
        incremental = copy.deepcopy(session)
        start = time.perf_counter()
        incremental.partial_fit(update)
        return incremental, time.perf_counter() - start

    (incremental, first), (_, second) = (
        benchmark.pedantic(refresh, rounds=1, iterations=1),
        refresh(),
    )
    warm_seconds = min(first, second)
    warm_sweeps = incremental.decomposition_result_.n_iterations

    cold_seconds = np.inf
    for _ in range(2):
        start = time.perf_counter()
        cold = make().fit(views)
        cold_seconds = min(cold_seconds, time.perf_counter() - start)
    cold_sweeps = cold.decomposition_result_.n_iterations

    speedup = cold_seconds / warm_seconds
    print()
    print(
        f"incremental TCCA — dims={dims}, N={n_base}+{n_update}, "
        f"r={SCALE['n_components']}"
    )
    print(
        f"cold refit  {cold_seconds:7.3f}s in {cold_sweeps:3d} sweeps | "
        f"warm refresh {warm_seconds:7.3f}s in {warm_sweeps:3d} sweeps | "
        f"{speedup:.1f}x"
    )
    bench_record(
        {
            "dims": list(dims),
            "n_base": n_base,
            "n_update": n_update,
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "speedup": speedup,
            "cold_sweeps": cold_sweeps,
            "warm_sweeps": warm_sweeps,
        }
    )

    # Same model: the refreshed fit matches the cold refit on the
    # concatenated data — to the accuracy the default tol=1e-8 stopping
    # rule warrants here (the tight-tolerance equivalence is asserted in
    # tests/test_engine.py; this benchmark measures cost, not accuracy).
    np.testing.assert_allclose(
        incremental.correlations_, cold.correlations_, atol=1e-3
    )
    # Warm start must not cost extra sweeps...
    assert warm_sweeps <= cold_sweeps
    # ...and the refresh reuses the accumulated moments: >= 3x wall-clock.
    assert speedup >= 3.0
