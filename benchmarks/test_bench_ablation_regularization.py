"""Ablation — the ε regularization of the TCCA variance constraints.

ε trades conditioning of the whitening C̃_pp^{-1/2} against fidelity to
the exact canonical-correlation objective. On finite samples, small ε
amplifies poorly-estimated low-variance directions of each view and the
whitened tensor's noise floor with them; the paper tunes ε on validation
for the image-annotation task. This bench traces downstream accuracy
across the ε grid.
"""

import numpy as np

from repro.classifiers import RLSClassifier
from repro.core.tcca import TCCA
from repro.datasets import make_ads_like, sample_labeled_indices

N_SAMPLES = 1200
GRID = (1e-3, 1e-2, 1e-1, 1e0)


def test_bench_ablation_epsilon(benchmark):
    data = make_ads_like(
        N_SAMPLES, dims=(120, 100, 90), random_state=0
    )
    labeled = sample_labeled_indices(data.labels, 100, random_state=0)
    rest = np.setdiff1d(np.arange(N_SAMPLES), labeled)

    def run():
        accuracies = {}
        for epsilon in GRID:
            model = TCCA(
                n_components=8, epsilon=epsilon, random_state=0
            ).fit(data.views)
            z = model.transform_combined(data.views)
            classifier = RLSClassifier().fit(
                z[labeled], data.labels[labeled]
            )
            accuracies[epsilon] = classifier.score(
                z[rest], data.labels[rest]
            )
        return accuracies

    accuracies = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for epsilon, accuracy in accuracies.items():
        print(f"  eps={epsilon:g}: accuracy={accuracy:.3f}")

    # On sparse binary views the tiny-ε end must not be the best choice:
    # under-regularized whitening amplifies the heavy-tailed noise floor.
    best = max(accuracies, key=accuracies.get)
    assert best != GRID[0]
