"""Fig. 3 — SecStr accuracy vs dimension, two unlabeled-set sizes.

Shape assertions (paper): the DR methods beat BSF at their best
dimensions; the CCA family gains from more unlabeled data; TCCA is
competitive with (paper: ahead of) the pairwise extensions, catching up
as the unlabeled pool grows.
"""

from repro.experiments import run_experiment

SCALE = dict(
    n_unlabeled_small=1500,
    n_unlabeled_large=6000,
    dims=(5, 10, 20, 40),
    n_runs=3,
    random_state=0,
)


def test_bench_fig3_secstr(benchmark):
    result = benchmark.pedantic(
        lambda: run_experiment("fig3", **SCALE), rounds=1, iterations=1
    )
    print()
    print(result.series())
    print()
    print(result.table())

    small = result.panels[f"unlabeled={SCALE['n_unlabeled_small']}"]
    large = result.panels[f"unlabeled={SCALE['n_unlabeled_large']}"]

    # DR methods beat the best single view.
    bsf = small["BSF"].best_dimension_summary()[0]
    best_dr = max(
        small[name].best_dimension_summary()[0]
        for name in ("CCA (AVG)", "CCA-LS", "TCCA")
    )
    assert best_dr > bsf

    # TCCA gains (at least does not lose) with more unlabeled data.
    tcca_small = small["TCCA"].best_dimension_summary()[0]
    tcca_large = large["TCCA"].best_dimension_summary()[0]
    assert tcca_large > tcca_small - 0.02

    # TCCA matches/beats the single-representation pairwise methods on the
    # large panel (paper: strictly ahead of all; our N is orders of
    # magnitude smaller — see EXPERIMENTS.md). CCA (AVG) is an ensemble of
    # three classifiers and is held to a looser margin.
    pairwise_single = max(
        large[name].best_dimension_summary()[0]
        for name in ("CCA (BST)", "CCA-LS")
    )
    assert tcca_large > pairwise_single - 0.02
    ensemble = large["CCA (AVG)"].best_dimension_summary()[0]
    assert tcca_large > ensemble - 0.05

    # The flat-curve property (paper observation 5): TCCA's accuracy at
    # the largest swept dimension stays near its peak, while CCA (BST) /
    # CCA-LS decay from theirs.
    tcca_curve = large["TCCA"].mean_curve()
    assert tcca_curve[-1] > tcca_curve.max() - 0.02
    for name in ("CCA (BST)", "CCA-LS"):
        curve = large[name].mean_curve()
        assert curve[-1] < curve.max() - 0.02
