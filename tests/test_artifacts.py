"""Tests for the distributed fit protocol and the artifact layer.

Covers the headline invariant — ``reduce(accumulate shards)`` equals a
single-process fit to ≤1e-10 for m ∈ {2, 3} × dense/implicit, invariant
to shard count and shard order — plus the artifact plumbing it rests on:
atomic shard writes, content-hash verification (bit-rot, truncation),
configuration compatibility at reduce time, empty shards, cross-process
round-trips, and the provenance hash chain ``repro update`` extends.
"""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.__main__ import build_parser, main
from repro.api import load_model, save_model
from repro.api.registry import make_reducer
from repro.artifacts import (
    accumulate_views,
    chain_summary,
    load_moments,
    parent_link,
    parse_shard_spec,
    payload_sha256,
    provenance_block,
    read_header,
    reduce_shards,
    save_moments,
    shard_bounds,
    verify_chain,
)
from repro.datasets.synthetic import make_multiview_latent
from repro.exceptions import PersistenceError, ValidationError


def _views(n_samples, dims, seed=0):
    return make_multiview_latent(
        n_samples=n_samples, dims=dims, random_state=seed
    ).views


def _write_shards(views, directory, count, **params):
    """Accumulate ``views`` into ``count`` shard files; returns the paths."""
    paths = []
    for index in range(count):
        moments, resolved = accumulate_views(
            views, estimator="tcca", params=params, shard=(index, count)
        )
        path = str(directory / f"part-{index}.moments")
        save_moments(
            moments,
            path,
            estimator="tcca",
            params=resolved,
            shard={"index": index, "count": count},
        )
        paths.append(path)
    return paths


def _assert_same_model(model, reference, atol):
    """Fitted models agree up to the inherent per-column sign freedom."""
    np.testing.assert_allclose(
        model.correlations_, reference.correlations_, rtol=0, atol=atol
    )
    for ours, theirs in zip(
        model.canonical_vectors_, reference.canonical_vectors_
    ):
        np.testing.assert_allclose(
            np.abs(ours), np.abs(theirs), rtol=0, atol=atol
        )


class TestShardMath:
    def test_bounds_partition_the_samples(self):
        for n, k in [(10, 3), (7, 7), (61, 5), (3, 5), (0, 2)]:
            stops = [shard_bounds(n, i, k) for i in range(k)]
            assert stops[0][0] == 0
            assert stops[-1][1] == n
            for (_, stop), (start, _) in zip(stops, stops[1:]):
                assert stop == start
            sizes = [stop - start for start, stop in stops]
            assert max(sizes) - min(sizes) <= 1

    def test_parse_shard_spec(self):
        assert parse_shard_spec("0/3") == (0, 3)
        assert parse_shard_spec("2/3") == (2, 3)
        for bad in ("3/3", "-1/3", "1", "a/b", "1/0"):
            with pytest.raises(ValidationError):
                parse_shard_spec(bad)


class TestReduceEquivalence:
    """The headline invariant of the distributed protocol."""

    @pytest.mark.parametrize("dims", [(6, 5), (6, 5, 4)])
    @pytest.mark.parametrize("solver", ["dense", "implicit"])
    @pytest.mark.parametrize("count", [1, 2, 5])
    def test_reduce_matches_single_process_fit(
        self, tmp_path, dims, solver, count
    ):
        views = _views(61, dims)  # 61 % count != 0 → uneven shard sizes
        reference = make_reducer(
            "tcca", n_components=2, solver=solver, random_state=0
        ).fit(views)
        paths = _write_shards(
            views, tmp_path, count,
            n_components=2, solver=solver, random_state=0,
        )
        model, report = reduce_shards(list(reversed(paths)))
        assert report["n_samples"] == 61
        assert report["n_shards"] == count
        _assert_same_model(model, reference, atol=1e-10)

    def test_reduce_is_shard_order_invariant(self, tmp_path):
        views = _views(50, (6, 5, 4))
        paths = _write_shards(
            views, tmp_path, 3, n_components=2, random_state=0
        )
        orders = [paths, list(reversed(paths)), [paths[1], paths[2], paths[0]]]
        digests = set()
        for index, order in enumerate(orders):
            model, _report = reduce_shards(order)
            out = tmp_path / f"model-{index}.npz"
            save_model(model, out)
            digests.add(read_header(out)["payload_sha256"])
        # identical payload hash → bit-identical fitted arrays
        assert len(digests) == 1

    def test_reduced_model_accepts_further_updates(self, tmp_path):
        """A reduced model carries its moments: partial_fit keeps working."""
        views = _views(40, (6, 5))
        paths = _write_shards(
            views, tmp_path, 2, n_components=2, random_state=0
        )
        model, _report = reduce_shards(paths)
        assert model.moments_.n_samples == 40
        batch = _views(10, (6, 5), seed=3)
        model.partial_fit(batch)
        assert model.moments_.n_samples == 50

    def test_empty_shards_merge(self, tmp_path):
        # 4 samples over 5 shards: one shard is empty by construction.
        views = _views(24, (6, 5))
        head = [view[:, :4] for view in views]
        sizes = [
            stop - start for start, stop in
            (shard_bounds(4, i, 5) for i in range(5))
        ]
        assert 0 in sizes
        paths = _write_shards(head, tmp_path, 5, n_components=2)
        model, report = reduce_shards(paths)
        assert report["n_samples"] == 4
        reference = make_reducer("tcca", n_components=2).fit(head)
        _assert_same_model(model, reference, atol=1e-10)

    def test_all_empty_shards_rejected(self, tmp_path):
        # shard 0/5 of a 4-sample dataset is empty by the bounds math
        views = _views(4, (6, 5))
        assert shard_bounds(4, 0, 5) == (0, 0)
        moments, resolved = accumulate_views(
            views, estimator="tcca", params={"n_components": 2},
            shard=(0, 5),
        )
        assert moments.n_samples == 0
        path = str(tmp_path / "empty.moments")
        save_moments(moments, path, estimator="tcca", params=resolved)
        with pytest.raises(ValidationError, match="empty"):
            reduce_shards([path])

    def test_mismatched_config_rejected_with_actionable_message(
        self, tmp_path
    ):
        views = _views(30, (6, 5))
        good = _write_shards(views, tmp_path, 2, n_components=2)
        bad_moments, bad_params = accumulate_views(
            views, estimator="tcca", params={"n_components": 3},
            shard=(1, 2),
        )
        bad = str(tmp_path / "bad.moments")
        save_moments(
            bad_moments, bad, estimator="tcca", params=bad_params,
            shard={"index": 1, "count": 2},
        )
        with pytest.raises(ValidationError) as excinfo:
            reduce_shards([good[0], bad])
        message = str(excinfo.value)
        assert "bad.moments" in message
        assert "params" in message
        assert "repro accumulate" in message

    def test_mismatched_dims_rejected(self, tmp_path):
        a = _write_shards(_views(20, (6, 5)), tmp_path, 1, n_components=2)
        moments, params = accumulate_views(
            _views(20, (7, 5)), estimator="tcca",
            params={"n_components": 2},
        )
        other = str(tmp_path / "other.moments")
        save_moments(moments, other, estimator="tcca", params=params)
        with pytest.raises(ValidationError, match="dims"):
            reduce_shards([a[0], other])

    def test_execution_policy_does_not_block_merging(self, tmp_path):
        """n_jobs/executor are policy, not math: shards stay mergeable."""
        views = _views(30, (6, 5))
        serial, serial_params = accumulate_views(
            views, estimator="tcca",
            params={"n_components": 2}, shard=(0, 2),
        )
        threaded, threaded_params = accumulate_views(
            views, estimator="tcca",
            params={"n_components": 2, "n_jobs": 2, "executor": "thread"},
            shard=(1, 2),
        )
        a = str(tmp_path / "a.moments")
        b = str(tmp_path / "b.moments")
        save_moments(
            serial, a, estimator="tcca", params=serial_params,
            shard={"index": 0, "count": 2},
        )
        save_moments(
            threaded, b, estimator="tcca", params=threaded_params,
            shard={"index": 1, "count": 2},
        )
        _model, report = reduce_shards([a, b])
        assert report["n_samples"] == 30


class TestMomentShardFiles:
    def test_round_trip(self, tmp_path):
        views = _views(25, (6, 5, 4))
        moments, params = accumulate_views(
            views, estimator="tcca", params={"n_components": 2},
            shard=(0, 2),
        )
        path = str(tmp_path / "part.moments")
        digest = save_moments(
            moments, path, estimator="tcca", params=params,
            shard={"index": 0, "count": 2}, source="unit-test",
        )
        header, loaded = load_moments(path)
        assert header["payload_sha256"] == digest
        assert header["shard"] == {"index": 0, "count": 2}
        assert header["source"] == "unit-test"
        assert loaded.n_samples == moments.n_samples
        assert list(loaded.dims) == list(moments.dims)
        _meta, arrays = moments.state_dict()
        _meta2, arrays2 = loaded.state_dict()
        assert payload_sha256(arrays) == payload_sha256(arrays2)

    def test_cross_process_round_trip(self, tmp_path):
        """A shard written by another OS process reduces identically."""
        views = _views(30, (6, 5))
        data = tmp_path / "data.npz"
        np.savez(data, **{f"view{i}": v for i, v in enumerate(views)})
        for index in range(2):
            subprocess.run(
                [
                    sys.executable, "-m", "repro", "accumulate", "tcca",
                    "--data", str(data), "--shard", f"{index}/2",
                    "--param", "n_components=2",
                    "--out", str(tmp_path / f"part-{index}.moments"),
                ],
                check=True,
                env={**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)},
            )
        model, report = reduce_shards(
            [
                str(tmp_path / "part-0.moments"),
                str(tmp_path / "part-1.moments"),
            ]
        )
        assert report["n_samples"] == 30
        reference = make_reducer("tcca", n_components=2).fit(views)
        _assert_same_model(model, reference, atol=1e-10)

    def test_corrupted_shard_detected(self, tmp_path):
        views = _views(20, (6, 5))
        paths = _write_shards(views, tmp_path, 1, n_components=2)
        with open(paths[0], "r+b") as handle:
            handle.seek(os.path.getsize(paths[0]) // 2)
            handle.write(b"\xde\xad\xbe\xef")
        with pytest.raises(PersistenceError, match="part-0.moments"):
            reduce_shards(paths)

    def test_truncated_shard_detected(self, tmp_path):
        views = _views(20, (6, 5))
        paths = _write_shards(views, tmp_path, 1, n_components=2)
        size = os.path.getsize(paths[0])
        with open(paths[0], "r+b") as handle:
            handle.truncate(size // 2)
        with pytest.raises(PersistenceError):
            reduce_shards(paths)

    def test_not_a_shard_detected(self, tmp_path):
        path = tmp_path / "noise.moments"
        path.write_bytes(b"this is not an npz archive")
        with pytest.raises(PersistenceError, match="noise.moments"):
            load_moments(str(path))

    def test_model_file_is_not_a_shard(self, tmp_path):
        views = _views(20, (6, 5))
        model = make_reducer("tcca", n_components=2).fit(views)
        path = str(tmp_path / "model.npz")
        save_model(model, path)
        with pytest.raises(PersistenceError, match="format"):
            load_moments(path)

    def test_shard_write_is_atomic_on_crash(self, tmp_path, monkeypatch):
        """A crash between write and rename leaves the old shard intact."""
        from repro.artifacts import io as artifacts_io

        views = _views(20, (6, 5))
        paths = _write_shards(views, tmp_path, 1, n_components=2)
        _header, before = load_moments(paths[0])

        def crash(src, dst):
            raise OSError("simulated crash between write and rename")

        monkeypatch.setattr(artifacts_io.os, "replace", crash)
        moments, params = accumulate_views(
            _views(40, (6, 5), seed=1), estimator="tcca",
            params={"n_components": 2},
        )
        with pytest.raises(OSError, match="simulated crash"):
            save_moments(
                moments, paths[0], estimator="tcca", params=params
            )
        monkeypatch.undo()

        _header, after = load_moments(paths[0])
        assert after.n_samples == before.n_samples
        # no temporary litter next to the shard
        assert os.listdir(tmp_path) == ["part-0.moments"]


class TestModelVerification:
    def test_save_records_payload_hash(self, tmp_path):
        views = _views(20, (6, 5))
        path = str(tmp_path / "model.npz")
        save_model(make_reducer("tcca", n_components=2).fit(views), path)
        header = read_header(path)
        assert header["version"] == 3
        assert len(header["payload_sha256"]) == 64
        loaded = load_model(path, verify=True)
        assert loaded.correlations_.shape == (2,)

    def test_bit_rot_detected_on_verify(self, tmp_path):
        views = _views(20, (6, 5))
        path = str(tmp_path / "model.npz")
        save_model(make_reducer("tcca", n_components=2).fit(views), path)
        with open(path, "r+b") as handle:
            handle.seek(os.path.getsize(path) // 2)
            handle.write(b"\xde\xad\xbe\xef")
        with pytest.raises(PersistenceError, match="model.npz"):
            load_model(path, verify=True)

    def test_truncation_detected(self, tmp_path):
        views = _views(20, (6, 5))
        path = str(tmp_path / "model.npz")
        save_model(make_reducer("tcca", n_components=2).fit(views), path)
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) // 2)
        with pytest.raises(PersistenceError):
            load_model(path, verify=True)

    def test_verify_is_opt_in(self, tmp_path):
        """Default load path is unchanged (no forced full re-read)."""
        views = _views(20, (6, 5))
        path = str(tmp_path / "model.npz")
        save_model(make_reducer("tcca", n_components=2).fit(views), path)
        assert load_model(path).correlations_.shape == (2,)


class TestProvenanceChain:
    def _save_generations(self, tmp_path, generations=3):
        """fit → update → update, one saved file per generation."""
        model = make_reducer("tcca", n_components=2, random_state=0)
        model.partial_fit(_views(30, (6, 5)))
        paths = []
        parents = []
        for generation in range(generations):
            path = str(tmp_path / f"gen-{generation}.npz")
            created = "fit" if generation == 0 else "update"
            save_model(
                model, path,
                provenance=provenance_block(
                    created,
                    config=model.get_params(),
                    parents=list(parents),
                ),
            )
            paths.append(path)
            if generation < generations - 1:
                parents.append(parent_link(path, read_header(path)))
                model.partial_fit(_views(10, (6, 5), seed=generation + 1))
        return paths

    def test_chain_summary(self, tmp_path):
        paths = self._save_generations(tmp_path)
        summary = chain_summary(read_header(paths[-1]))
        assert summary["created"] == "update"
        assert summary["chain_depth"] == 2
        root = read_header(paths[0])
        from repro.artifacts import file_sha256

        assert summary["root_sha256"] == file_sha256(paths[0])

    def test_two_generation_chain_verifies_in_any_order(self, tmp_path):
        paths = self._save_generations(tmp_path)
        header = read_header(paths[-1])
        for parents in ([paths[0], paths[1]], [paths[1], paths[0]]):
            verified = verify_chain(header, parents, paths[-1])
            assert [record["created"] for record in verified] == [
                "update", "fit",
            ]

    def test_partial_chain_verifies(self, tmp_path):
        paths = self._save_generations(tmp_path)
        header = read_header(paths[-1])
        verified = verify_chain(header, [paths[1]], paths[-1])
        assert len(verified) == 1

    def test_tampered_ancestor_breaks_the_chain(self, tmp_path):
        paths = self._save_generations(tmp_path)
        with open(paths[1], "r+b") as handle:
            handle.seek(os.path.getsize(paths[1]) // 2)
            handle.write(b"\xde\xad\xbe\xef")
        with pytest.raises(PersistenceError, match="chain|hashes to"):
            verify_chain(
                read_header(paths[-1]), [paths[0], paths[1]], paths[-1]
            )

    def test_unrelated_file_rejected(self, tmp_path):
        paths = self._save_generations(tmp_path)
        stranger = str(tmp_path / "stranger.npz")
        save_model(
            make_reducer("tcca", n_components=2).fit(_views(20, (6, 5))),
            stranger,
        )
        with pytest.raises(PersistenceError):
            verify_chain(read_header(paths[-1]), [stranger], paths[-1])


class TestDistributedCLI:
    def test_parser_accepts_new_verbs(self):
        parser = build_parser()
        args = parser.parse_args(
            ["accumulate", "tcca", "--synthetic", "30", "--shard", "1/3",
             "--out", "p.moments"]
        )
        assert args.command == "accumulate"
        assert args.shard == "1/3"
        args = parser.parse_args(
            ["reduce", "a.moments", "b.moments", "--out", "m.npz"]
        )
        assert args.shards == ["a.moments", "b.moments"]
        assert parser.parse_args(["inspect", "m.npz"]).command == "inspect"
        args = parser.parse_args(
            ["verify", "m.npz", "--parents", "v0.npz", "v1.npz"]
        )
        assert args.parents == ["v0.npz", "v1.npz"]

    def test_accumulate_reduce_loop(self, tmp_path, capsys):
        shards = []
        for index in range(3):
            out = str(tmp_path / f"part-{index}.moments")
            assert main(
                ["accumulate", "tcca", "--synthetic", "60",
                 "--param", "n_components=2", "--shard", f"{index}/3",
                 "--out", out]
            ) == 0
            shards.append(out)
        model_path = str(tmp_path / "model.npz")
        assert main(["reduce", *shards, "--out", model_path]) == 0
        out = capsys.readouterr().out
        assert "reduced 3 shards" in out
        assert "60 samples" in out
        header = read_header(model_path)
        assert header["provenance"]["created"] == "reduce"
        assert len(header["provenance"]["shards"]) == 3
        assert main(["verify", model_path]) == 0

    def test_inspect_outputs_json(self, tmp_path, capsys):
        path = str(tmp_path / "model.npz")
        assert main(
            ["fit", "tcca", "--synthetic", "40",
             "--param", "n_components=2", "--out", path]
        ) == 0
        capsys.readouterr()  # drop the fit status line
        assert main(["inspect", path]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["format"] == "repro-model"
        assert summary["provenance"]["created"] == "fit"
        assert summary["provenance"]["source"].startswith("synthetic:40")

    def test_update_extends_chain_and_verify_walks_it(
        self, tmp_path, capsys
    ):
        views = _views(40, (6, 5))
        data = tmp_path / "data.npz"
        np.savez(data, **{f"view{i}": v for i, v in enumerate(views)})
        model_path = str(tmp_path / "model.npz")
        assert main(
            ["fit", "tcca", "--incremental", "--data", str(data),
             "--param", "n_components=2", "--out", model_path]
        ) == 0
        import shutil

        ancestors = []
        for generation in range(2):
            ancestor = str(tmp_path / f"v{generation}.npz")
            shutil.copy(model_path, ancestor)
            ancestors.append(ancestor)
            assert main(
                ["update", model_path, "--data", str(data)]
            ) == 0
        summary = chain_summary(read_header(model_path))
        assert summary["chain_depth"] == 2
        assert main(
            ["verify", model_path, "--parents", *reversed(ancestors)]
        ) == 0
        out = capsys.readouterr().out
        assert "chain OK" in out
        assert "2 generation(s)" in out

    def test_verify_reports_corruption_as_exit_2(self, tmp_path, capsys):
        path = str(tmp_path / "model.npz")
        assert main(
            ["fit", "tcca", "--synthetic", "30",
             "--param", "n_components=2", "--out", path]
        ) == 0
        with open(path, "r+b") as handle:
            handle.seek(os.path.getsize(path) // 2)
            handle.write(b"\xde\xad\xbe\xef")
        assert main(["verify", path]) == 2
        assert "error:" in capsys.readouterr().err

    def test_reduce_mismatch_is_exit_2(self, tmp_path, capsys):
        outs = []
        for components, name in ((2, "a"), (3, "b")):
            out = str(tmp_path / f"{name}.moments")
            assert main(
                ["accumulate", "tcca", "--synthetic", "30",
                 "--param", f"n_components={components}", "--out", out]
            ) == 0
            outs.append(out)
        assert main(
            ["reduce", *outs, "--out", str(tmp_path / "m.npz")]
        ) == 2
        assert "incompatible" in capsys.readouterr().err
