"""Unit tests for CP-ALS, HOPM, deflation power method, and HOSVD."""

import numpy as np
import pytest

from repro.exceptions import DecompositionError, ValidationError
from repro.tensor.cp import CPTensor
from repro.tensor.decomposition import (
    best_rank1,
    cp_als,
    hosvd,
    tensor_power_deflation,
)
from repro.tensor.decomposition.init import initialize_factors
from repro.tensor.dense import frobenius_norm, outer_product


def _exact_cp_tensor(rng, shape=(5, 6, 4), rank=2):
    """A dense tensor with an exact rank-``rank`` CP structure."""
    factors = []
    for size in shape:
        factor, _ = np.linalg.qr(rng.standard_normal((size, rank)))
        factors.append(factor)
    weights = np.array([3.0, 1.5][:rank])
    cp = CPTensor(weights=weights, factors=factors)
    return cp.to_dense(), cp


class TestInitializeFactors:
    def test_hosvd_init_unit_columns(self, small_tensor):
        factors = initialize_factors(small_tensor, 2, random_state=0)
        for mode, factor in enumerate(factors):
            assert factor.shape == (small_tensor.shape[mode], 2)
            np.testing.assert_allclose(
                np.linalg.norm(factor, axis=0), np.ones(2)
            )

    def test_random_init_unit_columns(self, small_tensor):
        factors = initialize_factors(
            small_tensor, 3, method="random", random_state=0
        )
        for factor in factors:
            np.testing.assert_allclose(
                np.linalg.norm(factor, axis=0), np.ones(3)
            )

    def test_rank_exceeding_mode_padded(self, small_tensor):
        factors = initialize_factors(small_tensor, 10, random_state=0)
        assert factors[0].shape == (4, 10)

    def test_unknown_method_raises(self, small_tensor):
        with pytest.raises(ValidationError):
            initialize_factors(small_tensor, 2, method="bogus")


class TestCPALS:
    def test_recovers_exact_cp(self, rng):
        dense, _cp = _exact_cp_tensor(rng)
        result = cp_als(dense, 2, random_state=0)
        assert result.relative_error(dense) < 1e-6
        assert result.converged

    def test_error_decreases(self, rng):
        tensor = rng.standard_normal((5, 5, 5))
        result = cp_als(
            tensor, 3, random_state=0, warn_on_no_convergence=False
        )
        history = np.array(result.fit_history)
        assert np.all(np.diff(history) < 1e-8)

    def test_weights_sorted_descending(self, rng):
        dense, _ = _exact_cp_tensor(rng)
        result = cp_als(dense, 2, random_state=0)
        weights = np.abs(result.cp.weights)
        assert np.all(np.diff(weights) <= 1e-12)

    def test_full_rank_matrix_case(self, rng):
        matrix = rng.standard_normal((6, 4))
        result = cp_als(matrix, 4, random_state=0)
        assert result.relative_error(matrix) < 1e-6

    def test_rank1_weight_matches_hopm(self, rng):
        tensor = rng.standard_normal((4, 4, 4))
        als = cp_als(tensor, 1, random_state=0, warn_on_no_convergence=False)
        hopm = best_rank1(tensor, random_state=0)
        assert abs(als.cp.weights[0]) == pytest.approx(
            abs(hopm.cp.weights[0]), rel=1e-4
        )

    def test_zero_tensor_raises(self):
        with pytest.raises(DecompositionError):
            cp_als(np.zeros((3, 3, 3)), 1)

    def test_order1_raises(self):
        with pytest.raises(DecompositionError):
            cp_als(np.ones(5), 1)

    def test_bad_rank_raises(self, small_tensor):
        with pytest.raises(ValidationError):
            cp_als(small_tensor, 0)

    def test_higher_rank_fits_better(self, rng):
        tensor = rng.standard_normal((6, 6, 6))
        err1 = cp_als(
            tensor, 1, random_state=0, warn_on_no_convergence=False
        ).fit_history[-1]
        err4 = cp_als(
            tensor, 4, random_state=0, warn_on_no_convergence=False
        ).fit_history[-1]
        assert err4 <= err1 + 1e-10

    def test_factor_columns_unit_norm(self, rng):
        dense, _ = _exact_cp_tensor(rng)
        result = cp_als(dense, 2, random_state=0)
        for factor in result.cp.factors:
            np.testing.assert_allclose(
                np.linalg.norm(factor, axis=0), np.ones(2), atol=1e-10
            )

    def test_reported_error_matches_recomputed(self, rng):
        tensor = rng.standard_normal((5, 4, 3))
        result = cp_als(
            tensor, 2, random_state=0, warn_on_no_convergence=False
        )
        assert result.fit_history[-1] == pytest.approx(
            result.relative_error(tensor), abs=1e-8
        )


class TestHOPM:
    def test_rank1_exact_recovery(self, rng):
        vectors = [rng.standard_normal(s) for s in (5, 4, 6)]
        vectors = [v / np.linalg.norm(v) for v in vectors]
        dense = 2.0 * outer_product(vectors)
        result = best_rank1(dense, random_state=0)
        assert result.cp.weights[0] == pytest.approx(2.0, rel=1e-8)
        assert result.relative_error(dense) < 1e-8

    def test_matrix_case_matches_svd(self, rng):
        matrix = rng.standard_normal((6, 5))
        result = best_rank1(matrix, random_state=0)
        top_singular = np.linalg.svd(matrix, compute_uv=False)[0]
        assert abs(result.cp.weights[0]) == pytest.approx(
            top_singular, rel=1e-8
        )

    def test_rho_monotone_nondecreasing(self, rng):
        tensor = rng.standard_normal((5, 5, 5))
        result = best_rank1(
            tensor, random_state=0, warn_on_no_convergence=False
        )
        history = np.array(result.fit_history)
        assert np.all(np.diff(history) >= -1e-10)

    def test_sign_of_weight_is_correct(self, rng):
        # The returned weight must reproduce the tensor, sign included.
        vectors = [rng.standard_normal(s) for s in (4, 3, 5)]
        vectors = [v / np.linalg.norm(v) for v in vectors]
        dense = -1.7 * outer_product(vectors)
        result = best_rank1(dense, random_state=0)
        assert result.relative_error(dense) < 1e-8

    def test_zero_tensor_raises(self):
        with pytest.raises(DecompositionError):
            best_rank1(np.zeros((2, 2, 2)))

    def test_residual_orthogonal_to_component(self, rng):
        # At a HOPM fixed point the residual is orthogonal to the component.
        tensor = rng.standard_normal((4, 4, 4))
        result = best_rank1(tensor, random_state=0, max_iter=500)
        component = result.cp.to_dense()
        residual = tensor - component
        assert abs(np.sum(residual * component)) < 1e-6


class TestTensorPowerDeflation:
    def test_residual_norm_decreases(self, rng):
        tensor = rng.standard_normal((5, 5, 5))
        result = tensor_power_deflation(tensor, 3, random_state=0)
        history = np.array(result.fit_history)
        assert np.all(np.diff(history) <= 1e-10)

    def test_exact_orthogonal_rank2(self, rng):
        dense, cp = _exact_cp_tensor(rng)
        result = tensor_power_deflation(dense, 2, random_state=0)
        # Orthogonal CP components are recovered greedily in weight order.
        assert result.relative_error(dense) < 1e-5

    def test_rank_validation(self, small_tensor):
        with pytest.raises(ValidationError):
            tensor_power_deflation(small_tensor, 0)

    def test_zero_tensor_raises(self):
        with pytest.raises(DecompositionError):
            tensor_power_deflation(np.zeros((3, 3)), 1)

    def test_matrix_case_matches_svd_spectrum(self, rng):
        matrix = rng.standard_normal((6, 6))
        result = tensor_power_deflation(matrix, 3, random_state=0)
        singular_values = np.linalg.svd(matrix, compute_uv=False)[:3]
        np.testing.assert_allclose(
            np.abs(result.cp.weights), singular_values, rtol=1e-5
        )


class TestHOSVD:
    def test_full_rank_reconstruction(self, small_tensor):
        tucker = hosvd(small_tensor)
        np.testing.assert_allclose(
            tucker.to_dense(), small_tensor, atol=1e-10
        )

    def test_orthonormal_factors(self, small_tensor):
        tucker = hosvd(small_tensor)
        for factor in tucker.factors:
            np.testing.assert_allclose(
                factor.T @ factor, np.eye(factor.shape[1]), atol=1e-12
            )

    def test_truncation_shapes(self, small_tensor):
        tucker = hosvd(small_tensor, ranks=(2, 3, 2))
        assert tucker.core.shape == (2, 3, 2)
        assert tucker.shape == small_tensor.shape

    def test_truncated_error_bounded(self, rng):
        dense, _ = _exact_cp_tensor(rng)
        tucker = hosvd(dense, ranks=(2, 2, 2))
        error = frobenius_norm(dense - tucker.to_dense())
        assert error < 1e-8  # exact rank-2 tensor: rank-2 HOSVD is exact

    def test_bad_ranks_raise(self, small_tensor):
        with pytest.raises(ValidationError):
            hosvd(small_tensor, ranks=(2, 3))
        with pytest.raises(ValidationError):
            hosvd(small_tensor, ranks=(0, 3, 2))
        with pytest.raises(ValidationError):
            hosvd(small_tensor, ranks=(9, 3, 2))

    def test_order2_matches_svd(self, rng):
        matrix = rng.standard_normal((5, 4))
        tucker = hosvd(matrix)
        np.testing.assert_allclose(tucker.to_dense(), matrix, atol=1e-10)
